//! Reproducibility: the same seed must reproduce every measured number
//! (DESIGN.md §6), and different seeds must explore different worlds.

use app_tls_pinning::core::{Study, StudyConfig};

#[test]
fn same_seed_same_tables() {
    let a = Study::new(StudyConfig::tiny(0xD37)).run();
    let b = Study::new(StudyConfig::tiny(0xD37)).run();

    assert_eq!(a.render_table3(), b.render_table3());
    assert_eq!(a.render_table6(), b.render_table6());
    assert_eq!(a.render_table8(), b.render_table8());
    assert_eq!(a.render_table9(), b.render_table9());
    assert_eq!(a.render_figure2(), b.render_figure2());
    assert_eq!(a.render_all(), b.render_all());
}

#[test]
fn same_seed_same_records() {
    let a = Study::new(StudyConfig::tiny(0xD38)).run();
    let b = Study::new(StudyConfig::tiny(0xD38)).run();
    assert_eq!(a.records.len(), b.records.len());
    for (idx, ra) in &a.records {
        let rb = &b.records[idx];
        assert_eq!(ra.pinned_destinations, rb.pinned_destinations);
        assert_eq!(ra.used_destinations, rb.used_destinations);
        assert_eq!(ra.pinned_bodies, rb.pinned_bodies);
        assert_eq!(ra.weak_overall, rb.weak_overall);
    }
}

#[test]
fn different_seeds_differ() {
    let a = Study::new(StudyConfig::tiny(1)).run();
    let b = Study::new(StudyConfig::tiny(2)).run();
    assert_ne!(
        a.render_table3(),
        b.render_table3(),
        "different seeds should produce different measurements"
    );
}
