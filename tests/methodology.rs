//! Cross-crate methodology checks: drive the stack manually (PKI → TLS →
//! netsim → analysis) and verify the paper's §4 mechanics hold end-to-end
//! without the world generator in the loop.

use app_tls_pinning::analysis::dynamics::classify::{classify_connection, ConnStatus};
use app_tls_pinning::analysis::dynamics::detect::{detect_pinned_destinations, Exclusions};
use app_tls_pinning::crypto::sig::KeyPair;
use app_tls_pinning::crypto::SplitMix64;
use app_tls_pinning::netsim::flow::{Capture, FlowOrigin, FlowRecord};
use app_tls_pinning::netsim::proxy::MitmProxy;
use app_tls_pinning::pki::chain::CertificateChain;
use app_tls_pinning::pki::pin::{Pin, PinSet, SpkiPin};
use app_tls_pinning::pki::store::RootStore;
use app_tls_pinning::pki::universe::{PkiUniverse, UniverseConfig};
use app_tls_pinning::pki::validate::RevocationList;
use app_tls_pinning::tls::verify::CertPolicy;
use app_tls_pinning::tls::{establish, ClientConfig, ServerEndpoint, TlsLibrary};

struct Lab {
    universe: PkiUniverse,
    proxy: MitmProxy,
    device_store: RootStore,
    chain: CertificateChain,
}

fn lab() -> Lab {
    let mut rng = SplitMix64::new(0x1ab2);
    let mut universe = PkiUniverse::generate(&UniverseConfig::tiny(), &mut rng);
    let key = KeyPair::generate(&mut rng);
    let chain =
        universe.issue_server_chain(&["api.lab.example".to_string()], "Lab", &key, 398, &mut rng);
    let proxy = MitmProxy::new(&mut rng, universe.now());
    let mut device_store = RootStore::new("device");
    for root in universe.aosp.iter() {
        device_store.add(root.clone());
    }
    device_store.add(proxy.ca_cert());
    Lab {
        universe,
        proxy,
        device_store,
        chain,
    }
}

fn flow_of(lab: &Lab, client: &ClientConfig, mitm: bool, with_data: bool) -> FlowRecord {
    let chain = if mitm {
        lab.proxy.forge_chain("api.lab.example", &lab.chain)
    } else {
        lab.chain.clone()
    };
    let endpoint = ServerEndpoint::modern(&chain);
    let mut out = establish(
        client,
        &endpoint,
        "api.lab.example",
        lab.universe.now(),
        &lab.device_store,
        &RevocationList::empty(),
    );
    if let Ok(session) = out.result {
        if with_data {
            session.send_client_data(&mut out.transcript, 700);
            session.send_server_data(&mut out.transcript, 2000);
        }
        session.close(&mut out.transcript);
    }
    FlowRecord {
        dest: "api.lab.example".to_string(),
        at_secs: 1,
        origin: FlowOrigin::App,
        transcript: out.transcript,
        mitm_attempted: mitm,
        decrypted_request: None,
    }
}

fn pinned_client(lab: &Lab) -> ClientConfig {
    let mut c = ClientConfig::modern(TlsLibrary::OkHttp);
    c.policy = CertPolicy::pinned(PinSet::from_pins(vec![Pin::Spki(SpkiPin::sha256_of(
        lab.chain.top().expect("root"),
    ))]));
    c
}

#[test]
fn manual_differential_detects_pin() {
    let lab = lab();
    let client = pinned_client(&lab);
    let baseline = Capture {
        flows: vec![flow_of(&lab, &client, false, true)],
        window_secs: 30,
        faults: vec![],
    };
    let mitm = Capture {
        flows: vec![flow_of(&lab, &client, true, true)],
        window_secs: 30,
        faults: vec![],
    };
    let verdicts = detect_pinned_destinations(&baseline, &mitm, &Exclusions::none());
    assert_eq!(verdicts.len(), 1);
    assert!(verdicts[0].pinned);
}

#[test]
fn manual_differential_clears_unpinned() {
    let lab = lab();
    let client = ClientConfig::modern(TlsLibrary::OkHttp);
    let baseline = Capture {
        flows: vec![flow_of(&lab, &client, false, true)],
        window_secs: 30,
        faults: vec![],
    };
    let mitm = Capture {
        flows: vec![flow_of(&lab, &client, true, true)],
        window_secs: 30,
        faults: vec![],
    };
    let verdicts = detect_pinned_destinations(&baseline, &mitm, &Exclusions::none());
    assert!(!verdicts[0].pinned, "{verdicts:?}");
}

#[test]
fn classifier_used_and_failed_on_real_transcripts() {
    let lab = lab();
    let pinned = pinned_client(&lab);
    let plain = ClientConfig::modern(TlsLibrary::OkHttp);

    let used = flow_of(&lab, &plain, false, true);
    assert_eq!(classify_connection(&used.transcript), ConnStatus::Used);

    let failed = flow_of(&lab, &pinned, true, true);
    assert_eq!(classify_connection(&failed.transcript), ConnStatus::Failed);

    // Established-but-unused (redundant) connection: not used, orderly
    // close → counted as failed, which the differential rule tolerates.
    let redundant = flow_of(&lab, &plain, false, false);
    assert_ne!(classify_connection(&redundant.transcript), ConnStatus::Used);
}

#[test]
fn forged_chain_validates_only_with_proxy_ca() {
    let lab = lab();
    let forged = lab.proxy.forge_chain("api.lab.example", &lab.chain);
    // Against the device store (proxy CA installed) the forged chain is fine.
    let ok = app_tls_pinning::pki::validate::validate_chain(
        forged.certs(),
        &lab.device_store,
        "api.lab.example",
        lab.universe.now(),
        &RevocationList::empty(),
        &Default::default(),
    );
    assert!(ok.is_ok());
    // Against the factory store it is rejected.
    let err = app_tls_pinning::pki::validate::validate_chain(
        forged.certs(),
        &lab.universe.aosp,
        "api.lab.example",
        lab.universe.now(),
        &RevocationList::empty(),
        &Default::default(),
    );
    assert!(err.is_err());
}

#[test]
fn rogue_oem_root_defeated_only_by_pinning() {
    // §2.1's motivation: OEM images ship "expired, unknown, or obscure CA
    // certificates" — an attacker holding one such CA key can MITM any
    // unpinned app, and pinning is the defense.
    let mut rng = SplitMix64::new(0x0e11);
    let mut universe = PkiUniverse::generate(&UniverseConfig::tiny(), &mut rng);
    let key = KeyPair::generate(&mut rng);
    let chain =
        universe.issue_server_chain(&["bank.example".to_string()], "Bank", &key, 398, &mut rng);
    // The attacker controls a *valid, in-store* obscure OEM root.
    let rogue = universe
        .aosp_oem
        .iter()
        .find(|c| {
            c.tbs.subject.common_name.starts_with("ObscureNational")
                && c.tbs.validity.contains(universe.now())
        })
        .expect("tiny universe plants valid OEM extras")
        .clone();
    let rogue_ca_idx = universe
        .public_roots()
        .iter()
        .position(|ca| ca.cert == rogue)
        .expect("OEM extras are generated as authorities");
    // Forge a chain for the bank under the rogue (but trusted!) root.
    let universe2 = universe.clone();
    let forged_leaf_key = KeyPair::generate(&mut rng);
    let forged = {
        // Re-derive an authority handle: public_roots gives certs; we clone
        // the CA list through a fresh issuance path.
        let mut roots = universe2.public_roots().to_vec();
        let ca = &mut roots[rogue_ca_idx];
        let leaf = ca.issue_leaf(
            &["bank.example".to_string()],
            "Bank",
            &forged_leaf_key,
            app_tls_pinning::pki::time::Validity::starting(universe.now(), 1000),
        );
        CertificateChain::new(vec![leaf, ca.cert.clone()])
    };

    let unpinned = ClientConfig::modern(TlsLibrary::Conscrypt);
    let mut pinned = unpinned.clone();
    pinned.policy = CertPolicy::pinned(PinSet::from_pins(vec![Pin::Spki(SpkiPin::sha256_of(
        chain.top().expect("root"),
    ))]));

    let server = ServerEndpoint::modern(&forged);
    // Unpinned app: the rogue-rooted chain is *valid* on the OEM device.
    let out = establish(
        &unpinned,
        &server,
        "bank.example",
        universe.now(),
        &universe.aosp_oem,
        &RevocationList::empty(),
    );
    assert!(
        out.result.is_ok(),
        "OEM-trusted rogue chain must pass system validation"
    );
    // Pinned app: rejected despite the chain being store-valid.
    let out = establish(
        &pinned,
        &server,
        "bank.example",
        universe.now(),
        &universe.aosp_oem,
        &RevocationList::empty(),
    );
    assert!(matches!(
        out.result,
        Err(app_tls_pinning::tls::HandshakeError::PinRejected)
    ));
}

#[test]
fn revoked_leaf_rejected_even_when_pin_matches() {
    // §2.1: "verifying if a pinned certificate is present in a chain is not
    // sufficient ... the TLS library must still validate all other
    // properties" — revocation included.
    let lab = lab();
    let client = pinned_client(&lab);
    let mut crl = RevocationList::empty();
    crl.revoke(lab.chain.leaf().expect("leaf").tbs.serial);
    let server = ServerEndpoint::modern(&lab.chain);
    let out = establish(
        &client,
        &server,
        "api.lab.example",
        lab.universe.now(),
        &lab.device_store,
        &crl,
    );
    assert!(
        out.result.is_err(),
        "pin match must not override revocation"
    );
}

#[test]
fn pin_survives_proxy_only_for_genuine_chain() {
    let lab = lab();
    let pin = PinSet::from_pins(vec![Pin::Spki(SpkiPin::sha256_of(
        lab.chain.top().expect("root"),
    ))]);
    assert!(pin.matches_chain(lab.chain.certs()));
    let forged = lab.proxy.forge_chain("api.lab.example", &lab.chain);
    assert!(!pin.matches_chain(forged.certs()));
}
