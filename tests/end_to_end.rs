//! End-to-end integration: the full study pipeline, from world generation
//! through every table and figure, at test scale.

use app_tls_pinning::app::platform::Platform;
use app_tls_pinning::core::{Study, StudyConfig, StudyResults};
use app_tls_pinning::store::datasets::DatasetKind;
use std::collections::BTreeSet;
use std::sync::OnceLock;

fn results() -> &'static StudyResults {
    static RESULTS: OnceLock<StudyResults> = OnceLock::new();
    RESULTS.get_or_init(|| {
        let mut config = StudyConfig::tiny(0xE2E);
        // A bit larger than tiny so every table has rows.
        // Bench scale: large enough that Table 7's ≥5-app attribution
        // threshold is met and percentages are stable.
        config.world.store_size = 1200;
        config.world.n_cross_products = 200;
        config.world.common_size = 140;
        config.world.popular_size = 250;
        config.world.random_size = 250;
        Study::new(config).run()
    })
}

#[test]
fn six_datasets_at_requested_sizes() {
    let r = results();
    assert_eq!(r.datasets.len(), 6);
    for kind in DatasetKind::ALL {
        for platform in Platform::BOTH {
            let d = r.dataset(kind, platform);
            let expected = match kind {
                DatasetKind::Common => 140,
                _ => 250,
            };
            assert_eq!(d.len(), expected, "{kind} {platform}");
        }
    }
}

#[test]
fn headline_shape_static_exceeds_dynamic_exceeds_nsc() {
    // The paper's central claim (Table 3): static "potential" pinning
    // exceeds dynamic ground truth, which in turn exceeds what the
    // NSC-only technique of prior work can see.
    let r = results();
    let rows = r.table3();
    let sum = |f: fn(&app_tls_pinning::report::tables::Table3Row) -> usize| -> usize {
        rows.iter().map(f).sum()
    };
    let dynamic = sum(|x| x.dynamic);
    let embedded = sum(|x| x.static_embedded);
    let nsc = sum(|x| x.nsc.unwrap_or(0));
    assert!(dynamic > 0);
    assert!(
        embedded > dynamic,
        "embedded {embedded} vs dynamic {dynamic}"
    );
    assert!(dynamic > nsc, "dynamic {dynamic} vs nsc {nsc}");
}

#[test]
fn detection_never_hallucinates() {
    let r = results();
    for rec in r.records.values() {
        let app = &r.world.apps[rec.app_index];
        let truth: BTreeSet<&str> = app.runtime_pinned_domains().into_iter().collect();
        for d in &rec.pinned_destinations {
            assert!(truth.contains(d.as_str()), "{}: hallucinated {d}", app.id);
        }
    }
}

#[test]
fn detection_recall_is_high() {
    let r = results();
    let mut truth_apps = 0;
    let mut found_apps = 0;
    for rec in r.records.values() {
        let app = &r.world.apps[rec.app_index];
        if app.pins_at_runtime() {
            truth_apps += 1;
            if rec.pins() {
                found_apps += 1;
            }
        }
    }
    assert!(truth_apps > 0);
    assert!(
        found_apps * 10 >= truth_apps * 7,
        "recall too low: {found_apps}/{truth_apps}"
    );
}

#[test]
fn weak_cipher_gap_between_platforms() {
    let r = results();
    let rows = r.table8();
    let avg = |platform: Platform| -> f64 {
        let xs: Vec<f64> = rows
            .iter()
            .filter(|x| x.platform == platform)
            .map(|x| x.row.overall_pct)
            .collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    assert!(avg(Platform::Ios) > avg(Platform::Android) + 30.0);
}

#[test]
fn circumvention_partial_on_both_platforms() {
    let r = results();
    for platform in Platform::BOTH {
        let (succeeded, attempted) = r.circumvention_rate(platform);
        assert!(attempted > 0, "{platform}: no circumvention attempted");
        assert!(succeeded > 0, "{platform}: nothing circumvented");
        assert!(
            succeeded < attempted,
            "{platform}: circumvention must be partial"
        );
    }
}

#[test]
fn majority_of_pinned_certs_are_cas() {
    let r = results();
    let pl = r.pin_level();
    assert!(pl.ca + pl.leaf > 0);
    assert!(pl.ca > pl.leaf, "{pl:?}");
}

#[test]
fn table6_shapes() {
    let r = results();
    for row in r.table6() {
        let total = row.default_pki + row.custom_pki + row.unavailable;
        if total >= 10 {
            assert!(
                row.default_pki * 2 > total,
                "default PKI must dominate: {row:?}"
            );
        }
    }
}

#[test]
fn common_dataset_pairs_are_products() {
    let r = results();
    let ca = r.dataset(DatasetKind::Common, Platform::Android);
    let ci = r.dataset(DatasetKind::Common, Platform::Ios);
    for (&a, &i) in ca.app_indices.iter().zip(&ci.app_indices) {
        assert_eq!(r.world.apps[a].product_key, r.world.apps[i].product_key);
    }
}

#[test]
fn full_report_renders() {
    let r = results();
    let report = r.render_all();
    assert!(report.len() > 2_000);
    for needle in [
        "Table 3",
        "Table 9",
        "Figure 5",
        "pins resolved via CT",
        "CT resolution & log coverage",
    ] {
        assert!(report.contains(needle), "missing {needle}");
    }
}

#[test]
fn ct_coverage_partial_at_bench_scale_with_clean_auditor() {
    // The §4.1.3 acceptance shape: 0 < resolved < total overall, partial
    // per-shard coverage reported, and an honestly generated ecosystem
    // audits clean.
    let r = results();
    let s = r.ct_coverage();
    let resolved: usize = s.datasets.iter().map(|d| d.resolved).sum();
    let total: usize = s.datasets.iter().map(|d| d.total).sum();
    assert!(resolved > 0, "some pins must resolve via CT");
    assert!(resolved < total, "CT coverage must stay partial");
    assert!(s.shards.iter().all(|sh| sh.entries > 0));
    assert!(s.cache.hit_rate() > 0.0, "{:?}", s.cache);
    assert!(s.findings.is_empty(), "{:?}", s.findings);
}

#[test]
fn table7_attributes_known_sdks() {
    let r = results();
    let (android, ios) = r.table7();
    let android_names: BTreeSet<&str> = android.iter().map(|f| f.framework.as_str()).collect();
    let ios_names: BTreeSet<&str> = ios.iter().map(|f| f.framework.as_str()).collect();
    // At this scale at least one Table 7 SDK must recur ≥5 apps on some
    // platform; both platforms' attributions must stay within the registry.
    // Per-SDK adoption is ~1% of apps, so the ≥5-app review threshold needs
    // thousands of apps per platform to trigger for *both* platforms; at
    // this test scale at least one side must clear it (the paper-scale run
    // in EXPERIMENTS.md shows both).
    assert!(
        !android_names.is_empty() || !ios_names.is_empty(),
        "no frameworks attributed on either platform"
    );
    let known = [
        "Twitter",
        "Braintree",
        "Paypal",
        "Stripe",
        "Amplitude",
        "Weibo",
        "FraudForce",
        "Adobe Creative Cloud",
        "MParticle",
        "Perimeterx",
        "Sensibill",
        "Firestore",
    ];
    assert!(
        android_names.iter().all(|n| known.contains(n)),
        "{android_names:?}"
    );
    assert!(ios_names.iter().all(|n| known.contains(n)), "{ios_names:?}");
}
