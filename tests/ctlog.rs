//! Integration: the verifiable CT ecosystem end to end — submit → prove →
//! audit — on both hand-built shards and a generated world, all
//! deterministic.

use app_tls_pinning::crypto::sig::KeyPair;
use app_tls_pinning::crypto::SplitMix64;
use app_tls_pinning::ctlog::{
    verify_consistency, verify_inclusion, LogSet, LogShard, Monitor, PinResolver, ShardPolicy,
};
use app_tls_pinning::pki::authority::CertificateAuthority;
use app_tls_pinning::pki::name::DistinguishedName;
use app_tls_pinning::pki::pin::PinAlgorithm;
use app_tls_pinning::pki::time::{SimTime, Validity, YEAR};
use app_tls_pinning::store::config::WorldConfig;
use app_tls_pinning::store::world::World;
use std::collections::{BTreeMap, BTreeSet};

fn world() -> World {
    World::generate(WorldConfig::tiny(0xCE27))
}

#[test]
fn every_world_log_entry_has_a_verifying_inclusion_proof() {
    let w = world();
    assert!(!w.ctlog.is_empty());
    for shard in w.ctlog.shards() {
        let sth = shard.log.signed_tree_head(w.now);
        assert!(sth.verify(shard.log.public_key()), "{}", shard.name);
        assert_eq!(sth.tree_size, shard.log.len() as u64);
        for index in 0..sth.tree_size {
            let leaf = shard.log.leaf_hash(index).expect("leaf exists");
            let proof = shard
                .log
                .inclusion_proof(index, sth.tree_size)
                .expect("proof exists");
            assert!(
                verify_inclusion(&leaf, index, sth.tree_size, &proof, &sth.root_hash),
                "{} entry {index}",
                shard.name
            );
        }
    }
}

#[test]
fn monitor_tails_a_growing_log_and_stays_clean() {
    // Incremental growth: a monitor checkpoints each shard after every
    // batch; consistency and inclusion must hold at every step.
    let mut rng = SplitMix64::new(0xC7);
    let now = SimTime::at(5, 0, 0);
    let mut set = LogSet::sim_ecosystem(now, 0.6, 0.7, &mut rng);
    let mut root = CertificateAuthority::new_root(
        DistinguishedName::new("Audit Root", "Sim", "US"),
        &mut rng,
        SimTime(0),
    );
    let mut monitor = Monitor::new();
    for batch in 0..6 {
        for i in 0..10 {
            let key = KeyPair::generate(&mut rng);
            let cert = root.issue_leaf(
                &[format!("b{batch}-h{i}.example")],
                "Org",
                &key,
                Validity::starting(now - 30 * 86_400, YEAR),
            );
            set.submit(&cert);
        }
        monitor.observe_set(&set, now + batch);
        assert!(
            monitor.is_clean(),
            "batch {batch}: {:?}",
            monitor.findings()
        );
    }
    for shard in set.shards() {
        assert_eq!(
            monitor.checkpoint_size(&shard.name),
            Some(shard.log.len() as u64),
            "{}",
            shard.name
        );
    }
    // Replay consistency proofs across the whole growth range directly.
    for shard in set.shards() {
        let n = shard.log.len() as u64;
        for old in 0..=n {
            let proof = shard.log.consistency_proof(old).expect("old <= n");
            assert!(verify_consistency(
                old,
                n,
                &shard.log.root_at(old).expect("size valid"),
                &shard.log.root(),
                &proof
            ));
        }
    }
}

#[test]
fn equivocating_sth_and_misissued_cert_are_flagged() {
    let mut rng = SplitMix64::new(0xF1A6);
    let window = Validity {
        not_before: SimTime::EPOCH,
        not_after: SimTime(u64::MAX),
    };
    let mut set = LogSet::new();
    set.push_shard(LogShard::new(
        "rogue",
        "Rogue Op",
        ShardPolicy::open(window),
        KeyPair::generate(&mut rng),
    ));
    let mut root = CertificateAuthority::new_root(
        DistinguishedName::new("Root", "Sim", "US"),
        &mut rng,
        SimTime(0),
    );
    let honest_key = KeyPair::generate(&mut rng);
    let honest = root.issue_leaf(
        &["bank.example".to_string()],
        "Bank",
        &honest_key,
        Validity::starting(SimTime(0), YEAR),
    );
    // A second certificate for the same hostname under a different key:
    // exactly what CT monitoring exists to surface.
    let rogue_key = KeyPair::generate(&mut rng);
    let rogue = root.issue_leaf(
        &["bank.example".to_string()],
        "Bank",
        &rogue_key,
        Validity::starting(SimTime(0), YEAR),
    );
    assert_eq!(set.submit(&honest), 1);
    assert_eq!(set.submit(&rogue), 1);

    let mut monitor = Monitor::new();
    monitor.observe_set(&set, SimTime(10));
    assert!(
        monitor.is_clean(),
        "honest observation: {:?}",
        monitor.findings()
    );

    // Equivocation: the log signs a head whose root does not match its
    // entries. The signature is genuine, so the monitor must catch it via
    // inclusion (no checkpoint) or consistency (with checkpoint) instead.
    let shard = &set.shards()[0];
    let forged = shard
        .log
        .sign_head(shard.log.len() as u64, SimTime(11), [9u8; 32]);
    let new = monitor.observe_sth("rogue", shard.log.public_key(), &shard.log, forged);
    assert!(new > 0, "forged root must be flagged");
    // The rejected head must not advance the checkpoint.
    assert_eq!(monitor.checkpoint_size("rogue"), Some(2));

    // Mis-issuance: ground truth says bank.example is keyed by honest_key.
    let mut truth = BTreeMap::new();
    truth.insert("bank.example".to_string(), honest.spki_sha256());
    let flagged = monitor.audit_misissuance(&set, &truth);
    assert_eq!(
        flagged,
        1,
        "exactly the rogue cert: {:?}",
        monitor.findings()
    );
    let rendered = monitor
        .findings()
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(rendered.contains("bank.example"), "{rendered}");
}

#[test]
fn resolver_matches_direct_lookup_with_one_query_per_unique_pin() {
    let w = world();
    // Every SPKI digest served on the network, resolvable or not.
    let mut digests: BTreeSet<Vec<u8>> = BTreeSet::new();
    for server in w.network.servers() {
        for cert in server.chain.certs() {
            digests.insert(cert.spki_sha256().to_vec());
        }
    }
    let resolver = PinResolver::new(&w.ctlog);
    for _ in 0..3 {
        for digest in &digests {
            let direct: Vec<Vec<u8>> = w
                .ctlog
                .search_by_spki_digest(PinAlgorithm::Sha256, digest)
                .iter()
                .map(|c| c.to_der())
                .collect();
            let cached: Vec<Vec<u8>> = resolver
                .resolve(PinAlgorithm::Sha256, digest)
                .iter()
                .map(|c| c.to_der())
                .collect();
            assert_eq!(direct, cached);
        }
    }
    let stats = resolver.stats();
    assert_eq!(stats.misses as usize, digests.len(), "one lookup per pin");
    assert_eq!(stats.hits as usize, 2 * digests.len());
    assert!(stats.resolved_unique > 0);
    assert!(
        (stats.resolved_unique as usize) < digests.len(),
        "partial coverage"
    );
}

#[test]
fn world_coverage_is_partial_and_spread_across_shards() {
    let w = world();
    // Each shard of the 2-operator × 2-epoch topology accepted something.
    assert_eq!(w.ctlog.shards().len(), 4);
    for shard in w.ctlog.shards() {
        assert!(!shard.log.is_empty(), "{} empty", shard.name);
    }
    // Temporal sharding routed by not_before: legacy shards hold the CA
    // material (issued at the epoch), current shards hold recent leaves.
    for shard in w.ctlog.shards() {
        for e in shard.log.iter() {
            assert!(
                shard.policy.window.contains(e.cert.tbs.validity.not_before),
                "{} holds out-of-window entry",
                shard.name
            );
        }
    }
    // Union coverage over served public chains is strictly partial.
    let (mut logged, mut unlogged) = (0usize, 0usize);
    for server in w.network.servers() {
        for cert in server.chain.certs() {
            if w.ctlog
                .search_by_fingerprint(&cert.fingerprint_sha256())
                .is_some()
            {
                logged += 1;
            } else {
                unlogged += 1;
            }
        }
    }
    assert!(logged > 0, "no cert logged at all");
    assert!(unlogged > 0, "coverage must stay incomplete (paper §4.1.3)");
    // Determinism: regenerating the world reproduces the exact ecosystem.
    let w2 = world();
    assert_eq!(w.ctlog.len(), w2.ctlog.len());
    for (a, b) in w.ctlog.shards().iter().zip(w2.ctlog.shards()) {
        assert_eq!(a.log.log_id(), b.log.log_id());
        assert_eq!(a.log.root(), b.log.root());
    }
}
