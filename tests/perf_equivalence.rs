//! The caching layer must be invisible in every measured byte.
//!
//! The derived-value caches (certificate artifacts, chain-validation memo,
//! PKI classification memo, batched Merkle proofs) exist purely for speed;
//! these tests pin down the contract that turning them off — or changing
//! the thread count, which changes cache interleaving — never changes a
//! study's results.
//!
//! The kill-switch is process-global, so the tests here serialize around a
//! single mutex instead of toggling it concurrently with each other.

use app_tls_pinning::core::{Study, StudyConfig};
use app_tls_pinning::pki::cache::caching_disabled_scope;
use std::sync::{Mutex, MutexGuard};

/// Serializes every test that flips the global caching switch.
fn switch_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn render(config: StudyConfig) -> String {
    app_tls_pinning::pki::validate::clear_validation_cache();
    app_tls_pinning::analysis::certs::clear_classification_cache();
    Study::new(config).run().render_all()
}

#[test]
fn cached_and_uncached_studies_render_identically() {
    let _serial = switch_lock();
    let cached = render(StudyConfig::tiny(0xAB01));
    let uncached = {
        let _off = caching_disabled_scope();
        render(StudyConfig::tiny(0xAB01))
    };
    assert_eq!(
        cached, uncached,
        "derived-value caching changed a report byte"
    );
}

#[test]
fn thread_count_does_not_change_results() {
    let _serial = switch_lock();
    let mut single = StudyConfig::tiny(0xAB02);
    single.threads = 1;
    let mut pooled = StudyConfig::tiny(0xAB02);
    pooled.threads = 4;
    assert_eq!(
        render(single),
        render(pooled),
        "cache interleaving across worker threads changed a report byte"
    );
}

#[test]
fn warm_global_caches_do_not_leak_into_results() {
    let _serial = switch_lock();
    // First run warms the process-global memos; the second run of the same
    // configuration must render identically with everything already hot
    // (no cache clearing in between).
    let first = Study::new(StudyConfig::tiny(0xAB03)).run().render_all();
    let second = Study::new(StudyConfig::tiny(0xAB03)).run().render_all();
    assert_eq!(first, second);
}
