//! Property-style tests on the core data structures and invariants.
//!
//! Each property is exercised over a deterministic sweep of seeded random
//! inputs (SplitMix64-driven, no external property-testing crate) so the
//! suite runs fully offline and reproducibly.

use app_tls_pinning::analysis::pii::Contingency;
use app_tls_pinning::analysis::statics::scanner;
use app_tls_pinning::core::journal::{AppOutcome, JournalEntry, MeasuredApp, ResultJournal};
use app_tls_pinning::crypto::{b64decode, b64encode, hex_decode, hex_encode, sha256, SplitMix64};
use app_tls_pinning::netsim::faults::{InputLayer, MalformedKind, MeasurementError};
use app_tls_pinning::pki::encode::{pem_decode_all, pem_encode};
use app_tls_pinning::pki::name::match_hostname;
use app_tls_pinning::pki::pin::SpkiPin;

const CASES: u64 = 200;

fn bytes(rng: &mut SplitMix64, max_len: usize) -> Vec<u8> {
    let len = rng.next_below(max_len as u64 + 1) as usize;
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn ascii(rng: &mut SplitMix64, alphabet: &[u8], max_len: usize) -> String {
    let len = rng.next_below(max_len as u64 + 1) as usize;
    (0..len)
        .map(|_| alphabet[rng.next_below(alphabet.len() as u64) as usize] as char)
        .collect()
}

fn label(rng: &mut SplitMix64, min: usize, max: usize) -> String {
    let len = min as u64 + rng.next_below((max - min) as u64 + 1);
    (0..len)
        .map(|_| (b'a' + rng.next_below(26) as u8) as char)
        .collect()
}

#[test]
fn base64_roundtrip() {
    let mut rng = SplitMix64::new(0xb64);
    for _ in 0..CASES {
        let data = bytes(&mut rng, 512);
        let encoded = b64encode(&data);
        assert_eq!(b64decode(&encoded).unwrap(), data);
    }
}

#[test]
fn hex_roundtrip() {
    let mut rng = SplitMix64::new(0x4e);
    for _ in 0..CASES {
        let data = bytes(&mut rng, 512);
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
    }
}

#[test]
fn sha256_is_deterministic_and_sensitive() {
    let mut rng = SplitMix64::new(0x5a256);
    for _ in 0..CASES {
        let a = bytes(&mut rng, 256);
        let b = bytes(&mut rng, 256);
        assert_eq!(sha256(&a), sha256(&a));
        if a != b {
            assert_ne!(sha256(&a), sha256(&b));
        }
    }
}

#[test]
fn pem_roundtrip_any_der() {
    let mut rng = SplitMix64::new(0x9e3);
    for _ in 0..CASES {
        let mut der = bytes(&mut rng, 2047);
        der.push(rng.next_u64() as u8); // 1..=2048 bytes, never empty
        let pem = pem_encode(&der);
        let decoded = pem_decode_all(&pem).unwrap();
        assert_eq!(decoded, vec![der]);
    }
}

#[test]
fn pem_roundtrip_survives_surrounding_junk() {
    let mut rng = SplitMix64::new(0x9e4);
    const JUNK: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 \n";
    for _ in 0..CASES {
        let mut der = bytes(&mut rng, 255);
        der.push(rng.next_u64() as u8);
        let prefix = ascii(&mut rng, JUNK, 64);
        let suffix = ascii(&mut rng, JUNK, 64);
        let text = format!("{prefix}{}{suffix}", pem_encode(&der));
        assert_eq!(pem_decode_all(&text).unwrap(), vec![der]);
    }
}

#[test]
fn scanner_finds_planted_pin_in_noise() {
    let mut rng = SplitMix64::new(0x5ca);
    // Printable ASCII noise, with pin-prefix collisions stripped below.
    let printable: Vec<u8> = (0x20u8..0x7f).collect();
    for _ in 0..CASES {
        let mut digest = [0u8; 32];
        rng.fill_bytes(&mut digest);
        let pin = format!("sha256/{}", b64encode(&digest));
        let noise_prefix = ascii(&mut rng, &printable, 120)
            .replace("sha256/", "")
            .replace("sha1/", "");
        let suffix = ascii(&mut rng, &printable, 120);
        let sep = " ";
        let hay = format!("{noise_prefix}{sep}{pin}{sep}{suffix}");
        let found = scanner::scan_pins(&hay);
        assert!(
            found.iter().any(|m| m.raw == pin),
            "pin {pin} not found in {hay:?} (found {found:?})"
        );
    }
}

#[test]
fn pin_string_roundtrip() {
    let mut rng = SplitMix64::new(0x919);
    for _ in 0..CASES {
        let mut digest = [0u8; 32];
        rng.fill_bytes(&mut digest);
        let pin = SpkiPin {
            alg: app_tls_pinning::pki::pin::PinAlgorithm::Sha256,
            digest: digest.to_vec(),
        };
        let s = pin.to_pin_string();
        assert_eq!(SpkiPin::parse(&s).unwrap(), pin);
    }
}

#[test]
fn hostname_matching_is_case_insensitive() {
    let mut rng = SplitMix64::new(0x405);
    for _ in 0..CASES {
        let host = format!(
            "{}.{}.{}",
            label(&mut rng, 1, 8),
            label(&mut rng, 1, 8),
            label(&mut rng, 2, 4)
        );
        assert!(match_hostname(&host, &host.to_uppercase()));
        assert!(match_hostname(&host.to_uppercase(), &host));
    }
}

#[test]
fn wildcard_matches_exactly_one_label() {
    let mut rng = SplitMix64::new(0x406);
    for _ in 0..CASES {
        let one = label(&mut rng, 1, 10);
        let apex = format!("{}.{}", label(&mut rng, 1, 8), label(&mut rng, 2, 4));
        let pattern = format!("*.{apex}");
        let one_label = format!("{one}.{apex}");
        let two_labels = format!("a.{one}.{apex}");
        assert!(match_hostname(&pattern, &one_label));
        assert!(!match_hostname(&pattern, &apex));
        assert!(!match_hostname(&pattern, &two_labels));
    }
}

fn random_entry(rng: &mut SplitMix64) -> JournalEntry {
    let strings = |rng: &mut SplitMix64, max: u64| -> Vec<String> {
        (0..rng.next_below(max))
            .map(|_| format!("{}.{}.com", label(rng, 1, 12), label(rng, 1, 8)))
            .collect()
    };
    let outcome = if rng.chance(0.25) {
        let errors = MeasurementError::ALL;
        AppOutcome::Failed(errors[rng.next_below(errors.len() as u64) as usize])
    } else if rng.chance(0.2) {
        // The structured malformed-input error: any (layer, reason) pair
        // must round-trip through the journal's sentinel encoding.
        AppOutcome::Failed(MeasurementError::MalformedInput {
            layer: InputLayer::ALL[rng.next_below(InputLayer::ALL.len() as u64) as usize],
            reason: MalformedKind::ALL[rng.next_below(MalformedKind::ALL.len() as u64) as usize],
        })
    } else {
        AppOutcome::Measured(Box::new(MeasuredApp {
            pinned_destinations: strings(rng, 4),
            used_destinations: strings(rng, 8),
            weak_overall: rng.chance(0.5),
            weak_pinned: rng.chance(0.5),
            pinned_bodies: strings(rng, 3),
            unpinned_bodies: strings(rng, 5),
            circumvention: rng.chance(0.5).then(|| (strings(rng, 3), strings(rng, 2))),
            n_handshakes_baseline: rng.next_below(50),
            settled_rerun: rng.chance(0.3),
            breaker_trips: rng.next_below(5) as u32,
        }))
    };
    JournalEntry {
        app_index: rng.next_below(10_000),
        outcome,
    }
}

fn random_journal(rng: &mut SplitMix64) -> (ResultJournal, Vec<JournalEntry>) {
    let mut fingerprint = [0u8; 32];
    rng.fill_bytes(&mut fingerprint);
    let mut journal = ResultJournal::create(fingerprint);
    let entries: Vec<JournalEntry> = (0..1 + rng.next_below(8))
        .map(|_| random_entry(rng))
        .collect();
    for e in &entries {
        journal.append(e);
    }
    (journal, entries)
}

#[test]
fn journal_roundtrip_any_entries() {
    let mut rng = SplitMix64::new(0x10a1);
    for _ in 0..CASES {
        let (journal, entries) = random_journal(&mut rng);
        let replay = ResultJournal::open(journal.as_bytes()).unwrap();
        assert_eq!(replay.entries, entries);
        assert!(!replay.truncated());
    }
}

#[test]
fn journal_reader_survives_random_truncation() {
    // Cutting a journal anywhere must never panic, and every entry the
    // reader does yield must be an exact prefix of what was written —
    // a torn record is quarantined, never half-parsed.
    let mut rng = SplitMix64::new(0x10a2);
    for _ in 0..CASES {
        let (journal, entries) = random_journal(&mut rng);
        let bytes = journal.as_bytes();
        let cut = rng.next_below(bytes.len() as u64 + 1) as usize;
        match ResultJournal::open(&bytes[..cut]) {
            Ok(replay) => {
                assert!(replay.entries.len() <= entries.len());
                assert_eq!(replay.entries, entries[..replay.entries.len()]);
                // Accounting must balance: recovered + quarantined = input.
                assert!(replay.stats.quarantined_bytes as usize <= cut);
            }
            // Only a header cut may error.
            Err(_) => assert!(cut < 40, "record damage must not error (cut {cut})"),
        }
    }
}

#[test]
fn journal_reader_survives_single_bit_flips() {
    // Flipping any single bit must never panic and never yield a record
    // that differs from what was written: the checksum catches payload
    // damage, framing checks catch length damage, and header damage is a
    // clean error. The scrubber resyncs past the damaged record, so the
    // recovered entries are an ordered *subsequence* of what was
    // written — never an invented or corrupted record.
    let mut rng = SplitMix64::new(0x10a3);
    for _ in 0..CASES {
        let (journal, entries) = random_journal(&mut rng);
        let mut bytes = journal.into_bytes();
        let bit = rng.next_below(bytes.len() as u64 * 8);
        bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        match ResultJournal::open(&bytes) {
            Ok(replay) => {
                assert!(replay.entries.len() <= entries.len());
                let mut written = entries.iter();
                for got in &replay.entries {
                    assert!(
                        written.any(|want| want == got),
                        "bit flip at {bit} yielded a record that was never written"
                    );
                }
            }
            Err(_) => assert!(bit < 8 * 8, "only magic damage may error (bit {bit})"),
        }
    }
}

#[test]
fn chi_square_is_nonnegative_and_symmetric() {
    let mut rng = SplitMix64::new(0xc41);
    for _ in 0..CASES {
        let (a, b, c, d) = (
            rng.next_below(500),
            rng.next_below(500),
            rng.next_below(500),
            rng.next_below(500),
        );
        let t = Contingency {
            pinned_with: a,
            pinned_without: b,
            unpinned_with: c,
            unpinned_without: d,
        };
        let chi = t.chi_square();
        assert!(chi >= 0.0);
        assert!(chi.is_finite());
        // Swapping the two groups leaves the statistic unchanged.
        let swapped = Contingency {
            pinned_with: c,
            pinned_without: d,
            unpinned_with: a,
            unpinned_without: b,
        };
        assert!((chi - swapped.chi_square()).abs() < 1e-9);
    }
}
