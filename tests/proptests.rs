//! Property-based tests on the core data structures and invariants.

use app_tls_pinning::analysis::pii::Contingency;
use app_tls_pinning::analysis::statics::scanner;
use app_tls_pinning::crypto::{b64decode, b64encode, hex_decode, hex_encode, sha256};
use app_tls_pinning::pki::encode::{pem_decode_all, pem_encode};
use app_tls_pinning::pki::name::match_hostname;
use app_tls_pinning::pki::pin::SpkiPin;
use proptest::prelude::*;

proptest! {
    #[test]
    fn base64_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let encoded = b64encode(&data);
        prop_assert_eq!(b64decode(&encoded).unwrap(), data);
    }

    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
    }

    #[test]
    fn sha256_is_deterministic_and_sensitive(
        a in proptest::collection::vec(any::<u8>(), 0..256),
        b in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        prop_assert_eq!(sha256(&a), sha256(&a));
        if a != b {
            prop_assert_ne!(sha256(&a), sha256(&b));
        }
    }

    #[test]
    fn pem_roundtrip_any_der(der in proptest::collection::vec(any::<u8>(), 1..2048)) {
        let pem = pem_encode(&der);
        let decoded = pem_decode_all(&pem).unwrap();
        prop_assert_eq!(decoded, vec![der]);
    }

    #[test]
    fn pem_roundtrip_survives_surrounding_junk(
        der in proptest::collection::vec(any::<u8>(), 1..256),
        prefix in "[a-z0-9 \n]{0,64}",
        suffix in "[a-z0-9 \n]{0,64}",
    ) {
        let text = format!("{prefix}{}{suffix}", pem_encode(&der));
        prop_assert_eq!(pem_decode_all(&text).unwrap(), vec![der]);
    }

    #[test]
    fn scanner_finds_planted_pin_in_noise(
        digest in proptest::array::uniform32(any::<u8>()),
        prefix in "[ -~]{0,120}",
        suffix in "[ -~]{0,120}",
    ) {
        // Cut the haystack so the prefix cannot accidentally extend the
        // base64 run and so no second pin pre-exists.
        let pin = format!("sha256/{}", b64encode(&digest));
        let noise_prefix: String = prefix.replace("sha256/", "").replace("sha1/", "");
        let sep = " ";
        let hay = format!("{noise_prefix}{sep}{pin}{sep}{suffix}");
        let found = scanner::scan_pins(&hay);
        prop_assert!(
            found.iter().any(|m| m.raw == pin),
            "pin {pin} not found in {hay:?} (found {found:?})"
        );
    }

    #[test]
    fn pin_string_roundtrip(digest in proptest::array::uniform32(any::<u8>())) {
        let pin = SpkiPin {
            alg: app_tls_pinning::pki::pin::PinAlgorithm::Sha256,
            digest: digest.to_vec(),
        };
        let s = pin.to_pin_string();
        prop_assert_eq!(SpkiPin::parse(&s).unwrap(), pin);
    }

    #[test]
    fn hostname_matching_is_case_insensitive(
        host in "[a-z]{1,8}\\.[a-z]{1,8}\\.[a-z]{2,4}",
    ) {
        prop_assert!(match_hostname(&host, &host.to_uppercase()));
        prop_assert!(match_hostname(&host.to_uppercase(), &host));
    }

    #[test]
    fn wildcard_matches_exactly_one_label(
        label in "[a-z]{1,10}",
        apex in "[a-z]{1,8}\\.[a-z]{2,4}",
    ) {
        let pattern = format!("*.{apex}");
        let one_label = format!("{label}.{apex}");
        let two_labels = format!("a.{label}.{apex}");
        let matches_one = match_hostname(&pattern, &one_label);
        let matches_apex = match_hostname(&pattern, &apex);
        let matches_two = match_hostname(&pattern, &two_labels);
        prop_assert!(matches_one);
        prop_assert!(!matches_apex);
        prop_assert!(!matches_two);
    }

    #[test]
    fn chi_square_is_nonnegative_and_symmetric(
        a in 0u64..500, b in 0u64..500, c in 0u64..500, d in 0u64..500,
    ) {
        let t = Contingency {
            pinned_with: a,
            pinned_without: b,
            unpinned_with: c,
            unpinned_without: d,
        };
        let chi = t.chi_square();
        prop_assert!(chi >= 0.0);
        prop_assert!(chi.is_finite());
        // Swapping the two groups leaves the statistic unchanged.
        let swapped = Contingency {
            pinned_with: c,
            pinned_without: d,
            unpinned_with: a,
            unpinned_without: b,
        };
        prop_assert!((chi - swapped.chi_square()).abs() < 1e-9);
    }
}
