//! Property-style tests on the core data structures and invariants.
//!
//! Each property is exercised over a deterministic sweep of seeded random
//! inputs (SplitMix64-driven, no external property-testing crate) so the
//! suite runs fully offline and reproducibly.

use app_tls_pinning::analysis::pii::Contingency;
use app_tls_pinning::analysis::statics::scanner;
use app_tls_pinning::crypto::{b64decode, b64encode, hex_decode, hex_encode, sha256, SplitMix64};
use app_tls_pinning::pki::encode::{pem_decode_all, pem_encode};
use app_tls_pinning::pki::name::match_hostname;
use app_tls_pinning::pki::pin::SpkiPin;

const CASES: u64 = 200;

fn bytes(rng: &mut SplitMix64, max_len: usize) -> Vec<u8> {
    let len = rng.next_below(max_len as u64 + 1) as usize;
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn ascii(rng: &mut SplitMix64, alphabet: &[u8], max_len: usize) -> String {
    let len = rng.next_below(max_len as u64 + 1) as usize;
    (0..len)
        .map(|_| alphabet[rng.next_below(alphabet.len() as u64) as usize] as char)
        .collect()
}

fn label(rng: &mut SplitMix64, min: usize, max: usize) -> String {
    let len = min as u64 + rng.next_below((max - min) as u64 + 1);
    (0..len)
        .map(|_| (b'a' + rng.next_below(26) as u8) as char)
        .collect()
}

#[test]
fn base64_roundtrip() {
    let mut rng = SplitMix64::new(0xb64);
    for _ in 0..CASES {
        let data = bytes(&mut rng, 512);
        let encoded = b64encode(&data);
        assert_eq!(b64decode(&encoded).unwrap(), data);
    }
}

#[test]
fn hex_roundtrip() {
    let mut rng = SplitMix64::new(0x4e);
    for _ in 0..CASES {
        let data = bytes(&mut rng, 512);
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
    }
}

#[test]
fn sha256_is_deterministic_and_sensitive() {
    let mut rng = SplitMix64::new(0x5a256);
    for _ in 0..CASES {
        let a = bytes(&mut rng, 256);
        let b = bytes(&mut rng, 256);
        assert_eq!(sha256(&a), sha256(&a));
        if a != b {
            assert_ne!(sha256(&a), sha256(&b));
        }
    }
}

#[test]
fn pem_roundtrip_any_der() {
    let mut rng = SplitMix64::new(0x9e3);
    for _ in 0..CASES {
        let mut der = bytes(&mut rng, 2047);
        der.push(rng.next_u64() as u8); // 1..=2048 bytes, never empty
        let pem = pem_encode(&der);
        let decoded = pem_decode_all(&pem).unwrap();
        assert_eq!(decoded, vec![der]);
    }
}

#[test]
fn pem_roundtrip_survives_surrounding_junk() {
    let mut rng = SplitMix64::new(0x9e4);
    const JUNK: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 \n";
    for _ in 0..CASES {
        let mut der = bytes(&mut rng, 255);
        der.push(rng.next_u64() as u8);
        let prefix = ascii(&mut rng, JUNK, 64);
        let suffix = ascii(&mut rng, JUNK, 64);
        let text = format!("{prefix}{}{suffix}", pem_encode(&der));
        assert_eq!(pem_decode_all(&text).unwrap(), vec![der]);
    }
}

#[test]
fn scanner_finds_planted_pin_in_noise() {
    let mut rng = SplitMix64::new(0x5ca);
    // Printable ASCII noise, with pin-prefix collisions stripped below.
    let printable: Vec<u8> = (0x20u8..0x7f).collect();
    for _ in 0..CASES {
        let mut digest = [0u8; 32];
        rng.fill_bytes(&mut digest);
        let pin = format!("sha256/{}", b64encode(&digest));
        let noise_prefix = ascii(&mut rng, &printable, 120)
            .replace("sha256/", "")
            .replace("sha1/", "");
        let suffix = ascii(&mut rng, &printable, 120);
        let sep = " ";
        let hay = format!("{noise_prefix}{sep}{pin}{sep}{suffix}");
        let found = scanner::scan_pins(&hay);
        assert!(
            found.iter().any(|m| m.raw == pin),
            "pin {pin} not found in {hay:?} (found {found:?})"
        );
    }
}

#[test]
fn pin_string_roundtrip() {
    let mut rng = SplitMix64::new(0x919);
    for _ in 0..CASES {
        let mut digest = [0u8; 32];
        rng.fill_bytes(&mut digest);
        let pin = SpkiPin {
            alg: app_tls_pinning::pki::pin::PinAlgorithm::Sha256,
            digest: digest.to_vec(),
        };
        let s = pin.to_pin_string();
        assert_eq!(SpkiPin::parse(&s).unwrap(), pin);
    }
}

#[test]
fn hostname_matching_is_case_insensitive() {
    let mut rng = SplitMix64::new(0x405);
    for _ in 0..CASES {
        let host = format!(
            "{}.{}.{}",
            label(&mut rng, 1, 8),
            label(&mut rng, 1, 8),
            label(&mut rng, 2, 4)
        );
        assert!(match_hostname(&host, &host.to_uppercase()));
        assert!(match_hostname(&host.to_uppercase(), &host));
    }
}

#[test]
fn wildcard_matches_exactly_one_label() {
    let mut rng = SplitMix64::new(0x406);
    for _ in 0..CASES {
        let one = label(&mut rng, 1, 10);
        let apex = format!("{}.{}", label(&mut rng, 1, 8), label(&mut rng, 2, 4));
        let pattern = format!("*.{apex}");
        let one_label = format!("{one}.{apex}");
        let two_labels = format!("a.{one}.{apex}");
        assert!(match_hostname(&pattern, &one_label));
        assert!(!match_hostname(&pattern, &apex));
        assert!(!match_hostname(&pattern, &two_labels));
    }
}

#[test]
fn chi_square_is_nonnegative_and_symmetric() {
    let mut rng = SplitMix64::new(0xc41);
    for _ in 0..CASES {
        let (a, b, c, d) = (
            rng.next_below(500),
            rng.next_below(500),
            rng.next_below(500),
            rng.next_below(500),
        );
        let t = Contingency {
            pinned_with: a,
            pinned_without: b,
            unpinned_with: c,
            unpinned_without: d,
        };
        let chi = t.chi_square();
        assert!(chi >= 0.0);
        assert!(chi.is_finite());
        // Swapping the two groups leaves the statistic unchanged.
        let swapped = Contingency {
            pinned_with: c,
            pinned_without: d,
            unpinned_with: a,
            unpinned_without: b,
        };
        assert!((chi - swapped.chi_square()).abs() < 1e-9);
    }
}
