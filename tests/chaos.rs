//! Chaos suite: the measurement pipeline under seeded fault injection.
//!
//! Three guarantees, checked end-to-end rather than per-crate:
//!
//! 1. **Determinism** — the same (seed, fault config) produces the same
//!    fault schedule, the same retries, and bit-identical study results.
//! 2. **No panics** — `Study::run` and `try_analyze_app` survive every
//!    fault schedule in a seed sweep; degraded apps become
//!    [`pinning_core::AppRecord::failed`] records, never crashes.
//! 3. **Soundness** — injected faults look exactly like pin failures on
//!    the wire, so the detector must exclude faulted destinations as
//!    `Unobserved` (§5.6) instead of mis-classifying them. Zero pinning
//!    false positives, under every schedule.

use pinning_analysis::dynamics::pipeline::{try_analyze_app, DynamicEnv, RetryPolicy};
use pinning_core::{Study, StudyConfig};
use pinning_netsim::faults::{FaultConfig, FaultPlan};
use pinning_store::config::WorldConfig;
use pinning_store::world::World;
use std::collections::BTreeSet;

fn env_with_faults(world: &World, config: FaultConfig) -> DynamicEnv<'_> {
    DynamicEnv::new(
        &world.network,
        world.universe.aosp_oem.clone(),
        world.universe.ios.clone(),
        world.now,
        world.config.seed,
    )
    .with_faults(config)
    .with_retry(RetryPolicy::default())
}

/// Per-app false-positive check against generator ground truth.
fn assert_no_false_positives(world: &World, app_index: usize, pinned: &[&str]) {
    let app = &world.apps[app_index];
    let truth: BTreeSet<&str> = app.runtime_pinned_domains().into_iter().collect();
    for d in pinned {
        assert!(
            truth.contains(d),
            "{}: fault schedule fabricated pinning for {d}",
            app.id
        );
    }
}

#[test]
fn fault_plans_are_pure_functions_of_seed_and_config() {
    let a = FaultPlan::new(0xC0FFEE, FaultConfig::chaos());
    let b = FaultPlan::new(0xC0FFEE, FaultConfig::chaos());
    let c = FaultPlan::new(0xC0FFED, FaultConfig::chaos());
    let mut diverged = false;
    for run in ["app1/baseline", "app1/mitm", "app2/baseline#r1"] {
        for domain in ["api.example.com", "cdn.example.com", "t.example.net"] {
            for attempt in 0..3 {
                let fa = a.connection_fault(run, domain, attempt);
                assert_eq!(fa, b.connection_fault(run, domain, attempt));
                diverged |= fa != c.connection_fault(run, domain, attempt);
            }
        }
        assert_eq!(a.run_abort(run, true, 30), b.run_abort(run, true, 30));
    }
    assert!(diverged, "different seeds must yield different schedules");
}

#[test]
fn same_seed_same_faulted_study() {
    let run = || {
        let mut cfg = StudyConfig::tiny(0xD1CE);
        cfg.faults = FaultConfig::chaos();
        cfg.threads = 1;
        Study::new(cfg).run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.records.len(), b.records.len());
    for (idx, ra) in &a.records {
        let rb = &b.records[idx];
        assert_eq!(ra.pinned_destinations, rb.pinned_destinations, "app {idx}");
        assert_eq!(ra.used_destinations, rb.used_destinations, "app {idx}");
        assert_eq!(ra.error, rb.error, "app {idx}");
    }
    assert_eq!(a.degraded_summary(), b.degraded_summary());
}

#[test]
fn sequential_and_parallel_faulted_studies_agree() {
    let run = |threads: usize| {
        let mut cfg = StudyConfig::tiny(0xBEEF);
        cfg.faults = FaultConfig::chaos();
        cfg.threads = threads;
        Study::new(cfg).run()
    };
    let (a, b) = (run(1), run(4));
    for (idx, ra) in &a.records {
        let rb = &b.records[idx];
        assert_eq!(ra.pinned_destinations, rb.pinned_destinations, "app {idx}");
        assert_eq!(ra.error, rb.error, "app {idx}");
    }
}

#[test]
fn no_panic_sweep_across_fault_schedules() {
    // Two dozen schedules: varying world seed varies both the app world
    // and the derived fault schedule; three fault regimes per seed.
    let regimes = [
        FaultConfig::uniform(0.3),
        FaultConfig::uniform(0.9),
        FaultConfig::chaos(),
    ];
    for seed in 0..8u64 {
        let world = World::generate(WorldConfig::tiny(0x5EED + seed));
        for config in regimes {
            let env = env_with_faults(&world, config);
            for (app_index, app) in world.apps.iter().enumerate().take(12) {
                match try_analyze_app(&env, app) {
                    Ok(dynamic) => {
                        assert_no_false_positives(
                            &world,
                            app_index,
                            &dynamic.pinned_destinations(),
                        );
                    }
                    Err(_) => {
                        // Degradation is an acceptable outcome; panicking
                        // or mis-classifying is not.
                    }
                }
            }
        }
    }
}

#[test]
fn faulted_studies_never_fabricate_pinning() {
    for seed in [0xFA_u64, 0xFB, 0xFC] {
        let mut cfg = StudyConfig::tiny(seed);
        cfg.faults = FaultConfig::chaos();
        let r = Study::new(cfg).run();
        let mut false_positives = 0;
        for record in r.records.values() {
            let app = &r.world.apps[record.app_index];
            let truth: BTreeSet<&str> = app.runtime_pinned_domains().into_iter().collect();
            false_positives += record
                .pinned_destinations
                .iter()
                .filter(|d| !truth.contains(d.as_str()))
                .count();
        }
        assert_eq!(false_positives, 0, "seed {seed:#x} fabricated pinning");
    }
}

#[test]
fn high_fault_rates_produce_a_nonempty_degraded_summary() {
    let mut cfg = StudyConfig::tiny(0xDE6);
    cfg.faults = FaultConfig::uniform(0.95);
    cfg.retry = RetryPolicy {
        max_attempts: 2,
        backoff_secs: 30,
        deadline_secs: 900,
    };
    let r = Study::new(cfg).run();
    let summary = r.degraded_summary();
    assert!(
        !summary.is_empty(),
        "near-certain faults with a tight retry budget must degrade some apps"
    );
    assert_eq!(summary.values().sum::<usize>(), r.degraded_apps().len());
    for (rec, _) in r.degraded_apps() {
        assert!(rec.degraded());
        assert!(rec.pinned_destinations.is_empty());
        assert_eq!(rec.n_handshakes_baseline, 0);
    }
    // The report renders the degradation instead of hiding it.
    let rendered = r.render_degraded();
    assert!(
        rendered.contains("unobserved"),
        "summary table must admit the loss:\n{rendered}"
    );
}

#[test]
fn quiet_fault_config_reproduces_the_clean_study() {
    let clean = Study::new(StudyConfig::tiny(0xCAFE)).run();
    let mut cfg = StudyConfig::tiny(0xCAFE);
    cfg.faults = FaultConfig::none();
    cfg.retry = RetryPolicy {
        max_attempts: 5,
        backoff_secs: 10,
        deadline_secs: 3600,
    };
    let quiet = Study::new(cfg).run();
    assert!(quiet.degraded_apps().is_empty());
    for (idx, rc) in &clean.records {
        let rq = &quiet.records[idx];
        assert_eq!(rc.pinned_destinations, rq.pinned_destinations, "app {idx}");
        assert_eq!(
            rc.n_handshakes_baseline, rq.n_handshakes_baseline,
            "app {idx}"
        );
    }
}
