//! Chaos suite: the measurement pipeline under seeded fault injection.
//!
//! Three guarantees, checked end-to-end rather than per-crate:
//!
//! 1. **Determinism** — the same (seed, fault config) produces the same
//!    fault schedule, the same retries, and bit-identical study results.
//! 2. **No panics** — `Study::run` and `try_analyze_app` survive every
//!    fault schedule in a seed sweep; degraded apps become
//!    [`pinning_core::AppRecord::failed`] records, never crashes.
//! 3. **Soundness** — injected faults look exactly like pin failures on
//!    the wire, so the detector must exclude faulted destinations as
//!    `Unobserved` (§5.6) instead of mis-classifying them. Zero pinning
//!    false positives, under every schedule.

use pinning_analysis::dynamics::pipeline::{try_analyze_app, DynamicEnv, RetryPolicy};
use pinning_core::{Study, StudyConfig, StudyOutcome};
use pinning_netsim::faults::{FaultConfig, FaultPlan, MeasurementError};
use pinning_store::config::WorldConfig;
use pinning_store::world::World;
use std::collections::BTreeSet;

fn env_with_faults(world: &World, config: FaultConfig) -> DynamicEnv<'_> {
    DynamicEnv::new(
        &world.network,
        world.universe.aosp_oem.clone(),
        world.universe.ios.clone(),
        world.now,
        world.config.seed,
    )
    .with_faults(config)
    .with_retry(RetryPolicy::default())
}

/// Per-app false-positive check against generator ground truth.
fn assert_no_false_positives(world: &World, app_index: usize, pinned: &[&str]) {
    let app = &world.apps[app_index];
    let truth: BTreeSet<&str> = app.runtime_pinned_domains().into_iter().collect();
    for d in pinned {
        assert!(
            truth.contains(d),
            "{}: fault schedule fabricated pinning for {d}",
            app.id
        );
    }
}

#[test]
fn fault_plans_are_pure_functions_of_seed_and_config() {
    let a = FaultPlan::new(0xC0FFEE, FaultConfig::chaos());
    let b = FaultPlan::new(0xC0FFEE, FaultConfig::chaos());
    let c = FaultPlan::new(0xC0FFED, FaultConfig::chaos());
    let mut diverged = false;
    for run in ["app1/baseline", "app1/mitm", "app2/baseline#r1"] {
        for domain in ["api.example.com", "cdn.example.com", "t.example.net"] {
            for attempt in 0..3 {
                let fa = a.connection_fault(run, domain, attempt);
                assert_eq!(fa, b.connection_fault(run, domain, attempt));
                diverged |= fa != c.connection_fault(run, domain, attempt);
            }
        }
        assert_eq!(a.run_abort(run, true, 30), b.run_abort(run, true, 30));
    }
    assert!(diverged, "different seeds must yield different schedules");
}

#[test]
fn same_seed_same_faulted_study() {
    let run = || {
        let mut cfg = StudyConfig::tiny(0xD1CE);
        cfg.faults = FaultConfig::chaos();
        cfg.threads = 1;
        Study::new(cfg).run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.records.len(), b.records.len());
    for (idx, ra) in &a.records {
        let rb = &b.records[idx];
        assert_eq!(ra.pinned_destinations, rb.pinned_destinations, "app {idx}");
        assert_eq!(ra.used_destinations, rb.used_destinations, "app {idx}");
        assert_eq!(ra.error, rb.error, "app {idx}");
    }
    assert_eq!(a.degraded_summary(), b.degraded_summary());
}

#[test]
fn sequential_and_parallel_faulted_studies_agree() {
    let run = |threads: usize| {
        let mut cfg = StudyConfig::tiny(0xBEEF);
        cfg.faults = FaultConfig::chaos();
        cfg.threads = threads;
        Study::new(cfg).run()
    };
    let (a, b) = (run(1), run(4));
    for (idx, ra) in &a.records {
        let rb = &b.records[idx];
        assert_eq!(ra.pinned_destinations, rb.pinned_destinations, "app {idx}");
        assert_eq!(ra.error, rb.error, "app {idx}");
    }
}

#[test]
fn no_panic_sweep_across_fault_schedules() {
    // Two dozen schedules: varying world seed varies both the app world
    // and the derived fault schedule; three fault regimes per seed.
    let regimes = [
        FaultConfig::uniform(0.3),
        FaultConfig::uniform(0.9),
        FaultConfig::chaos(),
    ];
    for seed in 0..8u64 {
        let world = World::generate(WorldConfig::tiny(0x5EED + seed));
        for config in regimes {
            let env = env_with_faults(&world, config);
            for (app_index, app) in world.apps.iter().enumerate().take(12) {
                match try_analyze_app(&env, app) {
                    Ok(dynamic) => {
                        assert_no_false_positives(
                            &world,
                            app_index,
                            &dynamic.pinned_destinations(),
                        );
                    }
                    Err(_) => {
                        // Degradation is an acceptable outcome; panicking
                        // or mis-classifying is not.
                    }
                }
            }
        }
    }
}

#[test]
fn faulted_studies_never_fabricate_pinning() {
    for seed in [0xFA_u64, 0xFB, 0xFC] {
        let mut cfg = StudyConfig::tiny(seed);
        cfg.faults = FaultConfig::chaos();
        let r = Study::new(cfg).run();
        let mut false_positives = 0;
        for record in r.records.values() {
            let app = &r.world.apps[record.app_index];
            let truth: BTreeSet<&str> = app.runtime_pinned_domains().into_iter().collect();
            false_positives += record
                .pinned_destinations
                .iter()
                .filter(|d| !truth.contains(d.as_str()))
                .count();
        }
        assert_eq!(false_positives, 0, "seed {seed:#x} fabricated pinning");
    }
}

#[test]
fn high_fault_rates_produce_a_nonempty_degraded_summary() {
    let mut cfg = StudyConfig::tiny(0xDE6);
    cfg.faults = FaultConfig::uniform(0.95);
    cfg.retry = RetryPolicy {
        max_attempts: 2,
        backoff_secs: 30,
        jitter_pct: 50,
        deadline_secs: 900,
    };
    let r = Study::new(cfg).run();
    let summary = r.degraded_summary();
    assert!(
        !summary.is_empty(),
        "near-certain faults with a tight retry budget must degrade some apps"
    );
    assert_eq!(summary.values().sum::<usize>(), r.degraded_apps().len());
    for (rec, _) in r.degraded_apps() {
        assert!(rec.degraded());
        assert!(rec.pinned_destinations.is_empty());
        assert_eq!(rec.n_handshakes_baseline, 0);
    }
    // The report renders the degradation instead of hiding it.
    let rendered = r.render_degraded();
    assert!(
        rendered.contains("unobserved"),
        "summary table must admit the loss:\n{rendered}"
    );
}

#[test]
fn killed_faulted_study_resumes_byte_identically() {
    // A faulted study, killed after 6 committed apps, then resumed from
    // its journal, must reproduce the uninterrupted same-seed run exactly
    // — proven on the serialized report (every table and figure) and on
    // the degraded-app table, the two places a divergence could hide.
    let config = || {
        let mut cfg = StudyConfig::tiny(0x0D1E);
        cfg.faults = FaultConfig::chaos();
        cfg
    };

    let mut killed_cfg = config();
    killed_cfg.supervisor.kill_after_apps = Some(6);
    let journal = killed_cfg.journal();
    let StudyOutcome::Interrupted {
        journal,
        apps_committed,
    } = Study::new(killed_cfg).run_with_journal(journal).unwrap()
    else {
        panic!("kill_after_apps must interrupt the run")
    };
    assert_eq!(apps_committed, 6);

    // Simulate process death + restart: only the journal bytes survive.
    let disk_image = journal.into_bytes();
    let resumed = match Study::new(config()).resume(&disk_image).unwrap() {
        StudyOutcome::Completed(r) => *r,
        StudyOutcome::Interrupted { .. } => panic!("resume without a kill must complete"),
    };
    let uninterrupted = Study::new(config()).run();

    assert_eq!(resumed.health.resumed_apps, 6);
    assert!(resumed.health.fresh_apps > 0, "tiny world has > 6 apps");
    assert_eq!(
        resumed.render_all(),
        uninterrupted.render_all(),
        "resumed report must be byte-identical"
    );
    assert_eq!(
        resumed.render_degraded(),
        uninterrupted.render_degraded(),
        "degraded-app table must be byte-identical"
    );
}

#[test]
fn injected_worker_panic_degrades_one_app_not_the_study() {
    let seed = 0xBAD_u64;
    let clean = Study::new(StudyConfig::tiny(seed)).run();
    let victim = *clean.records.keys().nth(2).expect("tiny world has apps");

    let mut cfg = StudyConfig::tiny(seed);
    cfg.supervisor.inject_panic_app = Some(victim);
    let r = Study::new(cfg).run();

    assert_eq!(r.records.len(), clean.records.len(), "study completed");
    assert_eq!(
        r.records[&victim].error,
        Some(MeasurementError::WorkerPanic)
    );
    assert_eq!(r.health.panics_recovered, 1);
    // Every other app is untouched by the neighbour's crash.
    for (idx, rec) in &r.records {
        if *idx == victim {
            continue;
        }
        assert_eq!(
            rec.pinned_destinations, clean.records[idx].pinned_destinations,
            "app {idx} must not be affected"
        );
        assert_eq!(rec.error, None, "app {idx} must not degrade");
    }
    // The run-health table admits the recovery.
    let health = r.render_run_health();
    assert!(
        health.contains("worker panics recovered"),
        "run-health table missing:\n{health}"
    );
}

#[test]
fn breaker_trips_are_deterministic_and_surfaced() {
    let run = || {
        let mut cfg = StudyConfig::tiny(0x8EA6);
        cfg.faults = FaultConfig::uniform(0.9);
        cfg.retry = RetryPolicy {
            max_attempts: 4,
            backoff_secs: 10,
            jitter_pct: 50,
            deadline_secs: 3600,
        };
        Study::new(cfg).run()
    };
    let (a, b) = (run(), run());
    assert_eq!(
        a.health.breaker_trips, b.health.breaker_trips,
        "breaker state must be a pure function of the fault schedule"
    );
    for (idx, ra) in &a.records {
        assert_eq!(ra.breaker_trips, b.records[idx].breaker_trips, "app {idx}");
    }
    assert!(
        a.health.breaker_trips > 0,
        "90% fault rates across 4 attempts must trip at least one breaker"
    );
}

#[test]
fn quiet_fault_config_reproduces_the_clean_study() {
    let clean = Study::new(StudyConfig::tiny(0xCAFE)).run();
    let mut cfg = StudyConfig::tiny(0xCAFE);
    cfg.faults = FaultConfig::none();
    cfg.retry = RetryPolicy {
        max_attempts: 5,
        backoff_secs: 10,
        jitter_pct: 25,
        deadline_secs: 3600,
    };
    let quiet = Study::new(cfg).run();
    assert!(quiet.degraded_apps().is_empty());
    for (idx, rc) in &clean.records {
        let rq = &quiet.records[idx];
        assert_eq!(rc.pinned_destinations, rq.pinned_destinations, "app {idx}");
        assert_eq!(
            rc.n_handshakes_baseline, rq.n_handshakes_baseline,
            "app {idx}"
        );
    }
}

#[test]
fn adversarial_cohort_survives_kill_and_resume_byte_identically() {
    // The hostile-input cohort under the crash-safety machinery: a study
    // measuring adversarial apps (pathological chains, garbage assets) is
    // killed mid-run, resumed from its journal, and must render every
    // report byte — including the malformed-input resilience table —
    // identically to the uninterrupted run. This proves the structured
    // MalformedInput errors round-trip through the journal's sentinel
    // encoding under real interruption, not just in unit tests.
    let config = || {
        let mut cfg = StudyConfig::tiny(0xADE5);
        cfg.world.adversarial_apps = 8;
        cfg
    };

    let mut killed_cfg = config();
    killed_cfg.supervisor.kill_after_apps = Some(5);
    let journal = killed_cfg.journal();
    let StudyOutcome::Interrupted { journal, .. } =
        Study::new(killed_cfg).run_with_journal(journal).unwrap()
    else {
        panic!("kill_after_apps must interrupt the run")
    };

    let disk_image = journal.into_bytes();
    let resumed = match Study::new(config()).resume(&disk_image).unwrap() {
        StudyOutcome::Completed(r) => *r,
        StudyOutcome::Interrupted { .. } => panic!("resume without a kill must complete"),
    };
    let uninterrupted = Study::new(config()).run();

    // Every hostile app surfaced as a structured MalformedInput failure in
    // both runs, and zero worker panics were recorded.
    for r in [&resumed, &uninterrupted] {
        assert_eq!(r.world.hostile_apps.len(), 8);
        for &i in &r.world.hostile_apps {
            assert!(
                matches!(
                    r.records[&i].error,
                    Some(MeasurementError::MalformedInput { .. })
                ),
                "hostile app {i}: {:?}",
                r.records[&i].error
            );
        }
        assert_eq!(r.health.panics_recovered, 0);
    }
    assert_eq!(
        resumed.render_all(),
        uninterrupted.render_all(),
        "resumed report (incl. resilience table) must be byte-identical"
    );
    assert_eq!(
        resumed.render_resilience(),
        uninterrupted.render_resilience()
    );
}

// ---------------------------------------------------------------------
// Overload: the pin-validation service under a hostile burst.

use pinning_bench::load::{generate_load, LoadConfig};
use pinning_pki::validate::{
    validate_chain, validate_chain_cached, RevocationList, ValidationOptions,
};
use pinning_pki::Certificate;
use pinning_serve::{
    Backend, Outcome, Payload, PinService, RequestBody, ServeConfig, ServeSummary, TimeoutStage,
};

fn serve_backend(world: &World) -> Backend<'_> {
    Backend {
        roots: &world.universe.aosp_oem,
        logs: &world.ctlog,
        crl: RevocationList::empty(),
        options: ValidationOptions::default(),
        now: world.now,
    }
}

fn run_service(
    config: &ServeConfig,
    world: &World,
    requests: &[pinning_serve::ServeRequest],
) -> (Vec<pinning_serve::Response>, ServeSummary) {
    let mut service = PinService::new(config.clone(), serve_backend(world));
    let responses = service.run(requests);
    let summary = service.summary(&responses);
    (responses, summary)
}

/// Acceptance scenario for the serving front end: a seeded burst whose
/// arrival rate is several times the service rate, with ~25% hostile
/// bodies. The service must shed and degrade instead of queueing
/// unboundedly, stay panic-free, answer deterministically, and every
/// fresh chain verdict must be byte-identical to the offline library's.
#[test]
fn overload_sheds_and_degrades_instead_of_queueing_unboundedly() {
    let world = World::generate(WorldConfig::tiny(0xC8A0));
    let load = generate_load(&world, &LoadConfig::overload_smoke(0xC8A0));
    let config = ServeConfig {
        seed: 0xC8A0,
        workers: 2,
        queue_capacity: 16,
        brownout_high: 16,
        brownout_low: 4,
        backend_flakiness: 0.3,
        ..ServeConfig::default()
    };

    // Warm the process-global validation memo to a complete state over
    // this trace first: the serving path then cannot insert anything new,
    // so two same-seed runs must be byte-identical. (Concurrent tests in
    // this binary touch only their own worlds' chains — different memo
    // keys — and nothing in this binary clears the memo.)
    let crl = RevocationList::empty();
    let options = ValidationOptions::default();
    for req in &load.requests {
        let RequestBody::ValidateChain {
            hostname,
            chain_der,
        } = &req.body
        else {
            continue;
        };
        if let Ok(chain) = chain_der
            .iter()
            .map(|der| Certificate::from_der(der))
            .collect::<Result<Vec<Certificate>, _>>()
        {
            let _ = validate_chain_cached(
                &chain,
                &world.universe.aosp_oem,
                hostname,
                world.now,
                &crl,
                &options,
            );
        }
    }

    let (responses, summary) = run_service(&config, &world, &load.requests);
    let (responses_b, summary_b) = run_service(&config, &world, &load.requests);
    assert_eq!(responses, responses_b, "same-seed runs must be identical");
    assert_eq!(summary, summary_b);

    // Overload is absorbed by shedding and cache-only degradation; the
    // queue never exceeds its bound and nothing is dropped silently.
    assert!(summary.peak_queue_depth <= config.queue_capacity as u64);
    assert!(summary.shed_total() > 0, "burst must shed");
    assert!(summary.degraded > 0, "brownout must serve from cache");
    assert!(summary.brownout_entries > 0);
    assert!(
        summary.breaker_trips > 0,
        "flaky backend must trip breakers"
    );
    assert_eq!(summary.total, load.requests.len() as u64);
    assert_eq!(
        summary.served_ok
            + summary.degraded
            + summary.shed_total()
            + summary.timed_out
            + summary.backend_failed,
        summary.total,
        "every request reaches exactly one terminal state"
    );

    // Byte-identity: each fresh verdict equals the offline library's for
    // the same bytes.
    let by_id: std::collections::HashMap<u64, &pinning_serve::ServeRequest> =
        load.requests.iter().map(|r| (r.id, r)).collect();
    let mut checked = 0u32;
    for resp in &responses {
        let Outcome::Ok(Payload::ChainVerdict(served)) = &resp.outcome else {
            continue;
        };
        let RequestBody::ValidateChain {
            hostname,
            chain_der,
        } = &by_id[&resp.id].body
        else {
            panic!("chain verdict for a non-validate request {}", resp.id);
        };
        let chain: Vec<Certificate> = chain_der
            .iter()
            .map(|der| Certificate::from_der(der))
            .collect::<Result<_, _>>()
            .expect("verdicts are only served for decodable chains");
        let offline = validate_chain(
            &chain,
            &world.universe.aosp_oem,
            hostname,
            world.now,
            &crl,
            &options,
        );
        assert_eq!(&offline, served, "request {}", resp.id);
        checked += 1;
    }
    assert!(checked > 0, "overload run must still serve fresh verdicts");
}

/// Deadline propagation under overload: with caching disabled (every
/// validation pays the full verification walk) and a budget smaller than
/// that walk, deadlines expire mid-chain-verification. The result must be
/// a structured timeout at a named stage — never a partial verdict — and
/// the run must stay deterministic without any cache pre-warming.
#[test]
fn tight_deadlines_time_out_structurally_never_partially() {
    let world = World::generate(WorldConfig::tiny(0x7157));
    let load = generate_load(&world, &LoadConfig::overload_smoke(0x7157));
    let _off = pinning_pki::cache::caching_disabled_scope();
    let config = ServeConfig {
        seed: 0x7157,
        workers: 2,
        queue_capacity: 16,
        brownout_high: 16,
        brownout_low: 4,
        // Smaller than one full 3-certificate verification walk.
        deadline_validate: 100,
        ..ServeConfig::default()
    };

    let (responses, summary) = run_service(&config, &world, &load.requests);
    let (responses_b, summary_b) = run_service(&config, &world, &load.requests);
    assert_eq!(responses, responses_b, "uncached runs must be identical");
    assert_eq!(summary, summary_b);

    assert!(summary.timed_out > 0, "tight deadlines must expire");
    let mut mid_validation = 0u32;
    for resp in &responses {
        if let Outcome::TimedOut(stage) = &resp.outcome {
            // A timed-out response carries a stage and nothing else: no
            // payload field exists on the variant, so a partial verdict
            // is unrepresentable. Here every expiry is in the queue or
            // mid-validation (resolve/proof deadlines stay generous).
            assert!(
                matches!(stage, TimeoutStage::Queue | TimeoutStage::ChainValidation),
                "unexpected stage {stage:?} for request {}",
                resp.id
            );
            if matches!(stage, TimeoutStage::ChainValidation) {
                mid_validation += 1;
            }
        }
    }
    assert!(
        mid_validation > 0,
        "some deadlines must expire mid-chain-verification"
    );
}

// ---------------------------------------------------------------------
// Durable-media fault matrix: every journal writer (PINJRNL1, STRMJRN1,
// EpochState checkpoints) × every seeded MediaFaultPlan × kill point.
// The invariant under test is the PR's contract: a resume is either
// byte-identical to the uninterrupted run (when a clean prefix
// survives) or a structured error — never a panic, never silently
// wrong data.

use pinning_core::journal::{AppOutcome, JournalEntry, JournalError, MeasuredApp, ResultJournal};
use pinning_core::stream::{StreamConfig, StreamEngine, StreamOutcome};
use pinning_epoch::plan::EpochConfig;
use pinning_epoch::study::Evolution;
use pinning_resilience::{CheckpointStore, FaultMedia, Media, MediaError, MediaFaultPlan};

/// The fault regimes swept by every matrix test. `tight` is the ENOSPC
/// regime; the rest exercise torn tails, lying flushes, read-back rot,
/// and duplicated segments.
fn fault_plans(seed: u64) -> Vec<(&'static str, MediaFaultPlan)> {
    vec![
        ("none", MediaFaultPlan::none(seed)),
        ("torn", MediaFaultPlan::torn(seed)),
        ("lossy-flush", MediaFaultPlan::lossy_flush(seed)),
        ("bit-rot", MediaFaultPlan::bit_rot(seed)),
        ("duplicating", MediaFaultPlan::duplicating(seed)),
        ("tight", MediaFaultPlan::tight(seed, 700)),
        ("chaos", MediaFaultPlan::chaos(seed)),
    ]
}

/// Synthetic but representative per-app journal entries with unique app
/// indices, so any recovered record can be checked against exactly what
/// was written for that app.
fn matrix_entries() -> Vec<JournalEntry> {
    (0..10u64)
        .map(|i| JournalEntry {
            app_index: i,
            outcome: if i % 3 == 0 {
                AppOutcome::Failed(MeasurementError::WorkerPanic)
            } else {
                AppOutcome::Measured(Box::new(MeasuredApp {
                    pinned_destinations: vec![format!("api{i}.example.com")],
                    used_destinations: vec![
                        format!("api{i}.example.com"),
                        "cdn.example.net".into(),
                    ],
                    weak_overall: i % 2 == 0,
                    weak_pinned: false,
                    pinned_bodies: vec![],
                    unpinned_bodies: vec![format!("telemetry-{i}")],
                    circumvention: None,
                    n_handshakes_baseline: 3 + i,
                    settled_rerun: false,
                    breaker_trips: 0,
                }))
            },
        })
        .collect()
}

#[test]
fn pinjrnl_fault_matrix_is_byte_identical_or_structurally_degraded() {
    let fingerprint = [0x42; 32];
    let entries = matrix_entries();
    let (mut cells, mut exact, mut degraded, mut refused) = (0u32, 0u32, 0u32, 0u32);
    for (name, base) in fault_plans(0x10A7) {
        for kill_after in [0usize, 3, 7, 10] {
            cells += 1;
            // A distinct fault stream per matrix cell.
            let plan = MediaFaultPlan {
                seed: base.seed ^ ((kill_after as u64 + 1) << 32),
                ..base
            };
            let mut journal = match ResultJournal::create_on(FaultMedia::new(plan), fingerprint) {
                Ok(j) => j,
                Err(MediaError::NoSpace) => {
                    assert_eq!(name, "tight", "{name}: only ENOSPC may refuse the header");
                    continue;
                }
            };
            let mut committed = 0;
            for entry in entries.iter().take(kill_after) {
                match journal.try_append(entry) {
                    Ok(()) => committed += 1,
                    Err(MediaError::NoSpace) => {
                        assert_eq!(name, "tight", "{name}: only ENOSPC may refuse an append");
                        break;
                    }
                }
            }
            let mut media = journal.into_media();
            media.crash();
            let image = media.read_back();

            match ResultJournal::open(&image) {
                Ok(replay) => {
                    // Soundness: every recovered record is exactly what
                    // was written for that app index — rot is caught by
                    // the checksum and quarantined, never half-parsed.
                    assert!(replay.entries.len() <= committed, "{name}/kill{kill_after}");
                    for e in &replay.entries {
                        assert_eq!(
                            e, &entries[e.app_index as usize],
                            "{name}/kill{kill_after}: recovered record differs from what was written"
                        );
                    }
                    // Plans that cannot lose flushed data or rot reads
                    // must recover the committed prefix byte-exactly.
                    if plan.lost_flush == 0.0 && plan.read_rot == 0.0 {
                        assert_eq!(
                            replay.entries,
                            entries[..committed],
                            "{name}/kill{kill_after}: clean prefix must survive intact"
                        );
                        assert_eq!(replay.fingerprint, fingerprint);
                    }
                    if replay.entries == entries[..committed] {
                        exact += 1;
                    } else {
                        degraded += 1;
                    }
                }
                // Only read-back rot can damage the 40-byte header, and
                // only a lying flush can lose it outright; every other
                // plan leaves the flushed header intact.
                Err(e) => {
                    assert!(
                        plan.read_rot > 0.0 || plan.lost_flush > 0.0,
                        "{name}/kill{kill_after}: unexpected structured error {e:?}"
                    );
                    refused += 1;
                }
            }
        }
    }
    println!(
        "PINJRNL1 matrix: {cells} cells — {exact} exact committed prefix, \
         {degraded} degraded-but-sound, {refused} structured errors"
    );
}

#[test]
fn stream_fault_matrix_resumes_byte_identically_or_errors_structurally() {
    let make = |kill: Option<usize>| {
        let mut cfg = StreamConfig::new(WorldConfig::tiny(0x57A6), 4);
        cfg.kill_after_shards = kill;
        cfg
    };
    let reference = match StreamEngine::new(make(None)).run() {
        StreamOutcome::Completed(r) => r.render_report(),
        StreamOutcome::Interrupted { .. } => panic!("no kill configured"),
    };

    let (mut cells, mut identical, mut structured) = (0u32, 0u32, 0u32);
    for (name, base) in fault_plans(0x57A6) {
        for kill_after in [1usize, 3] {
            cells += 1;
            let plan = MediaFaultPlan {
                seed: base.seed ^ ((kill_after as u64 + 1) << 40),
                ..base
            };
            // Phase 1: run to the kill point over faulty media. A medium
            // that fills up is a structured Media error, never a panic.
            let engine = StreamEngine::new(make(Some(kill_after)));
            let mut media = match engine.run_on_media(FaultMedia::new(plan)) {
                Ok(StreamOutcome::Interrupted { journal, .. }) => journal.into_media(),
                Ok(StreamOutcome::Completed(_)) => panic!("{name}: kill hook must interrupt"),
                Err(JournalError::Media(MediaError::NoSpace)) => {
                    assert_eq!(name, "tight", "{name}: only ENOSPC may abort the run");
                    structured += 1;
                    continue;
                }
                Err(e) => panic!("{name}/kill{kill_after}: unexpected {e:?}"),
            };
            // Phase 2: the process dies; only what the medium made
            // durable survives. Resume over the same medium.
            media.crash();
            match StreamEngine::new(make(None)).resume_media(media) {
                Ok(StreamOutcome::Completed(results)) => {
                    assert_eq!(
                        results.render_report(),
                        reference,
                        "{name}/kill{kill_after}: resumed report must be byte-identical"
                    );
                    // Lost shards were re-measured, not invented: plans
                    // that lose or damage data must show up in the
                    // run-health accounting or in re-measured shards.
                    let health = results.render_health();
                    assert!(health.contains("quarantined"), "{health}");
                    identical += 1;
                }
                Ok(StreamOutcome::Interrupted { .. }) => {
                    panic!("{name}/kill{kill_after}: resume without a kill must complete")
                }
                // Header rot or a lying header-flush can make the
                // surviving image unopenable — a structured error,
                // never a panic or a wrong report.
                Err(e) => {
                    assert!(
                        plan.read_rot > 0.0
                            || plan.lost_flush > 0.0
                            || matches!(e, JournalError::Media(MediaError::NoSpace)),
                        "{name}/kill{kill_after}: unexpected {e:?}"
                    );
                    structured += 1;
                }
            }
        }
    }
    println!(
        "STRMJRN1 matrix: {cells} cells — {identical} byte-identical resumes, \
         {structured} structured errors"
    );
}

#[test]
fn epoch_checkpoint_fault_matrix_restores_a_completed_epoch_or_errors() {
    // Reference: snapshots of the cumulative report after each epoch.
    let config = || EpochConfig::tiny(0xE9);
    let mut reference = Evolution::new(config(), true);
    let mut snapshots = Vec::new();
    for _ in 0..2 {
        reference.next_epoch().unwrap();
        snapshots.push(reference.full_report());
    }

    let (mut plans, mut newest, mut fell_back, mut errored) = (0u32, 0u32, 0u32, 0u32);
    for (name, base) in fault_plans(0xE9) {
        plans += 1;
        let slot = |tag: u64| {
            FaultMedia::new(MediaFaultPlan {
                seed: base.seed ^ (tag << 48),
                ..base
            })
        };
        let mut store = CheckpointStore::new(slot(1), slot(2));
        let mut ev = Evolution::new(config(), true);
        let mut saved = 0;
        for _ in 0..2 {
            ev.next_epoch().unwrap();
            match ev.checkpoint(&mut store) {
                Ok(_) => saved += 1,
                Err(MediaError::NoSpace) => {
                    assert_eq!(name, "tight", "{name}: only ENOSPC may refuse a checkpoint")
                }
            }
        }
        store.crash();

        match Evolution::from_checkpoint(config(), &mut store) {
            Ok(restored) => {
                // Whatever generation survived, the restored engine is a
                // bit-exact past state — never a blend of two epochs.
                let done = restored.completed();
                assert!(
                    (1..=2).contains(&done),
                    "{name}: restored {done} completed epochs"
                );
                assert_eq!(
                    restored.full_report(),
                    snapshots[done - 1],
                    "{name}: restored report must match the epoch-{done} snapshot"
                );
                if done == 2 {
                    newest += 1;
                } else {
                    fell_back += 1;
                }
            }
            // Both slots unreadable (rot) or never written (ENOSPC):
            // a structured error names the degradation.
            Err(e) => {
                assert!(
                    base.read_rot > 0.0 || base.lost_flush > 0.0 || saved == 0,
                    "{name}: unexpected {e:?}"
                );
                errored += 1;
            }
        }

        // The no-fault column must always restore the newest generation.
        if name == "none" {
            let restored = Evolution::from_checkpoint(config(), &mut store)
                .expect("faultless checkpoints must load");
            assert_eq!(restored.completed(), 2);
            assert_eq!(restored.recovery().checkpoints_recovered, 0);
        }
    }
    println!(
        "EpochState matrix: {plans} plans — {newest} newest generation restored, \
         {fell_back} stale-but-consistent fallbacks, {errored} structured errors"
    );
}
