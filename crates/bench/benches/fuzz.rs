//! The decoder fuzz gate: every decoder in the workspace, mutation-fuzzed
//! under a fixed seed, must be panic-free and budget-respecting.
//!
//! ```sh
//! cargo bench -p pinning-bench --bench fuzz --offline            # full: 100k cases/target
//! cargo bench -p pinning-bench --bench fuzz --offline -- smoke   # CI gate: 3k cases/target
//! ```
//!
//! Exits non-zero (after printing a reproducible `target/seed/case`
//! triple) if any decoder panics. The seed is fixed so full runs are
//! byte-for-byte repeatable; override with `PINNING_FUZZ_SEED` to explore
//! a different corner of the input space.

use pinning_bench::fuzz::{all_targets, assert_budgets_respected, run_target, with_silent_panics};
use std::time::Instant;

/// Fixed default seed: the acceptance run is deterministic.
const DEFAULT_SEED: u64 = 0x5EED_F022_2026_0001;

fn main() {
    let smoke = std::env::args().any(|a| a == "smoke");
    let cases: u32 = if smoke { 3_000 } else { 100_000 };
    let seed = std::env::var("PINNING_FUZZ_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED);

    println!(
        "fuzz gate: {} cases/target, seed {seed:#x}{}",
        cases,
        if smoke { " (smoke)" } else { "" }
    );
    let contracts = assert_budgets_respected();
    println!("budget contracts: {contracts} decoders reject over-budget input up front");

    let targets = all_targets();
    let mut failed = false;
    for t in &targets {
        let start = Instant::now();
        match with_silent_panics(|| run_target(t, cases, seed)) {
            Ok(r) => println!(
                "fuzz {:<8} {:>7} cases   {:>7} rejected   {:>7} accepted   {:>8.2?}",
                r.name,
                r.cases,
                r.rejected,
                r.accepted,
                start.elapsed()
            ),
            Err(f) => {
                eprintln!("FAIL: {f}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "fuzz gate PASSED: {} targets × {cases} cases, zero panics",
        targets.len()
    );
}
