//! Streaming-engine bench and the `BENCH_stream.json` artifact.
//!
//! Four gates, then a throughput headline:
//!
//! - **Byte identity** — the streamed report renders the same bytes at
//!   every (shard size × thread count) schedule tried (the tentpole
//!   invariant of the streaming refactor);
//! - **Kill-and-resume identity** — a run killed mid-study and resumed
//!   under a *different* schedule renders the same bytes as an
//!   uninterrupted run;
//! - **Scrub overhead** — the self-healing journal reader costs ≤2%
//!   over the strict direct read path on a clean shard journal shaped
//!   like the headline run's;
//! - **Flat memory** — the big run's peak RSS (VmHWM) stays under a
//!   configured ceiling that does not scale with the app count.
//!
//! The headline run streams a large world (1,000,000 apps in full mode)
//! shard by shard and reports measured apps/sec. Results go to
//! `BENCH_stream.json` at the workspace root.
//!
//! ```sh
//! cargo bench -p pinning-bench --bench stream --offline            # full (1M apps)
//! cargo bench -p pinning-bench --bench stream --offline -- smoke   # CI gate
//! ```
//!
//! Env overrides: `PINNING_STREAM_APPS` (headline app count),
//! `PINNING_STREAM_CEILING_KIB` (RSS ceiling), `PINNING_BENCH_THREADS`.

use pinning_core::stream::{peak_rss_kib, StreamOutcome};
use pinning_core::{StreamConfig, StreamEngine, StreamResults};
use pinning_resilience::{append_frame, read_frames_strict, scrub_frames};
use pinning_store::config::WorldConfig;
use std::path::Path;
use std::time::Instant;

const SEED: u64 = 0x57E3;

/// A streamed world sized to roughly `apps` apps (one per platform per
/// product, cross products carrying both). Dataset expectations stay at
/// paper scale — prevalence percentages, not dataset sizes, are what the
/// streamed report cares about.
fn world_for(apps: usize) -> WorldConfig {
    let store_size = (apps / 2).max(30);
    WorldConfig {
        store_size,
        n_cross_products: (store_size / 12).max(8),
        ..WorldConfig::paper_scale(SEED)
    }
}

fn run(config: StreamConfig) -> StreamResults {
    match StreamEngine::new(config).run() {
        StreamOutcome::Completed(results) => *results,
        StreamOutcome::Interrupted { .. } => panic!("run interrupted without a kill hook"),
    }
}

fn config(world: &WorldConfig, shard_size: usize, threads: usize) -> StreamConfig {
    StreamConfig {
        world: world.clone(),
        shard_size,
        threads,
        max_inflight_shards: 2,
        kill_after_shards: None,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "smoke")
        || std::env::var("PINNING_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let mode = if smoke { "smoke" } else { "full" };
    println!("stream bench mode: {mode}");

    let mut failures: Vec<String> = Vec::new();

    // --- Gate 1: byte identity across schedules. ---
    let identity_world = world_for(if smoke { 160 } else { 800 });
    let baseline = run(config(&identity_world, 11, 1));
    let baseline_report = baseline.render_report();
    let schedules = [(11usize, 4usize), (37, 1), (37, 3)];
    let mut byte_identical = true;
    for (shard_size, threads) in schedules {
        let report = run(config(&identity_world, shard_size, threads)).render_report();
        if report != baseline_report {
            byte_identical = false;
            failures.push(format!(
                "report diverged at shard_size={shard_size} threads={threads}"
            ));
        }
    }
    println!(
        "identity: {} schedules byte-identical over {} apps",
        schedules.len() + 1,
        baseline.accum.apps
    );

    // --- Gate 2: kill-and-resume under a different schedule. ---
    let mut killed_cfg = config(&identity_world, 11, 2);
    killed_cfg.kill_after_shards = Some(3);
    let resume_identical = match StreamEngine::new(killed_cfg).run() {
        StreamOutcome::Interrupted { journal, .. } => {
            let resumed = StreamEngine::new(config(&identity_world, 11, 3))
                .resume(journal.as_bytes())
                .expect("journal resumes");
            match resumed {
                StreamOutcome::Completed(results) => results.render_report() == baseline_report,
                StreamOutcome::Interrupted { .. } => false,
            }
        }
        StreamOutcome::Completed(_) => false,
    };
    if !resume_identical {
        failures.push("kill-and-resume did not reproduce the uninterrupted report".into());
    }

    // --- Gate 3: scrubbing a clean journal costs ≤2% over the strict
    // direct read. The journal is shaped like the 1M-app headline run's
    // shard journal: one ~4 KiB accumulator frame per 500-app shard
    // (2,000 frames in full mode). Timings are interleaved and the
    // medians compared, so drift hits both paths alike. ---
    let scrub_frames_n: usize = if smoke { 256 } else { 2_000 };
    let mut clean_image = Vec::new();
    let mut payload = vec![0u8; 4096];
    for i in 0..scrub_frames_n {
        // Vary every payload so no two consecutive frames are identical
        // (consecutive duplicates are a fault signature the scrubber
        // repairs by dropping).
        payload[i % 4096] = payload[i % 4096].wrapping_add(1 + (i % 7) as u8);
        append_frame(&mut clean_image, &payload);
    }
    let timing_rounds = 15;
    let mut strict_times = Vec::with_capacity(timing_rounds);
    let mut scrub_times = Vec::with_capacity(timing_rounds);
    for _ in 0..timing_rounds {
        let t = Instant::now();
        let strict = read_frames_strict(&clean_image, 0);
        strict_times.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        let scrubbed = scrub_frames(&clean_image, 0);
        scrub_times.push(t.elapsed().as_secs_f64());
        assert_eq!(strict.frames.len(), scrub_frames_n);
        assert_eq!(
            strict.frames, scrubbed.frames,
            "readers must agree on clean input"
        );
        assert!(scrubbed.stats.is_clean(), "clean journal must scrub clean");
    }
    let median = |times: &mut Vec<f64>| -> f64 {
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        times[times.len() / 2]
    };
    let strict_median = median(&mut strict_times);
    let scrub_median = median(&mut scrub_times);
    let scrub_overhead_pct = (scrub_median / strict_median - 1.0) * 100.0;
    let scrub_within_bound = scrub_overhead_pct <= 2.0;
    if !scrub_within_bound {
        failures.push(format!(
            "scrub overhead {scrub_overhead_pct:.2}% exceeds the 2% bound \
             (strict {strict_median:.6}s, scrub {scrub_median:.6}s)"
        ));
    }
    println!(
        "scrub overhead: {scrub_overhead_pct:.2}% over {scrub_frames_n} clean frames \
         (strict {:.3}ms, scrub {:.3}ms)",
        strict_median * 1e3,
        scrub_median * 1e3
    );

    // --- Headline: the big streamed run under a flat-memory ceiling. ---
    let headline_apps: usize = std::env::var("PINNING_STREAM_APPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 2_000 } else { 1_000_000 });
    let ceiling_kib: u64 = std::env::var("PINNING_STREAM_CEILING_KIB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6 * 1024 * 1024); // 6 GiB — independent of app count
    let rss_before = peak_rss_kib();

    let big_world = world_for(headline_apps);
    let big = run(StreamConfig {
        world: big_world,
        shard_size: 500,
        threads: pinning_bench::bench_threads(),
        max_inflight_shards: 2,
        kill_after_shards: None,
    });
    let apps_per_sec = big.health.apps_per_sec.unwrap_or(0.0);
    let peak = big.health.peak_rss_kib;
    let rss_within_ceiling = peak.is_none_or(|k| k <= ceiling_kib);
    if !rss_within_ceiling {
        failures.push(format!(
            "peak RSS {} KiB exceeded the {} KiB flat-memory ceiling",
            peak.unwrap_or(0),
            ceiling_kib
        ));
    }
    println!(
        "headline: {} apps in {:.1}s ({:.0} apps/sec), peak RSS {} KiB (before: {} KiB)",
        big.health.apps_measured,
        big.health.elapsed_secs,
        apps_per_sec,
        peak.map_or_else(|| "?".into(), |k| k.to_string()),
        rss_before.map_or_else(|| "?".into(), |k| k.to_string()),
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"pinning-bench/stream\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"seed\": {seed},\n",
            "  \"byte_identical\": {identical},\n",
            "  \"resume_identical\": {resume},\n",
            "  \"scrub_overhead_pct\": {scrub:.2},\n",
            "  \"scrub_within_bound\": {scrub_ok},\n",
            "  \"apps\": {apps},\n",
            "  \"shards\": {shards},\n",
            "  \"threads\": {threads},\n",
            "  \"elapsed_secs\": {elapsed:.2},\n",
            "  \"apps_per_sec\": {aps:.1},\n",
            "  \"peak_rss_kib\": {peak},\n",
            "  \"ceiling_kib\": {ceiling},\n",
            "  \"rss_within_ceiling\": {within}\n",
            "}}\n"
        ),
        mode = mode,
        seed = SEED,
        identical = byte_identical,
        resume = resume_identical,
        scrub = scrub_overhead_pct,
        scrub_ok = scrub_within_bound,
        apps = big.health.apps_measured,
        shards = big.health.shards_total,
        threads = pinning_bench::bench_threads(),
        elapsed = big.health.elapsed_secs,
        aps = apps_per_sec,
        peak = peak.map_or_else(|| "null".into(), |k| k.to_string()),
        ceiling = ceiling_kib,
        within = rss_within_ceiling,
    );

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_stream.json");
    std::fs::write(&path, &json).expect("write BENCH_stream.json");
    println!("wrote {}", path.display());

    let back = std::fs::read_to_string(&path).expect("re-read BENCH_stream.json");
    if back.matches('{').count() != back.matches('}').count() {
        failures.push("BENCH_stream.json has unbalanced braces".into());
    }
    for key in [
        "\"schema\"",
        "\"byte_identical\"",
        "\"resume_identical\"",
        "\"scrub_overhead_pct\"",
        "\"scrub_within_bound\"",
        "\"apps_per_sec\"",
        "\"peak_rss_kib\"",
        "\"rss_within_ceiling\"",
    ] {
        if !back.contains(key) {
            failures.push(format!("BENCH_stream.json missing {key}"));
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("stream bench OK");
}
