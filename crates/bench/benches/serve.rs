//! Seeded overload bench for `pinning-serve` and the `BENCH_serve.json`
//! artifact.
//!
//! Drives [`pinning_serve::PinService`] with the deterministic Zipf /
//! bursty / hostile trace from [`pinning_bench::load`] and gates on the
//! robustness contract:
//!
//! - the queue never exceeds its configured bound (peak depth ≤ capacity);
//! - under burst the service sheds and degrades instead of queueing
//!   unboundedly (nonzero shed + degraded + breaker trips);
//! - two same-seed runs produce *identical* responses and counters;
//! - every fresh chain verdict is byte-identical to the offline library's
//!   (`pinning_pki::validate::validate_chain`) for the same request;
//! - the hostile fraction never panics the service (the run completing is
//!   the assertion — hostile bodies come back as structured answers).
//!
//! The run is measured once warm: a warm-up pass populates the
//! process-global validation memo and the CT authenticator caches, then
//! two measured passes (fresh service state each) must agree exactly.
//! Throughput/latency/shed/degraded/breaker/cache numbers go to
//! `BENCH_serve.json` at the workspace root, which is re-read and
//! structurally checked before the bench reports success.
//!
//! ```sh
//! cargo bench -p pinning-bench --bench serve --offline            # full
//! cargo bench -p pinning-bench --bench serve --offline -- smoke   # CI gate
//! ```

use pinning_bench::bench_world_config;
use pinning_bench::load::{generate_load, GeneratedLoad, LoadConfig};
use pinning_pki::validate::{
    validate_chain, validate_chain_cached, RevocationList, ValidationOptions,
};
use pinning_pki::Certificate;
use pinning_serve::{
    Backend, Outcome, Payload, PinService, RequestBody, Response, ServeConfig, ServeSummary,
};
use pinning_store::config::WorldConfig;
use pinning_store::world::World;
use std::collections::HashMap;
use std::path::Path;
use std::time::Instant;

const SEED: u64 = 0x5EE7;

fn serve_config() -> ServeConfig {
    ServeConfig {
        seed: SEED,
        workers: 2,
        queue_capacity: 32,
        // High watermark at the queue bound: depth is capped by brownout
        // engaging exactly when the queue is full.
        brownout_high: 32,
        brownout_low: 8,
        backend_flakiness: 0.3,
        ..ServeConfig::default()
    }
}

/// One full service pass over the trace, fresh service state, shared
/// (warm) world caches.
fn run_once(
    config: &ServeConfig,
    world: &World,
    requests: &[pinning_serve::ServeRequest],
) -> (Vec<Response>, ServeSummary, f64) {
    let backend = Backend {
        roots: &world.universe.aosp_oem,
        logs: &world.ctlog,
        crl: RevocationList::empty(),
        options: ValidationOptions::default(),
        now: world.now,
    };
    let mut service = PinService::new(config.clone(), backend);
    let t0 = Instant::now();
    let responses = service.run(requests);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let summary = service.summary(&responses);
    (responses, summary, wall_ms)
}

/// Checks every fresh chain verdict against the offline library: same
/// chain, same hostname, same options — the answers must be `==`.
/// Returns the number of verdicts checked.
fn verify_offline_identity(
    world: &World,
    requests: &[pinning_serve::ServeRequest],
    responses: &[Response],
) -> Result<u64, String> {
    let by_id: HashMap<u64, &pinning_serve::ServeRequest> =
        requests.iter().map(|r| (r.id, r)).collect();
    let crl = RevocationList::empty();
    let options = ValidationOptions::default();
    let mut checked = 0u64;
    for resp in responses {
        let Outcome::Ok(Payload::ChainVerdict(served)) = &resp.outcome else {
            continue;
        };
        let req = by_id[&resp.id];
        let RequestBody::ValidateChain {
            hostname,
            chain_der,
        } = &req.body
        else {
            return Err(format!(
                "response {} verdict for non-validate body",
                resp.id
            ));
        };
        let chain: Vec<Certificate> = chain_der
            .iter()
            .map(|der| Certificate::from_der(der))
            .collect::<Result<_, _>>()
            .map_err(|e| {
                format!(
                    "request {}: served a verdict for undecodable DER: {e:?}",
                    req.id
                )
            })?;
        let offline = validate_chain(
            &chain,
            &world.universe.aosp_oem,
            hostname,
            world.now,
            &crl,
            &options,
        );
        if &offline != served {
            return Err(format!(
                "request {}: served verdict {served:?} != offline {offline:?}",
                req.id
            ));
        }
        checked += 1;
    }
    Ok(checked)
}

/// Validates every decodable chain in the trace offline (unlimited
/// budget) so the global memo holds a verdict for each of them. Returns
/// the number of chains warmed (hostile undecodable bodies are skipped —
/// they never reach the memo on the serving path either).
fn warm_validation_memo(world: &World, requests: &[pinning_serve::ServeRequest]) -> u64 {
    let crl = RevocationList::empty();
    let options = ValidationOptions::default();
    let mut warmed = 0u64;
    for req in requests {
        let RequestBody::ValidateChain {
            hostname,
            chain_der,
        } = &req.body
        else {
            continue;
        };
        let Ok(chain) = chain_der
            .iter()
            .map(|der| Certificate::from_der(der))
            .collect::<Result<Vec<Certificate>, _>>()
        else {
            continue;
        };
        let _ = validate_chain_cached(
            &chain,
            &world.universe.aosp_oem,
            hostname,
            world.now,
            &crl,
            &options,
        );
        warmed += 1;
    }
    warmed
}

fn phase_json(load: &GeneratedLoad) -> String {
    load.per_phase
        .iter()
        .map(|(name, count)| format!("{{\"name\": \"{name}\", \"requests\": {count}}}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "smoke")
        || std::env::var("PINNING_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let mode = if smoke { "smoke" } else { "full" };
    println!("serve bench mode: {mode}");

    let world = if smoke {
        World::generate(WorldConfig::tiny(SEED))
    } else {
        World::generate(bench_world_config(SEED))
    };
    let load_cfg = if smoke {
        LoadConfig::overload_smoke(SEED)
    } else {
        LoadConfig::overload(SEED)
    };
    let load = generate_load(&world, &load_cfg);
    println!(
        "trace: {} requests ({:.1}% hostile) over {} phases",
        load.requests.len(),
        load.hostile_fraction() * 100.0,
        load.per_phase.len()
    );

    let config = serve_config();

    // Cold pass first: exercises the service with every cache empty (the
    // pass completing at all is the no-panic gate for the hostile
    // fraction) and gives the cold wall-clock number.
    let (_, cold_summary, cold_ms) = run_once(&config, &world, &load.requests);
    println!(
        "cold pass: {:.1} ms, {} served fresh / {} degraded / {} shed",
        cold_ms,
        cold_summary.served_ok,
        cold_summary.degraded,
        cold_summary.shed_total()
    );

    // Bring the process-global validation memo to a *complete* state
    // before the measured passes: validate every decodable chain in the
    // trace offline with an unlimited budget. A service pass over a
    // merely partially-warm memo can still insert entries (a chain that
    // times out cold completes once its neighbors are memoized), which
    // would make the next pass cheaper — warming to completion is what
    // makes two same-seed passes byte-identical. The per-service caches
    // (locator memo, CT authenticators, breakers) start empty on every
    // pass by construction.
    let warmed = warm_validation_memo(&world, &load.requests);
    println!("validation memo warmed over {warmed} decodable chains");

    let (responses_a, summary_a, wall_a) = run_once(&config, &world, &load.requests);
    let (responses_b, summary_b, wall_b) = run_once(&config, &world, &load.requests);

    let mut failures: Vec<String> = Vec::new();
    if responses_a != responses_b || summary_a != summary_b {
        failures.push("same-seed runs diverge (responses or counters differ)".into());
    }
    if summary_a.peak_queue_depth > config.queue_capacity as u64 {
        failures.push(format!(
            "queue exceeded its bound: peak {} > capacity {}",
            summary_a.peak_queue_depth, config.queue_capacity
        ));
    }
    if summary_a.shed_total() == 0 {
        failures.push("burst shed nothing — load-shedding never engaged".into());
    }
    if summary_a.degraded == 0 {
        failures.push("no degraded responses — brownout never served from cache".into());
    }
    if summary_a.brownout_entries == 0 {
        failures.push("brownout never entered under burst".into());
    }
    if summary_a.breaker_trips == 0 {
        failures.push("circuit breaker never tripped under backend faults".into());
    }
    if summary_a.total != load.requests.len() as u64 {
        failures.push(format!(
            "response conservation: {} responses for {} requests",
            summary_a.total,
            load.requests.len()
        ));
    }

    let verified = match verify_offline_identity(&world, &load.requests, &responses_a) {
        Ok(0) => {
            failures.push("no fresh chain verdicts to verify against the offline library".into());
            0
        }
        Ok(n) => n,
        Err(e) => {
            failures.push(format!("offline identity violated: {e}"));
            0
        }
    };

    let makespan = summary_a.last_finish.max(1);
    let served = summary_a.served_ok + summary_a.degraded;
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"pinning-bench/serve\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"seed\": {seed},\n",
            "  \"workers\": {workers},\n",
            "  \"queue_capacity\": {cap},\n",
            "  \"brownout_watermarks\": [{high}, {low}],\n",
            "  \"backend_flakiness\": {flake},\n",
            "  \"requests\": {requests},\n",
            "  \"hostile_fraction\": {hostile:.4},\n",
            "  \"phases\": [{phases}],\n",
            "  \"virtual_makespan_ticks\": {makespan},\n",
            "  \"served_per_ktick\": {thr:.3},\n",
            "  \"wall_ms\": [{wall_a:.1}, {wall_b:.1}],\n",
            "  \"offline_identical_verdicts\": {verified},\n",
            "  \"same_seed_runs_identical\": {identical},\n",
            "  \"summary\": {summary}\n",
            "}}\n"
        ),
        mode = mode,
        seed = SEED,
        workers = config.workers,
        cap = config.queue_capacity,
        high = config.brownout_high,
        low = config.brownout_low,
        flake = config.backend_flakiness,
        requests = load.requests.len(),
        hostile = load.hostile_fraction(),
        phases = phase_json(&load),
        makespan = makespan,
        thr = served as f64 * 1_000.0 / makespan as f64,
        wall_a = wall_a,
        wall_b = wall_b,
        verified = verified,
        identical = responses_a == responses_b && summary_a == summary_b,
        summary = summary_a.to_json(),
    );

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    println!("wrote {}", path.display());

    // Parseability gate: re-read the artifact and check its structure —
    // balanced braces/brackets and every required key present.
    let back = std::fs::read_to_string(&path).expect("re-read BENCH_serve.json");
    if back.matches('{').count() != back.matches('}').count()
        || back.matches('[').count() != back.matches(']').count()
    {
        failures.push("BENCH_serve.json has unbalanced braces/brackets".into());
    }
    for key in [
        "\"schema\"",
        "\"served_per_ktick\"",
        "\"latency_ticks\"",
        "\"p999\"",
        "\"shed_queue_full\"",
        "\"degraded\"",
        "\"breaker_trips\"",
        "\"cache_hit_rate\"",
    ] {
        if !back.contains(key) {
            failures.push(format!("BENCH_serve.json missing {key}"));
        }
    }

    println!(
        "serve bench: {} requests, p50/p99/p999 = {}/{}/{} ticks, \
         shed {} (queue {} / breaker {} / degraded-miss {}), degraded {}, \
         brownouts {}, breaker trips {}, cache hit rate {:.3}, \
         {} offline-identical verdicts",
        summary_a.total,
        summary_a.p50,
        summary_a.p99,
        summary_a.p999,
        summary_a.shed_total(),
        summary_a.shed_queue_full,
        summary_a.shed_breaker_open,
        summary_a.shed_degraded,
        summary_a.degraded,
        summary_a.brownout_entries,
        summary_a.breaker_trips,
        summary_a.cache_hit_rate(),
        verified,
    );

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("serve bench OK");
}
