//! Pipeline micro-benchmarks: the hot paths of the methodology.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pinning_analysis::dynamics::pipeline::{analyze_app, DynamicEnv};
use pinning_analysis::statics::{analyze_package, scanner};
use pinning_app::platform::Platform;
use pinning_bench::shared_world;
use pinning_netsim::device::RunConfig;
use pinning_pki::validate::{validate_chain, RevocationList, ValidationOptions};
use pinning_store::config::WorldConfig;
use pinning_store::world::World;
use pinning_tls::{establish, ClientConfig, ServerEndpoint, TlsLibrary};
use pinning_crypto::sha256;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let world = shared_world();

    // --- crypto floor ---
    let mut g = c.benchmark_group("crypto");
    let blob = vec![0xabu8; 64 * 1024];
    g.throughput(Throughput::Bytes(blob.len() as u64));
    g.bench_function("sha256_64k", |b| b.iter(|| black_box(sha256(&blob))));
    g.finish();

    // --- pin scanner throughput ---
    let mut g = c.benchmark_group("scanner");
    let hay = {
        let mut s = "x".repeat(200_000);
        s.push_str("sha256/");
        s.push_str(&"A".repeat(44));
        s
    };
    g.throughput(Throughput::Bytes(hay.len() as u64));
    g.bench_function("scan_pins_200k", |b| b.iter(|| black_box(scanner::scan_pins(&hay))));
    g.finish();

    // --- chain validation ---
    let server = world.network.resolve("api.twitter.com").expect("infra server");
    c.bench_function("validate_chain", |b| {
        b.iter(|| {
            black_box(validate_chain(
                server.chain.certs(),
                &world.universe.mozilla,
                "api.twitter.com",
                world.now,
                &RevocationList::empty(),
                &ValidationOptions::default(),
            ))
        })
    });

    // --- one TLS handshake ---
    c.bench_function("tls_handshake", |b| {
        let client = ClientConfig::modern(TlsLibrary::OkHttp);
        let endpoint = ServerEndpoint::modern(&server.chain);
        b.iter(|| {
            black_box(establish(
                &client,
                &endpoint,
                "api.twitter.com",
                world.now,
                &world.universe.aosp_oem,
                &world.network.crl,
            ))
        })
    });

    // --- static scan of one package ---
    let app = world
        .apps
        .iter()
        .find(|a| a.id.platform == Platform::Android && a.has_static_pin_artifacts())
        .expect("android app with artifacts");
    c.bench_function("static_scan_android_package", |b| {
        b.iter(|| black_box(analyze_package(&app.package, None)))
    });
    let ios_app = world
        .apps
        .iter()
        .find(|a| a.id.platform == Platform::Ios)
        .expect("ios app");
    c.bench_function("static_scan_ios_encrypted", |b| {
        b.iter(|| {
            black_box(analyze_package(
                &ios_app.package,
                Some(world.config.ios_encryption_seed),
            ))
        })
    });

    // --- one device run + full differential analysis ---
    let env = DynamicEnv::new(
        &world.network,
        world.universe.aosp_oem.clone(),
        world.universe.ios.clone(),
        world.now,
        3,
    );
    c.bench_function("device_run_baseline", |b| {
        let device = env.device(Platform::Android);
        b.iter(|| black_box(device.run_app(app, &RunConfig::baseline())))
    });
    c.bench_function("differential_analysis_one_app", |b| {
        b.iter(|| black_box(analyze_app(&env, app)))
    });

    // --- world generation (tiny) ---
    c.bench_function("world_generate_tiny", |b| {
        b.iter(|| black_box(World::generate(WorldConfig::tiny(9))))
    });
}

criterion_group! {
    name = pipeline;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(pipeline);
