//! Pipeline micro-benchmarks: the hot paths of the methodology.

use pinning_analysis::dynamics::pipeline::{analyze_app, DynamicEnv};
use pinning_analysis::statics::{analyze_package, scanner};
use pinning_app::platform::Platform;
use pinning_bench::{shared_world, time_bench};
use pinning_crypto::sha256;
use pinning_netsim::device::RunConfig;
use pinning_pki::validate::{validate_chain, RevocationList, ValidationOptions};
use pinning_store::config::WorldConfig;
use pinning_store::world::World;
use pinning_tls::{establish, ClientConfig, ServerEndpoint, TlsLibrary};
use std::hint::black_box;

fn main() {
    let world = shared_world();
    const ITERS: u32 = 10;

    // --- crypto floor ---
    let blob = vec![0xabu8; 64 * 1024];
    time_bench("crypto/sha256_64k", 100, || {
        black_box(sha256(&blob));
    });

    // --- pin scanner throughput ---
    let hay = {
        let mut s = "x".repeat(200_000);
        s.push_str("sha256/");
        s.push_str(&"A".repeat(44));
        s
    };
    time_bench("scanner/scan_pins_200k", 100, || {
        black_box(scanner::scan_pins(&hay));
    });

    // --- chain validation ---
    let server = world
        .network
        .resolve("api.twitter.com")
        .expect("infra server");
    time_bench("validate_chain", 100, || {
        black_box(validate_chain(
            server.chain.certs(),
            &world.universe.mozilla,
            "api.twitter.com",
            world.now,
            &RevocationList::empty(),
            &ValidationOptions::default(),
        ))
        .ok();
    });

    // --- one TLS handshake ---
    let client = ClientConfig::modern(TlsLibrary::OkHttp);
    let endpoint = ServerEndpoint::modern(&server.chain);
    time_bench("tls_handshake", 100, || {
        black_box(establish(
            &client,
            &endpoint,
            "api.twitter.com",
            world.now,
            &world.universe.aosp_oem,
            &world.network.crl,
        ));
    });

    // --- static scan of one package ---
    let app = world
        .apps
        .iter()
        .find(|a| a.id.platform == Platform::Android && a.has_static_pin_artifacts())
        .expect("android app with artifacts");
    time_bench("static_scan_android_package", ITERS, || {
        black_box(analyze_package(&app.package, None));
    });
    let ios_app = world
        .apps
        .iter()
        .find(|a| a.id.platform == Platform::Ios)
        .expect("ios app");
    time_bench("static_scan_ios_encrypted", ITERS, || {
        black_box(analyze_package(
            &ios_app.package,
            Some(world.config.ios_encryption_seed),
        ));
    });

    // --- one device run + full differential analysis ---
    let env = DynamicEnv::new(
        &world.network,
        world.universe.aosp_oem.clone(),
        world.universe.ios.clone(),
        world.now,
        3,
    );
    let device = env.device(Platform::Android);
    time_bench("device_run_baseline", ITERS, || {
        black_box(device.run_app(app, &RunConfig::baseline()));
    });
    time_bench("differential_analysis_one_app", ITERS, || {
        black_box(analyze_app(&env, app));
    });

    // --- world generation (tiny) ---
    time_bench("world_generate_tiny", ITERS, || {
        black_box(World::generate(WorldConfig::tiny(9)));
    });
}
