//! One bench per paper figure, plus the §4.2.1/§4.3/§5.3 numeric series.

use pinning_analysis::dynamics::calibration::sleep_time_sweep;
use pinning_analysis::dynamics::pipeline::DynamicEnv;
use pinning_app::platform::Platform;
use pinning_bench::{print_once, shared_results, shared_world, time_bench};
use std::hint::black_box;

fn main() {
    let results = shared_results();
    const ITERS: u32 = 10;

    print_once("Figure 2", || results.render_figure2());
    time_bench("figure2_consistency", ITERS, || {
        black_box(results.figure2_summary());
    });

    print_once("Figure 3", || results.render_figure3());
    time_bench("figure3_heatmap", ITERS, || {
        black_box(results.figure3_rows());
    });

    print_once("Figure 4", || results.render_figure4());
    time_bench("figure4_exclusive", ITERS, || {
        black_box(results.figure4_rows());
    });

    print_once("Figure 5 (Android)", || {
        results.render_figure5(Platform::Android)
    });
    print_once("Figure 5 (iOS)", || results.render_figure5(Platform::Ios));
    time_bench("figure5_destinations", ITERS, || {
        black_box(results.figure5_profiles(Platform::Android));
        black_box(results.figure5_profiles(Platform::Ios));
    });

    print_once("§4.3 circumvention", || {
        let (sa, aa) = results.circumvention_rate(Platform::Android);
        let (si, ai) = results.circumvention_rate(Platform::Ios);
        format!(
            "Android: {sa}/{aa} ({:.1}%)  iOS: {si}/{ai} ({:.1}%)",
            100.0 * sa as f64 / aa.max(1) as f64,
            100.0 * si as f64 / ai.max(1) as f64
        )
    });
    time_bench("circumvention_rates", ITERS, || {
        black_box(results.circumvention_rate(Platform::Android));
        black_box(results.circumvention_rate(Platform::Ios));
    });

    print_once("§5.3.2 pin level", || format!("{:?}", results.pin_level()));
    time_bench("pin_level", ITERS, || {
        black_box(results.pin_level());
    });

    print_once("§5.3.3 SPKI vs raw", || {
        format!("{:?}", results.spki_vs_raw())
    });
    time_bench("spki_vs_raw", ITERS, || {
        black_box(results.spki_vs_raw());
    });

    // §4.2.1 sleep-time calibration sweep on a tiny world (runs the device
    // pipeline inside the loop, so keep the sample small).
    let world = shared_world();
    let env = DynamicEnv::new(
        &world.network,
        world.universe.aosp_oem.clone(),
        world.universe.ios.clone(),
        world.now,
        7,
    );
    let apps: Vec<_> = world.apps.iter().take(10).collect();
    print_once("§4.2.1 sleep sweep", || {
        let sweep = sleep_time_sweep(&env, &apps, &[15, 30, 60]);
        format!(
            "windows {:?} → mean handshakes {:?} (paper: 20.78 / 23.5 / 24.62)",
            sweep.windows, sweep.mean_handshakes
        )
    });
    time_bench("calibration_sleep_time", ITERS, || {
        black_box(sleep_time_sweep(&env, &apps, &[15, 30, 60]));
    });
}
