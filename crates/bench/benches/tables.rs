//! One bench per paper table: regenerates the table from a completed
//! bench-scale study and times the computation.

use criterion::{criterion_group, criterion_main, Criterion};
use pinning_app::platform::Platform;
use pinning_bench::{print_once, shared_results};
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let results = shared_results();

    c.bench_function("table1_datasets", |b| {
        print_once("Table 1", || results.render_table1());
        b.iter(|| black_box(results.table1()));
    });

    c.bench_function("table2_prior_work", |b| {
        print_once("Table 2", || results.render_table2());
        b.iter(|| black_box(results.table2_rows()));
    });

    c.bench_function("table3_prevalence", |b| {
        print_once("Table 3", || results.render_table3());
        b.iter(|| black_box(results.table3()));
    });

    c.bench_function("table4_categories_android", |b| {
        print_once("Table 4", || results.render_table_categories(Platform::Android));
        b.iter(|| black_box(results.category_rows(Platform::Android)));
    });

    c.bench_function("table5_categories_ios", |b| {
        print_once("Table 5", || results.render_table_categories(Platform::Ios));
        b.iter(|| black_box(results.category_rows(Platform::Ios)));
    });

    c.bench_function("table6_pki", |b| {
        print_once("Table 6", || results.render_table6());
        b.iter(|| black_box(results.table6()));
    });

    c.bench_function("table7_frameworks", |b| {
        print_once("Table 7", || results.render_table7());
        b.iter(|| black_box(results.table7()));
    });

    c.bench_function("table8_ciphers", |b| {
        print_once("Table 8", || results.render_table8());
        b.iter(|| black_box(results.table8()));
    });

    c.bench_function("table9_pii", |b| {
        print_once("Table 9", || results.render_table9());
        b.iter(|| black_box(results.table9()));
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(20);
    targets = bench_tables
}
criterion_main!(tables);
