//! One bench per paper table: regenerates the table from a completed
//! bench-scale study and times the computation.

use pinning_app::platform::Platform;
use pinning_bench::{print_once, shared_results, time_bench};
use std::hint::black_box;

fn main() {
    let results = shared_results();
    const ITERS: u32 = 20;

    print_once("Table 1", || results.render_table1());
    time_bench("table1_datasets", ITERS, || {
        black_box(results.table1());
    });

    print_once("Table 2", || results.render_table2());
    time_bench("table2_prior_work", ITERS, || {
        black_box(results.table2_rows());
    });

    print_once("Table 3", || results.render_table3());
    time_bench("table3_prevalence", ITERS, || {
        black_box(results.table3());
    });

    print_once("Table 4", || {
        results.render_table_categories(Platform::Android)
    });
    time_bench("table4_categories_android", ITERS, || {
        black_box(results.category_rows(Platform::Android));
    });

    print_once("Table 5", || results.render_table_categories(Platform::Ios));
    time_bench("table5_categories_ios", ITERS, || {
        black_box(results.category_rows(Platform::Ios));
    });

    print_once("Table 6", || results.render_table6());
    time_bench("table6_pki", ITERS, || {
        black_box(results.table6());
    });

    print_once("Table 7", || results.render_table7());
    time_bench("table7_frameworks", ITERS, || {
        black_box(results.table7());
    });

    print_once("Table 8", || results.render_table8());
    time_bench("table8_ciphers", ITERS, || {
        black_box(results.table8());
    });

    print_once("Table 9", || results.render_table9());
    time_bench("table9_pii", ITERS, || {
        black_box(results.table9());
    });
}
