//! Longitudinal incremental-re-study bench and the `BENCH_epoch.json`
//! artifact.
//!
//! Runs the same seeded [`pinning_epoch::EpochPlan`] twice — once cold
//! (every epoch re-measures every app) and once incremental (clean apps
//! replay their journaled verdict) — and gates on the engine's contract:
//!
//! - after every epoch, the incremental run's full report is
//!   **byte-identical** to the cold run's;
//! - the incremental run replays a nonzero number of clean apps;
//! - across the evolution epochs (the baseline is identical work in both
//!   modes) the incremental run is at least [`MIN_SPEEDUP`]× faster in
//!   wall clock.
//!
//! The process-global memos (validation, classification, static-scan)
//! are cleared before each mode so neither arm inherits the other's
//! warm caches. Results go to `BENCH_epoch.json` at the workspace root,
//! which is re-read and structurally checked before the bench reports
//! success.
//!
//! ```sh
//! cargo bench -p pinning-bench --bench epoch --offline            # full
//! cargo bench -p pinning-bench --bench epoch --offline -- smoke   # CI gate
//! ```

use pinning_epoch::{EpochConfig, Evolution};
use pinning_store::config::WorldConfig;
use std::path::Path;

const SEED: u64 = 0xE90C;
const MIN_SPEEDUP: f64 = 3.0;

fn epoch_config(smoke: bool) -> EpochConfig {
    if smoke {
        // 3 evolution epochs over a small-but-not-tiny store: big enough
        // that per-app measurement (not fingerprinting/rendering
        // overhead) dominates the wall clock, so the speedup gate is
        // meaningful even in CI.
        EpochConfig {
            world: WorldConfig {
                store_size: 150,
                n_cross_products: 30,
                common_size: 20,
                popular_size: 40,
                random_size: 40,
                ..WorldConfig::paper_scale(SEED)
            },
            epochs: 3,
            seed: SEED ^ 0xE70C,
            days_per_epoch: 14,
            app_events_per_epoch: 4,
            threads: pinning_bench::bench_threads(),
        }
    } else {
        // 5 evolution epochs over a mid-size store: large enough that
        // per-app measurement dominates and the dirty fraction is small,
        // small enough to finish in CI-adjacent time.
        EpochConfig {
            world: WorldConfig {
                store_size: 400,
                n_cross_products: 60,
                common_size: 40,
                popular_size: 80,
                random_size: 80,
                ..WorldConfig::paper_scale(SEED)
            },
            epochs: 5,
            seed: SEED ^ 0xE70C,
            days_per_epoch: 14,
            app_events_per_epoch: 6,
            threads: pinning_bench::bench_threads(),
        }
    }
}

/// Clears every process-global memo, so a mode starts genuinely cold.
fn clear_global_memos() {
    pinning_pki::validate::clear_validation_cache();
    pinning_analysis::certs::clear_classification_cache();
    pinning_analysis::statics::clear_static_scan_cache();
}

/// Runs all epochs in one mode, returning the engine plus the report
/// rendered after every epoch (for the per-epoch byte comparison).
fn run_mode(config: &EpochConfig, incremental: bool) -> (Evolution, Vec<String>) {
    clear_global_memos();
    let mut engine = Evolution::new(config.clone(), incremental);
    let mut reports = Vec::new();
    for _ in 0..engine.epochs_total() {
        engine.next_epoch().expect("epoch run");
        reports.push(engine.full_report());
    }
    (engine, reports)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "smoke")
        || std::env::var("PINNING_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let mode = if smoke { "smoke" } else { "full" };
    println!("epoch bench mode: {mode}");

    let config = epoch_config(smoke);
    let epochs_total = config.epochs + 1;

    let (cold, cold_reports) = run_mode(&config, false);
    println!(
        "cold: {} epochs, {} apps/epoch re-measured",
        epochs_total,
        cold.costs().first().map(|c| c.reanalyzed).unwrap_or(0)
    );
    let (incr, incr_reports) = run_mode(&config, true);

    let mut failures: Vec<String> = Vec::new();

    for (k, (c, i)) in cold_reports.iter().zip(&incr_reports).enumerate() {
        if c != i {
            failures.push(format!(
                "epoch {k}: incremental report is not byte-identical to the cold re-run"
            ));
        }
    }

    let replayed_total = incr.total_replayed();
    if replayed_total == 0 {
        failures.push("incremental run replayed zero apps — dirty tracking is inert".into());
    }

    // Speedup over the evolution epochs only: the baseline epoch does
    // identical work in both modes and would dilute the signal.
    let cold_evo_ms: u64 = cold.costs().iter().skip(1).map(|c| c.wall_ms).sum();
    let incr_evo_ms: u64 = incr.costs().iter().skip(1).map(|c| c.wall_ms).sum();
    let speedup = cold_evo_ms as f64 / incr_evo_ms.max(1) as f64;
    if speedup < MIN_SPEEDUP {
        failures.push(format!(
            "incremental speedup {speedup:.2}x < required {MIN_SPEEDUP}x \
             (cold {cold_evo_ms} ms vs incremental {incr_evo_ms} ms over evolution epochs)"
        ));
    }

    let per_epoch = incr
        .costs()
        .iter()
        .zip(cold.costs())
        .map(|(i, c)| {
            format!(
                "{{\"epoch\": {}, \"replayed\": {}, \"reanalyzed\": {}, \
                 \"cold_ms\": {}, \"incremental_ms\": {}}}",
                i.epoch, i.replayed, i.reanalyzed, c.wall_ms, i.wall_ms
            )
        })
        .collect::<Vec<_>>()
        .join(", ");

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"pinning-bench/epoch\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"seed\": {seed},\n",
            "  \"epochs\": {epochs},\n",
            "  \"byte_identical\": {identical},\n",
            "  \"replayed_total\": {replayed},\n",
            "  \"per_epoch\": [{per_epoch}],\n",
            "  \"cold_evolution_ms\": {cold_ms},\n",
            "  \"incremental_evolution_ms\": {incr_ms},\n",
            "  \"speedup\": {speedup:.2},\n",
            "  \"min_speedup\": {min_speedup:.1}\n",
            "}}\n"
        ),
        mode = mode,
        seed = SEED,
        epochs = epochs_total,
        identical = cold_reports == incr_reports,
        replayed = replayed_total,
        per_epoch = per_epoch,
        cold_ms = cold_evo_ms,
        incr_ms = incr_evo_ms,
        speedup = speedup,
        min_speedup = MIN_SPEEDUP,
    );

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_epoch.json");
    std::fs::write(&path, &json).expect("write BENCH_epoch.json");
    println!("wrote {}", path.display());

    // Parseability gate: re-read the artifact and check its structure.
    let back = std::fs::read_to_string(&path).expect("re-read BENCH_epoch.json");
    if back.matches('{').count() != back.matches('}').count()
        || back.matches('[').count() != back.matches(']').count()
    {
        failures.push("BENCH_epoch.json has unbalanced braces/brackets".into());
    }
    for key in [
        "\"schema\"",
        "\"byte_identical\"",
        "\"replayed_total\"",
        "\"per_epoch\"",
        "\"speedup\"",
    ] {
        if !back.contains(key) {
            failures.push(format!("BENCH_epoch.json missing {key}"));
        }
    }

    println!("{}", incr.cost_report());
    println!(
        "epoch bench: {} epochs, {} apps replayed, speedup {:.2}x \
         (cold {} ms vs incremental {} ms)",
        epochs_total, replayed_total, speedup, cold_evo_ms, incr_evo_ms
    );

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("epoch bench OK");
}
