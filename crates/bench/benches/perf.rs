//! Cached-vs-uncached A/B benchmarks and the `BENCH_pr4.json` artifact.
//!
//! Every derived-value cache in the workspace sits behind one kill-switch
//! (`pinning_pki::cache::set_caching_enabled`), so the same workload can be
//! timed both ways inside one process. This target does exactly that —
//! micro A/B benches for the per-certificate caches, the chain-validation
//! memo and batched Merkle proof generation, the per-table regeneration
//! benches with mean/median/p95, and a full end-to-end study per mode —
//! then writes the numbers to `BENCH_pr4.json` at the workspace root.
//!
//! The A/B is also a correctness gate: if the cached and uncached study
//! reports differ in a single byte, the bench exits non-zero (CI runs it
//! in smoke mode).
//!
//! ```sh
//! cargo bench -p pinning-bench --bench perf --offline            # full
//! cargo bench -p pinning-bench --bench perf --offline -- smoke   # CI gate
//! ```

use pinning_analysis::certs::clear_classification_cache;
use pinning_analysis::pii::clear_pii_scan_cache;
use pinning_app::platform::Platform;
use pinning_bench::{
    bench_threads, bench_world_config, shared_results, time_bench_stats, BenchStats,
};
use pinning_core::{Study, StudyConfig};
use pinning_crypto::sig::KeyPair;
use pinning_crypto::{sha256, sha256_many, SplitMix64};
use pinning_ctlog::merkle::MerkleTree;
use pinning_pki::authority::CertificateAuthority;
use pinning_pki::cache::{caching_disabled_scope, caching_enabled};
use pinning_pki::name::DistinguishedName;
use pinning_pki::store::RootStore;
use pinning_pki::time::{SimTime, Validity, YEAR};
use pinning_pki::validate::{
    clear_validation_cache, validate_chain_cached, RevocationList, ValidationOptions,
};
use pinning_pki::Certificate;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

/// One cached-vs-uncached measurement.
struct AbPair {
    cached: BenchStats,
    uncached: BenchStats,
}

impl AbPair {
    fn measure(name: &str, iters: u32, mut f: impl FnMut()) -> AbPair {
        assert!(caching_enabled(), "A/B benches start from the cached state");
        let cached = time_bench_stats(&format!("{name} (cached)"), iters, &mut f);
        let _off = caching_disabled_scope();
        let uncached = time_bench_stats(&format!("{name} (uncached)"), iters, &mut f);
        AbPair { cached, uncached }
    }

    fn speedup(&self) -> f64 {
        if self.cached.mean_ns == 0.0 {
            0.0
        } else {
            self.uncached.mean_ns / self.cached.mean_ns
        }
    }

    fn to_json(&self, name: &str) -> String {
        format!(
            "{{\"name\":\"{name}\",\"cached\":{},\"uncached\":{},\"speedup\":{:.2}}}",
            self.cached.to_json(),
            self.uncached.to_json(),
            self.speedup()
        )
    }
}

/// Fixture: a root CA, a root store holding it, and a few issued leaves.
fn pki_fixture(n_leaves: usize) -> (RootStore, Vec<Certificate>, Vec<Certificate>) {
    let mut rng = SplitMix64::new(0xbe7c);
    let mut root = CertificateAuthority::new_root(
        DistinguishedName::new("Bench Root", "Sim", "US"),
        &mut rng,
        SimTime(0),
    );
    let mut store = RootStore::new("bench");
    store.add(root.cert.clone());
    let mut leaves = Vec::new();
    let mut chains = Vec::new();
    for i in 0..n_leaves {
        let key = KeyPair::generate(&mut rng);
        let leaf = root.issue_leaf(
            &[format!("h{i}.bench.example")],
            "Bench Org",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        chains.push(leaf.clone());
        chains.push(root.cert.clone());
        leaves.push(leaf);
    }
    (store, leaves, chains)
}

fn micro_benches(smoke: bool) -> Vec<(String, AbPair)> {
    let iters: u32 = if smoke { 5 } else { 30 };
    let mut out = Vec::new();

    // Per-certificate derived values: DER, fingerprint, SPKI digest, pin
    // string. Cached = OnceLock hits; uncached = full recompute per read.
    let (store, leaves, _) = pki_fixture(8);
    out.push((
        "cert-derived-values".to_string(),
        AbPair::measure("cert_derived_values", iters, || {
            for leaf in &leaves {
                black_box(leaf.der_bytes());
                black_box(leaf.fingerprint_sha256());
                black_box(leaf.spki_sha256());
                black_box(leaf.spki_pin_string());
            }
        }),
    ));

    // Chain validation: memoized verdict vs full signature/hostname/expiry
    // walk. One iteration validates each fixture chain once.
    let (_, _, chain_pool) = pki_fixture(4);
    let chains: Vec<&[Certificate]> = chain_pool.chunks(2).collect();
    let crl = RevocationList::empty();
    let opts = ValidationOptions::default();
    clear_validation_cache();
    out.push((
        "chain-validation".to_string(),
        AbPair::measure("chain_validation", iters, || {
            for (i, chain) in chains.iter().enumerate() {
                let host = format!("h{i}.bench.example");
                black_box(
                    validate_chain_cached(chain, &store, &host, SimTime(100), &crl, &opts).is_ok(),
                );
            }
        }),
    ));

    // Batched Merkle proofs: one authenticator pass + O(log n) lookups per
    // proof vs the recursive O(n)-hashing generator per entry. The cached
    // path goes through CtLog-style batch generation; uncached recomputes
    // every proof from the leaves.
    let n: u64 = if smoke { 64 } else { 256 };
    let mut tree = MerkleTree::new();
    for i in 0..n {
        tree.push(format!("entry-{i}").as_bytes());
    }
    out.push((
        "merkle-proof-batch".to_string(),
        AbPair::measure("merkle_proof_batch", iters.min(10), || {
            if caching_enabled() {
                let auth = tree.authenticator(n).expect("size in range");
                for i in 0..n {
                    black_box(auth.inclusion_proof(i));
                }
            } else {
                for i in 0..n {
                    black_box(tree.inclusion_proof(i, n));
                }
            }
        }),
    ));
    out
}

/// Plain (non-A/B) throughput benches for the SHA-256 fast paths.
fn hash_benches(smoke: bool) -> Vec<BenchStats> {
    let iters: u32 = if smoke { 5 } else { 50 };
    let big: Vec<u8> = (0..65_536u32).map(|i| (i % 251) as u8).collect();
    let many: Vec<Vec<u8>> = (0..256u32)
        .map(|i| (0..128u32).map(|j| ((i * 31 + j) % 251) as u8).collect())
        .collect();
    let stats = vec![
        time_bench_stats("sha256_64kib", iters, || {
            black_box(sha256(&big));
        }),
        time_bench_stats("sha256_many_256x128", iters, || {
            black_box(sha256_many(many.iter().map(Vec::as_slice)));
        }),
        time_bench_stats("sha256_seq_256x128", iters, || {
            for m in &many {
                black_box(sha256(m));
            }
        }),
    ];
    // The interleaved multi-buffer compressor must actually win: the
    // 4-wide lockstep path has to beat hashing the same batch one message
    // at a time by ≥1.5x (it runs four compression states per pass).
    let many_ns = stats[1].median_ns;
    let seq_ns = stats[2].median_ns;
    let speedup = seq_ns / many_ns.max(1.0);
    println!("sha256_many speedup over sequential: {speedup:.2}x");
    assert!(
        speedup >= 1.5,
        "sha256_many must beat sequential hashing by >=1.5x, got {speedup:.2}x \
         ({seq_ns} ns sequential vs {many_ns} ns batched)"
    );
    stats
}

/// Regenerates every paper table from the shared bench-scale study.
fn table_benches(smoke: bool) -> Vec<BenchStats> {
    let results = shared_results();
    let iters: u32 = if smoke { 5 } else { 20 };
    vec![
        time_bench_stats("table1_datasets", iters, || {
            black_box(results.table1());
        }),
        time_bench_stats("table2_prior_work", iters, || {
            black_box(results.table2_rows());
        }),
        time_bench_stats("table3_prevalence", iters, || {
            black_box(results.table3());
        }),
        time_bench_stats("table4_categories_android", iters, || {
            black_box(results.category_rows(Platform::Android));
        }),
        time_bench_stats("table5_categories_ios", iters, || {
            black_box(results.category_rows(Platform::Ios));
        }),
        time_bench_stats("table6_pki", iters, || {
            black_box(results.table6());
        }),
        time_bench_stats("table7_frameworks", iters, || {
            black_box(results.table7());
        }),
        time_bench_stats("table8_ciphers", iters, || {
            black_box(results.table8());
        }),
        time_bench_stats("table9_pii", iters, || {
            black_box(results.table9());
        }),
    ]
}

/// Pre-change per-table numbers (ns/iter, release, same harness) measured
/// on the seed tree before the caching layer landed — the "before" column.
const SEED_BASELINE_NS: [(&str, u64); 9] = [
    ("table1_datasets", 77_670),
    ("table2_prior_work", 23_627),
    ("table3_prevalence", 56_490),
    ("table4_categories_android", 16_868),
    ("table5_categories_ios", 20_581),
    ("table6_pki", 857_086),
    ("table7_frameworks", 50_673),
    ("table8_ciphers", 68_926),
    ("table9_pii", 5_735_194),
];

struct EndToEnd {
    scale: &'static str,
    apps: usize,
    threads: usize,
    uncached_ms: f64,
    cached_ms: f64,
    identical: bool,
}

impl EndToEnd {
    fn speedup(&self) -> f64 {
        if self.cached_ms == 0.0 {
            0.0
        } else {
            self.uncached_ms / self.cached_ms
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"scale\":\"{}\",\"apps\":{},\"threads\":{},\"uncached_ms\":{:.1},\"cached_ms\":{:.1},\"speedup\":{:.2},\"reports_identical\":{}}}",
            self.scale,
            self.apps,
            self.threads,
            self.uncached_ms,
            self.cached_ms,
            self.speedup(),
            self.identical
        )
    }
}

/// Runs one full study + report render, cold: the global memos are cleared
/// first, and each leg generates its own world, so per-certificate caches
/// start empty either way.
fn study_leg(config: StudyConfig) -> (String, f64, usize) {
    clear_validation_cache();
    clear_classification_cache();
    clear_pii_scan_cache();
    let t0 = Instant::now();
    let results = Study::new(config).run();
    let report = results.render_all();
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    (report, ms, results.records.len())
}

/// The headline A/B: the same end-to-end study (world generation →
/// static/dynamic/circumvention pipeline → all report tables) with every
/// cache disabled, then enabled.
fn end_to_end(smoke: bool) -> EndToEnd {
    let threads = bench_threads();
    let (scale, config) = if smoke {
        let mut c = StudyConfig::tiny(2022);
        c.threads = threads;
        ("tiny", c)
    } else {
        let mut c = StudyConfig::paper_scale(2022);
        c.world = bench_world_config(2022);
        c.threads = threads;
        ("bench", c)
    };

    let (uncached_report, uncached_ms, apps) = {
        let _off = caching_disabled_scope();
        study_leg(config.clone())
    };
    let (cached_report, cached_ms, _) = study_leg(config);

    let identical = uncached_report == cached_report;
    println!(
        "bench end_to_end_study ({scale})                    uncached {uncached_ms:>10.1} ms   cached {cached_ms:>10.1} ms   speedup {:.2}x   reports identical: {identical}",
        uncached_ms / cached_ms.max(1e-9),
    );
    EndToEnd {
        scale,
        apps,
        threads,
        uncached_ms,
        cached_ms,
        identical,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "smoke")
        || std::env::var("PINNING_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let mode = if smoke { "smoke" } else { "full" };
    println!("perf bench mode: {mode}");

    let e2e = end_to_end(smoke);
    let micro = micro_benches(smoke);
    let hashes = hash_benches(smoke);
    let tables = table_benches(smoke);

    let json = format!(
        "{{\n  \"schema\": \"pinning-bench/pr4\",\n  \"mode\": \"{mode}\",\n  \"micro_ab\": [\n    {}\n  ],\n  \"hash\": [\n    {}\n  ],\n  \"tables\": [\n    {}\n  ],\n  \"seed_baseline_ns_per_iter\": {{\n    {}\n  }},\n  \"end_to_end\": {}\n}}\n",
        micro
            .iter()
            .map(|(name, ab)| ab.to_json(name))
            .collect::<Vec<_>>()
            .join(",\n    "),
        hashes
            .iter()
            .map(BenchStats::to_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        tables
            .iter()
            .map(BenchStats::to_json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        SEED_BASELINE_NS
            .iter()
            .map(|(name, ns)| format!("\"{name}\": {ns}"))
            .collect::<Vec<_>>()
            .join(",\n    "),
        e2e.to_json()
    );

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr4.json");
    std::fs::write(&path, &json).expect("write BENCH_pr4.json");
    println!("wrote {}", path.display());

    if !e2e.identical {
        eprintln!("FAIL: cached and uncached study reports diverge — caching changed results");
        std::process::exit(1);
    }
}
