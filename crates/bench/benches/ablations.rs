//! Ablation benches for the design choices DESIGN.md §5 calls out.

use pinning_analysis::dynamics::interaction::interaction_experiment;
use pinning_analysis::dynamics::pipeline::DynamicEnv;
use pinning_bench::{print_once, shared_world, time_bench};
use pinning_core::ablation;
use std::hint::black_box;

fn main() {
    let world = shared_world();
    const ITERS: u32 = 10;

    print_once("ablation: naive vs differential", || {
        let (diff, naive) = ablation::naive_vs_differential(world);
        format!(
            "differential: precision {:.2} recall {:.2} ({diff:?})\n\
             naive alerts: precision {:.2} recall {:.2} ({naive:?})",
            diff.precision(),
            diff.recall(),
            naive.precision(),
            naive.recall()
        )
    });
    time_bench("ablation_naive_vs_differential", ITERS, || {
        black_box(ablation::naive_vs_differential(world));
    });

    print_once("ablation: TLS 1.3 heuristic vs oracle", || {
        let (agree, disagree) = ablation::tls13_heuristic_vs_oracle(world);
        format!(
            "agreement {agree}/{} ({:.2}%)",
            agree + disagree,
            100.0 * agree as f64 / (agree + disagree).max(1) as f64
        )
    });
    time_bench("ablation_tls13_heuristic", ITERS, || {
        black_box(ablation::tls13_heuristic_vs_oracle(world));
    });

    print_once("ablation: iOS associated-domain exclusion", || {
        let (without, with) = ablation::associated_domain_exclusion(world);
        format!("false positives without exclusion: {without}; with exclusion: {with}")
    });
    time_bench("ablation_associated_domains", ITERS, || {
        black_box(ablation::associated_domain_exclusion(world));
    });

    print_once("ablation: NSC-only vs full static vs dynamic", || {
        ablation::static_breadth(world)
            .into_iter()
            .map(|(p, nsc, full, dynamic)| {
                format!("{p}: NSC-only {nsc}, full static {full}, dynamic {dynamic}\n")
            })
            .collect()
    });
    time_bench("ablation_static_breadth", ITERS, || {
        black_box(ablation::static_breadth(world));
    });

    print_once("related work: Stone et al. coverage bound", || {
        let (ca, leaf) = ablation::stone_etal_coverage(world);
        format!(
            "CA-pinned destinations (their upper bound): {ca}; leaf-pinned (missed): {leaf} — {:.0}% coverage",
            100.0 * ca as f64 / (ca + leaf).max(1) as f64
        )
    });
    time_bench("ablation_stone_coverage", ITERS, || {
        black_box(ablation::stone_etal_coverage(world));
    });

    let env = DynamicEnv::new(
        &world.network,
        world.universe.aosp_oem.clone(),
        world.universe.ios.clone(),
        world.now,
        11,
    );
    let apps: Vec<_> = world.apps.iter().take(20).collect();
    print_once("§4.2.1 interaction experiment", || {
        let r = interaction_experiment(&env, &apps);
        format!(
            "mean distinct destinations: launch-only {:.2}, random-UI {:.2}, login {:.2} (uplift {:.1}%, significant: {})",
            r.mean_domains_none,
            r.mean_domains_random,
            r.mean_domains_login,
            r.random_ui_uplift() * 100.0,
            r.random_ui_significant()
        )
    });
    time_bench("interaction_experiment", ITERS, || {
        black_box(interaction_experiment(&env, &apps));
    });
}
