//! Deterministic seeded load generator for the serving bench.
//!
//! Turns a generated [`World`] into a request trace for
//! [`pinning_serve::PinService`]: app popularity follows a Zipf law over
//! the store listing (rank 1 dominates, the tail is long), arrivals come
//! in named phases with exponential inter-arrival gaps (a steady phase, a
//! burst whose arrival rate exceeds the service rate, a recovery), and a
//! configurable fraction of traffic is *hostile* — real chain DER pushed
//! through the shared mutation fuzzer ([`crate::fuzz::mutated_case`]), so
//! the front end faces exactly the corpus the decoder fuzz suite uses.
//!
//! Everything is a pure function of `(world, config)`: the same seed
//! yields a byte-identical trace, which is what lets the overload bench
//! assert exact equality between runs.

use crate::fuzz;
use pinning_app::app::MobileApp;
use pinning_app::platform::Platform;
use pinning_crypto::SplitMix64;
use pinning_pki::pin::{Pin, PinAlgorithm, SpkiPin};
use pinning_serve::{RequestBody, ServeRequest};
use pinning_store::world::World;

/// One arrival phase of the load trace.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPhase {
    /// Phase name, carried into the bench report.
    pub name: &'static str,
    /// Phase length on the service's virtual tick clock.
    pub duration_ticks: u64,
    /// Mean inter-session gap (exponential), ticks. Small gap = overload.
    pub mean_gap_ticks: f64,
    /// Fraction of sessions whose requests carry mutated (hostile) bodies.
    pub hostile_fraction: f64,
}

/// Load-generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// Seed for every sampling decision.
    pub seed: u64,
    /// Store listing the Zipf law ranges over.
    pub platform: Platform,
    /// Zipf exponent `s` (weight of rank `k` is `1/k^s`).
    pub zipf_exponent: f64,
    /// Maximum requests per session (a session is one app's burst of
    /// consecutive requests; length is uniform in `1..=max`).
    pub max_session_len: usize,
    /// The arrival phases, played back to back.
    pub phases: Vec<LoadPhase>,
}

impl LoadConfig {
    /// The canonical overload scenario: steady warm-up, a burst whose
    /// arrival rate is far above the service rate with a ≥20% hostile
    /// share, then a quiet recovery.
    pub fn overload(seed: u64) -> Self {
        LoadConfig {
            seed,
            platform: Platform::Android,
            zipf_exponent: 1.1,
            max_session_len: 3,
            phases: vec![
                LoadPhase {
                    name: "steady",
                    duration_ticks: 60_000,
                    mean_gap_ticks: 300.0,
                    hostile_fraction: 0.05,
                },
                LoadPhase {
                    name: "burst",
                    duration_ticks: 30_000,
                    mean_gap_ticks: 3.0,
                    hostile_fraction: 0.25,
                },
                LoadPhase {
                    name: "recovery",
                    duration_ticks: 60_000,
                    mean_gap_ticks: 400.0,
                    hostile_fraction: 0.05,
                },
            ],
        }
    }

    /// A shorter overload trace for CI smoke runs (same shape, fewer
    /// requests).
    pub fn overload_smoke(seed: u64) -> Self {
        LoadConfig {
            phases: vec![
                LoadPhase {
                    name: "steady",
                    duration_ticks: 12_000,
                    mean_gap_ticks: 200.0,
                    hostile_fraction: 0.05,
                },
                LoadPhase {
                    name: "burst",
                    duration_ticks: 6_000,
                    mean_gap_ticks: 3.0,
                    hostile_fraction: 0.25,
                },
                LoadPhase {
                    name: "recovery",
                    duration_ticks: 12_000,
                    mean_gap_ticks: 300.0,
                    hostile_fraction: 0.05,
                },
            ],
            ..LoadConfig::overload(seed)
        }
    }
}

/// A generated trace plus the bookkeeping the bench report needs.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedLoad {
    /// The requests, in arrival order, ids unique and ascending.
    pub requests: Vec<ServeRequest>,
    /// Requests carrying mutated bodies.
    pub hostile: u64,
    /// `(phase name, request count)` per configured phase.
    pub per_phase: Vec<(&'static str, u64)>,
}

impl GeneratedLoad {
    /// Hostile share of the whole trace, in `[0, 1]`.
    pub fn hostile_fraction(&self) -> f64 {
        if self.requests.is_empty() {
            0.0
        } else {
            self.hostile as f64 / self.requests.len() as f64
        }
    }
}

/// Cumulative Zipf weights over ranks `1..=n`: sampling is one uniform
/// draw plus a binary search.
fn zipf_cumulative(n: usize, s: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0;
    for k in 1..=n {
        total += (k as f64).powf(-s);
        cum.push(total);
    }
    for c in &mut cum {
        *c /= total;
    }
    cum
}

/// One Zipf draw: the sampled rank as a 0-based listing index.
fn zipf_index(cum: &[f64], rng: &mut SplitMix64) -> usize {
    let u = rng.next_f64();
    cum.partition_point(|&c| c < u).min(cum.len() - 1)
}

/// Exponential inter-arrival gap with the given mean, floored at one
/// tick so the clock always advances.
fn exp_gap(mean: f64, rng: &mut SplitMix64) -> u64 {
    let u = rng.next_f64();
    let gap = -(1.0 - u).ln() * mean;
    (gap as u64).max(1)
}

/// The app's first SPKI pin, if it ships one (preferred digest source for
/// `Resolve`/`Proof` traffic — it is exactly what the paper's §4.1.3
/// pipeline resolves against CT).
fn app_spki_pin(app: &MobileApp) -> Option<(PinAlgorithm, Vec<u8>)> {
    for rule in &app.pin_rules {
        for pin in &rule.pins.pins {
            if let Pin::Spki(p) = pin {
                return Some((p.alg, p.digest.clone()));
            }
        }
    }
    None
}

/// Generates the full request trace for `(world, cfg)`.
///
/// Each session Zipf-picks an app, then emits 1..=`max_session_len`
/// requests against that app's planned destinations: ~70% chain
/// validations (the served chain's DER, leaf first), ~20% pin
/// resolutions, ~10% inclusion proofs. Hostile sessions corrupt the
/// chain DER with [`fuzz::mutated_case`] before sending — the service
/// must answer those structurally, never crash on them.
pub fn generate_load(world: &World, cfg: &LoadConfig) -> GeneratedLoad {
    let listing = world.listing(cfg.platform);
    assert!(!listing.is_empty(), "load needs a populated store listing");
    let cum = zipf_cumulative(listing.len(), cfg.zipf_exponent);
    let mut rng = SplitMix64::new(cfg.seed).derive("load");

    let mut requests = Vec::new();
    let mut per_phase = Vec::with_capacity(cfg.phases.len());
    let mut hostile_total = 0u64;
    let mut clock = 0u64;
    let mut next_id = 0u64;

    for phase in &cfg.phases {
        let phase_end = clock + phase.duration_ticks;
        let mut phase_count = 0u64;
        while clock < phase_end {
            let app = &world.apps[listing[zipf_index(&cum, &mut rng)]];
            let hostile = rng.chance(phase.hostile_fraction);
            let session_len = 1 + rng.next_below(cfg.max_session_len.max(1) as u64);
            for step in 0..session_len {
                let Some(body) = session_request(world, app, hostile, &mut rng) else {
                    continue;
                };
                requests.push(ServeRequest {
                    id: next_id,
                    // Session requests land a tick apart: same burst,
                    // strictly ordered arrivals.
                    arrival: clock + step,
                    body,
                });
                next_id += 1;
                phase_count += 1;
                if hostile {
                    hostile_total += 1;
                }
            }
            clock += exp_gap(phase.mean_gap_ticks, &mut rng);
        }
        clock = phase_end;
        per_phase.push((phase.name, phase_count));
    }

    GeneratedLoad {
        requests,
        hostile: hostile_total,
        per_phase,
    }
}

/// One request body for a session against `app`, or `None` when the app
/// plans no connections (possible for degenerate tiny worlds).
fn session_request(
    world: &World,
    app: &MobileApp,
    hostile: bool,
    rng: &mut SplitMix64,
) -> Option<RequestBody> {
    let conns = &app.behavior.connections;
    let conn = conns.get(rng.next_below(conns.len().max(1) as u64) as usize)?;
    let server = world.network.resolve(&conn.domain)?;
    let chain: Vec<Vec<u8>> = server.chain.certs().iter().map(|c| c.to_der()).collect();

    // Hostile sessions always attack the decode path: corrupt one
    // certificate of the real chain with the shared mutation corpus.
    if hostile {
        let mut chain = chain;
        let victim = rng.next_below(chain.len() as u64) as usize;
        chain[victim] = fuzz::mutated_case(rng, &chain);
        return Some(RequestBody::ValidateChain {
            hostname: conn.domain.clone(),
            chain_der: chain,
        });
    }

    // Benign mix: ~70% validate, ~20% resolve, ~10% proof.
    let draw = rng.next_f64();
    if draw < 0.7 {
        return Some(RequestBody::ValidateChain {
            hostname: conn.domain.clone(),
            chain_der: chain,
        });
    }
    // Pin digest: the app's own SPKI pin when it ships one, otherwise
    // the served leaf's SPKI (what a pin for this destination would be).
    let (alg, digest) = app_spki_pin(app).unwrap_or_else(|| {
        let leaf = SpkiPin::sha256_of(&server.chain.certs()[0]);
        (leaf.alg, leaf.digest)
    });
    if draw < 0.9 {
        Some(RequestBody::ResolvePin { alg, digest })
    } else {
        Some(RequestBody::InclusionProof { alg, digest })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_store::config::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::tiny(0x10AD))
    }

    #[test]
    fn zipf_front_ranks_dominate() {
        let cum = zipf_cumulative(100, 1.1);
        let mut rng = SplitMix64::new(7).derive("zipf");
        let mut head = 0u32;
        for _ in 0..2_000 {
            if zipf_index(&cum, &mut rng) < 10 {
                head += 1;
            }
        }
        // Top 10% of ranks must carry well over a proportional share.
        assert!(head > 700, "head draws: {head}/2000");
    }

    #[test]
    fn same_seed_yields_identical_traces() {
        let w = world();
        let cfg = LoadConfig::overload_smoke(0xA1);
        let a = generate_load(&w, &cfg);
        let b = generate_load(&w, &cfg);
        assert_eq!(a, b);
        assert!(!a.requests.is_empty());
    }

    #[test]
    fn burst_phase_carries_hostile_share_and_tight_gaps() {
        let w = world();
        let cfg = LoadConfig::overload_smoke(0xA2);
        let load = generate_load(&w, &cfg);
        let burst = load
            .per_phase
            .iter()
            .find(|(n, _)| *n == "burst")
            .expect("burst phase present");
        let steady = load
            .per_phase
            .iter()
            .find(|(n, _)| *n == "steady")
            .expect("steady phase present");
        // The burst is half the steady phase's duration but arrivals are
        // ~25x denser; it must dominate the trace.
        assert!(
            burst.1 > steady.1 * 4,
            "burst {} steady {}",
            burst.1,
            steady.1
        );
        assert!(load.hostile_fraction() > 0.1, "{}", load.hostile_fraction());
        // Arrival order is non-decreasing and ids are unique/ascending.
        for pair in load.requests.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival || pair[0].id < pair[1].id);
            assert!(pair[0].id < pair[1].id);
        }
    }

    #[test]
    fn bodies_reference_real_world_material() {
        let w = world();
        let cfg = LoadConfig::overload_smoke(0xA3);
        let load = generate_load(&w, &cfg);
        let (mut validates, mut resolves, mut proofs) = (0u32, 0u32, 0u32);
        for req in &load.requests {
            match &req.body {
                RequestBody::ValidateChain {
                    hostname,
                    chain_der,
                } => {
                    assert!(w.network.has_host(hostname));
                    assert!(!chain_der.is_empty());
                    validates += 1;
                }
                RequestBody::ResolvePin { alg, digest }
                | RequestBody::InclusionProof { alg, digest } => {
                    assert_eq!(digest.len(), alg.digest_len());
                    if matches!(req.body, RequestBody::ResolvePin { .. }) {
                        resolves += 1;
                    } else {
                        proofs += 1;
                    }
                }
            }
        }
        assert!(validates > resolves && resolves > proofs && proofs > 0);
    }
}
