//! Shared fixtures for the benchmark harness.
//!
//! Every table/figure bench needs a completed study; running the pipeline
//! inside the timing loop would measure the pipeline, not the table. The
//! fixtures here run one **bench-scale** study (between tiny and paper
//! scale) exactly once per process and hand out references.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pinning_core::{Study, StudyConfig, StudyResults};
use pinning_store::config::WorldConfig;
use pinning_store::world::World;
use std::sync::OnceLock;

/// Bench-scale world configuration: large enough that every table has
/// non-trivial rows, small enough for criterion's iteration counts.
pub fn bench_world_config(seed: u64) -> WorldConfig {
    WorldConfig {
        store_size: 1200,
        n_cross_products: 200,
        common_size: 140,
        popular_size: 250,
        random_size: 250,
        ..WorldConfig::paper_scale(seed)
    }
}

/// The shared study results (run once).
pub fn shared_results() -> &'static StudyResults {
    static RESULTS: OnceLock<StudyResults> = OnceLock::new();
    RESULTS.get_or_init(|| {
        let config = StudyConfig { world: bench_world_config(2022), threads: 1 };
        Study::new(config).run()
    })
}

/// A shared tiny world for pipeline micro-benches and ablations.
pub fn shared_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::tiny(2022)))
}

/// Prints a regenerated artifact once per bench target (criterion runs the
/// closure many times; the table itself should print once).
pub fn print_once(tag: &str, render: impl FnOnce() -> String) {
    use std::collections::HashSet;
    use std::sync::Mutex;
    static PRINTED: Mutex<Option<HashSet<String>>> = Mutex::new(None);
    let mut guard = PRINTED.lock().expect("print-once lock");
    let set = guard.get_or_insert_with(HashSet::new);
    if set.insert(tag.to_string()) {
        println!("\n===== regenerated: {tag} =====\n{}", render());
    }
}
