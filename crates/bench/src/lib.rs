//! Shared fixtures for the benchmark harness.
//!
//! Every table/figure bench needs a completed study; running the pipeline
//! inside the timing loop would measure the pipeline, not the table. The
//! fixtures here run one **bench-scale** study (between tiny and paper
//! scale) exactly once per process and hand out references.
//!
//! The harness itself is a dependency-free [`time_bench`] loop (the
//! workspace builds fully offline, so criterion is out); each bench target
//! sets `harness = false` and drives it from a plain `main`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pinning_core::{Study, StudyConfig, StudyResults};
use pinning_store::config::WorldConfig;
use pinning_store::world::World;
use std::sync::OnceLock;

/// Bench-scale world configuration: large enough that every table has
/// non-trivial rows, small enough for criterion's iteration counts.
pub fn bench_world_config(seed: u64) -> WorldConfig {
    WorldConfig {
        store_size: 1200,
        n_cross_products: 200,
        common_size: 140,
        popular_size: 250,
        random_size: 250,
        ..WorldConfig::paper_scale(seed)
    }
}

/// The shared study results (run once).
pub fn shared_results() -> &'static StudyResults {
    static RESULTS: OnceLock<StudyResults> = OnceLock::new();
    RESULTS.get_or_init(|| {
        let mut config = StudyConfig::paper_scale(2022);
        config.world = bench_world_config(2022);
        config.threads = 1;
        Study::new(config).run()
    })
}

/// A shared tiny world for pipeline micro-benches and ablations.
pub fn shared_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::tiny(2022)))
}

/// Times `f` over `iters` iterations (after one untimed warm-up call) and
/// prints a one-line summary. Returns the mean nanoseconds per iteration.
pub fn time_bench(name: &str, iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    let mean = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
    println!("bench {name:<42} {iters:>6} iters   mean {mean:>14.0} ns/iter");
    mean
}

/// Prints a regenerated artifact once per bench target (the timing loop runs
/// the closure many times; the table itself should print once).
pub fn print_once(tag: &str, render: impl FnOnce() -> String) {
    use std::collections::HashSet;
    use std::sync::Mutex;
    static PRINTED: Mutex<Option<HashSet<String>>> = Mutex::new(None);
    let mut guard = PRINTED.lock().expect("print-once lock");
    let set = guard.get_or_insert_with(HashSet::new);
    if set.insert(tag.to_string()) {
        println!("\n===== regenerated: {tag} =====\n{}", render());
    }
}
