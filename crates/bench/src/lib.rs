//! Shared fixtures for the benchmark harness.
//!
//! Every table/figure bench needs a completed study; running the pipeline
//! inside the timing loop would measure the pipeline, not the table. The
//! fixtures here run one **bench-scale** study (between tiny and paper
//! scale) exactly once per process and hand out references.
//!
//! The harness itself is a dependency-free [`time_bench`] loop (the
//! workspace builds fully offline, so criterion is out); each bench target
//! sets `harness = false` and drives it from a plain `main`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod load;

use pinning_core::{Study, StudyConfig, StudyResults};
use pinning_store::config::WorldConfig;
use pinning_store::world::World;
use std::sync::OnceLock;

/// Bench-scale world configuration: large enough that every table has
/// non-trivial rows, small enough for criterion's iteration counts.
pub fn bench_world_config(seed: u64) -> WorldConfig {
    WorldConfig {
        store_size: 1200,
        n_cross_products: 200,
        common_size: 140,
        popular_size: 250,
        random_size: 250,
        ..WorldConfig::paper_scale(seed)
    }
}

/// Worker threads for the shared bench study: `PINNING_BENCH_THREADS` when
/// set to a positive integer, otherwise 1 (the deterministic default —
/// results are identical either way, only wall-clock changes).
pub fn bench_threads() -> usize {
    std::env::var("PINNING_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// The shared study results (run once).
pub fn shared_results() -> &'static StudyResults {
    static RESULTS: OnceLock<StudyResults> = OnceLock::new();
    RESULTS.get_or_init(|| {
        let mut config = StudyConfig::paper_scale(2022);
        config.world = bench_world_config(2022);
        config.threads = bench_threads();
        Study::new(config).run()
    })
}

/// A shared tiny world for pipeline micro-benches and ablations.
pub fn shared_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| World::generate(WorldConfig::tiny(2022)))
}

/// Summary statistics for one timed benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    /// Benchmark name.
    pub name: String,
    /// Timed iterations (excluding the warm-up call).
    pub iters: u32,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// 95th-percentile nanoseconds per iteration.
    pub p95_ns: f64,
}

impl BenchStats {
    /// The stats as a JSON object (hand-rolled; the workspace is
    /// dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"iters\":{},\"mean_ns\":{:.0},\"median_ns\":{:.0},\"p95_ns\":{:.0}}}",
            self.name, self.iters, self.mean_ns, self.median_ns, self.p95_ns
        )
    }
}

/// Times `f` per iteration (after one untimed warm-up call), prints a
/// one-line summary, and returns mean/median/p95 nanoseconds.
pub fn time_bench_stats(name: &str, iters: u32, mut f: impl FnMut()) -> BenchStats {
    f();
    let iters = iters.max(1);
    let mut samples: Vec<f64> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = std::time::Instant::now();
        f();
        samples.push(start.elapsed().as_nanos() as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
    let pick = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
    let stats = BenchStats {
        name: name.to_string(),
        iters,
        mean_ns,
        median_ns: pick(0.50),
        p95_ns: pick(0.95),
    };
    println!(
        "bench {name:<42} {iters:>6} iters   mean {mean_ns:>12.0}   median {:>12.0}   p95 {:>12.0} ns/iter",
        stats.median_ns, stats.p95_ns
    );
    stats
}

/// Times `f` over `iters` iterations (after one untimed warm-up call) and
/// prints a one-line summary. Returns the mean nanoseconds per iteration.
pub fn time_bench(name: &str, iters: u32, f: impl FnMut()) -> f64 {
    time_bench_stats(name, iters, f).mean_ns
}

/// Prints a regenerated artifact once per bench target (the timing loop runs
/// the closure many times; the table itself should print once).
pub fn print_once(tag: &str, render: impl FnOnce() -> String) {
    use std::collections::HashSet;
    use std::sync::Mutex;
    static PRINTED: Mutex<Option<HashSet<String>>> = Mutex::new(None);
    let mut guard = PRINTED.lock().expect("print-once lock");
    let set = guard.get_or_insert_with(HashSet::new);
    if set.insert(tag.to_string()) {
        println!("\n===== regenerated: {tag} =====\n{}", render());
    }
}
