//! Deterministic, offline mutation fuzzer for every decoder in the
//! workspace.
//!
//! Each [`FuzzTarget`] pairs a small *valid* corpus with a decode closure;
//! [`run_target`] applies seeded byte-level and structure-aware mutations
//! (bit flips, truncations, length-field lies, slice duplication, garbage
//! splices) and asserts the decoder is **panic-free**: hostile bytes must
//! come back as a structured `Err`, never a crash, an unbounded
//! allocation, or a runaway loop. [`assert_budgets_respected`] separately
//! checks the **budget** contract — over-budget input is rejected with
//! `LimitExceeded` before any real work happens.
//!
//! Everything is seeded ([`SplitMix64`] chained from one `u64`), so a
//! failing case is reproducible from the (target, seed, case) triple the
//! failure report carries.

use pinning_crypto::{hex_encode, SplitMix64};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A boxed decode closure: `true` = accepted, `false` = structured
/// rejection.
pub type DecodeFn = Box<dyn Fn(&[u8]) -> bool + Send + Sync>;

/// One decoder under fuzz.
pub struct FuzzTarget {
    /// Target name; also the RNG domain-separation tag.
    pub name: &'static str,
    /// Valid inputs that mutations start from.
    pub corpus: Vec<Vec<u8>>,
    /// Runs the decoder: `true` = accepted, `false` = structured rejection.
    pub decode: DecodeFn,
}

/// Outcome of fuzzing one target: every case either decoded cleanly or
/// was rejected with a structured error — a panic aborts the run instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReport {
    /// Target name.
    pub name: &'static str,
    /// Cases executed.
    pub cases: u32,
    /// Inputs the decoder accepted.
    pub accepted: u64,
    /// Inputs rejected with a structured error.
    pub rejected: u64,
}

/// A panic the fuzzer caught, with everything needed to reproduce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzFailure {
    /// Target that crashed.
    pub target: &'static str,
    /// Zero-based case index within the run.
    pub case: u32,
    /// Seed the run started from.
    pub seed: u64,
    /// Hex of the crashing input (truncated to 256 bytes).
    pub input_hex: String,
}

impl std::fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fuzz target `{}` panicked: seed={:#x} case={} input[..256]={}",
            self.target, self.seed, self.case, self.input_hex
        )
    }
}

/// Purely random input for the no-corpus fraction of cases.
///
/// Public so other harnesses (the serving load generator, ad-hoc tools)
/// can draw from the same hostile-input distribution the fuzzer uses.
pub fn random_input(rng: &mut SplitMix64) -> Vec<u8> {
    let len = rng.next_below(513) as usize;
    let mut buf = vec![0u8; len];
    rng.fill_bytes(&mut buf);
    buf
}

/// Applies one mutation to `buf` in place (or replaces it): bit flip,
/// byte overwrite, truncation, length-field lie, slice duplication,
/// garbage splice, or mid-slice deletion, chosen by `rng`.
pub fn mutate_once(rng: &mut SplitMix64, buf: &mut Vec<u8>) {
    if buf.is_empty() {
        *buf = random_input(rng);
        return;
    }
    let len = buf.len();
    match rng.next_below(7) {
        // Bit flip.
        0 => {
            let i = rng.next_below(len as u64) as usize;
            buf[i] ^= 1 << rng.next_below(8);
        }
        // Byte overwrite.
        1 => {
            let i = rng.next_below(len as u64) as usize;
            buf[i] = rng.next_u64() as u8;
        }
        // Truncation.
        2 => {
            buf.truncate(rng.next_below(len as u64) as usize);
        }
        // Length-field lie: stamp a huge big-endian value over 8 bytes
        // (or whatever fits) at a random offset.
        3 => {
            let i = rng.next_below(len as u64) as usize;
            let lie = (u64::MAX - rng.next_below(1 << 16)).to_be_bytes();
            for (dst, src) in buf[i..].iter_mut().zip(lie.iter()) {
                *dst = *src;
            }
        }
        // Duplicate a slice and splice it back in.
        4 => {
            let a = rng.next_below(len as u64) as usize;
            let b = a + rng.next_below((len - a + 1).min(64) as u64) as usize;
            let slice = buf[a..b].to_vec();
            let at = rng.next_below(len as u64 + 1) as usize;
            buf.splice(at..at, slice);
        }
        // Insert a short garbage run.
        5 => {
            let mut garbage = vec![0u8; 1 + rng.next_below(16) as usize];
            rng.fill_bytes(&mut garbage);
            let at = rng.next_below(len as u64 + 1) as usize;
            buf.splice(at..at, garbage);
        }
        // Delete a middle slice.
        _ => {
            let a = rng.next_below(len as u64) as usize;
            let b = a + rng.next_below((len - a + 1) as u64) as usize;
            buf.drain(a..b);
        }
    }
}

/// One mutated case: a corpus pick with 1–4 stacked mutations, or (5% of
/// the time) pure noise.
///
/// This is the hostile-input distribution the whole workspace shares:
/// the decoder fuzzer feeds it straight to each decoder, and the serving
/// load generator ([`crate::load`]) uses it to corrupt real chain DER for
/// the hostile fraction of its traffic.
pub fn mutated_case(rng: &mut SplitMix64, corpus: &[Vec<u8>]) -> Vec<u8> {
    if corpus.is_empty() || rng.chance(0.05) {
        return random_input(rng);
    }
    let mut buf = corpus[rng.next_below(corpus.len() as u64) as usize].clone();
    for _ in 0..=rng.next_below(4) {
        mutate_once(rng, &mut buf);
    }
    buf
}

/// Fuzzes one target for `cases` iterations under `seed`.
///
/// Returns the accept/reject tally, or the caught panic as a
/// reproducible [`FuzzFailure`]. Run inside [`with_silent_panics`] to
/// keep the default hook from spamming stderr on each caught case.
pub fn run_target(t: &FuzzTarget, cases: u32, seed: u64) -> Result<FuzzReport, FuzzFailure> {
    let mut rng = SplitMix64::new(seed).derive(t.name);
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for case in 0..cases {
        let input = mutated_case(&mut rng, &t.corpus);
        match catch_unwind(AssertUnwindSafe(|| (t.decode)(&input))) {
            Ok(true) => accepted += 1,
            Ok(false) => rejected += 1,
            Err(_) => {
                return Err(FuzzFailure {
                    target: t.name,
                    case,
                    seed,
                    input_hex: hex_encode(&input[..input.len().min(256)]),
                })
            }
        }
    }
    Ok(FuzzReport {
        name: t.name,
        cases,
        accepted,
        rejected,
    })
}

/// Replaces the panic hook with a no-op for the duration of `f` (the
/// fuzzer *expects* to catch panics if a decoder regresses; the default
/// hook would print a backtrace per caught case).
pub fn with_silent_panics<T>(f: impl FnOnce() -> T) -> T {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

/// Builds the full target list: every decoder in the workspace, each with
/// a valid corpus generated from public APIs (no fixtures on disk — the
/// fuzzer is fully offline and deterministic).
pub fn all_targets() -> Vec<FuzzTarget> {
    use pinning_pki::authority::CertificateAuthority;
    use pinning_pki::name::DistinguishedName;
    use pinning_pki::time::{SimTime, Validity, YEAR};
    use pinning_pki::Certificate;

    let mut rng = SplitMix64::new(0xF0_22).derive("fuzz-corpus");

    // --- PKI material -------------------------------------------------
    let mut root = CertificateAuthority::new_root(
        DistinguishedName::new("Fuzz Root", "Sim", "US"),
        &mut rng,
        SimTime(0),
    );
    let mut ders: Vec<Vec<u8>> = Vec::new();
    let mut pems: Vec<Vec<u8>> = Vec::new();
    for i in 0..4 {
        let key = pinning_crypto::sig::KeyPair::generate(&mut rng);
        let leaf = root.issue_leaf(
            &[format!("h{i}.fuzz.example")],
            "Fuzz Org",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        ders.push(leaf.to_der());
        pems.push(leaf.to_pem().into_bytes());
    }
    ders.push(root.cert.to_der());
    // A multi-block bundle exercises the PEM scanner's loop.
    pems.push(
        format!(
            "{}{}",
            root.cert.to_pem(),
            String::from_utf8_lossy(&pems[0])
        )
        .into_bytes(),
    );

    // --- XML / NSC ----------------------------------------------------
    let nsc_xml = r#"<?xml version="1.0" encoding="utf-8"?>
<network-security-config>
    <domain-config>
        <domain includeSubdomains="true">example.com</domain>
        <pin-set expiration="2025-06-01">
            <pin digest="SHA-256">7HIpactkIAq2Y49orFOOQKurWxmmSFZhBCoQYcRhJ3Y=</pin>
            <pin digest="SHA-256">fwza0LRMXouZHRC8Ei+4PyuldPDcf3UKgO/04cDM1oE=</pin>
        </pin-set>
        <trust-anchors>
            <certificates src="system" overridePins="true" />
        </trust-anchors>
    </domain-config>
    <base-config>
        <trust-anchors><certificates src="user" /></trust-anchors>
    </base-config>
</network-security-config>"#;
    let deep_xml = {
        let mut s = String::new();
        for _ in 0..6 {
            s.push_str("<a b=\"c\">");
        }
        s.push_str("text");
        for _ in 0..6 {
            s.push_str("</a>");
        }
        s
    };
    let xml_corpus = vec![
        nsc_xml.as_bytes().to_vec(),
        deep_xml.into_bytes(),
        b"<x/>".to_vec(),
    ];

    // --- simcap -------------------------------------------------------
    let capture = sample_capture();
    let simcap_corpus = vec![pinning_netsim::simcap::serialize(&capture)];

    // --- journal ------------------------------------------------------
    let journal_corpus = vec![sample_journal_bytes()];

    // --- text codecs --------------------------------------------------
    let mut blob = vec![0u8; 48];
    rng.fill_bytes(&mut blob);
    let b64_corpus = vec![
        pinning_crypto::b64encode(&blob).into_bytes(),
        pinning_crypto::b64encode(b"shorter").into_bytes(),
    ];
    let hex_corpus = vec![hex_encode(&blob).into_bytes()];

    let strict = pinning_pki::limits::Budget::strict();
    vec![
        FuzzTarget {
            name: "der",
            corpus: ders,
            decode: Box::new(move |b| Certificate::from_der_with_budget(b, &strict).is_ok()),
        },
        FuzzTarget {
            name: "pem",
            corpus: pems,
            decode: Box::new(move |b| match std::str::from_utf8(b) {
                Ok(s) => pinning_pki::encode::pem_decode_all_with_budget(s, &strict).is_ok(),
                Err(_) => false,
            }),
        },
        FuzzTarget {
            name: "xml",
            corpus: xml_corpus.clone(),
            decode: Box::new(move |b| match std::str::from_utf8(b) {
                Ok(s) => pinning_app::xml::parse_with_budget(s, &strict).is_ok(),
                Err(_) => false,
            }),
        },
        FuzzTarget {
            name: "nsc",
            corpus: xml_corpus,
            decode: Box::new(move |b| match std::str::from_utf8(b) {
                Ok(s) => pinning_app::nsc::NetworkSecurityConfig::from_xml_with_budget(s, &strict)
                    .is_ok(),
                Err(_) => false,
            }),
        },
        FuzzTarget {
            name: "simcap",
            corpus: simcap_corpus,
            decode: Box::new(move |b| {
                pinning_netsim::simcap::deserialize_with_budget(b, &strict).is_ok()
            }),
        },
        FuzzTarget {
            name: "journal",
            corpus: journal_corpus,
            decode: Box::new(|b| {
                pinning_core::journal::ResultJournal::open(b).is_ok_and(|r| !r.truncated())
            }),
        },
        FuzzTarget {
            name: "base64",
            corpus: b64_corpus,
            decode: Box::new(move |b| match std::str::from_utf8(b) {
                Ok(s) => pinning_crypto::b64decode_bounded(s, strict.max_input_bytes).is_ok(),
                Err(_) => false,
            }),
        },
        FuzzTarget {
            name: "hex",
            corpus: hex_corpus,
            decode: Box::new(move |b| match std::str::from_utf8(b) {
                Ok(s) => pinning_crypto::hex_decode_bounded(s, strict.max_input_bytes).is_ok(),
                Err(_) => false,
            }),
        },
    ]
}

/// A realistic capture for the simcap corpus: two flows, mixed events,
/// one fault.
fn sample_capture() -> pinning_netsim::flow::Capture {
    use pinning_netsim::flow::{Capture, FaultEvent, FlowOrigin, FlowRecord};
    use pinning_netsim::FaultKind;
    use pinning_tls::record::RecordEvent;
    use pinning_tls::{
        AlertDescription, AlertLevel, CipherSuite, ConnectionTranscript, ContentType, Direction,
        TcpEvent, TlsVersion,
    };

    let mut t = ConnectionTranscript {
        sni: Some("api.fuzz.example".into()),
        offered_versions: vec![TlsVersion::V1_2, TlsVersion::V1_3],
        offered_ciphers: CipherSuite::legacy_client_list(),
        negotiated: Some((TlsVersion::V1_3, CipherSuite::TLS_AES_128_GCM_SHA256)),
        ..Default::default()
    };
    t.push_tcp(TcpEvent::Established);
    t.push_record(RecordEvent::handshake(Direction::ClientToServer, 230));
    t.push_record(RecordEvent::encrypted(
        Direction::ClientToServer,
        TlsVersion::V1_3,
        ContentType::ApplicationData,
        512,
    ));
    t.push_record(RecordEvent::plaintext_alert(
        Direction::ServerToClient,
        AlertLevel::Fatal,
        AlertDescription::UnknownCa,
    ));
    t.push_tcp(TcpEvent::Fin {
        from: Direction::ClientToServer,
    });
    let mut t2 = ConnectionTranscript::new();
    t2.push_tcp(TcpEvent::Established);
    t2.push_tcp(TcpEvent::Rst {
        from: Direction::ServerToClient,
    });
    Capture {
        flows: vec![
            FlowRecord {
                dest: "api.fuzz.example".into(),
                at_secs: 2,
                origin: FlowOrigin::App,
                transcript: t,
                mitm_attempted: true,
                decrypted_request: Some("adid=abc&event=launch".into()),
            },
            FlowRecord {
                dest: "cdn.fuzz.example".into(),
                at_secs: 9,
                origin: FlowOrigin::OsBackground,
                transcript: t2,
                mitm_attempted: false,
                decrypted_request: None,
            },
        ],
        window_secs: 30,
        faults: vec![FaultEvent {
            domain: Some("cdn.fuzz.example".into()),
            kind: FaultKind::TcpReset,
            at_secs: 9,
        }],
    }
}

/// A small valid journal (all outcome shapes) for the journal corpus.
fn sample_journal_bytes() -> Vec<u8> {
    use pinning_core::journal::{AppOutcome, JournalEntry, MeasuredApp, ResultJournal};
    use pinning_netsim::{InputLayer, MalformedKind, MeasurementError};

    let mut j = ResultJournal::create([7u8; 32]);
    j.append(&JournalEntry {
        app_index: 0,
        outcome: AppOutcome::Measured(Box::new(MeasuredApp {
            pinned_destinations: vec!["api.fuzz.example".into()],
            used_destinations: vec!["api.fuzz.example".into(), "cdn.fuzz.example".into()],
            weak_overall: true,
            weak_pinned: false,
            pinned_bodies: vec![],
            unpinned_bodies: vec!["k=v".into()],
            circumvention: Some((vec!["api.fuzz.example".into()], vec![])),
            n_handshakes_baseline: 12,
            settled_rerun: false,
            breaker_trips: 1,
        })),
    });
    j.append(&JournalEntry {
        app_index: 3,
        outcome: AppOutcome::Failed(MeasurementError::MalformedInput {
            layer: InputLayer::Chain,
            reason: MalformedKind::LimitExceeded,
        }),
    });
    j.into_bytes()
}

/// Asserts every budgeted decoder rejects over-budget input with a
/// structured `LimitExceeded`-class error *before* doing real work.
/// Returns the number of contracts checked.
pub fn assert_budgets_respected() -> usize {
    use pinning_crypto::base64::B64Error;
    use pinning_crypto::hex::HexError;
    use pinning_pki::error::DecodeError;
    use pinning_pki::limits::{Budget, Limit};

    let strict = Budget::strict();
    let big_bytes = vec![0u8; strict.max_input_bytes + 1];
    let big_text = "A".repeat(strict.max_input_bytes + 1);
    let mut n = 0;

    assert!(matches!(
        pinning_pki::Certificate::from_der_with_budget(&big_bytes, &strict),
        Err(DecodeError::LimitExceeded(Limit::InputBytes))
    ));
    n += 1;
    assert!(matches!(
        pinning_pki::encode::pem_decode_all_with_budget(&big_text, &strict),
        Err(DecodeError::LimitExceeded(Limit::InputBytes))
    ));
    n += 1;
    assert!(matches!(
        pinning_app::xml::parse_with_budget(&big_text, &strict),
        Err(pinning_app::xml::XmlError::LimitExceeded(Limit::InputBytes))
    ));
    n += 1;
    assert!(matches!(
        pinning_app::nsc::NetworkSecurityConfig::from_xml_with_budget(&big_text, &strict),
        Err(pinning_app::xml::XmlError::LimitExceeded(Limit::InputBytes))
    ));
    n += 1;
    assert!(matches!(
        pinning_netsim::simcap::deserialize_with_budget(&big_bytes, &strict),
        Err(DecodeError::LimitExceeded(Limit::InputBytes))
    ));
    n += 1;
    assert!(matches!(
        pinning_crypto::b64decode_bounded(&big_text, strict.max_input_bytes),
        Err(B64Error::TooLong { .. })
    ));
    n += 1;
    assert!(matches!(
        pinning_crypto::hex_decode_bounded(&big_text, strict.max_input_bytes),
        Err(HexError::TooLong { .. })
    ));
    n += 1;
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_corpus_entry_is_accepted_unmutated() {
        for t in all_targets() {
            for (i, input) in t.corpus.iter().enumerate() {
                assert!(
                    (t.decode)(input),
                    "target {} rejects its own corpus entry {i}",
                    t.name
                );
            }
        }
    }

    #[test]
    fn smoke_run_is_panic_free_and_rejects_something() {
        with_silent_panics(|| {
            for t in all_targets() {
                let r = run_target(&t, 500, 0x5EED).unwrap_or_else(|f| panic!("{f}"));
                assert_eq!(r.cases as u64, r.accepted + r.rejected);
                assert!(r.rejected > 0, "target {} rejected nothing", t.name);
            }
        });
    }

    #[test]
    fn runs_are_deterministic_under_a_fixed_seed() {
        let (a, b) = with_silent_panics(|| {
            let ta = all_targets();
            let a: Vec<_> = ta
                .iter()
                .map(|t| run_target(t, 300, 0xD5).expect("panic-free"))
                .collect();
            let tb = all_targets();
            let b: Vec<_> = tb
                .iter()
                .map(|t| run_target(t, 300, 0xD5).expect("panic-free"))
                .collect();
            (a, b)
        });
        assert_eq!(a, b);
    }

    #[test]
    fn budget_contracts_hold() {
        assert_eq!(assert_budgets_respected(), 7);
    }
}
