//! Certificate Transparency log simulation — the crt.sh substitute.
//!
//! The paper associates SPKI hashes found statically in apps with real
//! certificates by querying crt.sh (§4.1.3), which indexes CT logs. They
//! could resolve ~50% of unique pins — CT coverage is incomplete, because
//! only publicly-issued certificates get logged (private/custom-PKI certs
//! don't, and neither do certificates for keys that never appeared in a
//! logged cert).
//!
//! [`CtLog`] is an append-only log with SPKI-hash and common-name indexes;
//! the world generator submits exactly the publicly-issued certificates, so
//! the same partial-coverage phenomenon emerges during analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pinning_pki::pin::PinAlgorithm;
use pinning_pki::Certificate;
use std::collections::HashMap;

/// A single log entry.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Index in the log (append order).
    pub index: u64,
    /// The logged certificate.
    pub cert: Certificate,
}

/// An append-only CT log with crt.sh-style query indexes.
#[derive(Debug, Default)]
pub struct CtLog {
    entries: Vec<LogEntry>,
    by_spki_sha256: HashMap<[u8; 32], Vec<usize>>,
    by_spki_sha1: HashMap<[u8; 20], Vec<usize>>,
    by_common_name: HashMap<String, Vec<usize>>,
    by_fingerprint: HashMap<[u8; 32], usize>,
}

impl CtLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submits a certificate. Idempotent per certificate fingerprint;
    /// returns the entry index.
    pub fn submit(&mut self, cert: Certificate) -> u64 {
        let fp = cert.fingerprint_sha256();
        if let Some(&idx) = self.by_fingerprint.get(&fp) {
            return self.entries[idx].index;
        }
        let idx = self.entries.len();
        self.by_spki_sha256
            .entry(cert.spki_sha256())
            .or_default()
            .push(idx);
        self.by_spki_sha1
            .entry(cert.spki_sha1())
            .or_default()
            .push(idx);
        self.by_common_name
            .entry(cert.tbs.subject.common_name.clone())
            .or_default()
            .push(idx);
        self.by_fingerprint.insert(fp, idx);
        self.entries.push(LogEntry {
            index: idx as u64,
            cert,
        });
        idx as u64
    }

    /// crt.sh-style lookup: all logged certificates whose SPKI digest (under
    /// `alg`) equals `digest`.
    pub fn search_by_spki_digest(&self, alg: PinAlgorithm, digest: &[u8]) -> Vec<&Certificate> {
        let idxs = match alg {
            PinAlgorithm::Sha256 => {
                let key: Result<[u8; 32], _> = digest.try_into();
                key.ok().and_then(|k| self.by_spki_sha256.get(&k))
            }
            PinAlgorithm::Sha1 => {
                let key: Result<[u8; 20], _> = digest.try_into();
                key.ok().and_then(|k| self.by_spki_sha1.get(&k))
            }
        };
        idxs.map(|v| v.iter().map(|&i| &self.entries[i].cert).collect())
            .unwrap_or_default()
    }

    /// Lookup by exact certificate fingerprint.
    pub fn search_by_fingerprint(&self, fp: &[u8; 32]) -> Option<&Certificate> {
        self.by_fingerprint.get(fp).map(|&i| &self.entries[i].cert)
    }

    /// Lookup by subject common name.
    pub fn search_by_common_name(&self, cn: &str) -> Vec<&Certificate> {
        self.by_common_name
            .get(cn)
            .map(|v| v.iter().map(|&i| &self.entries[i].cert).collect())
            .unwrap_or_default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in append order.
    pub fn iter(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;
    use pinning_pki::authority::CertificateAuthority;
    use pinning_pki::name::DistinguishedName;
    use pinning_pki::time::{SimTime, Validity, YEAR};

    fn certs() -> (Certificate, Certificate, Certificate) {
        let mut rng = SplitMix64::new(0xc7);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Root", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let key = KeyPair::generate(&mut rng);
        let a = root.issue_leaf(
            &["a.com".to_string()],
            "A",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        // Renewal with the same key — same SPKI, new fingerprint.
        let a2 = root.issue_leaf(
            &["a.com".to_string()],
            "A",
            &key,
            Validity::starting(SimTime(YEAR), YEAR),
        );
        let kb = KeyPair::generate(&mut rng);
        let b = root.issue_leaf(
            &["b.com".to_string()],
            "B",
            &kb,
            Validity::starting(SimTime(0), YEAR),
        );
        (a, a2, b)
    }

    #[test]
    fn spki_lookup_finds_all_certs_for_key() {
        let (a, a2, b) = certs();
        let mut log = CtLog::new();
        log.submit(a.clone());
        log.submit(a2.clone());
        log.submit(b.clone());
        let hits = log.search_by_spki_digest(PinAlgorithm::Sha256, &a.spki_sha256());
        assert_eq!(hits.len(), 2, "both renewals share the SPKI");
        let hits1 = log.search_by_spki_digest(PinAlgorithm::Sha1, &a.spki_sha1());
        assert_eq!(hits1.len(), 2);
    }

    #[test]
    fn unlogged_pin_resolves_to_nothing() {
        let (a, _, b) = certs();
        let mut log = CtLog::new();
        log.submit(b);
        assert!(log
            .search_by_spki_digest(PinAlgorithm::Sha256, &a.spki_sha256())
            .is_empty());
    }

    #[test]
    fn submit_is_idempotent() {
        let (a, _, _) = certs();
        let mut log = CtLog::new();
        let i1 = log.submit(a.clone());
        let i2 = log.submit(a.clone());
        assert_eq!(i1, i2);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn fingerprint_and_cn_lookup() {
        let (a, a2, _) = certs();
        let mut log = CtLog::new();
        log.submit(a.clone());
        log.submit(a2.clone());
        assert_eq!(
            log.search_by_fingerprint(&a.fingerprint_sha256())
                .unwrap()
                .tbs
                .serial,
            a.tbs.serial
        );
        assert_eq!(log.search_by_common_name("a.com").len(), 2);
        assert!(log.search_by_common_name("nope.com").is_empty());
    }

    #[test]
    fn bad_digest_length_is_harmless() {
        let log = CtLog::new();
        assert!(log
            .search_by_spki_digest(PinAlgorithm::Sha256, &[0u8; 7])
            .is_empty());
    }
}
