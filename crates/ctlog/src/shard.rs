//! Sharded log deployments.
//!
//! Real CT is not one log: operators (Google Argon/Xenon, Cloudflare
//! Nimbus, DigiCert Yeti, …) each run *temporally sharded* logs that only
//! accept certificates whose validity falls inside the shard's epoch, and
//! each operator applies its own submission policy. crt.sh's coverage is
//! the union of what those shards accepted — which is why the paper could
//! resolve only ~50% of pins through it (§4.1.3).
//!
//! [`LogSet`] models that deployment: every certificate is *offered* to
//! every shard; a shard stores it only if its [`ShardPolicy`] accepts
//! (epoch window on `not_before`, then a deterministic per-(shard, cert)
//! acceptance draw modeling operator submission behavior). Incomplete
//! coverage is therefore a structural property of the shard topology, not
//! a single global coin.

use crate::{CtLog, LogEntry};
use pinning_crypto::sig::KeyPair;
use pinning_crypto::SplitMix64;
use pinning_pki::pin::PinAlgorithm;
use pinning_pki::time::{SimTime, Validity, YEAR};
use pinning_pki::Certificate;
use std::collections::HashSet;

/// A shard's submission policy.
#[derive(Debug, Clone)]
pub struct ShardPolicy {
    /// Accepted `not_before` epoch (inclusive window).
    pub window: Validity,
    /// Acceptance probability for end-entity certificates.
    pub leaf_acceptance: f64,
    /// Acceptance probability for CA certificates (crt.sh's SPKI index is
    /// not exhaustive for CA material either).
    pub ca_acceptance: f64,
}

impl ShardPolicy {
    /// A policy accepting everything in `window`.
    pub fn open(window: Validity) -> Self {
        ShardPolicy {
            window,
            leaf_acceptance: 1.0,
            ca_acceptance: 1.0,
        }
    }

    /// Whether this shard accepts `cert`, deterministically per
    /// (shard identity, certificate fingerprint): every chain sharing a CA
    /// agrees on that CA's fate, and resubmission cannot change the
    /// outcome. `shard_id` is the shard's log id, so distinct worlds
    /// (distinct log keys) draw independent acceptance coins.
    pub fn accepts(&self, shard_id: &[u8; 32], cert: &Certificate) -> bool {
        if !self.window.contains(cert.tbs.validity.not_before) {
            return false;
        }
        let rate = if cert.tbs.is_ca {
            self.ca_acceptance
        } else {
            self.leaf_acceptance
        };
        let mut coin = SplitMix64::new(0x5eed_c710)
            .derive(&pinning_crypto::hex_encode(shard_id))
            .derive(&pinning_crypto::hex_encode(&cert.fingerprint_sha256()));
        coin.chance(rate)
    }
}

/// One deployed log shard: a [`CtLog`] plus operator identity and policy.
#[derive(Debug)]
pub struct LogShard {
    /// Shard name, e.g. `"argon-2023"`.
    pub name: String,
    /// Operator running the shard.
    pub operator: String,
    /// Submission policy.
    pub policy: ShardPolicy,
    /// The underlying verifiable log.
    pub log: CtLog,
}

impl LogShard {
    /// Creates a shard with its own signing key.
    pub fn new(
        name: impl Into<String>,
        operator: impl Into<String>,
        policy: ShardPolicy,
        key: KeyPair,
    ) -> Self {
        LogShard {
            name: name.into(),
            operator: operator.into(),
            policy,
            log: CtLog::with_key(key),
        }
    }
}

/// A locator for an entry inside a [`LogSet`]: (shard index, entry index).
pub type EntryLocator = (usize, u64);

/// The deployed CT ecosystem: every shard, in a stable order.
#[derive(Debug, Default)]
pub struct LogSet {
    shards: Vec<LogShard>,
}

impl LogSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a shard; returns its index.
    pub fn push_shard(&mut self, shard: LogShard) -> usize {
        self.shards.push(shard);
        self.shards.len() - 1
    }

    /// Builds the simulation's standard topology: two operators
    /// ("argon", "nimbus"), each running two temporal shards split one
    /// year before `now`. CA material (issued at the simulation epoch)
    /// lands in the older shards; server leaves (issued ~30 days before
    /// `now`) land in the recent ones. Per-shard acceptance is derated so
    /// the *union* coverage matches `leaf_coverage` / `ca_coverage`:
    /// with `k` shards per epoch, `p = 1 - (1 - coverage)^(1/k)`.
    pub fn sim_ecosystem(
        now: SimTime,
        leaf_coverage: f64,
        ca_coverage: f64,
        rng: &mut SplitMix64,
    ) -> Self {
        const OPERATORS: [&str; 2] = ["argon", "nimbus"];
        let derate = |coverage: f64| 1.0 - (1.0 - coverage).sqrt();
        let boundary = now - YEAR;
        let old_epoch = Validity {
            not_before: SimTime::EPOCH,
            not_after: boundary - 1,
        };
        let new_epoch = Validity {
            not_before: boundary,
            not_after: SimTime(u64::MAX),
        };
        let mut set = LogSet::new();
        for op in OPERATORS {
            for (epoch_name, window) in [("legacy", old_epoch), ("current", new_epoch)] {
                let policy = ShardPolicy {
                    window,
                    leaf_acceptance: derate(leaf_coverage),
                    ca_acceptance: derate(ca_coverage),
                };
                let key = KeyPair::generate(&mut rng.derive(&format!("ct-key/{op}/{epoch_name}")));
                set.push_shard(LogShard::new(
                    format!("{op}-{epoch_name}"),
                    format!("{op} CT"),
                    policy,
                    key,
                ));
            }
        }
        set
    }

    /// Offers `cert` to every shard; each accepting shard stores it.
    /// Returns how many shards logged it (0 = the certificate is not in
    /// CT at all).
    pub fn submit(&mut self, cert: &Certificate) -> usize {
        let mut logged = 0;
        for shard in &mut self.shards {
            if shard.policy.accepts(&shard.log.log_id(), cert) {
                shard.log.submit(cert.clone());
                logged += 1;
            }
        }
        logged
    }

    /// Force-logs `cert` into every shard whose temporal window covers it,
    /// bypassing the acceptance draw — CT-coverage *growth*. Real coverage
    /// grows over time as crawlers and monitors backfill certificates the
    /// CA never submitted; [`LogSet::submit`]'s deterministic per-(shard,
    /// cert) coin makes resubmission a no-op by design, so growth events
    /// need this separate path. Shards that already hold the certificate
    /// are skipped. Returns how many shards gained an entry.
    pub fn backfill(&mut self, cert: &Certificate) -> usize {
        let fp = cert.fingerprint_sha256();
        let mut logged = 0;
        for shard in &mut self.shards {
            if !shard.policy.window.contains(cert.tbs.validity.not_before) {
                continue;
            }
            if shard.log.search_by_fingerprint(&fp).is_some() {
                continue;
            }
            shard.log.submit(cert.clone());
            logged += 1;
        }
        logged
    }

    /// The shards, in stable order.
    pub fn shards(&self) -> &[LogShard] {
        &self.shards
    }

    /// Total entries across all shards (a certificate logged by two shards
    /// counts twice, as it would in crt.sh's per-log tables).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.log.len()).sum()
    }

    /// Whether no shard has any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct certificates across shards.
    pub fn n_unique_certs(&self) -> usize {
        let mut seen = HashSet::new();
        for shard in &self.shards {
            for e in shard.log.iter() {
                seen.insert(e.cert.fingerprint_sha256());
            }
        }
        seen.len()
    }

    /// The certificate at a locator.
    pub fn entry_cert(&self, loc: EntryLocator) -> Option<&Certificate> {
        self.shards
            .get(loc.0)
            .and_then(|s| s.log.entry(loc.1))
            .map(|e| &e.cert)
    }

    /// Locators of every logged certificate matching an SPKI digest,
    /// deduplicated by certificate fingerprint (a cert logged in two
    /// shards resolves once), in (shard, entry) order.
    pub fn lookup_spki(&self, alg: PinAlgorithm, digest: &[u8]) -> Vec<EntryLocator> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            for idx in shard.log.spki_digest_indices(alg, digest) {
                let cert = &shard.log.entry(idx as u64).expect("index valid").cert;
                if seen.insert(cert.fingerprint_sha256()) {
                    out.push((si, idx as u64));
                }
            }
        }
        out
    }

    /// crt.sh-style union query: all logged certificates whose SPKI digest
    /// (under `alg`) equals `digest`, deduplicated by fingerprint.
    pub fn search_by_spki_digest(&self, alg: PinAlgorithm, digest: &[u8]) -> Vec<&Certificate> {
        self.lookup_spki(alg, digest)
            .into_iter()
            .map(|loc| self.entry_cert(loc).expect("locator valid"))
            .collect()
    }

    /// Union lookup by exact certificate fingerprint.
    pub fn search_by_fingerprint(&self, fp: &[u8; 32]) -> Option<&Certificate> {
        self.shards
            .iter()
            .find_map(|s| s.log.search_by_fingerprint(fp))
    }

    /// Union lookup by hostname (CN and SANs), deduplicated by fingerprint.
    pub fn search_by_hostname(&self, name: &str) -> Vec<&Certificate> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for shard in &self.shards {
            for cert in shard.log.search_by_hostname(name) {
                if seen.insert(cert.fingerprint_sha256()) {
                    out.push(cert);
                }
            }
        }
        out
    }

    /// Union lookup by subject common name only, deduplicated by
    /// fingerprint (prefer [`LogSet::search_by_hostname`]).
    pub fn search_by_common_name(&self, cn: &str) -> Vec<&Certificate> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for shard in &self.shards {
            for cert in shard.log.search_by_common_name(cn) {
                if seen.insert(cert.fingerprint_sha256()) {
                    out.push(cert);
                }
            }
        }
        out
    }

    /// Iterates `(shard index, entry)` over every entry of every shard.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, &LogEntry)> {
        self.shards
            .iter()
            .enumerate()
            .flat_map(|(si, s)| s.log.iter().map(move |e| (si, e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_pki::authority::CertificateAuthority;
    use pinning_pki::name::DistinguishedName;

    fn leaf_at(rng: &mut SplitMix64, host: &str, not_before: SimTime) -> Certificate {
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Root", "Sim", "US"),
            rng,
            SimTime(0),
        );
        let key = KeyPair::generate(rng);
        root.issue_leaf(
            &[host.to_string()],
            "Org",
            &key,
            Validity::starting(not_before, YEAR),
        )
    }

    fn now() -> SimTime {
        SimTime::at(5, 0, 0)
    }

    #[test]
    fn backfill_forces_coverage_within_window_only() {
        let mut rng = SplitMix64::new(7);
        // Zero acceptance: normal submission never logs anything.
        let mut set = LogSet::sim_ecosystem(now(), 0.0, 0.0, &mut rng);
        let new = leaf_at(&mut rng, "grow.com", now() - 30 * 86_400);
        assert_eq!(set.submit(&new), 0, "coin rejects everything");
        // Backfill bypasses the coin but still respects temporal windows:
        // only the two "current" shards cover this not_before.
        assert_eq!(set.backfill(&new), 2);
        // Idempotent: already-present entries are skipped.
        assert_eq!(set.backfill(&new), 0);
        assert_eq!(set.n_unique_certs(), 1);
    }

    #[test]
    fn temporal_windows_route_by_not_before() {
        let mut rng = SplitMix64::new(1);
        let mut set = LogSet::sim_ecosystem(now(), 1.0, 1.0, &mut rng);
        let old = leaf_at(&mut rng, "old.com", SimTime::EPOCH);
        let new = leaf_at(&mut rng, "new.com", now() - 30 * 86_400);
        assert_eq!(set.submit(&old), 2, "both legacy shards accept");
        assert_eq!(set.submit(&new), 2, "both current shards accept");
        for shard in set.shards() {
            assert_eq!(shard.log.len(), 1, "{}", shard.name);
        }
    }

    #[test]
    fn acceptance_is_deterministic_and_partial() {
        let mut rng = SplitMix64::new(2);
        let mut set = LogSet::sim_ecosystem(now(), 0.4, 0.5, &mut rng);
        let mut logged = 0;
        let mut offered = 0;
        for i in 0..120 {
            let cert = leaf_at(&mut rng, &format!("h{i}.com"), now() - 30 * 86_400);
            let first = set.submit(&cert);
            assert_eq!(
                first,
                set.shards()
                    .iter()
                    .filter(|s| s.policy.accepts(&s.log.log_id(), &cert))
                    .count()
            );
            // Resubmission is idempotent at the set level too.
            let before = set.len();
            set.submit(&cert);
            assert_eq!(set.len(), before);
            offered += 1;
            if first > 0 {
                logged += 1;
            }
        }
        assert!(logged > 0, "coverage must not collapse to zero");
        assert!(logged < offered, "coverage must stay partial");
    }

    #[test]
    fn union_query_dedups_across_shards() {
        let mut rng = SplitMix64::new(3);
        let mut set = LogSet::sim_ecosystem(now(), 1.0, 1.0, &mut rng);
        let cert = leaf_at(&mut rng, "dup.com", now() - 86_400);
        assert_eq!(set.submit(&cert), 2);
        assert_eq!(set.len(), 2, "two shard copies");
        assert_eq!(set.n_unique_certs(), 1);
        let hits = set.search_by_spki_digest(PinAlgorithm::Sha256, &cert.spki_sha256());
        assert_eq!(hits.len(), 1, "union query dedups by fingerprint");
        assert_eq!(set.search_by_hostname("dup.com").len(), 1);
        assert!(set
            .search_by_fingerprint(&cert.fingerprint_sha256())
            .is_some());
    }

    #[test]
    fn sim_ecosystem_is_deterministic() {
        let a = LogSet::sim_ecosystem(now(), 0.4, 0.5, &mut SplitMix64::new(9).derive("ct"));
        let b = LogSet::sim_ecosystem(now(), 0.4, 0.5, &mut SplitMix64::new(9).derive("ct"));
        for (x, y) in a.shards().iter().zip(b.shards()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.log.log_id(), y.log.log_id());
        }
        // Distinct shards sign with distinct keys.
        let ids: HashSet<_> = a.shards().iter().map(|s| s.log.log_id()).collect();
        assert_eq!(ids.len(), a.shards().len());
    }
}
