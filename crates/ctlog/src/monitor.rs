//! CT monitoring and auditing.
//!
//! A monitor tails each log shard: it fetches successive signed tree
//! heads, verifies the signature, demands a consistency proof against its
//! last checkpoint (catching history rewrites and split views), and
//! verifies inclusion proofs for the entries added since. An auditor
//! additionally cross-checks *what* was logged: a logged certificate for a
//! hostname whose ground-truth key differs is mis-issuance — the attack CT
//! exists to surface.
//!
//! Every violation becomes a typed [`AuditFinding`]; an honest, consistent
//! ecosystem audits clean.

use crate::shard::{LogSet, LogShard};
use crate::sth::SignedTreeHead;
use crate::{merkle, CtLog};
use pinning_crypto::sig::PublicKey;
use pinning_pki::time::SimTime;
use std::collections::{BTreeMap, HashMap};

/// What a monitor/auditor can flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditFindingKind {
    /// The STH signature does not verify under the log's key.
    InvalidSthSignature {
        /// Claimed tree size of the rejected head.
        tree_size: u64,
    },
    /// The new head is not a consistent extension of the checkpoint.
    InconsistentSth {
        /// Checkpointed tree size.
        old_size: u64,
        /// Claimed new tree size.
        new_size: u64,
    },
    /// An entry's inclusion proof fails against the signed head.
    InvalidInclusion {
        /// Entry index whose proof failed.
        index: u64,
    },
    /// A logged end-entity certificate covers a hostname whose
    /// ground-truth key differs.
    MisIssuance {
        /// The affected hostname.
        hostname: String,
        /// Log entry index of the offending certificate.
        index: u64,
    },
}

impl AuditFindingKind {
    /// Short label for report rendering.
    pub fn label(&self) -> &'static str {
        match self {
            AuditFindingKind::InvalidSthSignature { .. } => "invalid STH signature",
            AuditFindingKind::InconsistentSth { .. } => "inconsistent STH",
            AuditFindingKind::InvalidInclusion { .. } => "invalid inclusion proof",
            AuditFindingKind::MisIssuance { .. } => "mis-issuance",
        }
    }
}

/// One finding, attributed to the shard that produced the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// Name of the shard/log.
    pub log_name: String,
    /// What went wrong.
    pub kind: AuditFindingKind,
}

impl std::fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            AuditFindingKind::InvalidSthSignature { tree_size } => {
                write!(
                    f,
                    "{}: invalid STH signature (size {tree_size})",
                    self.log_name
                )
            }
            AuditFindingKind::InconsistentSth { old_size, new_size } => write!(
                f,
                "{}: inconsistent STH {old_size} -> {new_size}",
                self.log_name
            ),
            AuditFindingKind::InvalidInclusion { index } => {
                write!(
                    f,
                    "{}: invalid inclusion proof for entry {index}",
                    self.log_name
                )
            }
            AuditFindingKind::MisIssuance { hostname, index } => write!(
                f,
                "{}: mis-issued certificate for {hostname} (entry {index})",
                self.log_name
            ),
        }
    }
}

/// A monitor's per-log checkpoint: the last head it accepted.
#[derive(Debug, Clone)]
struct Checkpoint {
    sth: SignedTreeHead,
}

/// A CT monitor/auditor with per-log checkpoints and accumulated findings.
#[derive(Debug, Default)]
pub struct Monitor {
    checkpoints: HashMap<String, Checkpoint>,
    findings: Vec<AuditFinding>,
}

impl Monitor {
    /// Creates a monitor with no checkpoints.
    pub fn new() -> Self {
        Self::default()
    }

    /// All findings so far, in discovery order.
    pub fn findings(&self) -> &[AuditFinding] {
        &self.findings
    }

    /// Whether no violation has been found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The checkpointed tree size for a log, if any.
    pub fn checkpoint_size(&self, log_name: &str) -> Option<u64> {
        self.checkpoints.get(log_name).map(|c| c.sth.tree_size)
    }

    /// Observes one shard at `now`: asks the log for a fresh STH and runs
    /// [`Monitor::observe_sth`]. Returns the number of new findings.
    pub fn observe(&mut self, shard: &LogShard, now: SimTime) -> usize {
        let sth = shard.log.signed_tree_head(now);
        self.observe_sth(&shard.name, shard.log.public_key(), &shard.log, sth)
    }

    /// Observes every shard of a set at `now`.
    pub fn observe_set(&mut self, logs: &LogSet, now: SimTime) -> usize {
        logs.shards().iter().map(|s| self.observe(s, now)).sum()
    }

    /// Core monitoring step against an explicitly supplied STH (tests feed
    /// forged heads through here). Verifies, in order:
    ///
    /// 1. the STH signature under `public`;
    /// 2. consistency with the previous checkpoint (when one exists),
    ///    using a proof generated by the log;
    /// 3. inclusion of every entry added since the checkpoint, against the
    ///    new signed root.
    ///
    /// The checkpoint only advances when all checks pass; a rejected head
    /// leaves the old checkpoint in place, exactly so the *next* honest
    /// head is still compared against trusted state. Returns the number of
    /// new findings.
    pub fn observe_sth(
        &mut self,
        log_name: &str,
        public: &PublicKey,
        log: &CtLog,
        sth: SignedTreeHead,
    ) -> usize {
        let before = self.findings.len();
        if !sth.verify(public) {
            self.findings.push(AuditFinding {
                log_name: log_name.to_string(),
                kind: AuditFindingKind::InvalidSthSignature {
                    tree_size: sth.tree_size,
                },
            });
            return self.findings.len() - before;
        }
        let old = self.checkpoints.get(log_name).map(|c| c.sth.clone());
        let (old_size, consistent) = match &old {
            Some(cp) => {
                let proof = log
                    .consistency_proof_between(cp.tree_size, sth.tree_size)
                    .unwrap_or_default();
                (
                    cp.tree_size,
                    merkle::verify_consistency(
                        cp.tree_size,
                        sth.tree_size,
                        &cp.root_hash,
                        &sth.root_hash,
                        &proof,
                    ),
                )
            }
            None => (0, true),
        };
        if !consistent {
            self.findings.push(AuditFinding {
                log_name: log_name.to_string(),
                kind: AuditFindingKind::InconsistentSth {
                    old_size,
                    new_size: sth.tree_size,
                },
            });
            return self.findings.len() - before;
        }
        // Inclusion of every entry the checkpoint did not yet cover. Proofs
        // for the whole batch come from one authenticator pass over the
        // signed tree state instead of an O(n) recomputation per entry
        // (proof bytes are identical either way; the per-entry fallback
        // exists so the caching kill-switch can A/B the two paths).
        let auth = (old_size < sth.tree_size && pinning_pki::cache::caching_enabled())
            .then(|| log.authenticator(sth.tree_size))
            .flatten();
        let mut all_included = true;
        for index in old_size..sth.tree_size {
            let proof = match &auth {
                Some(a) => a.inclusion_proof(index),
                None => log.inclusion_proof(index, sth.tree_size),
            };
            let ok = log
                .leaf_hash(index)
                .zip(proof)
                .map(|(leaf, proof)| {
                    merkle::verify_inclusion(&leaf, index, sth.tree_size, &proof, &sth.root_hash)
                })
                .unwrap_or(false);
            if !ok {
                all_included = false;
                self.findings.push(AuditFinding {
                    log_name: log_name.to_string(),
                    kind: AuditFindingKind::InvalidInclusion { index },
                });
            }
        }
        if all_included {
            self.checkpoints
                .insert(log_name.to_string(), Checkpoint { sth });
        }
        self.findings.len() - before
    }

    /// Audits logged content against ground truth: `truth` maps exact
    /// hostnames to the SHA-256 of the SPKI legitimately keyed for them. A
    /// logged end-entity certificate naming a known hostname (CN or exact
    /// SAN; wildcard SANs are skipped) under a *different* key is flagged
    /// as mis-issuance. Returns the number of new findings.
    pub fn audit_misissuance(
        &mut self,
        logs: &LogSet,
        truth: &BTreeMap<String, [u8; 32]>,
    ) -> usize {
        let before = self.findings.len();
        for shard in logs.shards() {
            for entry in shard.log.iter() {
                let cert = &entry.cert;
                if cert.tbs.is_ca {
                    continue;
                }
                let spki = cert.spki_sha256();
                let mut names: Vec<&str> = vec![&cert.tbs.subject.common_name];
                for san in &cert.tbs.san {
                    if !san.contains('*') && !names.contains(&san.as_str()) {
                        names.push(san);
                    }
                }
                for name in names {
                    if truth.get(name).is_some_and(|expected| *expected != spki) {
                        self.findings.push(AuditFinding {
                            log_name: shard.name.clone(),
                            kind: AuditFindingKind::MisIssuance {
                                hostname: name.to_string(),
                                index: entry.index,
                            },
                        });
                    }
                }
            }
        }
        self.findings.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardPolicy;
    use crate::LogShard;
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;
    use pinning_pki::authority::CertificateAuthority;
    use pinning_pki::name::DistinguishedName;
    use pinning_pki::time::{Validity, YEAR};

    fn shard() -> LogShard {
        let window = Validity {
            not_before: SimTime::EPOCH,
            not_after: SimTime(u64::MAX),
        };
        LogShard::new(
            "test-shard",
            "Test Op",
            ShardPolicy::open(window),
            KeyPair::generate(&mut SplitMix64::new(0xAB)),
        )
    }

    fn leaf(rng: &mut SplitMix64, host: &str) -> pinning_pki::Certificate {
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Root", "Sim", "US"),
            rng,
            SimTime(0),
        );
        let key = KeyPair::generate(rng);
        root.issue_leaf(
            &[host.to_string()],
            "Org",
            &key,
            Validity::starting(SimTime(0), YEAR),
        )
    }

    #[test]
    fn honest_log_audits_clean_across_growth() {
        let mut rng = SplitMix64::new(1);
        let mut s = shard();
        let mut mon = Monitor::new();
        for round in 0..4u64 {
            for i in 0..3 {
                s.log.submit(leaf(&mut rng, &format!("r{round}h{i}.com")));
            }
            assert_eq!(mon.observe(&s, SimTime(round * 100)), 0);
            assert_eq!(mon.checkpoint_size("test-shard"), Some(s.log.len() as u64));
        }
        assert!(mon.is_clean());
    }

    #[test]
    fn forged_signature_flagged() {
        let mut rng = SplitMix64::new(2);
        let mut s = shard();
        s.log.submit(leaf(&mut rng, "a.com"));
        let mut sth = s.log.signed_tree_head(SimTime(10));
        sth.signature.0[0] ^= 1;
        let mut mon = Monitor::new();
        mon.observe_sth(&s.name, s.log.public_key(), &s.log, sth);
        assert!(matches!(
            mon.findings()[0].kind,
            AuditFindingKind::InvalidSthSignature { tree_size: 1 }
        ));
        // Rejected head must not advance the checkpoint.
        assert_eq!(mon.checkpoint_size("test-shard"), None);
    }

    #[test]
    fn rewritten_history_flagged_as_inconsistent() {
        let mut rng = SplitMix64::new(3);
        let mut s = shard();
        s.log.submit(leaf(&mut rng, "a.com"));
        s.log.submit(leaf(&mut rng, "b.com"));
        let mut mon = Monitor::new();
        assert_eq!(mon.observe(&s, SimTime(10)), 0);
        // The log "rewrites history": signs a head whose root does not
        // extend the checkpointed tree.
        s.log.submit(leaf(&mut rng, "c.com"));
        let honest = s.log.signed_tree_head(SimTime(20));
        let forged = s.log.sign_head(honest.tree_size, SimTime(20), [9u8; 32]);
        mon.observe_sth(&s.name, s.log.public_key(), &s.log, forged);
        assert!(matches!(
            mon.findings()[0].kind,
            AuditFindingKind::InconsistentSth {
                old_size: 2,
                new_size: 3
            }
        ));
        // Checkpoint survived; the honest head still verifies against it.
        assert_eq!(mon.checkpoint_size("test-shard"), Some(2));
        assert_eq!(
            mon.observe_sth(&s.name, s.log.public_key(), &s.log, honest),
            0
        );
    }

    #[test]
    fn misissuance_flagged_against_truth() {
        let mut rng = SplitMix64::new(4);
        let mut set = LogSet::new();
        set.push_shard(shard());
        let good = leaf(&mut rng, "bank.com");
        let rogue = leaf(&mut rng, "bank.com"); // different key, same name
        let mut truth = BTreeMap::new();
        truth.insert("bank.com".to_string(), good.spki_sha256());
        // Only the good cert logged: clean.
        set.submit(&good);
        let mut mon = Monitor::new();
        assert_eq!(mon.audit_misissuance(&set, &truth), 0);
        // Rogue cert appears in the log: flagged.
        set.submit(&rogue);
        assert_eq!(mon.audit_misissuance(&set, &truth), 1);
        assert!(matches!(
            &mon.findings()[0].kind,
            AuditFindingKind::MisIssuance { hostname, .. } if hostname == "bank.com"
        ));
    }

    #[test]
    fn finding_display_is_informative() {
        let f = AuditFinding {
            log_name: "argon-current".into(),
            kind: AuditFindingKind::MisIssuance {
                hostname: "x.com".into(),
                index: 7,
            },
        };
        let s = f.to_string();
        assert!(s.contains("argon-current") && s.contains("x.com") && s.contains('7'));
    }
}
