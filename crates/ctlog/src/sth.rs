//! Signed tree heads.
//!
//! A log commits to its state by signing `(log_id, tree_size, timestamp,
//! root_hash)` with its log key. Monitors compare successive STHs from the
//! same log and demand consistency proofs between them; a log that signs
//! two irreconcilable heads has equivocated, and the signatures are the
//! non-repudiable evidence. The signature scheme is the simulation's
//! keyed-hash stand-in ([`pinning_crypto::sig`]) — the *trust model* (who
//! can mint valid heads, what a verifier checks) is the real one.

use pinning_crypto::sig::{KeyPair, PublicKey, Signature};
use pinning_pki::time::SimTime;

/// Identifier of a log: SHA-256 of its public key's SPKI, as in RFC 6962.
pub type LogId = [u8; 32];

/// A signed tree head: the log's signed commitment to its first
/// `tree_size` entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedTreeHead {
    /// The issuing log.
    pub log_id: LogId,
    /// Number of entries covered.
    pub tree_size: u64,
    /// When the head was signed.
    pub timestamp: SimTime,
    /// Merkle root over the first `tree_size` entries.
    pub root_hash: [u8; 32],
    /// Log signature over the fields above.
    pub signature: Signature,
}

impl SignedTreeHead {
    /// The deterministic byte string the log signs.
    pub fn signing_input(
        log_id: &LogId,
        tree_size: u64,
        timestamp: SimTime,
        root_hash: &[u8; 32],
    ) -> Vec<u8> {
        let mut buf = Vec::with_capacity(6 + 32 + 8 + 8 + 32);
        buf.extend_from_slice(b"sth-v1");
        buf.extend_from_slice(log_id);
        buf.extend_from_slice(&tree_size.to_be_bytes());
        buf.extend_from_slice(&timestamp.secs().to_be_bytes());
        buf.extend_from_slice(root_hash);
        buf
    }

    /// Signs a tree head.
    pub fn sign(
        key: &KeyPair,
        log_id: LogId,
        tree_size: u64,
        timestamp: SimTime,
        root_hash: [u8; 32],
    ) -> Self {
        let input = Self::signing_input(&log_id, tree_size, timestamp, &root_hash);
        SignedTreeHead {
            log_id,
            tree_size,
            timestamp,
            root_hash,
            signature: key.sign(&input),
        }
    }

    /// Verifies the signature against the log's public key.
    pub fn verify(&self, public: &PublicKey) -> bool {
        let input = Self::signing_input(
            &self.log_id,
            self.tree_size,
            self.timestamp,
            &self.root_hash,
        );
        public.verify(&input, &self.signature)
    }
}

/// Derives a log's identifier from its public key.
pub fn log_id_for(public: &PublicKey) -> LogId {
    pinning_crypto::sha256(&public.spki)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_crypto::SplitMix64;

    fn kp(seed: u64) -> KeyPair {
        KeyPair::generate(&mut SplitMix64::new(seed))
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = kp(1);
        let id = log_id_for(&key.public);
        let sth = SignedTreeHead::sign(&key, id, 42, SimTime(1000), [7u8; 32]);
        assert!(sth.verify(&key.public));
    }

    #[test]
    fn any_field_tamper_breaks_signature() {
        let key = kp(2);
        let id = log_id_for(&key.public);
        let sth = SignedTreeHead::sign(&key, id, 42, SimTime(1000), [7u8; 32]);
        let mut a = sth.clone();
        a.tree_size += 1;
        assert!(!a.verify(&key.public));
        let mut b = sth.clone();
        b.timestamp = SimTime(1001);
        assert!(!b.verify(&key.public));
        let mut c = sth.clone();
        c.root_hash[0] ^= 1;
        assert!(!c.verify(&key.public));
        let mut d = sth.clone();
        d.log_id[31] ^= 1;
        assert!(!d.verify(&key.public));
        let mut e = sth;
        e.signature.0[16] ^= 1;
        assert!(!e.verify(&key.public));
    }

    #[test]
    fn wrong_key_rejected() {
        let key = kp(3);
        let other = kp(4);
        let id = log_id_for(&key.public);
        let sth = SignedTreeHead::sign(&key, id, 1, SimTime(5), [0u8; 32]);
        assert!(!sth.verify(&other.public));
    }

    #[test]
    fn log_ids_are_distinct_per_key() {
        assert_ne!(log_id_for(&kp(5).public), log_id_for(&kp(6).public));
    }
}
