//! The cached pin-resolution service.
//!
//! Resolving a statically-extracted SPKI pin through CT (§4.1.3) is the
//! hot path of certificate association: the same SDK pin appears in
//! hundreds of apps, and the flat-lookup approach re-queried the log for
//! every occurrence. [`PinResolver`] memoizes (algorithm, digest) →
//! matching log entries over a [`LogSet`], so each unique pin costs one
//! underlying union lookup, and keeps hit/miss counters the report layer
//! turns into real coverage statistics.

use crate::merkle::TreeAuthenticator;
use crate::shard::{EntryLocator, LogSet};
use pinning_pki::pin::PinAlgorithm;
use pinning_pki::Certificate;
use pinning_resilience::{Deadline, DeadlineExceeded};
use std::cell::{Cell, RefCell};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Work units charged for probing the locator memo (or, on a miss, as the
/// flat per-query overhead of the underlying union lookup).
pub const COST_LOCATOR_LOOKUP: u64 = 3;
/// Work units charged per `tree_size / PROOF_COST_DIVISOR` leaves when an
/// authenticator must be built fresh (the O(n) hashing pass).
pub const PROOF_COST_DIVISOR: u64 = 4;
/// Work units charged for assembling a proof from a ready authenticator.
pub const COST_PROOF_ASSEMBLY: u64 = 8;

/// Cache key → locators of every matching entry (empty = known-unresolvable).
type LocatorCache = HashMap<(u8, Vec<u8>), Vec<EntryLocator>>;

/// Resolver cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Queries answered from the memo.
    pub hits: u64,
    /// Queries that went to the underlying log set.
    pub misses: u64,
    /// Of the misses, how many resolved to at least one logged cert.
    pub resolved_unique: u64,
}

impl ResolverStats {
    /// Total queries served.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Cache hit rate in `[0, 1]` (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

/// A memoizing SPKI→log-entries resolver over a [`LogSet`].
///
/// Results are byte-identical to [`LogSet::search_by_spki_digest`] — the
/// cache stores entry *locators*, so answers are always served from the
/// log's own storage — but at most one underlying lookup is performed per
/// unique (algorithm, digest).
#[derive(Debug)]
pub struct PinResolver<'a> {
    logs: &'a LogSet,
    cache: RefCell<LocatorCache>,
    /// One [`TreeAuthenticator`] per (shard index, tree size): proving many
    /// entries under the same signed tree state costs one hashing pass.
    auth_cache: RefCell<HashMap<(usize, u64), TreeAuthenticator>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    resolved_unique: Cell<u64>,
}

fn alg_tag(alg: PinAlgorithm) -> u8 {
    match alg {
        PinAlgorithm::Sha256 => 0,
        PinAlgorithm::Sha1 => 1,
    }
}

impl<'a> PinResolver<'a> {
    /// Creates a resolver with an empty cache.
    pub fn new(logs: &'a LogSet) -> Self {
        PinResolver {
            logs,
            cache: RefCell::new(HashMap::new()),
            auth_cache: RefCell::new(HashMap::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
            resolved_unique: Cell::new(0),
        }
    }

    /// The underlying log set.
    pub fn logs(&self) -> &'a LogSet {
        self.logs
    }

    /// Resolves a pin digest to every logged certificate carrying that
    /// SPKI (crt.sh association), memoized.
    pub fn resolve(&self, alg: PinAlgorithm, digest: &[u8]) -> Vec<&'a Certificate> {
        self.locate(alg, digest)
            .into_iter()
            .map(|loc| self.logs.entry_cert(loc).expect("cached locator valid"))
            .collect()
    }

    /// Whether the pin resolves to at least one logged certificate.
    pub fn resolves(&self, alg: PinAlgorithm, digest: &[u8]) -> bool {
        !self.locate(alg, digest).is_empty()
    }

    /// Memoized locator lookup: every log entry whose certificate carries
    /// the pinned SPKI, as (shard, index) locators. Counts toward
    /// [`ResolverStats`] like [`PinResolver::resolve`].
    pub fn resolve_locators(&self, alg: PinAlgorithm, digest: &[u8]) -> Vec<EntryLocator> {
        self.locate(alg, digest)
    }

    /// Probes the locator memo without querying the underlying logs:
    /// `Some(locators)` iff this exact pin has already been resolved.
    /// Does **not** touch the hit/miss counters — this is the brownout
    /// path of `pinning-serve`, accounted by the service, not the study.
    pub fn cached_resolution(&self, alg: PinAlgorithm, digest: &[u8]) -> Option<Vec<EntryLocator>> {
        let key = (alg_tag(alg), digest.to_vec());
        self.cache.borrow().get(&key).cloned()
    }

    fn locate(&self, alg: PinAlgorithm, digest: &[u8]) -> Vec<EntryLocator> {
        let key = (alg_tag(alg), digest.to_vec());
        if let Some(locs) = self.cache.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            return locs.clone();
        }
        self.misses.set(self.misses.get() + 1);
        let locs = self.logs.lookup_spki(alg, digest);
        if !locs.is_empty() {
            self.resolved_unique.set(self.resolved_unique.get() + 1);
        }
        self.cache.borrow_mut().insert(key, locs.clone());
        locs
    }

    /// Inclusion proof for a located entry under the tree state of
    /// `tree_size`, byte-identical to asking the shard's log directly.
    /// Proof generation is batched per (shard, tree size): the first proof
    /// for a tree state pays one O(n) hashing pass over the shard's
    /// authenticator, every later proof for the same state is assembled
    /// without hashing ([`crate::merkle::PROOF_BATCH`] counts the split).
    /// Returns `None` for unknown shards or out-of-range entries/sizes.
    pub fn inclusion_proof(&self, loc: EntryLocator, tree_size: u64) -> Option<Vec<[u8; 32]>> {
        self.inclusion_proof_within(loc, tree_size, &Deadline::unlimited())
            .expect("unlimited deadline cannot expire")
    }

    /// [`PinResolver::inclusion_proof`] under a work-budget deadline.
    ///
    /// The cost model mirrors the real work: a fresh authenticator pays
    /// `tree_size / PROOF_COST_DIVISOR + 1` units for the O(n) hashing
    /// pass (charged *before* hashing, so a too-tight deadline abandons
    /// proof generation before any work), a cached authenticator pays one
    /// unit, and assembling the proof path pays
    /// [`COST_PROOF_ASSEMBLY`]. With caching disabled every call pays the
    /// fresh-build price.
    pub fn inclusion_proof_within(
        &self,
        loc: EntryLocator,
        tree_size: u64,
        deadline: &Deadline,
    ) -> Result<Option<Vec<[u8; 32]>>, DeadlineExceeded> {
        let (shard_idx, entry_idx) = loc;
        let Some(shard) = self.logs.shards().get(shard_idx) else {
            return Ok(None);
        };
        let build_cost = tree_size / PROOF_COST_DIVISOR + 1;
        if !pinning_pki::cache::caching_enabled() {
            deadline.charge(build_cost + COST_PROOF_ASSEMBLY)?;
            return Ok(shard.log.inclusion_proof(entry_idx, tree_size));
        }
        let mut cache = self.auth_cache.borrow_mut();
        let auth = match cache.entry((shard_idx, tree_size)) {
            Entry::Occupied(e) => {
                deadline.charge(1)?;
                e.into_mut()
            }
            Entry::Vacant(e) => {
                deadline.charge(build_cost)?;
                let Some(auth) = shard.log.authenticator(tree_size) else {
                    return Ok(None);
                };
                e.insert(auth)
            }
        };
        deadline.charge(COST_PROOF_ASSEMBLY)?;
        Ok(auth.inclusion_proof(entry_idx))
    }

    /// Current cache statistics.
    pub fn stats(&self) -> ResolverStats {
        ResolverStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            resolved_unique: self.resolved_unique.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{LogShard, ShardPolicy};
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;
    use pinning_pki::authority::CertificateAuthority;
    use pinning_pki::name::DistinguishedName;
    use pinning_pki::time::{SimTime, Validity, YEAR};

    fn populated_set() -> (LogSet, Vec<pinning_pki::Certificate>) {
        let mut rng = SplitMix64::new(0x9e);
        let window = Validity {
            not_before: SimTime::EPOCH,
            not_after: SimTime(u64::MAX),
        };
        let mut set = LogSet::new();
        set.push_shard(LogShard::new(
            "s0",
            "Op0",
            ShardPolicy::open(window),
            KeyPair::generate(&mut rng),
        ));
        set.push_shard(LogShard::new(
            "s1",
            "Op1",
            ShardPolicy {
                window,
                leaf_acceptance: 0.5,
                ca_acceptance: 0.5,
            },
            KeyPair::generate(&mut rng),
        ));
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Root", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let mut certs = Vec::new();
        for i in 0..20 {
            let key = KeyPair::generate(&mut rng);
            let cert = root.issue_leaf(
                &[format!("h{i}.com")],
                "Org",
                &key,
                Validity::starting(SimTime(0), YEAR),
            );
            set.submit(&cert);
            certs.push(cert);
        }
        (set, certs)
    }

    #[test]
    fn resolver_matches_direct_lookup_byte_for_byte() {
        let (set, certs) = populated_set();
        let resolver = PinResolver::new(&set);
        for cert in &certs {
            for (alg, digest) in [
                (PinAlgorithm::Sha256, cert.spki_sha256().to_vec()),
                (PinAlgorithm::Sha1, cert.spki_sha1().to_vec()),
            ] {
                let direct: Vec<Vec<u8>> = set
                    .search_by_spki_digest(alg, &digest)
                    .iter()
                    .map(|c| c.to_der())
                    .collect();
                let cached: Vec<Vec<u8>> = resolver
                    .resolve(alg, &digest)
                    .iter()
                    .map(|c| c.to_der())
                    .collect();
                assert_eq!(direct, cached);
                // Ask again: answer must be identical and served from cache.
                let again: Vec<Vec<u8>> = resolver
                    .resolve(alg, &digest)
                    .iter()
                    .map(|c| c.to_der())
                    .collect();
                assert_eq!(direct, again);
            }
        }
    }

    #[test]
    fn one_underlying_lookup_per_unique_digest() {
        let (set, certs) = populated_set();
        let resolver = PinResolver::new(&set);
        for _ in 0..5 {
            for cert in &certs {
                resolver.resolve(PinAlgorithm::Sha256, &cert.spki_sha256());
            }
        }
        let stats = resolver.stats();
        assert_eq!(stats.misses, certs.len() as u64, "one miss per unique pin");
        assert_eq!(stats.hits, 4 * certs.len() as u64);
        assert!(stats.hit_rate() > 0.79 && stats.hit_rate() < 0.81);
    }

    #[test]
    fn same_digest_different_alg_is_a_distinct_key() {
        let (set, certs) = populated_set();
        let resolver = PinResolver::new(&set);
        let c = &certs[0];
        resolver.resolve(PinAlgorithm::Sha256, &c.spki_sha256());
        resolver.resolve(PinAlgorithm::Sha1, &c.spki_sha1());
        assert_eq!(resolver.stats().misses, 2);
    }

    #[test]
    fn batched_inclusion_proofs_match_direct_generation() {
        let (set, certs) = populated_set();
        let resolver = PinResolver::new(&set);
        for cert in &certs {
            for loc in set.lookup_spki(PinAlgorithm::Sha256, &cert.spki_sha256()) {
                let shard = &set.shards()[loc.0];
                // Prove under both the minimal covering state and the
                // shard's current head.
                for size in [loc.1 + 1, shard.log.len() as u64] {
                    assert_eq!(
                        resolver.inclusion_proof(loc, size),
                        shard.log.inclusion_proof(loc.1, size),
                        "proof mismatch at {loc:?} size {size}"
                    );
                }
            }
        }
        // Out-of-range queries mirror the direct API.
        assert_eq!(resolver.inclusion_proof((99, 0), 1), None);
        assert_eq!(resolver.inclusion_proof((0, 0), u64::MAX), None);
    }

    #[test]
    fn deadline_bounds_proof_generation() {
        let (set, certs) = populated_set();
        let resolver = PinResolver::new(&set);
        let loc = set.lookup_spki(PinAlgorithm::Sha256, &certs[0].spki_sha256())[0];
        let size = set.shards()[loc.0].log.len() as u64;

        // Too tight for the fresh authenticator build: structured timeout,
        // and no authenticator was cached for a later free ride.
        let tight = Deadline::with_budget(1);
        assert_eq!(
            resolver.inclusion_proof_within(loc, size, &tight),
            Err(DeadlineExceeded)
        );

        // Roomy: identical to the undeadlined path, paying build+assembly.
        let roomy = Deadline::with_budget(10_000);
        let proof = resolver
            .inclusion_proof_within(loc, size, &roomy)
            .expect("roomy deadline");
        assert_eq!(proof, set.shards()[loc.0].log.inclusion_proof(loc.1, size));
        assert_eq!(
            roomy.spent(),
            size / PROOF_COST_DIVISOR + 1 + COST_PROOF_ASSEMBLY
        );

        // Second proof under the same tree state rides the cached
        // authenticator: 1 + assembly.
        let cheap = Deadline::with_budget(1 + COST_PROOF_ASSEMBLY);
        assert!(resolver
            .inclusion_proof_within(loc, size, &cheap)
            .expect("cached authenticator fits")
            .is_some());
        assert!(cheap.is_expired());
    }

    #[test]
    fn cached_resolution_probe_reads_memo_without_counting() {
        let (set, certs) = populated_set();
        let resolver = PinResolver::new(&set);
        let digest = certs[0].spki_sha256();
        // Nothing resolved yet: the probe is empty and counts nothing.
        assert_eq!(
            resolver.cached_resolution(PinAlgorithm::Sha256, &digest),
            None
        );
        assert_eq!(resolver.stats().total(), 0);
        // Resolve once, then the probe serves the memoized locators.
        let locs = resolver.resolve_locators(PinAlgorithm::Sha256, &digest);
        assert_eq!(
            resolver.cached_resolution(PinAlgorithm::Sha256, &digest),
            Some(locs)
        );
        assert_eq!(resolver.stats().total(), 1, "probe must not count");
    }

    #[test]
    fn unresolvable_pin_is_cached_too() {
        let (set, _) = populated_set();
        let resolver = PinResolver::new(&set);
        let ghost = [0xEEu8; 32];
        assert!(!resolver.resolves(PinAlgorithm::Sha256, &ghost));
        assert!(!resolver.resolves(PinAlgorithm::Sha256, &ghost));
        let stats = resolver.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert_eq!(stats.resolved_unique, 0);
    }
}
