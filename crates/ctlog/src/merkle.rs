//! RFC 6962-style Merkle hash trees.
//!
//! Certificate Transparency's verifiability rests on one data structure: a
//! binary Merkle tree over the log's entries, hashed with domain separation
//! (`0x00` for leaves, `0x01` for interior nodes) so a leaf can never be
//! confused with a node. From the tree, three artifacts follow:
//!
//! * the **tree head** (root hash at a given size), which the log signs;
//! * **inclusion proofs** — logarithmic evidence that entry `i` is under
//!   the root of a tree of size `n`;
//! * **consistency proofs** — logarithmic evidence that the tree of size
//!   `m` is a prefix of the tree of size `n` (append-only-ness).
//!
//! The proof *generators* live on [`MerkleTree`]; the *verifiers*
//! ([`verify_inclusion`], [`verify_consistency`]) are standalone functions
//! that see only hashes, sizes and proof paths — exactly what a CT monitor
//! or auditor gets over the wire. The verification algorithms follow
//! RFC 9162 §2.1.3.2 / §2.1.4.2.

use pinning_crypto::sha256;
use pinning_pki::cache::CacheCounter;

/// Telemetry for batched proof generation: a **miss** is one authenticator
/// pass (hashing every interior node of a tree state once), a **hit** is an
/// inclusion proof served from those precomputed nodes without hashing.
pub static PROOF_BATCH: CacheCounter = CacheCounter::new("merkle-proof-batch");

/// Domain-separation prefix for leaf hashes.
pub const LEAF_PREFIX: u8 = 0x00;
/// Domain-separation prefix for interior-node hashes.
pub const NODE_PREFIX: u8 = 0x01;

/// `sha256(0x00 || data)` — the Merkle leaf hash of an entry.
pub fn leaf_hash(data: &[u8]) -> [u8; 32] {
    let mut buf = Vec::with_capacity(1 + data.len());
    buf.push(LEAF_PREFIX);
    buf.extend_from_slice(data);
    sha256(&buf)
}

/// `sha256(0x01 || left || right)` — the Merkle interior-node hash.
pub fn node_hash(left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
    let mut buf = Vec::with_capacity(65);
    buf.push(NODE_PREFIX);
    buf.extend_from_slice(left);
    buf.extend_from_slice(right);
    sha256(&buf)
}

/// The hash of the empty tree (`sha256("")`, per RFC 6962).
pub fn empty_root() -> [u8; 32] {
    sha256(&[])
}

/// Largest power of two strictly less than `n` (requires `n > 1`).
fn split_point(n: usize) -> usize {
    let mut k = 1;
    while k * 2 < n {
        k *= 2;
    }
    k
}

/// An append-only Merkle tree over opaque leaf data.
///
/// Stores the leaf hashes; roots and proofs for *any historical size* are
/// recomputed on demand, which keeps the structure simple and obviously
/// correct (proof generation is O(n) here — fine for a simulation whose
/// logs hold thousands of entries, and irrelevant to the verifiers, which
/// stay logarithmic).
#[derive(Debug, Clone, Default)]
pub struct MerkleTree {
    leaves: Vec<[u8; 32]>,
}

impl MerkleTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a leaf; returns its index.
    pub fn push(&mut self, leaf_data: &[u8]) -> u64 {
        self.leaves.push(leaf_hash(leaf_data));
        (self.leaves.len() - 1) as u64
    }

    /// Number of leaves.
    pub fn len(&self) -> u64 {
        self.leaves.len() as u64
    }

    /// Whether the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// The leaf hash at `index`.
    pub fn leaf(&self, index: u64) -> Option<[u8; 32]> {
        self.leaves.get(index as usize).copied()
    }

    /// Root over the current tree.
    pub fn root(&self) -> [u8; 32] {
        self.root_at(self.len()).expect("current size is valid")
    }

    /// Root of the historical tree holding the first `size` leaves.
    pub fn root_at(&self, size: u64) -> Option<[u8; 32]> {
        if size > self.len() {
            return None;
        }
        Some(subtree_hash(&self.leaves[..size as usize]))
    }

    /// Inclusion proof for leaf `index` in the tree of the first `size`
    /// leaves (RFC 6962 `PATH(m, D[n])`).
    pub fn inclusion_proof(&self, index: u64, size: u64) -> Option<Vec<[u8; 32]>> {
        if index >= size || size > self.len() {
            return None;
        }
        Some(path(index as usize, &self.leaves[..size as usize]))
    }

    /// Consistency proof from the tree of size `old` to the tree of size
    /// `new` (RFC 6962 `PROOF(m, D[n])`).
    pub fn consistency_proof(&self, old: u64, new: u64) -> Option<Vec<[u8; 32]>> {
        if old > new || new > self.len() {
            return None;
        }
        if old == 0 || old == new {
            // Consistency with the empty tree (or with itself) is vacuous.
            return Some(Vec::new());
        }
        Some(subproof(old as usize, &self.leaves[..new as usize], true))
    }

    /// Builds a [`TreeAuthenticator`] over the historical tree of the first
    /// `size` leaves: one O(n) hashing pass, then O(log n) *hash-free*
    /// inclusion proofs for every index. Use it whenever more than one
    /// proof is needed for the same tree state (monitors batch-verifying a
    /// new STH, resolvers proving a pin's log entries).
    pub fn authenticator(&self, size: u64) -> Option<TreeAuthenticator> {
        if size > self.len() {
            return None;
        }
        Some(TreeAuthenticator::new(&self.leaves[..size as usize]))
    }
}

/// Precomputed interior-node hashes for one fixed tree state.
///
/// [`MerkleTree::inclusion_proof`] rehashes O(n) subtree nodes per proof;
/// auditing a batch of `k` new entries that way costs O(k·n). An
/// authenticator hashes every interior node exactly once and then assembles
/// each audit path by lookup. The node layout pairs adjacent nodes per
/// level and promotes an unpaired tail node unchanged, which reproduces the
/// RFC 6962 largest-power-of-two split exactly (the promoted node *is* the
/// right subtree's root at that level), so proofs are byte-identical to the
/// recursive generator's.
#[derive(Debug, Clone)]
pub struct TreeAuthenticator {
    /// `levels[0]` = leaf hashes; `levels[k+1][i]` = hash of the subtree
    /// covering `levels[k][2i..2i+2]` (or the promoted `levels[k][2i]`).
    levels: Vec<Vec<[u8; 32]>>,
}

impl TreeAuthenticator {
    /// One pass over `leaves`: hashes all `n - 1` interior nodes.
    pub fn new(leaves: &[[u8; 32]]) -> Self {
        PROOF_BATCH.miss();
        let mut levels = vec![leaves.to_vec()];
        while levels.last().expect("non-empty").len() > 1 {
            let below = levels.last().expect("non-empty");
            let mut above = Vec::with_capacity(below.len().div_ceil(2));
            let mut pairs = below.chunks_exact(2);
            for pair in &mut pairs {
                above.push(node_hash(&pair[0], &pair[1]));
            }
            if let [odd] = pairs.remainder() {
                above.push(*odd);
            }
            levels.push(above);
        }
        TreeAuthenticator { levels }
    }

    /// Number of leaves in the covered tree state.
    pub fn size(&self) -> u64 {
        self.levels[0].len() as u64
    }

    /// Root of the covered tree state.
    pub fn root(&self) -> [u8; 32] {
        match self.levels.last() {
            Some(top) if !top.is_empty() => top[0],
            _ => empty_root(),
        }
    }

    /// Inclusion proof for leaf `index` — identical bytes to
    /// [`MerkleTree::inclusion_proof`] at this tree size, but assembled
    /// from precomputed nodes without any hashing.
    pub fn inclusion_proof(&self, index: u64) -> Option<Vec<[u8; 32]>> {
        let mut idx = index as usize;
        if idx >= self.levels[0].len() {
            return None;
        }
        PROOF_BATCH.hit();
        let mut proof = Vec::new();
        for level in &self.levels[..self.levels.len().saturating_sub(1)] {
            let sibling = idx ^ 1;
            if let Some(h) = level.get(sibling) {
                proof.push(*h);
            }
            // No sibling: this node was promoted unchanged, nothing to add.
            idx >>= 1;
        }
        Some(proof)
    }
}

fn subtree_hash(leaves: &[[u8; 32]]) -> [u8; 32] {
    match leaves.len() {
        0 => empty_root(),
        1 => leaves[0],
        n => {
            let k = split_point(n);
            node_hash(&subtree_hash(&leaves[..k]), &subtree_hash(&leaves[k..]))
        }
    }
}

fn path(m: usize, leaves: &[[u8; 32]]) -> Vec<[u8; 32]> {
    let n = leaves.len();
    if n <= 1 {
        return Vec::new();
    }
    let k = split_point(n);
    let mut proof;
    if m < k {
        proof = path(m, &leaves[..k]);
        proof.push(subtree_hash(&leaves[k..]));
    } else {
        proof = path(m - k, &leaves[k..]);
        proof.push(subtree_hash(&leaves[..k]));
    }
    proof
}

fn subproof(m: usize, leaves: &[[u8; 32]], whole_subtree: bool) -> Vec<[u8; 32]> {
    let n = leaves.len();
    if m == n {
        return if whole_subtree {
            Vec::new()
        } else {
            vec![subtree_hash(leaves)]
        };
    }
    let k = split_point(n);
    let mut proof;
    if m <= k {
        proof = subproof(m, &leaves[..k], whole_subtree);
        proof.push(subtree_hash(&leaves[k..]));
    } else {
        proof = subproof(m - k, &leaves[k..], false);
        proof.push(subtree_hash(&leaves[..k]));
    }
    proof
}

/// Verifies an inclusion proof: does `leaf` sit at `index` under `root`,
/// the head of a tree of `size` leaves? (RFC 9162 §2.1.3.2.)
pub fn verify_inclusion(
    leaf: &[u8; 32],
    index: u64,
    size: u64,
    proof: &[[u8; 32]],
    root: &[u8; 32],
) -> bool {
    if index >= size {
        return false;
    }
    let mut fnode = index;
    let mut snode = size - 1;
    let mut r = *leaf;
    for p in proof {
        if snode == 0 {
            return false; // proof longer than the path to the root
        }
        if fnode & 1 == 1 || fnode == snode {
            r = node_hash(p, &r);
            if fnode & 1 == 0 {
                while fnode & 1 == 0 {
                    if fnode == 0 {
                        return false;
                    }
                    fnode >>= 1;
                    snode >>= 1;
                }
            }
        } else {
            r = node_hash(&r, p);
        }
        fnode >>= 1;
        snode >>= 1;
    }
    snode == 0 && r == *root
}

/// Verifies a consistency proof: is the tree with head `old_root` at size
/// `old_size` a prefix of the tree with head `new_root` at size
/// `new_size`? (RFC 9162 §2.1.4.2.)
pub fn verify_consistency(
    old_size: u64,
    new_size: u64,
    old_root: &[u8; 32],
    new_root: &[u8; 32],
    proof: &[[u8; 32]],
) -> bool {
    if old_size > new_size {
        return false;
    }
    if old_size == new_size {
        return proof.is_empty() && old_root == new_root;
    }
    if old_size == 0 {
        // Any tree is consistent with the empty tree.
        return proof.is_empty() && *old_root == empty_root();
    }
    let mut proof = proof.to_vec();
    if proof.is_empty() {
        return false;
    }
    // An old size that is an exact power of two is itself a complete
    // subtree of the new tree; its root seeds the recomputation.
    if old_size.is_power_of_two() {
        proof.insert(0, *old_root);
    }
    let mut fnode = old_size - 1;
    let mut snode = new_size - 1;
    while fnode & 1 == 1 {
        fnode >>= 1;
        snode >>= 1;
    }
    let mut fr = proof[0];
    let mut sr = proof[0];
    for c in &proof[1..] {
        if snode == 0 {
            return false;
        }
        if fnode & 1 == 1 || fnode == snode {
            fr = node_hash(c, &fr);
            sr = node_hash(c, &sr);
            if fnode & 1 == 0 {
                while fnode != 0 && fnode & 1 == 0 {
                    fnode >>= 1;
                    snode >>= 1;
                }
            }
        } else {
            sr = node_hash(&sr, c);
        }
        fnode >>= 1;
        snode >>= 1;
    }
    fr == *old_root && sr == *new_root && snode == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_crypto::SplitMix64;

    fn tree_of(n: u64) -> MerkleTree {
        let mut t = MerkleTree::new();
        for i in 0..n {
            t.push(format!("entry-{i}").as_bytes());
        }
        t
    }

    #[test]
    fn empty_tree_root_is_sha256_of_nothing() {
        assert_eq!(MerkleTree::new().root(), sha256(&[]));
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let mut t = MerkleTree::new();
        t.push(b"only");
        assert_eq!(t.root(), leaf_hash(b"only"));
    }

    #[test]
    fn rfc6962_seven_leaf_structure() {
        // For 7 leaves the split points are 4, then 2 — re-derive the root
        // by hand and compare.
        let t = tree_of(7);
        let l: Vec<[u8; 32]> = (0..7)
            .map(|i| leaf_hash(format!("entry-{i}").as_bytes()))
            .collect();
        let left = node_hash(&node_hash(&l[0], &l[1]), &node_hash(&l[2], &l[3]));
        let right = node_hash(&node_hash(&l[4], &l[5]), &l[6]);
        assert_eq!(t.root(), node_hash(&left, &right));
    }

    #[test]
    fn inclusion_proofs_verify_for_every_entry_at_every_size() {
        let t = tree_of(33);
        for size in 1..=t.len() {
            let root = t.root_at(size).unwrap();
            for index in 0..size {
                let proof = t.inclusion_proof(index, size).unwrap();
                let leaf = t.leaf(index).unwrap();
                assert!(
                    verify_inclusion(&leaf, index, size, &proof, &root),
                    "inclusion failed at index {index} size {size}"
                );
            }
        }
    }

    #[test]
    fn consistency_proofs_verify_across_all_growth_pairs() {
        let t = tree_of(20);
        for old in 0..=t.len() {
            for new in old..=t.len() {
                let proof = t.consistency_proof(old, new).unwrap();
                assert!(
                    verify_consistency(
                        old,
                        new,
                        &t.root_at(old).unwrap(),
                        &t.root_at(new).unwrap(),
                        &proof,
                    ),
                    "consistency failed {old} -> {new}"
                );
            }
        }
    }

    #[test]
    fn tampered_inclusion_proof_fails() {
        let t = tree_of(12);
        let size = t.len();
        let root = t.root();
        let mut rng = SplitMix64::new(0x7a);
        for index in 0..size {
            let proof = t.inclusion_proof(index, size).unwrap();
            let leaf = t.leaf(index).unwrap();
            // Flip one random bit in the leaf.
            let mut bad_leaf = leaf;
            let bit = rng.next_below(256) as usize;
            bad_leaf[bit / 8] ^= 1 << (bit % 8);
            assert!(!verify_inclusion(&bad_leaf, index, size, &proof, &root));
            // Flip one random bit in one proof node.
            if !proof.is_empty() {
                let mut bad = proof.clone();
                let node = rng.next_below(bad.len() as u64) as usize;
                let bit = rng.next_below(256) as usize;
                bad[node][bit / 8] ^= 1 << (bit % 8);
                assert!(!verify_inclusion(&leaf, index, size, &bad, &root));
            }
            // Wrong index.
            assert!(!verify_inclusion(&leaf, (index + 1) % size, size, &proof, &root) || size == 1);
        }
    }

    #[test]
    fn wrong_size_or_root_fails() {
        let t = tree_of(9);
        let proof = t.inclusion_proof(3, 9).unwrap();
        let leaf = t.leaf(3).unwrap();
        let root = t.root();
        // A smaller claimed size means a shorter path: the proof is too long.
        assert!(!verify_inclusion(&leaf, 3, 8, &proof, &root));
        // (Size *over*-claims against the same root are caught at the STH
        // layer, which binds size to root under the log signature.)
        let mut bad_root = root;
        bad_root[0] ^= 0x80;
        assert!(!verify_inclusion(&leaf, 3, 9, &proof, &bad_root));
    }

    #[test]
    fn forged_consistency_rejected() {
        let t = tree_of(16);
        let proof = t.consistency_proof(5, 16).unwrap();
        let old = t.root_at(5).unwrap();
        let new = t.root();
        assert!(verify_consistency(5, 16, &old, &new, &proof));
        // A different "old root" claims a different history.
        let mut other = MerkleTree::new();
        for i in 0..5 {
            other.push(format!("forged-{i}").as_bytes());
        }
        assert!(!verify_consistency(5, 16, &other.root(), &new, &proof));
        // Tampered proof node.
        let mut bad = proof.clone();
        bad[0][31] ^= 1;
        assert!(!verify_consistency(5, 16, &old, &new, &bad));
        // Truncated proof.
        assert!(!verify_consistency(
            5,
            16,
            &old,
            &new,
            &proof[..proof.len() - 1]
        ));
    }

    #[test]
    fn out_of_range_requests_return_none() {
        let t = tree_of(4);
        assert!(t.inclusion_proof(4, 4).is_none());
        assert!(t.inclusion_proof(0, 5).is_none());
        assert!(t.consistency_proof(3, 2).is_none());
        assert!(t.consistency_proof(0, 5).is_none());
        assert!(t.root_at(5).is_none());
    }

    #[test]
    fn authenticator_proofs_match_recursive_generator() {
        let t = tree_of(33);
        for size in 0..=t.len() {
            let auth = t.authenticator(size).unwrap();
            assert_eq!(auth.size(), size);
            assert_eq!(auth.root(), t.root_at(size).unwrap());
            for index in 0..size {
                assert_eq!(
                    auth.inclusion_proof(index).unwrap(),
                    t.inclusion_proof(index, size).unwrap(),
                    "proof mismatch at index {index} size {size}"
                );
            }
            assert!(auth.inclusion_proof(size).is_none());
        }
        assert!(t.authenticator(34).is_none());
    }

    #[test]
    fn domain_separation_distinguishes_leaf_and_node() {
        let a = [1u8; 32];
        let b = [2u8; 32];
        let mut concat = Vec::new();
        concat.extend_from_slice(&a);
        concat.extend_from_slice(&b);
        assert_ne!(node_hash(&a, &b), leaf_hash(&concat));
    }
}
