//! Mobile app model: packages, pinning configurations, SDKs, and runtime
//! network behaviour for both Android and iOS.
//!
//! A simulated app has two halves, mirroring what the paper's two
//! methodologies see:
//!
//! * a **package** ([`package`], built by [`builder`]) — the artifact static
//!   analysis scans: manifest/Info.plist, Network Security Configuration
//!   XML, asset files (possibly raw certificates), string pools of
//!   dex/native/Mach-O binaries (possibly `sha256/...` pins), SDK code
//!   paths, and (on iOS) FairPlay-style encryption that must be stripped
//!   first;
//! * a **behaviour** ([`behavior`]) — what the app does when launched on a
//!   device: which domains it contacts in the first N seconds, with which
//!   TLS stack and certificate policy, carrying which PII.
//!
//! The two halves can deliberately disagree, exactly as in the wild: dead
//! SDK code pins statically but never runs (static over-counts); obfuscated
//! or runtime-built pins run but leave no static trace (static
//! under-counts). Dynamic analysis is ground truth (§5, "we call an app
//! pinning if we find at least one pinned connection ... in our dynamic
//! analysis").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod behavior;
pub mod builder;
pub mod category;
pub mod nsc;
pub mod package;
pub mod pii;
pub mod pinning;
pub mod platform;
pub mod sdk;
pub mod xml;

pub use app::MobileApp;
pub use behavior::{AppBehavior, Interaction, PlannedConnection};
pub use category::Category;
pub use package::{AppFile, AppPackage, FileContent};
pub use pii::PiiType;
pub use pinning::{DomainPinRule, PinSource, PinStorage, PinTarget};
pub use platform::{AppId, Platform};
pub use sdk::{SdkKind, SdkSpec};
