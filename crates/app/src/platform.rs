//! Platforms and app identities.

use core::fmt;

/// The two mobile platforms under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Platform {
    /// Google Android (Play Store).
    Android,
    /// Apple iOS (App Store).
    Ios,
}

impl Platform {
    /// Both platforms.
    pub const BOTH: [Platform; 2] = [Platform::Android, Platform::Ios];

    /// Store name for display.
    pub fn store_name(self) -> &'static str {
        match self {
            Platform::Android => "Google Play Store",
            Platform::Ios => "Apple App Store",
        }
    }

    /// Short name.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Android => "Android",
            Platform::Ios => "iOS",
        }
    }

    /// The other platform.
    pub fn other(self) -> Platform {
        match self {
            Platform::Android => Platform::Ios,
            Platform::Ios => Platform::Android,
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A platform-qualified app identifier.
///
/// Android uses reverse-DNS package names (`com.example.shop`); iOS uses
/// numeric store ids plus a bundle id. We keep one canonical string per
/// platform; the *logical product* linking an Android app to its iOS
/// sibling is tracked by the world generator (`product_key`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId {
    /// Platform the id lives on.
    pub platform: Platform,
    /// Store identifier (`com.vendor.app` or `id123456789`).
    pub id: String,
}

impl AppId {
    /// Creates an app id.
    pub fn new(platform: Platform, id: impl Into<String>) -> Self {
        AppId {
            platform,
            id: id.into(),
        }
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.platform, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_involutive() {
        for p in Platform::BOTH {
            assert_eq!(p.other().other(), p);
        }
    }

    #[test]
    fn display() {
        let id = AppId::new(Platform::Android, "com.example.app");
        assert_eq!(id.to_string(), "Android:com.example.app");
    }

    #[test]
    fn ids_hash_by_platform_too() {
        use std::collections::HashSet;
        let a = AppId::new(Platform::Android, "x");
        let b = AppId::new(Platform::Ios, "x");
        let set: HashSet<_> = [a, b].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
