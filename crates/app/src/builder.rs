//! Package builder: materializes ground-truth pin rules, SDKs and decoys
//! into the files a real build system would produce.
//!
//! The builder is where static-analysis *signal* and *noise* get planted:
//!
//! * signal — PEM/DER cert assets at per-SDK paths, `sha256/...` strings in
//!   dex/native/Mach-O string pools, NSC `<pin-set>` blocks;
//! * noise — decoy certificates unrelated to pinning (CA bundles, license
//!   certs), generic `config.json` files, obfuscated pins the scanner
//!   cannot see.

use crate::nsc::{DomainConfig, NetworkSecurityConfig, NscPin};
use crate::package::{binary_with_strings, AppFile, AppPackage};
use crate::pinning::{DomainPinRule, PinSource, PinStorage};
use crate::platform::{AppId, Platform};
use crate::sdk::{self, SdkSpec};
use crate::xml::Element;
use pinning_crypto::SplitMix64;
use pinning_pki::pin::Pin;
use pinning_pki::Certificate;

/// Inputs for a package build.
#[derive(Debug)]
pub struct BuildSpec<'a> {
    /// App identity.
    pub id: &'a AppId,
    /// Display name.
    pub app_name: &'a str,
    /// Bundled SDKs.
    pub sdks: &'a [&'static SdkSpec],
    /// Ground-truth pin rules.
    pub pin_rules: &'a [DomainPinRule],
    /// Certificates embedded for reasons *other than pinning* (static
    /// over-count source).
    pub decoy_certs: &'a [Certificate],
    /// Plant the Possemato-style `overridePins="true"` misconfiguration.
    pub nsc_misconfig_override_pins: bool,
    /// iOS associated domains (entitlements).
    pub associated_domains: &'a [String],
    /// When `Some`, the iOS package is FairPlay-encrypted with this key.
    pub ios_encryption_seed: Option<u64>,
}

/// Builds the package for `spec.id.platform`.
pub fn build_package(spec: &BuildSpec<'_>, rng: &mut SplitMix64) -> AppPackage {
    match spec.id.platform {
        Platform::Android => build_android(spec, rng),
        Platform::Ios => build_ios(spec, rng),
    }
}

/// Pin strings that end up in a string pool for a rule (SPKI pins only;
/// raw-cert rules ship files instead).
fn pin_strings(rule: &DomainPinRule) -> Vec<String> {
    rule.pins
        .pins
        .iter()
        .filter_map(|p| match p {
            Pin::Spki(s) => Some(s.to_pin_string()),
            Pin::Cert(_) => None,
        })
        .collect()
}

/// Obfuscation used by [`PinStorage::ObfuscatedCode`]: the base64 body is
/// reversed and the algorithm prefix dropped, so the `sha(1|256)/...`
/// scanner cannot match it.
fn obfuscate(pin_string: &str) -> String {
    pin_string
        .split_once('/')
        .map(|(_, body)| body.chars().rev().collect())
        .unwrap_or_else(|| pin_string.chars().rev().collect())
}

fn sanitize(pattern: &str) -> String {
    pattern.replace("*.", "wildcard_").replace('.', "_")
}

fn cert_asset_file(base_dir: &str, rule: &DomainPinRule) -> Option<AppFile> {
    let PinStorage::RawCertAsset(format) = rule.storage else {
        return None;
    };
    let cert = rule.pinned_certs.first()?;
    let dir = match &rule.source {
        PinSource::FirstParty => format!("{base_dir}/certs"),
        PinSource::Sdk(_) => base_dir.to_string(),
    };
    let path = format!("{dir}/{}.{}", sanitize(&rule.pattern), format.extension());
    Some(if format.is_pem() {
        AppFile::text(path, cert.to_pem())
    } else {
        AppFile::binary(path, cert.to_der())
    })
}

/// Resolves the asset base directory for a rule: first-party assets live
/// under the app, SDK assets under the SDK's code path.
fn rule_base_dir(rule: &DomainPinRule, platform: Platform, app_root: &str) -> String {
    match &rule.source {
        PinSource::FirstParty => app_root.to_string(),
        PinSource::Sdk(name) => match sdk::by_name(name) {
            Some(s) => match platform {
                Platform::Android => format!("assets/{}", s.path_on(platform)),
                Platform::Ios => format!("{app_root}/{}", s.path_on(platform)),
            },
            None => app_root.to_string(),
        },
    }
}

fn build_android(spec: &BuildSpec<'_>, rng: &mut SplitMix64) -> AppPackage {
    let mut files = Vec::new();

    // --- Network Security Configuration ---
    let nsc_rules: Vec<&DomainPinRule> = spec
        .pin_rules
        .iter()
        .filter(|r| r.storage == PinStorage::NscPinSet)
        .collect();
    let uses_nsc = !nsc_rules.is_empty() || spec.nsc_misconfig_override_pins;
    if uses_nsc {
        let mut nsc = NetworkSecurityConfig::default();
        for rule in &nsc_rules {
            let (name, include_sub) = match rule.pattern.strip_prefix("*.") {
                Some(apex) => (apex.to_string(), true),
                None => (rule.pattern.clone(), false),
            };
            nsc.domain_configs.push(DomainConfig {
                domains: vec![(name, include_sub)],
                pins: rule.pinned_certs.iter().map(NscPin::for_cert).collect(),
                pin_expiration: Some("2026-01-01".to_string()),
                override_pins: false,
                trust_user_certs: false,
            });
        }
        if spec.nsc_misconfig_override_pins {
            // The real-world misconfiguration: example.com pinned, but
            // overridePins silently disables enforcement. The pin value is
            // whatever the developer copy-pasted; synthesize one from the
            // app id when no decoy certificate is around.
            let pins = match spec.decoy_certs.first() {
                Some(c) => vec![NscPin::for_cert(c)],
                None => vec![NscPin {
                    digest: "SHA-256".to_string(),
                    value_b64: pinning_crypto::b64encode(&pinning_crypto::sha256(
                        spec.id.id.as_bytes(),
                    )),
                }],
            };
            nsc.domain_configs.push(DomainConfig {
                domains: vec![("example.com".to_string(), false)],
                pins,
                pin_expiration: None,
                override_pins: true,
                trust_user_certs: false,
            });
        }
        files.push(AppFile::text(
            "res/xml/network_security_config.xml",
            nsc.to_xml(),
        ));
    }

    // --- Manifest ---
    let mut application = Element::new("application").attr("android:label", spec.app_name);
    if uses_nsc {
        application = application.attr(
            "android:networkSecurityConfig",
            "@xml/network_security_config",
        );
    }
    let manifest = Element::new("manifest")
        .attr(
            "xmlns:android",
            "http://schemas.android.com/apk/res/android",
        )
        .attr("package", spec.id.id.clone())
        .child(Element::new("uses-permission").attr("android:name", "android.permission.INTERNET"))
        .child(application);
    files.push(AppFile::text("AndroidManifest.xml", manifest.to_document()));

    // --- classes.dex string pool ---
    let mut dex_strings: Vec<String> = vec![
        format!("L{};", spec.id.id.replace('.', "/")),
        "Landroid/app/Activity;".to_string(),
        "https://".to_string(),
        "application/json".to_string(),
    ];
    for s in spec.sdks {
        dex_strings.push(format!("L{}/Core;", s.android_path));
    }
    let mut native_strings: Vec<String> = vec!["__cxa_throw".into(), "SSL_CTX_new".into()];
    for rule in spec.pin_rules {
        let strings = pin_strings(rule);
        match rule.storage {
            PinStorage::SpkiStringInCode(_) => {
                // The scan operates on the apktool-decompiled view (the
                // manifest above is plaintext for the same reason), so
                // code-borne pins surface at their smali class path — which
                // is what §4.1.4's path-based attribution groups on.
                match &rule.source {
                    PinSource::Sdk(name) => {
                        let path = sdk::by_name(name)
                            .map(|s| s.android_path)
                            .unwrap_or("com/unknown/sdk");
                        let body = format!(
                            ".class Lcom/squareup/okhttp/CertificatePinner;\n                             const-string v0, \"{}\"\n                             const-string v1, \"{}\"\n",
                            rule.pattern,
                            strings.join("\";\n    const-string v1, \"")
                        );
                        files.push(AppFile::text(format!("smali/{path}/ApiClient.smali"), body));
                    }
                    PinSource::FirstParty => {
                        dex_strings.push("Lokhttp3/CertificatePinner;".to_string());
                        dex_strings.push(rule.pattern.clone());
                        dex_strings.extend(strings);
                    }
                }
            }
            PinStorage::SpkiStringInNativeLib(_) => {
                native_strings.push(rule.pattern.clone());
                native_strings.extend(strings);
            }
            PinStorage::ObfuscatedCode => {
                dex_strings.extend(strings.iter().map(|s| obfuscate(s)));
            }
            PinStorage::RawCertAsset(_) | PinStorage::NscPinSet => {}
        }
        if let Some(f) = cert_asset_file(&rule_base_dir(rule, Platform::Android, "assets"), rule) {
            files.push(f);
        }
    }
    files.push(AppFile::binary(
        "classes.dex",
        binary_with_strings(&dex_strings, rng, 2048),
    ));
    if native_strings.len() > 2 {
        files.push(AppFile::binary(
            "lib/arm64-v8a/libapp.so",
            binary_with_strings(&native_strings, rng, 1024),
        ));
    }

    // --- Decoys ---
    for (i, cert) in spec.decoy_certs.iter().enumerate() {
        files.push(AppFile::text(
            format!("res/raw/bundled_ca_{i}.pem"),
            cert.to_pem(),
        ));
    }
    files.push(AppFile::text(
        "assets/config.json",
        format!("{{\"app\":\"{}\",\"flags\":[]}}", spec.app_name),
    ));

    AppPackage::new(Platform::Android, files)
}

fn build_ios(spec: &BuildSpec<'_>, rng: &mut SplitMix64) -> AppPackage {
    let app_root = "Payload/App.app";
    let mut files = Vec::new();

    // --- Info.plist (simplified XML plist) ---
    let plist = Element::new("plist").attr("version", "1.0").child(
        Element::new("dict")
            .child(Element::new("key").text("CFBundleIdentifier"))
            .child(Element::new("string").text(spec.id.id.clone()))
            .child(Element::new("key").text("CFBundleName"))
            .child(Element::new("string").text(spec.app_name))
            .child(Element::new("key").text("NSAppTransportSecurity"))
            .child(
                Element::new("dict")
                    .child(Element::new("key").text("NSAllowsArbitraryLoads"))
                    .child(Element::new("false")),
            ),
    );
    files.push(AppFile::text(
        format!("{app_root}/Info.plist"),
        plist.to_document(),
    ));

    // --- Entitlements: associated domains (§4.5's confounder) ---
    let mut domains_el = Element::new("array");
    for d in spec.associated_domains {
        domains_el = domains_el.child(Element::new("string").text(format!("applinks:{d}")));
    }
    let ents = Element::new("plist").attr("version", "1.0").child(
        Element::new("dict")
            .child(Element::new("key").text("com.apple.developer.associated-domains"))
            .child(domains_el),
    );
    files.push(AppFile::text(
        format!("{app_root}/App.entitlements"),
        ents.to_document(),
    ));

    // --- Main binary + SDK frameworks ---
    let mut main_strings: Vec<String> = vec![
        "NSURLSession".to_string(),
        "SecTrustEvaluateWithError".to_string(),
        format!("{}.main", spec.id.id),
    ];
    let mut sdk_strings: std::collections::HashMap<&'static str, Vec<String>> = Default::default();
    for s in spec.sdks {
        sdk_strings
            .entry(s.name)
            .or_default()
            .push(format!("{}/Headers", s.ios_path));
    }
    for rule in spec.pin_rules {
        let strings = pin_strings(rule);
        let bucket: &mut Vec<String> = match &rule.source {
            PinSource::FirstParty => &mut main_strings,
            PinSource::Sdk(name) => match sdk::by_name(name) {
                Some(s) => sdk_strings.entry(s.name).or_default(),
                None => &mut main_strings,
            },
        };
        match rule.storage {
            PinStorage::SpkiStringInCode(_) | PinStorage::SpkiStringInNativeLib(_) => {
                bucket.push(rule.pattern.clone());
                bucket.extend(strings);
            }
            PinStorage::ObfuscatedCode => {
                bucket.extend(strings.iter().map(|s| obfuscate(s)));
            }
            PinStorage::RawCertAsset(_) => {}
            // NSC is Android-only; treat as in-code on iOS.
            PinStorage::NscPinSet => bucket.extend(strings),
        }
        if let Some(f) = cert_asset_file(&rule_base_dir(rule, Platform::Ios, app_root), rule) {
            files.push(f);
        }
    }
    files.push(AppFile::binary(
        format!("{app_root}/App"),
        binary_with_strings(&main_strings, rng, 4096),
    ));
    for s in spec.sdks {
        let strings = sdk_strings.remove(s.name).unwrap_or_default();
        let bin_name = s
            .ios_path
            .trim_start_matches("Frameworks/")
            .trim_end_matches(".framework");
        files.push(AppFile::binary(
            format!("{app_root}/{}/{}", s.ios_path, bin_name),
            binary_with_strings(&strings, rng, 1024),
        ));
    }

    // --- Decoys ---
    for (i, cert) in spec.decoy_certs.iter().enumerate() {
        files.push(AppFile::text(
            format!("{app_root}/resources/bundled_ca_{i}.pem"),
            cert.to_pem(),
        ));
    }

    let pkg = AppPackage::new(Platform::Ios, files);
    match spec.ios_encryption_seed {
        Some(seed) => pkg.encrypt(seed),
        None => pkg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pinning::{CertAssetFormat, PinTarget};
    use pinning_crypto::sig::KeyPair;
    use pinning_pki::authority::CertificateAuthority;
    use pinning_pki::name::DistinguishedName;
    use pinning_pki::pin::PinAlgorithm;
    use pinning_pki::time::{SimTime, Validity, YEAR};

    fn cert(seed: u64) -> Certificate {
        let mut rng = SplitMix64::new(seed);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("R", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let k = KeyPair::generate(&mut rng);
        root.issue_leaf(
            &["api.x.com".to_string()],
            "X",
            &k,
            Validity::starting(SimTime(0), YEAR),
        )
    }

    fn android_id() -> AppId {
        AppId::new(Platform::Android, "com.example.shop")
    }

    fn ios_id() -> AppId {
        AppId::new(Platform::Ios, "id99001122")
    }

    #[test]
    fn android_nsc_rule_produces_config_file_and_manifest_attr() {
        let c = cert(1);
        let rule = DomainPinRule::spki(
            "api.x.com",
            &c,
            PinTarget::Leaf,
            PinAlgorithm::Sha256,
            PinStorage::NscPinSet,
            PinSource::FirstParty,
        );
        let id = android_id();
        let spec = BuildSpec {
            id: &id,
            app_name: "Shop",
            sdks: &[],
            pin_rules: std::slice::from_ref(&rule),
            decoy_certs: &[],
            nsc_misconfig_override_pins: false,
            associated_domains: &[],
            ios_encryption_seed: None,
        };
        let pkg = build_package(&spec, &mut SplitMix64::new(1));
        let nsc = pkg.file("res/xml/network_security_config.xml").unwrap();
        assert!(nsc.content.as_text().unwrap().contains("pin-set"));
        let manifest = pkg
            .file("AndroidManifest.xml")
            .unwrap()
            .content
            .as_text()
            .unwrap();
        assert!(manifest.contains("networkSecurityConfig"));
    }

    #[test]
    fn android_spki_rule_lands_in_dex_strings() {
        let c = cert(2);
        let rule = DomainPinRule::spki(
            "api.x.com",
            &c,
            PinTarget::Root,
            PinAlgorithm::Sha256,
            PinStorage::SpkiStringInCode(PinAlgorithm::Sha256),
            PinSource::FirstParty,
        );
        let id = android_id();
        let spec = BuildSpec {
            id: &id,
            app_name: "Shop",
            sdks: &[],
            pin_rules: std::slice::from_ref(&rule),
            decoy_certs: &[],
            nsc_misconfig_override_pins: false,
            associated_domains: &[],
            ios_encryption_seed: None,
        };
        let pkg = build_package(&spec, &mut SplitMix64::new(2));
        let dex = pkg.file("classes.dex").unwrap();
        let strings = crate::package::extract_strings(dex.content.as_bytes(), 6);
        let pin = c.spki_pin_string();
        assert!(strings.iter().any(|s| s.contains(&pin)));
        assert!(strings.iter().any(|s| s.contains("CertificatePinner")));
    }

    #[test]
    fn obfuscated_rule_leaves_no_scannable_pin() {
        let c = cert(3);
        let rule = DomainPinRule::spki(
            "api.x.com",
            &c,
            PinTarget::Root,
            PinAlgorithm::Sha256,
            PinStorage::ObfuscatedCode,
            PinSource::FirstParty,
        );
        let id = android_id();
        let spec = BuildSpec {
            id: &id,
            app_name: "Shop",
            sdks: &[],
            pin_rules: std::slice::from_ref(&rule),
            decoy_certs: &[],
            nsc_misconfig_override_pins: false,
            associated_domains: &[],
            ios_encryption_seed: None,
        };
        let pkg = build_package(&spec, &mut SplitMix64::new(3));
        let dex = pkg.file("classes.dex").unwrap();
        let strings = crate::package::extract_strings(dex.content.as_bytes(), 6);
        assert!(!strings.iter().any(|s| s.contains("sha256/")));
    }

    #[test]
    fn sdk_cert_asset_lands_under_sdk_path() {
        let c = cert(4);
        let rule = DomainPinRule::raw_cert(
            "api.braintreegateway.com",
            &c,
            PinTarget::Root,
            CertAssetFormat::Pem,
            PinSource::Sdk("Braintree".into()),
            false,
        );
        let id = android_id();
        let braintree = sdk::by_name("Braintree").unwrap();
        let sdks = [braintree];
        let spec = BuildSpec {
            id: &id,
            app_name: "Shop",
            sdks: &sdks,
            pin_rules: std::slice::from_ref(&rule),
            decoy_certs: &[],
            nsc_misconfig_override_pins: false,
            associated_domains: &[],
            ios_encryption_seed: None,
        };
        let pkg = build_package(&spec, &mut SplitMix64::new(4));
        assert!(pkg
            .files
            .iter()
            .any(|f| f.path.starts_with("assets/com/braintreepayments/api/")
                && f.path.ends_with(".pem")));
    }

    #[test]
    fn ios_package_encrypts_binary_but_not_plist() {
        let c = cert(5);
        let rule = DomainPinRule::spki(
            "api.x.com",
            &c,
            PinTarget::Root,
            PinAlgorithm::Sha256,
            PinStorage::SpkiStringInCode(PinAlgorithm::Sha256),
            PinSource::FirstParty,
        );
        let id = ios_id();
        let domains = vec!["shop.example.com".to_string()];
        let spec = BuildSpec {
            id: &id,
            app_name: "Shop",
            sdks: &[],
            pin_rules: std::slice::from_ref(&rule),
            decoy_certs: &[],
            nsc_misconfig_override_pins: false,
            associated_domains: &domains,
            ios_encryption_seed: Some(0xabc),
        };
        let pkg = build_package(&spec, &mut SplitMix64::new(5));
        assert!(pkg.encrypted);
        // Plist readable, binary not.
        assert!(pkg
            .file("Payload/App.app/Info.plist")
            .unwrap()
            .content
            .as_text()
            .unwrap()
            .contains("CFBundleIdentifier"));
        let main = pkg.file("Payload/App.app/App").unwrap();
        let strings = crate::package::extract_strings(main.content.as_bytes(), 6);
        assert!(
            !strings.iter().any(|s| s.contains("sha256/")),
            "pin hidden by encryption"
        );
        // Decrypt (flexdecrypt sim) reveals it.
        let dec = pkg.decrypt(0xabc);
        let main = dec.file("Payload/App.app/App").unwrap();
        let strings = crate::package::extract_strings(main.content.as_bytes(), 6);
        assert!(strings.iter().any(|s| s.contains("sha256/")));
    }

    #[test]
    fn ios_entitlements_carry_associated_domains() {
        let id = ios_id();
        let domains = vec![
            "shop.example.com".to_string(),
            "www.shop.example.com".to_string(),
        ];
        let spec = BuildSpec {
            id: &id,
            app_name: "Shop",
            sdks: &[],
            pin_rules: &[],
            decoy_certs: &[],
            nsc_misconfig_override_pins: false,
            associated_domains: &domains,
            ios_encryption_seed: Some(1),
        };
        let pkg = build_package(&spec, &mut SplitMix64::new(6));
        let ents = pkg
            .file("Payload/App.app/App.entitlements")
            .unwrap()
            .content
            .as_text()
            .unwrap();
        assert!(ents.contains("applinks:shop.example.com"));
    }

    #[test]
    fn misconfig_block_planted() {
        let c = cert(7);
        let id = android_id();
        let decoys = [c];
        let spec = BuildSpec {
            id: &id,
            app_name: "Shop",
            sdks: &[],
            pin_rules: &[],
            decoy_certs: &decoys,
            nsc_misconfig_override_pins: true,
            associated_domains: &[],
            ios_encryption_seed: None,
        };
        let pkg = build_package(&spec, &mut SplitMix64::new(7));
        let nsc_text = pkg
            .file("res/xml/network_security_config.xml")
            .unwrap()
            .content
            .as_text()
            .unwrap();
        let nsc = NetworkSecurityConfig::from_xml(nsc_text).unwrap();
        assert!(nsc.declares_pins());
        assert!(!nsc.pins_effectively());
    }

    #[test]
    fn decoy_certs_embedded_without_pin_rules() {
        let id = android_id();
        let decoys = [cert(8), cert(9)];
        let spec = BuildSpec {
            id: &id,
            app_name: "Shop",
            sdks: &[],
            pin_rules: &[],
            decoy_certs: &decoys,
            nsc_misconfig_override_pins: false,
            associated_domains: &[],
            ios_encryption_seed: None,
        };
        let pkg = build_package(&spec, &mut SplitMix64::new(8));
        let pem_files = pkg
            .files
            .iter()
            .filter(|f| f.path.ends_with(".pem"))
            .count();
        assert_eq!(pem_files, 2);
    }
}
