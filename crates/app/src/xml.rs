//! A minimal XML subset: enough to generate and parse Android manifests,
//! Network Security Configuration files, and iOS plists.
//!
//! Supported: elements, attributes (double-quoted), text content,
//! self-closing tags, `<?xml ...?>` declarations and `<!-- -->` comments
//! (skipped). Not supported (not needed): namespaces-aware processing,
//! CDATA, DTDs, entity definitions beyond the five predefined ones.

use core::fmt;
use pinning_pki::limits::{Budget, Limit};

/// An XML element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Tag name (kept verbatim, including any `android:`-style prefix).
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes.
    pub children: Vec<Node>,
}

/// An XML node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Element node.
    Element(Element),
    /// Text node (entity-decoded).
    Text(String),
}

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Input ended unexpectedly.
    UnexpectedEof,
    /// A closing tag did not match the open element.
    MismatchedClose {
        /// Tag that was open.
        expected: String,
        /// Tag that closed.
        found: String,
    },
    /// Malformed syntax at byte offset.
    Malformed(usize),
    /// No root element found.
    NoRoot,
    /// The document tripped a [`Budget`] limit (element nesting depth or
    /// total input size).
    LimitExceeded(Limit),
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof => write!(f, "unexpected end of input"),
            XmlError::MismatchedClose { expected, found } => {
                write!(
                    f,
                    "mismatched close tag: expected </{expected}>, found </{found}>"
                )
            }
            XmlError::Malformed(pos) => write!(f, "malformed XML at byte {pos}"),
            XmlError::NoRoot => write!(f, "no root element"),
            XmlError::LimitExceeded(limit) => write!(f, "parse budget exceeded: {limit}"),
        }
    }
}

impl std::error::Error for XmlError {}

impl Element {
    /// Creates an element.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: adds an attribute.
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Builder: adds a child element.
    pub fn child(mut self, el: Element) -> Self {
        self.children.push(Node::Element(el));
        self
    }

    /// Builder: adds a text child.
    pub fn text(mut self, t: impl Into<String>) -> Self {
        self.children.push(Node::Text(t.into()));
        self
    }

    /// Looks up an attribute value.
    pub fn get_attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements with the given tag name.
    pub fn find_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.children.iter().filter_map(move |n| match n {
            Node::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// First child element with the given tag name.
    pub fn find<'a>(&'a self, name: &'a str) -> Option<&'a Element> {
        self.find_all(name).next()
    }

    /// All child elements (any tag).
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            _ => None,
        })
    }

    /// Concatenated text content of direct text children, trimmed.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }

    /// Depth-first search for descendant elements with the given tag name
    /// (including self).
    pub fn descendants<'a>(&'a self, name: &'a str, out: &mut Vec<&'a Element>) {
        if self.name == name {
            out.push(self);
        }
        for e in self.elements() {
            e.descendants(name, out);
        }
    }

    /// Renders to a string with an XML declaration.
    pub fn to_document(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"utf-8\"?>\n");
        self.render(&mut out, 0);
        out
    }

    fn render(&self, out: &mut String, indent: usize) {
        let pad = "    ".repeat(indent);
        out.push_str(&pad);
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str(" />\n");
            return;
        }
        // Pure-text elements render inline; mixed/element content indents.
        let only_text = self.children.iter().all(|n| matches!(n, Node::Text(_)));
        if only_text {
            out.push('>');
            for n in &self.children {
                if let Node::Text(t) = n {
                    out.push_str(&escape(t));
                }
            }
        } else {
            out.push_str(">\n");
            for n in &self.children {
                match n {
                    Node::Element(e) => e.render(out, indent + 1),
                    Node::Text(t) => {
                        let trimmed = t.trim();
                        if !trimmed.is_empty() {
                            out.push_str(&"    ".repeat(indent + 1));
                            out.push_str(&escape(trimmed));
                            out.push('\n');
                        }
                    }
                }
            }
            out.push_str(&pad);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push_str(">\n");
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    budget: Budget,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                match self.input[self.pos..].windows(2).position(|w| w == b"?>") {
                    Some(off) => self.pos += off + 2,
                    None => return Err(XmlError::UnexpectedEof),
                }
            } else if self.starts_with("<!--") {
                match self.input[self.pos..].windows(3).position(|w| w == b"-->") {
                    Some(off) => self.pos += off + 3,
                    None => return Err(XmlError::UnexpectedEof),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b':' | b'-' | b'_' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::Malformed(self.pos));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn element(&mut self) -> Result<Element, XmlError> {
        self.depth += 1;
        if self.depth > self.budget.max_depth {
            return Err(XmlError::LimitExceeded(Limit::Depth));
        }
        let out = self.element_inner();
        self.depth -= 1;
        out
    }

    fn element_inner(&mut self) -> Result<Element, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(XmlError::Malformed(self.pos));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut el = Element::new(name.clone());
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(XmlError::Malformed(self.pos));
                    }
                    self.pos += 1;
                    return Ok(el); // self-closing
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(XmlError::Malformed(self.pos));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    if self.peek() != Some(b'"') {
                        return Err(XmlError::Malformed(self.pos));
                    }
                    self.pos += 1;
                    let vstart = self.pos;
                    while self.peek().is_some_and(|c| c != b'"') {
                        self.pos += 1;
                    }
                    if self.peek().is_none() {
                        return Err(XmlError::UnexpectedEof);
                    }
                    let value = String::from_utf8_lossy(&self.input[vstart..self.pos]).into_owned();
                    self.pos += 1; // closing quote
                    el.attrs.push((key, unescape(&value)));
                }
                None => return Err(XmlError::UnexpectedEof),
            }
        }
        // Children.
        loop {
            if self.starts_with("<!--") {
                self.skip_misc()?;
                continue;
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(XmlError::Malformed(self.pos));
                }
                self.pos += 1;
                if close != name {
                    return Err(XmlError::MismatchedClose {
                        expected: name,
                        found: close,
                    });
                }
                return Ok(el);
            }
            match self.peek() {
                Some(b'<') => el.children.push(Node::Element(self.element()?)),
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'<') {
                        self.pos += 1;
                    }
                    let text = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                    if !text.trim().is_empty() {
                        el.children.push(Node::Text(unescape(text.trim())));
                    }
                }
                None => return Err(XmlError::UnexpectedEof),
            }
        }
    }
}

/// Parses an XML document under the workspace-standard [`Budget`].
pub fn parse(input: &str) -> Result<Element, XmlError> {
    parse_with_budget(input, &Budget::STANDARD)
}

/// Parses an XML document, returning its root element. The total input
/// size and the element nesting depth are bounded by `budget`; exceeding
/// either yields [`XmlError::LimitExceeded`] rather than unbounded work
/// or recursion.
pub fn parse_with_budget(input: &str, budget: &Budget) -> Result<Element, XmlError> {
    if input.len() > budget.max_input_bytes {
        return Err(XmlError::LimitExceeded(Limit::InputBytes));
    }
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
        budget: *budget,
        depth: 0,
    };
    p.skip_misc()?;
    if p.peek().is_none() {
        return Err(XmlError::NoRoot);
    }
    let root = p.element()?;
    p.skip_misc()?;
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let doc = Element::new("root")
            .attr("a", "1")
            .child(Element::new("child").text("hello"))
            .child(Element::new("empty"));
        let s = doc.to_document();
        let parsed = parse(&s).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parses_declaration_and_comments() {
        let s = "<?xml version=\"1.0\"?>\n<!-- hi -->\n<a x=\"y\"><!-- inner --><b/></a>";
        let e = parse(s).unwrap();
        assert_eq!(e.name, "a");
        assert_eq!(e.get_attr("x"), Some("y"));
        assert!(e.find("b").is_some());
    }

    #[test]
    fn entity_escaping_roundtrip() {
        let doc = Element::new("t").attr("v", "a<b&\"c\"").text("x > y & z");
        let parsed = parse(&doc.to_document()).unwrap();
        assert_eq!(parsed.get_attr("v"), Some("a<b&\"c\""));
        assert_eq!(parsed.text_content(), "x > y & z");
    }

    #[test]
    fn namespaced_attrs_kept_verbatim() {
        let s = r#"<application android:networkSecurityConfig="@xml/nsc" />"#;
        let e = parse(s).unwrap();
        assert_eq!(
            e.get_attr("android:networkSecurityConfig"),
            Some("@xml/nsc")
        );
    }

    #[test]
    fn mismatched_close_rejected() {
        assert!(matches!(
            parse("<a><b></a></b>"),
            Err(XmlError::MismatchedClose { .. })
        ));
    }

    #[test]
    fn truncated_rejected() {
        assert!(parse("<a><b>").is_err());
        assert!(parse("<a attr=\"x").is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(matches!(parse("   "), Err(XmlError::NoRoot)));
    }

    #[test]
    fn descendants_search() {
        let s = "<r><x><pin>1</pin></x><pin>2</pin></r>";
        let e = parse(s).unwrap();
        let mut hits = Vec::new();
        e.descendants("pin", &mut hits);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[1].text_content(), "2");
    }

    #[test]
    fn mixed_content_preserved() {
        let s = "<a>before<b/>after</a>";
        let e = parse(s).unwrap();
        assert_eq!(e.children.len(), 3);
    }

    #[test]
    fn runaway_nesting_rejected() {
        let deep = Budget::STANDARD.max_depth + 1;
        let mut s = String::new();
        for _ in 0..deep {
            s.push_str("<a>");
        }
        for _ in 0..deep {
            s.push_str("</a>");
        }
        assert_eq!(parse(&s), Err(XmlError::LimitExceeded(Limit::Depth)));
    }

    #[test]
    fn nesting_within_budget_parses() {
        let strict = Budget::strict();
        let mut s = String::new();
        for _ in 0..strict.max_depth {
            s.push_str("<a>");
        }
        for _ in 0..strict.max_depth {
            s.push_str("</a>");
        }
        assert!(parse_with_budget(&s, &strict).is_ok());
    }

    #[test]
    fn oversized_document_rejected() {
        let strict = Budget::strict();
        let mut s = String::from("<a>");
        s.push_str(&"x".repeat(strict.max_input_bytes));
        s.push_str("</a>");
        assert_eq!(
            parse_with_budget(&s, &strict),
            Err(XmlError::LimitExceeded(Limit::InputBytes))
        );
    }
}
