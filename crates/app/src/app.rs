//! The aggregate app model.

use crate::behavior::AppBehavior;
use crate::category::Category;
use crate::package::AppPackage;
use crate::pinning::DomainPinRule;
use crate::platform::AppId;

/// A complete simulated mobile app: identity, store metadata, ground-truth
/// pinning rules, runtime behaviour, and the built package.
#[derive(Debug, Clone)]
pub struct MobileApp {
    /// Platform-qualified identifier.
    pub id: AppId,
    /// Logical product key shared by an Android/iOS sibling pair (the
    /// AlternativeTo linkage of §3 maps to this).
    pub product_key: String,
    /// Display name.
    pub name: String,
    /// Developer organization (drives first-/third-party attribution).
    pub developer_org: String,
    /// Store category.
    pub category: Category,
    /// Popularity rank on its store (1 = top). Random-dataset apps carry
    /// large ranks.
    pub popularity_rank: u32,
    /// Names of bundled third-party SDKs.
    pub sdk_names: Vec<String>,
    /// Ground-truth pinning rules (index-addressed by behaviour entries).
    pub pin_rules: Vec<DomainPinRule>,
    /// First-party domains the app owns.
    pub first_party_domains: Vec<String>,
    /// iOS associated domains from entitlements (triggers OS background
    /// traffic, §4.5). Empty on Android.
    pub associated_domains: Vec<String>,
    /// Whether the Android build ships an NSC file.
    pub uses_nsc: bool,
    /// Launch-time network behaviour.
    pub behavior: AppBehavior,
    /// The built package (encrypted for iOS store downloads).
    pub package: AppPackage,
}

impl MobileApp {
    /// Whether any pin rule is active at run time (the app "actually pins").
    pub fn pins_at_runtime(&self) -> bool {
        self.behavior
            .connections
            .iter()
            .filter_map(|c| c.pin_rule)
            .any(|i| self.pin_rules.get(i).is_some_and(|r| r.active_at_runtime))
    }

    /// Whether any pin artifact is statically visible in the package.
    pub fn has_static_pin_artifacts(&self) -> bool {
        self.pin_rules
            .iter()
            .any(|r| r.storage.statically_visible())
    }

    /// The first active rule applying to `hostname`, with its index.
    pub fn pin_rule_for(&self, hostname: &str) -> Option<(usize, &DomainPinRule)> {
        self.pin_rules
            .iter()
            .enumerate()
            .find(|(_, r)| r.active_at_runtime && r.applies_to(hostname))
    }

    /// Ground truth: domains this app pins *and contacts* at run time.
    pub fn runtime_pinned_domains(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .behavior
            .connections
            .iter()
            .filter(|c| {
                c.pin_rule
                    .and_then(|i| self.pin_rules.get(i))
                    .is_some_and(|r| r.active_at_runtime)
            })
            .map(|c| c.domain.as_str())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether `org` matches the app developer (case-insensitive).
    pub fn is_first_party_org(&self, org: &str) -> bool {
        self.developer_org.eq_ignore_ascii_case(org)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::PlannedConnection;
    use crate::pinning::{PinSource, PinStorage, PinTarget};
    use crate::platform::Platform;
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;
    use pinning_pki::authority::CertificateAuthority;
    use pinning_pki::name::DistinguishedName;
    use pinning_pki::pin::PinAlgorithm;
    use pinning_pki::time::{SimTime, Validity, YEAR};
    use pinning_tls::TlsLibrary;

    fn sample_app(active: bool, contacted: bool) -> MobileApp {
        let mut rng = SplitMix64::new(0x3a9);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("R", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let k = KeyPair::generate(&mut rng);
        let cert = root.issue_leaf(
            &["api.shop.com".to_string()],
            "Shop",
            &k,
            Validity::starting(SimTime(0), YEAR),
        );
        let mut rule = DomainPinRule::spki(
            "api.shop.com",
            &cert,
            PinTarget::Leaf,
            PinAlgorithm::Sha256,
            PinStorage::SpkiStringInCode(PinAlgorithm::Sha256),
            PinSource::FirstParty,
        );
        if !active {
            rule = rule.dead_code();
        }
        let mut conn = PlannedConnection::simple("api.shop.com", TlsLibrary::OkHttp);
        conn.pin_rule = contacted.then_some(0);
        MobileApp {
            id: AppId::new(Platform::Android, "com.shop.app"),
            product_key: "shop".into(),
            name: "Shop".into(),
            developer_org: "Shop Inc".into(),
            category: Category::Shopping,
            popularity_rank: 10,
            sdk_names: vec![],
            pin_rules: vec![rule],
            first_party_domains: vec!["api.shop.com".into()],
            associated_domains: vec![],
            uses_nsc: false,
            behavior: AppBehavior {
                connections: vec![conn],
            },
            package: AppPackage::new(Platform::Android, vec![]),
        }
    }

    #[test]
    fn runtime_pinning_requires_active_rule_and_contact() {
        assert!(sample_app(true, true).pins_at_runtime());
        assert!(
            !sample_app(false, true).pins_at_runtime(),
            "dead code never pins"
        );
        assert!(
            !sample_app(true, false).pins_at_runtime(),
            "uncontacted rule never pins"
        );
    }

    #[test]
    fn static_artifacts_present_even_for_dead_code() {
        assert!(sample_app(false, false).has_static_pin_artifacts());
    }

    #[test]
    fn pin_rule_lookup() {
        let app = sample_app(true, true);
        assert!(app.pin_rule_for("api.shop.com").is_some());
        assert!(app.pin_rule_for("other.com").is_none());
        let dead = sample_app(false, true);
        assert!(
            dead.pin_rule_for("api.shop.com").is_none(),
            "dead rules don't apply"
        );
    }

    #[test]
    fn runtime_pinned_domains_lists_contacted_pinned() {
        assert_eq!(
            sample_app(true, true).runtime_pinned_domains(),
            vec!["api.shop.com"]
        );
        assert!(sample_app(true, false).runtime_pinned_domains().is_empty());
    }
}
