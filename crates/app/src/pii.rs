//! Personally identifiable information (PII) types and payload rendering.
//!
//! The paper searches decrypted traffic for a fixed PII vocabulary (§4.4):
//! IMEI, advertising ID, WiFi MAC address, user email, state, city and
//! latitude/longitude. We render each as a key-value fragment in a synthetic
//! HTTP-ish request body; `pinning-analysis::pii` then detects them with
//! value-matching (the device's known identifiers), like ReCon-style
//! pipelines do.

use pinning_crypto::SplitMix64;

/// PII categories tracked by the study (Table 9's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PiiType {
    /// Device IMEI.
    Imei,
    /// Advertising identifier (AAID / IDFA).
    AdvertisingId,
    /// WiFi MAC address.
    WifiMac,
    /// Account email address.
    Email,
    /// Coarse location: state.
    State,
    /// Coarse location: city.
    City,
    /// Fine location: latitude/longitude pair.
    LatLon,
}

impl PiiType {
    /// All PII types, in Table 9 row order.
    pub const ALL: [PiiType; 7] = [
        PiiType::Imei,
        PiiType::AdvertisingId,
        PiiType::WifiMac,
        PiiType::Email,
        PiiType::State,
        PiiType::City,
        PiiType::LatLon,
    ];

    /// Display label used in Table 9.
    pub fn label(self) -> &'static str {
        match self {
            PiiType::Imei => "IMEI",
            PiiType::AdvertisingId => "Ad. ID",
            PiiType::WifiMac => "WiFi MAC",
            PiiType::Email => "Email",
            PiiType::State => "State",
            PiiType::City => "City",
            PiiType::LatLon => "Lat./Lon.",
        }
    }

    /// The query-parameter key an app would use for this PII.
    pub fn param_key(self) -> &'static str {
        match self {
            PiiType::Imei => "imei",
            PiiType::AdvertisingId => "adid",
            PiiType::WifiMac => "mac",
            PiiType::Email => "email",
            PiiType::State => "state",
            PiiType::City => "city",
            PiiType::LatLon => "latlon",
        }
    }
}

impl core::fmt::Display for PiiType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// The identity of the test device/account: concrete values for every PII
/// type, fixed for a whole study run (the paper used dedicated test
/// accounts, §7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceIdentity {
    /// IMEI digits.
    pub imei: String,
    /// Advertising identifier (UUID-ish).
    pub advertising_id: String,
    /// WiFi MAC.
    pub wifi_mac: String,
    /// Test account email.
    pub email: String,
    /// State.
    pub state: String,
    /// City.
    pub city: String,
    /// "lat,lon" string.
    pub latlon: String,
}

impl DeviceIdentity {
    /// Deterministically generates a device identity.
    pub fn generate(rng: &mut SplitMix64) -> Self {
        let digits = |rng: &mut SplitMix64, n: usize| -> String {
            (0..n)
                .map(|_| char::from(b'0' + rng.next_below(10) as u8))
                .collect()
        };
        let hex = |rng: &mut SplitMix64, n: usize| -> String {
            const H: &[u8; 16] = b"0123456789abcdef";
            (0..n)
                .map(|_| char::from(H[rng.next_below(16) as usize]))
                .collect()
        };
        let imei = digits(rng, 15);
        let advertising_id = format!(
            "{}-{}-{}-{}-{}",
            hex(rng, 8),
            hex(rng, 4),
            hex(rng, 4),
            hex(rng, 4),
            hex(rng, 12)
        );
        let mac_bytes: Vec<String> = (0..6).map(|_| hex(rng, 2)).collect();
        let wifi_mac = mac_bytes.join(":");
        let email = format!("testacct{}@example-mail.com", digits(rng, 6));
        let state = "Massachusetts".to_string();
        let city = "Boston".to_string();
        let latlon = format!("42.{},-71.{}", digits(rng, 4), digits(rng, 4));
        DeviceIdentity {
            imei,
            advertising_id,
            wifi_mac,
            email,
            state,
            city,
            latlon,
        }
    }

    /// The concrete value for a PII type.
    pub fn value_of(&self, pii: PiiType) -> &str {
        match pii {
            PiiType::Imei => &self.imei,
            PiiType::AdvertisingId => &self.advertising_id,
            PiiType::WifiMac => &self.wifi_mac,
            PiiType::Email => &self.email,
            PiiType::State => &self.state,
            PiiType::City => &self.city,
            PiiType::LatLon => &self.latlon,
        }
    }

    /// Renders an HTTP-ish request body containing `pii` fields plus generic
    /// telemetry noise, as an app would transmit it.
    pub fn render_payload(&self, pii: &[PiiType], noise_token: u64) -> String {
        let mut parts: Vec<String> = vec![
            format!("event=launch"),
            format!("ts={noise_token}"),
            "sdkv=7.2.1".to_string(),
        ];
        for p in pii {
            parts.push(format!("{}={}", p.param_key(), self.value_of(*p)));
        }
        parts.join("&")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity() -> DeviceIdentity {
        DeviceIdentity::generate(&mut SplitMix64::new(0xdee))
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(identity(), identity());
    }

    #[test]
    fn imei_is_15_digits() {
        let d = identity();
        assert_eq!(d.imei.len(), 15);
        assert!(d.imei.chars().all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn adid_is_uuid_shaped() {
        let d = identity();
        let parts: Vec<_> = d.advertising_id.split('-').collect();
        assert_eq!(
            parts.iter().map(|p| p.len()).collect::<Vec<_>>(),
            vec![8, 4, 4, 4, 12]
        );
    }

    #[test]
    fn mac_is_colon_hex() {
        let d = identity();
        assert_eq!(d.wifi_mac.split(':').count(), 6);
    }

    #[test]
    fn payload_contains_values_only_for_requested_pii() {
        let d = identity();
        let body = d.render_payload(&[PiiType::AdvertisingId, PiiType::City], 42);
        assert!(body.contains(&d.advertising_id));
        assert!(body.contains("city=Boston"));
        assert!(!body.contains(&d.imei));
        assert!(!body.contains(&d.email));
    }

    #[test]
    fn all_types_have_distinct_keys() {
        use std::collections::HashSet;
        let keys: HashSet<_> = PiiType::ALL.iter().map(|p| p.param_key()).collect();
        assert_eq!(keys.len(), PiiType::ALL.len());
    }
}
