//! App store categories (the taxonomy behind Tables 1, 4 and 5).

use crate::platform::Platform;
use core::fmt;

/// A unified category taxonomy covering both stores.
///
/// The two stores use slightly different labels for the same concept
/// ("Tools" vs "Utilities", "Social" vs "Social Networking", "Food & Drink"
/// appears on both); [`Category::label_on`] renders the store-appropriate
/// name, which is what the dataset tables print.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Category {
    Games,
    Education,
    Tools,
    Music,
    Books,
    Business,
    Lifestyle,
    Entertainment,
    Travel,
    Personalization,
    Weather,
    Finance,
    Shopping,
    FoodAndDrink,
    Social,
    Productivity,
    Photography,
    Communication,
    Health,
    Sports,
    Navigation,
    Events,
    Dating,
    Comics,
    Automobile,
    News,
}

impl Category {
    /// Every category.
    pub const ALL: [Category; 26] = [
        Category::Games,
        Category::Education,
        Category::Tools,
        Category::Music,
        Category::Books,
        Category::Business,
        Category::Lifestyle,
        Category::Entertainment,
        Category::Travel,
        Category::Personalization,
        Category::Weather,
        Category::Finance,
        Category::Shopping,
        Category::FoodAndDrink,
        Category::Social,
        Category::Productivity,
        Category::Photography,
        Category::Communication,
        Category::Health,
        Category::Sports,
        Category::Navigation,
        Category::Events,
        Category::Dating,
        Category::Comics,
        Category::Automobile,
        Category::News,
    ];

    /// Store-specific display label.
    pub fn label_on(self, platform: Platform) -> &'static str {
        match (self, platform) {
            (Category::Tools, Platform::Android) => "Tools",
            (Category::Tools, Platform::Ios) => "Utilities",
            (Category::Social, Platform::Android) => "Social",
            (Category::Social, Platform::Ios) => "Social Networking",
            (Category::FoodAndDrink, _) => "Food & Drink",
            (Category::Health, Platform::Android) => "Health",
            (Category::Health, Platform::Ios) => "Health & Fitness",
            (Category::Photography, Platform::Android) => "Photography",
            (Category::Photography, Platform::Ios) => "Photo & Video",
            _ => self.base_label(),
        }
    }

    /// Platform-neutral label.
    pub fn base_label(self) -> &'static str {
        match self {
            Category::Games => "Games",
            Category::Education => "Education",
            Category::Tools => "Tools",
            Category::Music => "Music",
            Category::Books => "Books",
            Category::Business => "Business",
            Category::Lifestyle => "Lifestyle",
            Category::Entertainment => "Entertainment",
            Category::Travel => "Travel",
            Category::Personalization => "Personalization",
            Category::Weather => "Weather",
            Category::Finance => "Finance",
            Category::Shopping => "Shopping",
            Category::FoodAndDrink => "Food & Drink",
            Category::Social => "Social",
            Category::Productivity => "Productivity",
            Category::Photography => "Photography",
            Category::Communication => "Communication",
            Category::Health => "Health",
            Category::Sports => "Sports",
            Category::Navigation => "Navigation",
            Category::Events => "Events",
            Category::Dating => "Dating",
            Category::Comics => "Comics",
            Category::Automobile => "Automobile",
            Category::News => "News",
        }
    }

    /// Whether this is one of the data-sensitive categories the paper finds
    /// pinning concentrated in (finance, social, shopping, dating, health).
    pub fn is_data_sensitive(self) -> bool {
        matches!(
            self,
            Category::Finance
                | Category::Social
                | Category::Shopping
                | Category::Dating
                | Category::Health
        )
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.base_label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_exhaustive_and_unique() {
        use std::collections::HashSet;
        let set: HashSet<_> = Category::ALL.iter().collect();
        assert_eq!(set.len(), Category::ALL.len());
    }

    #[test]
    fn platform_labels_differ_where_expected() {
        assert_eq!(Category::Tools.label_on(Platform::Android), "Tools");
        assert_eq!(Category::Tools.label_on(Platform::Ios), "Utilities");
        assert_eq!(
            Category::Social.label_on(Platform::Ios),
            "Social Networking"
        );
        assert_eq!(Category::Games.label_on(Platform::Ios), "Games");
    }

    #[test]
    fn finance_is_sensitive_games_is_not() {
        assert!(Category::Finance.is_data_sensitive());
        assert!(!Category::Games.is_data_sensitive());
    }
}
