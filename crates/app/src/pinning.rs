//! Per-domain pinning rules: the *ground truth* the pipelines must recover.

use pinning_pki::name::match_hostname;
use pinning_pki::pin::{CertPin, Pin, PinAlgorithm, PinSet, SpkiPin};
use pinning_pki::Certificate;

/// Which certificate in the destination's chain is pinned (§5.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinTarget {
    /// The end-entity certificate (more security, more maintenance).
    Leaf,
    /// An intermediate CA.
    Intermediate,
    /// The root CA (more flexibility; the majority case — ~73% in §5.3.2).
    Root,
}

/// File format of an embedded certificate asset. The extension list is
/// exactly the one the paper's scanner searches (§4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CertAssetFormat {
    /// `.pem`
    Pem,
    /// `.der`
    Der,
    /// `.crt` (PEM content)
    Crt,
    /// `.cer` (DER content)
    Cer,
    /// `.cert` (PEM content)
    CertExt,
}

impl CertAssetFormat {
    /// File extension (without dot).
    pub fn extension(self) -> &'static str {
        match self {
            CertAssetFormat::Pem => "pem",
            CertAssetFormat::Der => "der",
            CertAssetFormat::Crt => "crt",
            CertAssetFormat::Cer => "cer",
            CertAssetFormat::CertExt => "cert",
        }
    }

    /// Whether the content is PEM text (vs DER bytes).
    pub fn is_pem(self) -> bool {
        matches!(
            self,
            CertAssetFormat::Pem | CertAssetFormat::Crt | CertAssetFormat::CertExt
        )
    }
}

/// Where the app's build materializes pin material — what static analysis
/// can (or cannot) see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinStorage {
    /// A raw certificate file shipped in assets/resources.
    RawCertAsset(CertAssetFormat),
    /// A `sha256/...`-style string in the dex/bytecode string pool
    /// (OkHttp `CertificatePinner`, TrustKit config, …).
    SpkiStringInCode(PinAlgorithm),
    /// Same, but inside a native library / Mach-O binary.
    SpkiStringInNativeLib(PinAlgorithm),
    /// Android Network Security Configuration `<pin-set>` (the only channel
    /// prior NSC-based studies could see).
    NscPinSet,
    /// Obfuscated at rest and reconstructed at run time — invisible to
    /// static analysis (an acknowledged limitation, §5.6).
    ObfuscatedCode,
}

impl PinStorage {
    /// Whether the paper's static techniques can, in principle, observe this
    /// storage channel.
    pub fn statically_visible(self) -> bool {
        !matches!(self, PinStorage::ObfuscatedCode)
    }
}

/// Whose code introduced the rule (drives §5.3.5 / Table 7 attribution).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PinSource {
    /// The app developer's own code.
    FirstParty,
    /// A named third-party SDK.
    Sdk(String),
}

/// One ground-truth pinning rule: for destinations matching `pattern`, the
/// app enforces `pins`.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainPinRule {
    /// Hostname pattern (exact or `*.`-wildcard).
    pub pattern: String,
    /// What position in the chain the pinned certificate occupies.
    pub target: PinTarget,
    /// How the pin material is stored in the package.
    pub storage: PinStorage,
    /// Who introduced the rule.
    pub source: PinSource,
    /// Whether the pinning code actually executes at run time. Dead SDK
    /// code (`false`) is found by static analysis but never produces a
    /// pinned connection — a major static/dynamic divergence in Table 3.
    pub active_at_runtime: bool,
    /// The pins enforced at run time (when active).
    pub pins: PinSet,
    /// The certificate(s) behind the pins — used to materialize package
    /// artifacts and as analysis ground truth.
    pub pinned_certs: Vec<Certificate>,
    /// The destination serves a custom-PKI chain (Table 6's minority rows):
    /// the app anchors trust at its own CA via the pins and *skips* system
    /// root-store validation (which would reject the private chain).
    pub custom_pki: bool,
}

impl DomainPinRule {
    /// Builds an SPKI-hash rule pinning `cert`.
    pub fn spki(
        pattern: impl Into<String>,
        cert: &Certificate,
        target: PinTarget,
        alg: PinAlgorithm,
        storage: PinStorage,
        source: PinSource,
    ) -> Self {
        let pin = match alg {
            PinAlgorithm::Sha256 => SpkiPin::sha256_of(cert),
            PinAlgorithm::Sha1 => SpkiPin::sha1_of(cert),
        };
        DomainPinRule {
            pattern: pattern.into(),
            target,
            storage,
            source,
            active_at_runtime: true,
            pins: PinSet::from_pins(vec![Pin::Spki(pin)]),
            pinned_certs: vec![cert.clone()],
            custom_pki: false,
        }
    }

    /// Builds a raw-certificate rule pinning `cert`.
    ///
    /// `compare_key_only` models implementations that ship the whole
    /// certificate but compare only public keys (§5.3.3 found 5 of 6 raw
    /// leaf pins behave this way).
    pub fn raw_cert(
        pattern: impl Into<String>,
        cert: &Certificate,
        target: PinTarget,
        format: CertAssetFormat,
        source: PinSource,
        compare_key_only: bool,
    ) -> Self {
        let pin = if compare_key_only {
            CertPin::key_only(cert)
        } else {
            CertPin::exact(cert)
        };
        DomainPinRule {
            pattern: pattern.into(),
            target,
            storage: PinStorage::RawCertAsset(format),
            source,
            active_at_runtime: true,
            pins: PinSet::from_pins(vec![Pin::Cert(pin)]),
            pinned_certs: vec![cert.clone()],
            custom_pki: false,
        }
    }

    /// Marks the rule as dead code (statically present, dynamically inert).
    pub fn dead_code(mut self) -> Self {
        self.active_at_runtime = false;
        self
    }

    /// Marks the destination as custom-PKI (see [`DomainPinRule::custom_pki`]).
    pub fn with_custom_pki(mut self) -> Self {
        self.custom_pki = true;
        self
    }

    /// Whether this rule applies to `hostname`.
    pub fn applies_to(&self, hostname: &str) -> bool {
        match_hostname(&self.pattern, hostname)
            || self
                .pattern
                .strip_prefix("*.")
                .is_some_and(|apex| apex.eq_ignore_ascii_case(hostname))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;
    use pinning_pki::authority::CertificateAuthority;
    use pinning_pki::name::DistinguishedName;
    use pinning_pki::time::{SimTime, Validity, YEAR};

    fn cert() -> Certificate {
        let mut rng = SplitMix64::new(0xab);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("R", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let k = KeyPair::generate(&mut rng);
        root.issue_leaf(
            &["api.x.com".to_string()],
            "X",
            &k,
            Validity::starting(SimTime(0), YEAR),
        )
    }

    #[test]
    fn spki_rule_matches_its_cert() {
        let c = cert();
        let rule = DomainPinRule::spki(
            "api.x.com",
            &c,
            PinTarget::Leaf,
            PinAlgorithm::Sha256,
            PinStorage::SpkiStringInCode(PinAlgorithm::Sha256),
            PinSource::FirstParty,
        );
        assert!(rule.pins.matches_chain(&[c]));
        assert!(rule.active_at_runtime);
    }

    #[test]
    fn wildcard_pattern_covers_apex_and_subdomains() {
        let c = cert();
        let rule = DomainPinRule::spki(
            "*.x.com",
            &c,
            PinTarget::Leaf,
            PinAlgorithm::Sha256,
            PinStorage::NscPinSet,
            PinSource::FirstParty,
        );
        assert!(rule.applies_to("api.x.com"));
        assert!(rule.applies_to("x.com"), "NSC-style apex inclusion");
        assert!(!rule.applies_to("x.org"));
    }

    #[test]
    fn dead_code_flag() {
        let c = cert();
        let rule = DomainPinRule::spki(
            "api.x.com",
            &c,
            PinTarget::Leaf,
            PinAlgorithm::Sha256,
            PinStorage::SpkiStringInCode(PinAlgorithm::Sha256),
            PinSource::Sdk("twitter".into()),
        )
        .dead_code();
        assert!(!rule.active_at_runtime);
        assert!(rule.storage.statically_visible());
    }

    #[test]
    fn obfuscated_storage_invisible() {
        assert!(!PinStorage::ObfuscatedCode.statically_visible());
        assert!(PinStorage::NscPinSet.statically_visible());
    }

    #[test]
    fn asset_formats() {
        assert!(CertAssetFormat::Pem.is_pem());
        assert!(!CertAssetFormat::Der.is_pem());
        assert_eq!(CertAssetFormat::Cer.extension(), "cer");
    }
}
