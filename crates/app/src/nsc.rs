//! Android Network Security Configuration (NSC) files.
//!
//! NSC is the declarative pinning channel introduced in Android 7 and the
//! *only* channel prior large-scale studies (Possemato et al., Oltrogge et
//! al.) could measure. The paper re-implements NSC detection as its
//! baseline technique (Table 3's "Configuration Files" column) and then
//! shows how much pinning lives elsewhere.
//!
//! This module models the subset of NSC the studies parse: `<domain-config>`
//! with `<domain includeSubdomains>`, `<pin-set>` with SHA-256 pins and
//! expiration, `<trust-anchors>`/`<certificates overridePins>`, including
//! the *misconfigurations* Possemato et al. observed (pinning `example.com`,
//! `overridePins="true"` neutering the pin set).

use crate::xml::{Element, XmlError};
use pinning_crypto::b64encode;
use pinning_pki::Certificate;

/// One `<pin>` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NscPin {
    /// Digest algorithm attribute (the platform only accepts `"SHA-256"`).
    pub digest: String,
    /// Base64 digest value.
    pub value_b64: String,
}

impl NscPin {
    /// Builds a pin entry for `cert`'s SPKI.
    pub fn for_cert(cert: &Certificate) -> Self {
        NscPin {
            digest: "SHA-256".to_string(),
            value_b64: b64encode(&cert.spki_sha256()),
        }
    }
}

/// One `<domain-config>` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainConfig {
    /// `(name, includeSubdomains)` pairs.
    pub domains: Vec<(String, bool)>,
    /// Pins in the `<pin-set>`, empty when the block only tweaks anchors.
    pub pins: Vec<NscPin>,
    /// Optional `<pin-set expiration="...">` date string.
    pub pin_expiration: Option<String>,
    /// `<certificates overridePins="true">` inside `<trust-anchors>` — the
    /// classic misconfiguration that silently disables the pin set.
    pub override_pins: bool,
    /// Whether user-added CAs are trusted for these domains.
    pub trust_user_certs: bool,
}

impl DomainConfig {
    /// Whether the pin set is actually effective (non-empty and not
    /// overridden).
    pub fn pinning_effective(&self) -> bool {
        !self.pins.is_empty() && !self.override_pins
    }
}

/// A parsed/generated NSC file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetworkSecurityConfig {
    /// Domain-specific blocks.
    pub domain_configs: Vec<DomainConfig>,
}

impl NetworkSecurityConfig {
    /// Whether any block carries pins (what prior NSC studies counted,
    /// effective or not).
    pub fn declares_pins(&self) -> bool {
        self.domain_configs.iter().any(|d| !d.pins.is_empty())
    }

    /// Whether any block pins *effectively*.
    pub fn pins_effectively(&self) -> bool {
        self.domain_configs.iter().any(|d| d.pinning_effective())
    }

    /// Renders the XML document.
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("network-security-config");
        for dc in &self.domain_configs {
            let mut el = Element::new("domain-config");
            for (name, inc) in &dc.domains {
                el = el.child(
                    Element::new("domain")
                        .attr("includeSubdomains", if *inc { "true" } else { "false" })
                        .text(name.clone()),
                );
            }
            if !dc.pins.is_empty() {
                let mut ps = Element::new("pin-set");
                if let Some(exp) = &dc.pin_expiration {
                    ps = ps.attr("expiration", exp.clone());
                }
                for pin in &dc.pins {
                    ps = ps.child(
                        Element::new("pin")
                            .attr("digest", pin.digest.clone())
                            .text(pin.value_b64.clone()),
                    );
                }
                el = el.child(ps);
            }
            if dc.override_pins || dc.trust_user_certs {
                let mut ta = Element::new("trust-anchors");
                let mut certs = Element::new("certificates").attr(
                    "src",
                    if dc.trust_user_certs {
                        "user"
                    } else {
                        "system"
                    },
                );
                if dc.override_pins {
                    certs = certs.attr("overridePins", "true");
                }
                ta = ta.child(certs);
                el = el.child(ta);
            }
            root = root.child(el);
        }
        root.to_document()
    }

    /// Parses an NSC XML document under the workspace-standard budget.
    pub fn from_xml(text: &str) -> Result<Self, XmlError> {
        Self::from_xml_with_budget(text, &pinning_pki::limits::Budget::STANDARD)
    }

    /// Parses an NSC XML document under an explicit hostile-input budget.
    pub fn from_xml_with_budget(
        text: &str,
        budget: &pinning_pki::limits::Budget,
    ) -> Result<Self, XmlError> {
        let root = crate::xml::parse_with_budget(text, budget)?;
        let mut out = NetworkSecurityConfig::default();
        for dc_el in root.find_all("domain-config") {
            let mut dc = DomainConfig {
                domains: Vec::new(),
                pins: Vec::new(),
                pin_expiration: None,
                override_pins: false,
                trust_user_certs: false,
            };
            for d in dc_el.find_all("domain") {
                let inc = d.get_attr("includeSubdomains") == Some("true");
                dc.domains.push((d.text_content(), inc));
            }
            if let Some(ps) = dc_el.find("pin-set") {
                dc.pin_expiration = ps.get_attr("expiration").map(str::to_string);
                for pin in ps.find_all("pin") {
                    dc.pins.push(NscPin {
                        digest: pin.get_attr("digest").unwrap_or("SHA-256").to_string(),
                        value_b64: pin.text_content(),
                    });
                }
            }
            if let Some(ta) = dc_el.find("trust-anchors") {
                for certs in ta.find_all("certificates") {
                    if certs.get_attr("overridePins") == Some("true") {
                        dc.override_pins = true;
                    }
                    if certs.get_attr("src") == Some("user") {
                        dc.trust_user_certs = true;
                    }
                }
            }
            out.domain_configs.push(dc);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;
    use pinning_pki::authority::CertificateAuthority;
    use pinning_pki::name::DistinguishedName;
    use pinning_pki::time::{SimTime, Validity, YEAR};

    fn cert() -> Certificate {
        let mut rng = SplitMix64::new(0x115c);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("R", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let k = KeyPair::generate(&mut rng);
        root.issue_leaf(
            &["api.x.com".to_string()],
            "X",
            &k,
            Validity::starting(SimTime(0), YEAR),
        )
    }

    fn sample() -> NetworkSecurityConfig {
        NetworkSecurityConfig {
            domain_configs: vec![DomainConfig {
                domains: vec![("api.x.com".into(), true)],
                pins: vec![NscPin::for_cert(&cert())],
                pin_expiration: Some("2024-01-01".into()),
                override_pins: false,
                trust_user_certs: false,
            }],
        }
    }

    #[test]
    fn xml_roundtrip() {
        let nsc = sample();
        let xml = nsc.to_xml();
        let parsed = NetworkSecurityConfig::from_xml(&xml).unwrap();
        assert_eq!(parsed, nsc);
    }

    #[test]
    fn pin_value_is_44_char_base64() {
        let nsc = sample();
        assert_eq!(nsc.domain_configs[0].pins[0].value_b64.len(), 44);
        assert!(nsc.declares_pins());
        assert!(nsc.pins_effectively());
    }

    #[test]
    fn override_pins_neuters_pinning() {
        let mut nsc = sample();
        nsc.domain_configs[0].override_pins = true;
        assert!(nsc.declares_pins(), "pins still *declared*");
        assert!(!nsc.pins_effectively(), "but not effective");
        // Roundtrip preserves the misconfiguration.
        let parsed = NetworkSecurityConfig::from_xml(&nsc.to_xml()).unwrap();
        assert!(parsed.domain_configs[0].override_pins);
    }

    #[test]
    fn config_without_pins() {
        let nsc = NetworkSecurityConfig {
            domain_configs: vec![DomainConfig {
                domains: vec![("cleartext.example".into(), false)],
                pins: vec![],
                pin_expiration: None,
                override_pins: false,
                trust_user_certs: true,
            }],
        };
        assert!(!nsc.declares_pins());
        let parsed = NetworkSecurityConfig::from_xml(&nsc.to_xml()).unwrap();
        assert!(parsed.domain_configs[0].trust_user_certs);
    }

    #[test]
    fn parses_handwritten_example() {
        let xml = r#"<?xml version="1.0" encoding="utf-8"?>
<network-security-config>
    <domain-config>
        <domain includeSubdomains="true">example.com</domain>
        <pin-set expiration="2025-06-01">
            <pin digest="SHA-256">7HIpactkIAq2Y49orFOOQKurWxmmSFZhBCoQYcRhJ3Y=</pin>
            <pin digest="SHA-256">fwza0LRMXouZHRC8Ei+4PyuldPDcf3UKgO/04cDM1oE=</pin>
        </pin-set>
        <trust-anchors>
            <certificates src="system" overridePins="true" />
        </trust-anchors>
    </domain-config>
</network-security-config>"#;
        let nsc = NetworkSecurityConfig::from_xml(xml).unwrap();
        assert_eq!(nsc.domain_configs[0].pins.len(), 2);
        assert!(nsc.domain_configs[0].override_pins);
        assert_eq!(nsc.domain_configs[0].domains[0].0, "example.com");
    }
}
