//! App packages: the artifact static analysis scans.
//!
//! A package is a flat list of files (paths matter — attribution groups on
//! them). iOS packages come FairPlay-encrypted: scanning one without
//! decrypting first sees only ciphertext, reproducing why the paper needed
//! Flexdecrypt/Frida-iOS-Dump and a jailbroken device (§4.1.2, Appendix A).

use crate::platform::Platform;
use pinning_crypto::SplitMix64;

/// File content: text (configs, PEM) or binary (DER, dex, Mach-O).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileContent {
    /// UTF-8 text.
    Text(String),
    /// Raw bytes.
    Binary(Vec<u8>),
}

impl FileContent {
    /// Content as bytes (text is UTF-8).
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            FileContent::Text(s) => s.as_bytes(),
            FileContent::Binary(b) => b,
        }
    }

    /// Content as text, if valid UTF-8.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            FileContent::Text(s) => Some(s),
            FileContent::Binary(b) => core::str::from_utf8(b).ok(),
        }
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// Whether content is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One file inside a package.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppFile {
    /// Package-relative path, `/`-separated.
    pub path: String,
    /// Content.
    pub content: FileContent,
}

impl AppFile {
    /// Creates a text file.
    pub fn text(path: impl Into<String>, content: impl Into<String>) -> Self {
        AppFile {
            path: path.into(),
            content: FileContent::Text(content.into()),
        }
    }

    /// Creates a binary file.
    pub fn binary(path: impl Into<String>, content: Vec<u8>) -> Self {
        AppFile {
            path: path.into(),
            content: FileContent::Binary(content),
        }
    }

    /// File extension (lowercased), if any.
    pub fn extension(&self) -> Option<String> {
        let name = self.path.rsplit('/').next()?;
        let (_, ext) = name.rsplit_once('.')?;
        Some(ext.to_ascii_lowercase())
    }
}

/// A complete app package.
#[derive(Debug, Clone)]
pub struct AppPackage {
    /// Platform the package targets.
    pub platform: Platform,
    /// Files, in build order.
    pub files: Vec<AppFile>,
    /// Whether binaries are FairPlay-style encrypted (iOS store downloads).
    pub encrypted: bool,
    /// Memoized [`AppPackage::content_hash`]. Clones share the cell
    /// (same content, same hash); `encrypt`/`decrypt` replace it.
    hash_cell: std::sync::Arc<std::sync::OnceLock<[u8; 32]>>,
}

impl PartialEq for AppPackage {
    fn eq(&self, other: &Self) -> bool {
        // The memo cell is derived state, not content.
        self.platform == other.platform
            && self.files == other.files
            && self.encrypted == other.encrypted
    }
}

impl Eq for AppPackage {}

impl AppPackage {
    /// Creates a plaintext package.
    pub fn new(platform: Platform, files: Vec<AppFile>) -> Self {
        AppPackage {
            platform,
            files,
            encrypted: false,
            hash_cell: Default::default(),
        }
    }

    /// Looks up a file by exact path.
    pub fn file(&self, path: &str) -> Option<&AppFile> {
        self.files.iter().find(|f| f.path == path)
    }

    /// Total size in bytes.
    pub fn total_size(&self) -> usize {
        self.files.iter().map(|f| f.content.len()).sum()
    }

    /// SHA-256 over the package's full content: platform, encryption
    /// state, and every file's path and bytes, in file order.
    ///
    /// Two packages hash equal iff static analysis would see identical
    /// input, so the digest serves as the memo key for cached static scans
    /// and as the manifest component of the per-app epoch fingerprint.
    /// Memoized: the first call hashes, later calls return the cached
    /// digest (the epoch engine calls this once per app per epoch). In
    /// debug builds every call re-verifies the memo against the actual
    /// content, so a mutate-after-memoize bug trips an assertion instead
    /// of silently replaying a stale verdict.
    pub fn content_hash(&self) -> [u8; 32] {
        let memo = *self.hash_cell.get_or_init(|| self.compute_content_hash());
        debug_assert_eq!(
            memo,
            self.compute_content_hash(),
            "package content changed after its hash was memoized: call \
             invalidate_content_hash() after mutating files in place"
        );
        memo
    }

    /// Resets the content-hash memo. Required after mutating `files`,
    /// `platform`, or `encrypted` in place on a package whose hash may
    /// already have been computed (clones share the memo cell).
    pub fn invalidate_content_hash(&mut self) {
        self.hash_cell = Default::default();
    }

    fn compute_content_hash(&self) -> [u8; 32] {
        let mut bytes = Vec::with_capacity(64 + self.total_size());
        bytes.push(match self.platform {
            Platform::Android => 0u8,
            Platform::Ios => 1u8,
        });
        bytes.push(self.encrypted as u8);
        bytes.extend_from_slice(&(self.files.len() as u64).to_le_bytes());
        for f in &self.files {
            bytes.extend_from_slice(&(f.path.len() as u64).to_le_bytes());
            bytes.extend_from_slice(f.path.as_bytes());
            let content = f.content.as_bytes();
            bytes.push(matches!(f.content, FileContent::Binary(_)) as u8);
            bytes.extend_from_slice(&(content.len() as u64).to_le_bytes());
            bytes.extend_from_slice(content);
        }
        pinning_crypto::sha256(&bytes)
    }

    /// Applies FairPlay-style encryption to the *code and asset* files.
    ///
    /// Metadata that the store needs (Info.plist, entitlements) stays
    /// plaintext — matching reality, where static analysis can read the
    /// plist of an encrypted IPA but not its binary.
    pub fn encrypt(mut self, seed: u64) -> AppPackage {
        assert!(!self.encrypted, "already encrypted");
        for f in &mut self.files {
            if Self::stays_plaintext(&f.path) {
                continue;
            }
            let bytes = xor_stream(f.content.as_bytes(), seed, &f.path);
            f.content = FileContent::Binary(bytes);
        }
        self.encrypted = true;
        self.invalidate_content_hash();
        self
    }

    /// Decrypts an encrypted package (the Flexdecrypt/Frida-iOS-Dump
    /// simulation; requires the "device key" `seed` that a jailbroken
    /// device exposes).
    pub fn decrypt(mut self, seed: u64) -> AppPackage {
        assert!(self.encrypted, "not encrypted");
        for f in &mut self.files {
            if Self::stays_plaintext(&f.path) {
                continue;
            }
            let bytes = xor_stream(f.content.as_bytes(), seed, &f.path);
            // Restore text-ness where the plaintext is valid UTF-8 *and*
            // looks textual (config/PEM files).
            f.content = match String::from_utf8(bytes) {
                Ok(s) if looks_textual(&s) => FileContent::Text(s),
                Ok(s) => FileContent::Binary(s.into_bytes()),
                Err(e) => FileContent::Binary(e.into_bytes()),
            };
        }
        self.encrypted = false;
        self.invalidate_content_hash();
        self
    }

    fn stays_plaintext(path: &str) -> bool {
        path.ends_with("Info.plist")
            || path.ends_with(".entitlements")
            || path.ends_with("embedded.mobileprovision")
    }
}

fn xor_stream(data: &[u8], seed: u64, path: &str) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed).derive(path);
    let mut out = data.to_vec();
    let mut key = [0u8; 64];
    let mut i = 0;
    while i < out.len() {
        rng.fill_bytes(&mut key);
        let n = key.len().min(out.len() - i);
        for j in 0..n {
            out[i + j] ^= key[j];
        }
        i += n;
    }
    out
}

fn looks_textual(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .take(512)
            .all(|c| !c.is_control() || matches!(c, '\n' | '\r' | '\t'))
}

/// Extracts printable ASCII strings of at least `min_len` characters from
/// binary content — the `strings`/radare2 primitive the paper uses on
/// native libraries and decrypted iOS binaries (§4.1.2).
pub fn extract_strings(data: &[u8], min_len: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for &b in data {
        if (0x20..0x7f).contains(&b) {
            cur.push(b as char);
        } else {
            if cur.len() >= min_len {
                out.push(core::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    if cur.len() >= min_len {
        out.push(cur);
    }
    out
}

/// Builds a dex-like / Mach-O-like binary blob embedding `strings` in a
/// string pool surrounded by pseudo machine code.
pub fn binary_with_strings(strings: &[String], rng: &mut SplitMix64, padding: usize) -> Vec<u8> {
    let mut out = Vec::new();
    // "Machine code" prelude: bytes outside the printable range often
    // enough to break up accidental strings.
    let mut noise = vec![0u8; padding / 2];
    rng.fill_bytes(&mut noise);
    out.extend_from_slice(&noise);
    for s in strings {
        out.push(0); // separator
        out.extend_from_slice(s.as_bytes());
        out.push(0);
        let mut gap = vec![0u8; 16];
        rng.fill_bytes(&mut gap);
        out.extend_from_slice(&gap);
    }
    let mut tail = vec![0u8; padding / 2];
    rng.fill_bytes(&mut tail);
    out.extend_from_slice(&tail);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_tracks_content() {
        let pkg = AppPackage::new(
            Platform::Android,
            vec![
                AppFile::text("AndroidManifest.xml", "<manifest/>"),
                AppFile::text("assets/ca.pem", "PEM"),
            ],
        );
        let base = pkg.content_hash();
        assert_eq!(base, pkg.clone().content_hash(), "clone hashes equal");

        let mut edited = pkg.clone();
        edited.files[1] = AppFile::text("assets/ca.pem", "PEM2");
        edited.invalidate_content_hash(); // clones share the memo cell
        assert_ne!(base, edited.content_hash(), "content change flips hash");

        let encrypted =
            AppPackage::new(Platform::Ios, vec![AppFile::text("binary", "code")]).encrypt(7);
        let enc_hash = encrypted.content_hash();
        let decrypted = encrypted.decrypt(7);
        assert_ne!(
            enc_hash,
            decrypted.content_hash(),
            "encryption state counts"
        );
    }

    #[test]
    fn extension_parsing() {
        assert_eq!(
            AppFile::text("assets/ca.pem", "x").extension().as_deref(),
            Some("pem")
        );
        assert_eq!(
            AppFile::text("a/b/C.DER", "x").extension().as_deref(),
            Some("der")
        );
        assert_eq!(AppFile::text("noext", "x").extension(), None);
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let pkg = AppPackage::new(
            Platform::Ios,
            vec![
                AppFile::text("Payload/App.app/Info.plist", "<plist/>"),
                AppFile::text("Payload/App.app/config.json", "{\"pin\":\"sha256/AAA\"}"),
                AppFile::binary("Payload/App.app/App", vec![1, 2, 3, 255, 0, 42]),
            ],
        );
        let enc = pkg.clone().encrypt(0x5EED);
        assert!(enc.encrypted);
        // Plist stays readable; code does not.
        assert_eq!(
            enc.file("Payload/App.app/Info.plist")
                .unwrap()
                .content
                .as_text(),
            Some("<plist/>")
        );
        assert_ne!(
            enc.file("Payload/App.app/App").unwrap().content.as_bytes(),
            &[1, 2, 3, 255, 0, 42]
        );
        let dec = enc.decrypt(0x5EED);
        assert_eq!(dec, pkg);
    }

    #[test]
    fn encrypted_content_hides_strings() {
        let secret = "sha256/THISISAPINSTRINGTHATMUSTVANISH0000000000000=";
        let pkg = AppPackage::new(
            Platform::Ios,
            vec![AppFile::text("Payload/App.app/App", secret)],
        )
        .encrypt(7);
        let cipher = pkg.file("Payload/App.app/App").unwrap().content.as_bytes();
        let found = extract_strings(cipher, 8)
            .iter()
            .any(|s| s.contains("sha256/"));
        assert!(!found, "pin must not survive encryption");
    }

    #[test]
    fn strings_extraction_finds_pins_in_binary() {
        let mut rng = SplitMix64::new(5);
        let pin = "sha256/AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA=".to_string();
        let blob = binary_with_strings(
            &[pin.clone(), "okhttp3/CertificatePinner".into()],
            &mut rng,
            256,
        );
        let strings = extract_strings(&blob, 6);
        assert!(strings.iter().any(|s| s.contains(&pin)));
        assert!(strings.iter().any(|s| s.contains("CertificatePinner")));
    }

    #[test]
    fn strings_extraction_min_len() {
        let data = b"ab\x00abcdef\x00xy";
        let strings = extract_strings(data, 3);
        assert_eq!(strings, vec!["abcdef".to_string()]);
    }

    #[test]
    fn total_size() {
        let pkg = AppPackage::new(
            Platform::Android,
            vec![AppFile::text("a", "1234"), AppFile::binary("b", vec![0; 6])],
        );
        assert_eq!(pkg.total_size(), 10);
    }
}
