//! Third-party SDK registry.
//!
//! §5.3.5 finds that "social networks, payment processing systems, and app
//! analytics frameworks are the common sources of third-party code that
//! introduces certificate pinning" and Table 7 names the top offenders per
//! platform. The registry below models those SDKs (plus widespread
//! *non-pinning* SDKs that generate third-party traffic noise) with:
//!
//! * the code path their artifacts land at inside a package (static
//!   attribution groups on this path, §4.1.4),
//! * the destination domains they contact at initialization,
//! * whether (and how) they pin, per platform,
//! * the TLS stack they use.

use crate::platform::Platform;
use pinning_pki::pin::PinAlgorithm;
use pinning_tls::TlsLibrary;

/// SDK business category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SdkKind {
    /// Social network integration.
    SocialNetwork,
    /// Payment processing.
    Payment,
    /// App analytics / telemetry.
    Analytics,
    /// Fraud prevention / bot detection.
    FraudPrevention,
    /// Advertising / monetization.
    Advertising,
    /// Crash reporting.
    CrashReporting,
    /// Cloud backend (database/sync).
    CloudBackend,
    /// Creative / content tooling.
    Creative,
    /// Receipt / billing capture.
    Billing,
}

/// How an SDK pins, if it does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdkPinning {
    /// Which chain position the SDK pins.
    pub target: crate::pinning::PinTarget,
    /// Digest algorithm of its pins.
    pub alg: PinAlgorithm,
    /// Whether the pin material ships as a raw certificate file (true) or
    /// an SPKI string in code (false).
    pub ships_raw_cert: bool,
    /// Probability that the SDK's pinning code path actually runs at app
    /// launch. Low values model dead code: the paper believes PayPal's
    /// Android pinning "end-points ... did not appear during our dynamic
    /// analysis" because the code paths were never triggered (§5.3.5).
    pub trigger_prob: f64,
}

/// A third-party SDK.
#[derive(Debug, Clone, PartialEq)]
pub struct SdkSpec {
    /// Canonical name (Table 7 rows).
    pub name: &'static str,
    /// Business category.
    pub kind: SdkKind,
    /// Platforms the SDK ships on.
    pub platforms: &'static [Platform],
    /// Package-relative code-path prefix on Android
    /// (e.g. `com/twitter/sdk`).
    pub android_path: &'static str,
    /// Framework path on iOS (e.g. `Frameworks/TwitterKit.framework`).
    pub ios_path: &'static str,
    /// Domains contacted at app launch.
    pub domains: &'static [&'static str],
    /// Pinning behaviour per platform (None = does not pin there).
    pub pinning_android: Option<SdkPinning>,
    /// Pinning behaviour on iOS.
    pub pinning_ios: Option<SdkPinning>,
    /// TLS stack used on Android.
    pub tls_android: TlsLibrary,
    /// TLS stack used on iOS.
    pub tls_ios: TlsLibrary,
    /// Relative adoption weight (drives how often the world generator
    /// attaches this SDK to an app).
    pub adoption_weight: u32,
}

impl SdkSpec {
    /// The code path on `platform`.
    pub fn path_on(&self, platform: Platform) -> &'static str {
        match platform {
            Platform::Android => self.android_path,
            Platform::Ios => self.ios_path,
        }
    }

    /// The pinning behaviour on `platform`.
    pub fn pinning_on(&self, platform: Platform) -> Option<SdkPinning> {
        match platform {
            Platform::Android => self.pinning_android,
            Platform::Ios => self.pinning_ios,
        }
    }

    /// The TLS stack on `platform`.
    pub fn tls_on(&self, platform: Platform) -> TlsLibrary {
        match platform {
            Platform::Android => self.tls_android,
            Platform::Ios => self.tls_ios,
        }
    }

    /// Whether the SDK is available on `platform`.
    pub fn available_on(&self, platform: Platform) -> bool {
        self.platforms.contains(&platform)
    }
}

use crate::pinning::PinTarget;
use Platform::{Android, Ios};

const BOTH: &[Platform] = &[Android, Ios];
const ANDROID_ONLY: &[Platform] = &[Android];
const IOS_ONLY: &[Platform] = &[Ios];

const PIN_ROOT_SPKI: SdkPinning = SdkPinning {
    target: PinTarget::Root,
    alg: PinAlgorithm::Sha256,
    ships_raw_cert: false,
    trigger_prob: 0.85,
};
const PIN_ROOT_RAW: SdkPinning = SdkPinning {
    target: PinTarget::Root,
    alg: PinAlgorithm::Sha256,
    ships_raw_cert: true,
    trigger_prob: 0.85,
};
const PIN_LEAF_SPKI: SdkPinning = SdkPinning {
    target: PinTarget::Leaf,
    alg: PinAlgorithm::Sha256,
    ships_raw_cert: false,
    trigger_prob: 0.85,
};
const PIN_INTER_SPKI: SdkPinning = SdkPinning {
    target: PinTarget::Intermediate,
    alg: PinAlgorithm::Sha256,
    ships_raw_cert: false,
    trigger_prob: 0.85,
};
/// PayPal-on-Android: pin material ships but the code path almost never
/// fires outside the PayPal app itself.
const PIN_ROOT_RAW_DORMANT: SdkPinning = SdkPinning {
    target: PinTarget::Root,
    alg: PinAlgorithm::Sha256,
    ships_raw_cert: true,
    trigger_prob: 0.04,
};

/// The full SDK registry.
///
/// Pinning SDKs mirror Table 7 (Android: Twitter, Braintree, Paypal,
/// Perimeterx, MParticle — iOS: Amplitude, Stripe, Weibo, FraudForce,
/// Adobe Creative Cloud), plus Sensibill (§4.1.4's worked example),
/// Firestore (the iOS Random-dataset pinned destination of §5) and a tail
/// of popular non-pinning SDKs that produce ordinary third-party traffic.
pub fn registry() -> &'static [SdkSpec] {
    &[
        // ---- Pinning SDKs, Android-leaning (Table 7 left) ----
        SdkSpec {
            name: "Twitter",
            kind: SdkKind::SocialNetwork,
            platforms: BOTH,
            android_path: "com/twitter/sdk/android",
            ios_path: "Frameworks/TwitterKit.framework",
            domains: &["api.twitter.com", "syndication.twitter.com"],
            pinning_android: Some(PIN_ROOT_RAW),
            pinning_ios: Some(PIN_ROOT_SPKI),
            tls_android: TlsLibrary::OkHttp,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 2,
        },
        SdkSpec {
            name: "Braintree",
            kind: SdkKind::Payment,
            platforms: BOTH,
            android_path: "com/braintreepayments/api",
            ios_path: "Frameworks/Braintree.framework",
            domains: &["api.braintreegateway.com"],
            pinning_android: Some(PIN_ROOT_RAW),
            pinning_ios: Some(PIN_ROOT_SPKI),
            tls_android: TlsLibrary::OkHttp,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 2,
        },
        SdkSpec {
            name: "Paypal",
            kind: SdkKind::Payment,
            platforms: BOTH,
            android_path: "com/paypal/android/sdk",
            ios_path: "Frameworks/PayPalCheckout.framework",
            domains: &["www.paypalobjects.com", "api-m.paypal.com"],
            // The paper: PayPal appears as a popular pinned domain on iOS
            // but (except the PayPal app itself) its Android code paths were
            // not triggered dynamically — modeled as (almost always) dormant.
            pinning_android: Some(PIN_ROOT_RAW_DORMANT),
            pinning_ios: Some(PIN_ROOT_SPKI),
            tls_android: TlsLibrary::OkHttp,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 2,
        },
        SdkSpec {
            name: "Perimeterx",
            kind: SdkKind::FraudPrevention,
            platforms: ANDROID_ONLY,
            android_path: "com/perimeterx/mobile_sdk",
            ios_path: "Frameworks/PerimeterX.framework",
            domains: &["collector.perimeterx.net"],
            pinning_android: Some(PIN_INTER_SPKI),
            pinning_ios: None,
            tls_android: TlsLibrary::OkHttp,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 1,
        },
        SdkSpec {
            name: "MParticle",
            kind: SdkKind::Analytics,
            platforms: ANDROID_ONLY,
            android_path: "com/mparticle",
            ios_path: "Frameworks/mParticle.framework",
            domains: &["config2.mparticle.com", "nativesdks.mparticle.com"],
            pinning_android: Some(PIN_ROOT_SPKI),
            pinning_ios: None,
            tls_android: TlsLibrary::OkHttp,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 1,
        },
        SdkSpec {
            name: "Sensibill",
            kind: SdkKind::Billing,
            platforms: ANDROID_ONLY,
            android_path: "com/getsensibill",
            ios_path: "Frameworks/Sensibill.framework",
            domains: &["receipts.sensibill.com"],
            pinning_android: Some(PIN_ROOT_RAW),
            pinning_ios: None,
            tls_android: TlsLibrary::OkHttp,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 1,
        },
        // ---- Pinning SDKs, iOS-leaning (Table 7 right) ----
        SdkSpec {
            name: "Amplitude",
            kind: SdkKind::Analytics,
            platforms: IOS_ONLY,
            android_path: "com/amplitude/android",
            ios_path: "Frameworks/Amplitude.framework",
            domains: &["api2.amplitude.com"],
            pinning_android: None,
            pinning_ios: Some(PIN_ROOT_SPKI),
            tls_android: TlsLibrary::OkHttp,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 3,
        },
        SdkSpec {
            name: "Stripe",
            kind: SdkKind::Payment,
            platforms: BOTH,
            android_path: "com/stripe/android",
            ios_path: "Frameworks/Stripe.framework",
            domains: &["api.stripe.com"],
            pinning_android: None,
            pinning_ios: Some(PIN_ROOT_SPKI),
            tls_android: TlsLibrary::OkHttp,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 2,
        },
        SdkSpec {
            name: "Weibo",
            kind: SdkKind::SocialNetwork,
            platforms: IOS_ONLY,
            android_path: "com/sina/weibo/sdk",
            ios_path: "Frameworks/WeiboSDK.framework",
            domains: &["api.weibo.com"],
            pinning_android: None,
            pinning_ios: Some(PIN_LEAF_SPKI),
            tls_android: TlsLibrary::Conscrypt,
            tls_ios: TlsLibrary::AfNetworking,
            adoption_weight: 2,
        },
        SdkSpec {
            name: "FraudForce",
            kind: SdkKind::FraudPrevention,
            platforms: IOS_ONLY,
            android_path: "com/iovation/mobile/android",
            ios_path: "Frameworks/FraudForce.framework",
            domains: &["mpsnare.iesnare.com"],
            pinning_android: None,
            pinning_ios: Some(PIN_ROOT_SPKI),
            tls_android: TlsLibrary::Conscrypt,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 1,
        },
        SdkSpec {
            name: "Adobe Creative Cloud",
            kind: SdkKind::Creative,
            platforms: IOS_ONLY,
            android_path: "com/adobe/creativesdk",
            ios_path: "Frameworks/AdobeCreativeCloud.framework",
            domains: &["cc-api-data.adobe.io"],
            pinning_android: None,
            pinning_ios: Some(PIN_ROOT_SPKI),
            tls_android: TlsLibrary::Conscrypt,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 1,
        },
        SdkSpec {
            name: "Firestore",
            kind: SdkKind::CloudBackend,
            platforms: BOTH,
            android_path: "com/google/firebase/firestore",
            ios_path: "Frameworks/FirebaseFirestore.framework",
            domains: &["firestore.googleapis.com"],
            pinning_android: None,
            pinning_ios: Some(PIN_ROOT_SPKI),
            tls_android: TlsLibrary::Cronet,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 1,
        },
        // ---- Widespread non-pinning SDKs (third-party traffic noise) ----
        SdkSpec {
            name: "Facebook",
            kind: SdkKind::SocialNetwork,
            platforms: BOTH,
            android_path: "com/facebook/android",
            ios_path: "Frameworks/FBSDKCoreKit.framework",
            domains: &["graph.facebook.com"],
            pinning_android: None,
            pinning_ios: None,
            tls_android: TlsLibrary::OkHttp,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 400,
        },
        SdkSpec {
            name: "GoogleAnalytics",
            kind: SdkKind::Analytics,
            platforms: BOTH,
            android_path: "com/google/android/gms/analytics",
            ios_path: "Frameworks/GoogleAnalytics.framework",
            domains: &["app-measurement.com", "www.google-analytics.com"],
            pinning_android: None,
            pinning_ios: None,
            tls_android: TlsLibrary::Cronet,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 520,
        },
        SdkSpec {
            name: "AdMob",
            kind: SdkKind::Advertising,
            platforms: BOTH,
            android_path: "com/google/android/gms/ads",
            ios_path: "Frameworks/GoogleMobileAds.framework",
            domains: &[
                "googleads.g.doubleclick.net",
                "pagead2.googlesyndication.com",
            ],
            pinning_android: None,
            pinning_ios: None,
            tls_android: TlsLibrary::Cronet,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 460,
        },
        SdkSpec {
            name: "Crashlytics",
            kind: SdkKind::CrashReporting,
            platforms: BOTH,
            android_path: "com/google/firebase/crashlytics",
            ios_path: "Frameworks/FirebaseCrashlytics.framework",
            domains: &["firebase-settings.crashlytics.com"],
            pinning_android: None,
            pinning_ios: None,
            tls_android: TlsLibrary::OkHttp,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 420,
        },
        SdkSpec {
            name: "AppsFlyer",
            kind: SdkKind::Analytics,
            platforms: BOTH,
            android_path: "com/appsflyer",
            ios_path: "Frameworks/AppsFlyerLib.framework",
            domains: &["t.appsflyer.com"],
            pinning_android: None,
            pinning_ios: None,
            tls_android: TlsLibrary::OkHttp,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 260,
        },
        SdkSpec {
            name: "UnityAds",
            kind: SdkKind::Advertising,
            platforms: BOTH,
            android_path: "com/unity3d/ads",
            ios_path: "Frameworks/UnityAds.framework",
            domains: &["publisher-config.unityads.unity3d.com"],
            pinning_android: None,
            pinning_ios: None,
            tls_android: TlsLibrary::OkHttp,
            tls_ios: TlsLibrary::NsUrlSession,
            adoption_weight: 220,
        },
    ]
}

/// Looks up an SDK by name.
pub fn by_name(name: &str) -> Option<&'static SdkSpec> {
    registry().iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_unique() {
        use std::collections::HashSet;
        let names: HashSet<_> = registry().iter().map(|s| s.name).collect();
        assert_eq!(names.len(), registry().len());
    }

    #[test]
    fn table7_android_sdks_present_and_pinning() {
        for name in ["Twitter", "Braintree", "Paypal", "Perimeterx", "MParticle"] {
            let sdk = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(
                sdk.pinning_on(Platform::Android).is_some(),
                "{name} must pin on Android"
            );
        }
    }

    #[test]
    fn table7_ios_sdks_present_and_pinning() {
        for name in [
            "Amplitude",
            "Stripe",
            "Weibo",
            "FraudForce",
            "Adobe Creative Cloud",
        ] {
            let sdk = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(
                sdk.pinning_on(Platform::Ios).is_some(),
                "{name} must pin on iOS"
            );
        }
    }

    #[test]
    fn firestore_pins_only_on_ios() {
        let f = by_name("Firestore").unwrap();
        assert!(f.pinning_on(Platform::Ios).is_some());
        assert!(f.pinning_on(Platform::Android).is_none());
    }

    #[test]
    fn noise_sdks_do_not_pin() {
        for name in ["Facebook", "GoogleAnalytics", "AdMob", "Crashlytics"] {
            let sdk = by_name(name).unwrap();
            assert!(sdk.pinning_on(Platform::Android).is_none());
            assert!(sdk.pinning_on(Platform::Ios).is_none());
        }
    }

    #[test]
    fn every_sdk_has_domains_and_paths() {
        for sdk in registry() {
            assert!(!sdk.domains.is_empty(), "{}", sdk.name);
            assert!(!sdk.android_path.is_empty());
            assert!(sdk.ios_path.starts_with("Frameworks/"));
        }
    }

    #[test]
    fn availability_respects_platform_list() {
        let px = by_name("Perimeterx").unwrap();
        assert!(px.available_on(Platform::Android));
        assert!(!px.available_on(Platform::Ios));
    }
}
