//! Runtime network behaviour: what an app does when launched.

use crate::pii::PiiType;
use pinning_tls::TlsLibrary;

/// UI interaction mode for a dynamic run.
///
/// The paper experimented with random UI automation and found no
/// significant change in contacted domains (§4.2.1), so the main pipeline
/// runs with [`Interaction::None`]; the other modes exist so the
/// calibration experiment can be reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interaction {
    /// Launch only, no input (the study default).
    None,
    /// Random monkey-style taps.
    RandomUi,
    /// Scripted login (out of the paper's scope; extension hook).
    Login,
}

/// One connection the app plans to open after launch.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedConnection {
    /// Destination hostname.
    pub domain: String,
    /// Seconds after launch at which the connection starts.
    pub at_secs: u32,
    /// TLS stack used for this connection.
    pub library: TlsLibrary,
    /// Index into the app's pin-rule list if this connection enforces a pin
    /// rule at run time.
    pub pin_rule: Option<usize>,
    /// PII carried in the request body.
    pub pii: Vec<PiiType>,
    /// Additional request payload bytes beyond the PII fields.
    pub extra_bytes: usize,
    /// Connection is opened but never used for application data (the
    /// "redundant connections" confounder of §4.2.2).
    pub redundant: bool,
    /// Whether the ClientHello advertises legacy/weak cipher suites
    /// (Table 8's per-connection predicate).
    pub offers_weak_ciphers: bool,
    /// Only fires when the run uses at least this interaction level.
    pub requires_interaction: Interaction,
    /// Whether the client sends SNI (a fixed property of the app's HTTP
    /// stack; ~99% of real connections carry it, §4.2.2).
    pub sends_sni: bool,
}

impl PlannedConnection {
    /// A simple used connection to `domain` at launch.
    pub fn simple(domain: impl Into<String>, library: TlsLibrary) -> Self {
        PlannedConnection {
            domain: domain.into(),
            at_secs: 1,
            library,
            pin_rule: None,
            pii: Vec::new(),
            extra_bytes: 256,
            redundant: false,
            offers_weak_ciphers: false,
            requires_interaction: Interaction::None,
            sends_sni: true,
        }
    }

    /// Whether the connection fires under `mode`.
    pub fn fires_under(&self, mode: Interaction) -> bool {
        match self.requires_interaction {
            Interaction::None => true,
            Interaction::RandomUi => mode != Interaction::None,
            Interaction::Login => mode == Interaction::Login,
        }
    }
}

/// The complete launch-time behaviour of an app.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AppBehavior {
    /// Planned connections in schedule order.
    pub connections: Vec<PlannedConnection>,
}

impl AppBehavior {
    /// Connections that fire within `window_secs` of launch under `mode`.
    pub fn within_window(
        &self,
        window_secs: u32,
        mode: Interaction,
    ) -> impl Iterator<Item = &PlannedConnection> {
        self.connections
            .iter()
            .filter(move |c| c.at_secs <= window_secs && c.fires_under(mode))
    }

    /// Distinct domains contacted within the window.
    pub fn domains_within(&self, window_secs: u32, mode: Interaction) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .within_window(window_secs, mode)
            .map(|c| c.domain.as_str())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn behavior() -> AppBehavior {
        let mut early = PlannedConnection::simple("a.com", TlsLibrary::OkHttp);
        early.at_secs = 2;
        let mut late = PlannedConnection::simple("b.com", TlsLibrary::OkHttp);
        late.at_secs = 45;
        let mut ui_only = PlannedConnection::simple("c.com", TlsLibrary::OkHttp);
        ui_only.requires_interaction = Interaction::RandomUi;
        AppBehavior {
            connections: vec![early, late, ui_only],
        }
    }

    #[test]
    fn window_filters_by_time() {
        let b = behavior();
        assert_eq!(b.domains_within(30, Interaction::None), vec!["a.com"]);
        assert_eq!(
            b.domains_within(60, Interaction::None),
            vec!["a.com", "b.com"]
        );
    }

    #[test]
    fn interaction_gating() {
        let b = behavior();
        assert_eq!(
            b.domains_within(30, Interaction::RandomUi),
            vec!["a.com", "c.com"]
        );
        assert_eq!(
            b.domains_within(30, Interaction::Login),
            vec!["a.com", "c.com"]
        );
    }

    #[test]
    fn duplicate_domains_deduped() {
        let mut b = behavior();
        b.connections
            .push(PlannedConnection::simple("a.com", TlsLibrary::Conscrypt));
        assert_eq!(b.domains_within(30, Interaction::None), vec!["a.com"]);
    }

    #[test]
    fn login_only_connection() {
        let mut c = PlannedConnection::simple("secure.com", TlsLibrary::OkHttp);
        c.requires_interaction = Interaction::Login;
        assert!(!c.fires_under(Interaction::None));
        assert!(!c.fires_under(Interaction::RandomUi));
        assert!(c.fires_under(Interaction::Login));
    }
}
