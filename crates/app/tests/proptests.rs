//! Property-style tests for the app-package substrate: XML, NSC, string
//! pools, and FairPlay-style encryption. Inputs come from a deterministic
//! SplitMix64 sweep (no external crates, fully offline).

use pinning_app::nsc::{DomainConfig, NetworkSecurityConfig, NscPin};
use pinning_app::package::{binary_with_strings, extract_strings, AppFile, AppPackage};
use pinning_app::platform::Platform;
use pinning_app::xml::{parse, Element};
use pinning_crypto::{b64encode, SplitMix64};
use std::collections::HashSet;

const CASES: u64 = 100;

fn ascii(rng: &mut SplitMix64, alphabet: &[u8], min: usize, max: usize) -> String {
    let len = min as u64 + rng.next_below((max - min) as u64 + 1);
    (0..len)
        .map(|_| alphabet[rng.next_below(alphabet.len() as u64) as usize] as char)
        .collect()
}

fn printable(rng: &mut SplitMix64, min: usize, max: usize) -> String {
    let alphabet: Vec<u8> = (0x20u8..0x7f).collect();
    ascii(rng, &alphabet, min, max)
}

const NAME_FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
const NAME_REST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_:-";
const ATTR_REST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789:";

fn xml_name(rng: &mut SplitMix64, rest: &[u8], max_rest: usize) -> String {
    let mut s = String::new();
    s.push(NAME_FIRST[rng.next_below(NAME_FIRST.len() as u64) as usize] as char);
    s.push_str(&ascii(rng, rest, 0, max_rest));
    s
}

fn arb_element(rng: &mut SplitMix64, depth: u32) -> Element {
    let mut el = Element::new(xml_name(rng, NAME_REST, 12));
    let mut seen = HashSet::new();
    for _ in 0..rng.next_below(4) {
        let k = xml_name(rng, ATTR_REST, 8);
        let v = printable(rng, 0, 40);
        if seen.insert(k.clone()) {
            el = el.attr(k, v);
        }
    }
    if depth == 0 {
        if rng.chance(0.5) {
            let t = printable(rng, 0, 40);
            if !t.trim().is_empty() {
                el = el.text(t.trim().to_string());
            }
        }
    } else {
        for _ in 0..rng.next_below(3) {
            el = el.child(arb_element(rng, depth - 1));
        }
    }
    el
}

#[test]
fn xml_roundtrip_arbitrary_trees() {
    let mut rng = SplitMix64::new(0x2e1);
    for _ in 0..CASES {
        let el = arb_element(&mut rng, 3);
        let doc = el.to_document();
        let parsed = parse(&doc).unwrap();
        assert_eq!(parsed, el);
    }
}

#[test]
fn nsc_roundtrip_arbitrary_configs() {
    let mut rng = SplitMix64::new(0x45c);
    for _ in 0..CASES {
        let n_domains = 1 + rng.next_below(3);
        let domains = (0..n_domains)
            .map(|_| {
                let host = format!(
                    "{}.{}",
                    ascii(&mut rng, b"abcdefghijklmnopqrstuvwxyz", 1, 10),
                    ascii(&mut rng, b"abcdefghijklmnopqrstuvwxyz", 2, 3)
                );
                (host, rng.chance(0.5))
            })
            .collect();
        let pins = (0..rng.next_below(4))
            .map(|_| {
                let mut d = [0u8; 32];
                rng.fill_bytes(&mut d);
                NscPin {
                    digest: "SHA-256".into(),
                    value_b64: b64encode(&d),
                }
            })
            .collect();
        let nsc = NetworkSecurityConfig {
            domain_configs: vec![DomainConfig {
                domains,
                pins,
                pin_expiration: None,
                override_pins: rng.chance(0.5),
                trust_user_certs: rng.chance(0.5),
            }],
        };
        let back = NetworkSecurityConfig::from_xml(&nsc.to_xml()).unwrap();
        assert_eq!(back, nsc);
    }
}

#[test]
fn strings_extraction_finds_all_planted() {
    let mut rng = SplitMix64::new(0x57a);
    for _ in 0..CASES {
        let n = 1 + rng.next_below(7);
        let strings: Vec<String> = (0..n).map(|_| printable(&mut rng, 6, 40)).collect();
        let seed = rng.next_u64();
        let mut blob_rng = SplitMix64::new(seed);
        let blob = binary_with_strings(&strings, &mut blob_rng, 256);
        let found = extract_strings(&blob, 6);
        for s in &strings {
            assert!(
                found.iter().any(|f| f.contains(s)),
                "planted string {s:?} missing"
            );
        }
    }
}

#[test]
fn encryption_roundtrip_arbitrary_files() {
    let mut rng = SplitMix64::new(0xe4c);
    for _ in 0..CASES {
        let n = 1 + rng.next_below(5);
        let paths: HashSet<String> = (0..n)
            .map(|_| {
                format!(
                    "{}/{}.{}",
                    ascii(&mut rng, b"abcdefghijklmnopqrstuvwxyz", 1, 8),
                    ascii(&mut rng, b"abcdefghijklmnopqrstuvwxyz", 1, 8),
                    ascii(&mut rng, b"abcdefghijklmnopqrstuvwxyz", 1, 4)
                )
            })
            .collect();
        let seed = rng.next_u64();
        let files: Vec<AppFile> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                AppFile::binary(
                    format!("Payload/App.app/{p}"),
                    vec![(i % 251) as u8; 10 + i * 7],
                )
            })
            .collect();
        let pkg = AppPackage::new(Platform::Ios, files);
        let round = pkg.clone().encrypt(seed).decrypt(seed);
        assert_eq!(round, pkg);
    }
}

#[test]
fn encryption_with_wrong_key_differs() {
    let mut rng = SplitMix64::new(0xbad);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let pkg = AppPackage::new(
            Platform::Ios,
            vec![AppFile::binary("Payload/App.app/App", vec![7u8; 64])],
        );
        let enc = pkg.clone().encrypt(seed);
        let wrong = enc.decrypt(seed ^ 1);
        assert_ne!(wrong, pkg);
    }
}

// ---------------------------------------------------------------------
// Hostile-input properties: the XML/NSC parsers must reject with a
// structured error — never panic, never recurse past the budget.
// ---------------------------------------------------------------------

#[test]
fn xml_parse_never_panics_on_arbitrary_text() {
    let mut rng = SplitMix64::new(0x41a0);
    let glyphs: Vec<u8> = (0x20u8..0x7f).chain([b'\n', b'\t']).collect();
    for _ in 0..CASES * 8 {
        let text = ascii(&mut rng, &glyphs, 0, 300);
        let _ = parse(&text);
    }
}

#[test]
fn xml_parse_never_panics_on_mutated_documents() {
    let mut rng = SplitMix64::new(0x41a1);
    for _ in 0..CASES * 4 {
        let doc = arb_element(&mut rng, 0).to_document();
        let mut bytes = doc.into_bytes();
        if !bytes.is_empty() {
            for _ in 0..=rng.next_below(4) {
                let i = rng.next_below(bytes.len() as u64) as usize;
                bytes[i] = rng.next_u64() as u8;
            }
        }
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = parse(s);
            let _ = NetworkSecurityConfig::from_xml(s);
        }
    }
}

#[test]
fn xml_depth_budget_is_exact() {
    use pinning_app::xml::parse_with_budget;
    use pinning_pki::limits::{Budget, Limit};
    let budget = Budget::strict();
    let nest = |depth: usize| -> String {
        let mut s = String::new();
        for _ in 0..depth {
            s.push_str("<a>");
        }
        s.push('x');
        for _ in 0..depth {
            s.push_str("</a>");
        }
        s
    };
    // Exactly at the budget parses; one deeper is a structured rejection.
    assert!(parse_with_budget(&nest(budget.max_depth), &budget).is_ok());
    assert!(matches!(
        parse_with_budget(&nest(budget.max_depth + 1), &budget),
        Err(pinning_app::xml::XmlError::LimitExceeded(Limit::Depth))
    ));
    // A runaway open-tag chain (no closers at all) is also rejected, not
    // recursed into.
    let runaway = "<a>".repeat(10_000);
    assert!(matches!(
        parse_with_budget(&runaway, &budget),
        Err(pinning_app::xml::XmlError::LimitExceeded(Limit::Depth))
    ));
}
