//! Property tests for the app-package substrate: XML, NSC, string pools,
//! and FairPlay-style encryption.

use pinning_app::nsc::{DomainConfig, NetworkSecurityConfig, NscPin};
use pinning_app::package::{binary_with_strings, extract_strings, AppFile, AppPackage};
use pinning_app::platform::Platform;
use pinning_app::xml::{parse, Element};
use pinning_crypto::{b64encode, SplitMix64};
use proptest::prelude::*;

fn arb_text() -> impl Strategy<Value = String> {
    // Printable text including XML-hostile characters.
    "[ -~]{0,40}"
}

fn arb_element(depth: u32) -> BoxedStrategy<Element> {
    let name = "[A-Za-z][A-Za-z0-9_:-]{0,12}";
    let attrs = proptest::collection::vec(("[A-Za-z][A-Za-z0-9:]{0,8}", arb_text()), 0..4);
    if depth == 0 {
        (name, attrs, proptest::option::of(arb_text()))
            .prop_map(|(n, attrs, text)| {
                let mut el = Element::new(n);
                let mut seen = std::collections::HashSet::new();
                for (k, v) in attrs {
                    if seen.insert(k.clone()) {
                        el = el.attr(k, v);
                    }
                }
                if let Some(t) = text {
                    if !t.trim().is_empty() {
                        el = el.text(t.trim().to_string());
                    }
                }
                el
            })
            .boxed()
    } else {
        (
            name,
            attrs,
            proptest::collection::vec(arb_element(depth - 1), 0..3),
        )
            .prop_map(|(n, attrs, children)| {
                let mut el = Element::new(n);
                let mut seen = std::collections::HashSet::new();
                for (k, v) in attrs {
                    if seen.insert(k.clone()) {
                        el = el.attr(k, v);
                    }
                }
                for c in children {
                    el = el.child(c);
                }
                el
            })
            .boxed()
    }
}

proptest! {
    #[test]
    fn xml_roundtrip_arbitrary_trees(el in arb_element(3)) {
        let doc = el.to_document();
        let parsed = parse(&doc).unwrap();
        prop_assert_eq!(parsed, el);
    }

    #[test]
    fn nsc_roundtrip_arbitrary_configs(
        domains in proptest::collection::vec(("[a-z]{1,10}\\.[a-z]{2,3}", any::<bool>()), 1..4),
        pins in proptest::collection::vec(proptest::array::uniform32(any::<u8>()), 0..4),
        override_pins in any::<bool>(),
        trust_user in any::<bool>(),
    ) {
        let nsc = NetworkSecurityConfig {
            domain_configs: vec![DomainConfig {
                domains,
                pins: pins
                    .iter()
                    .map(|d| NscPin { digest: "SHA-256".into(), value_b64: b64encode(d) })
                    .collect(),
                pin_expiration: None,
                override_pins,
                trust_user_certs: trust_user,
            }],
        };
        let back = NetworkSecurityConfig::from_xml(&nsc.to_xml()).unwrap();
        prop_assert_eq!(back, nsc);
    }

    #[test]
    fn strings_extraction_finds_all_planted(
        strings in proptest::collection::vec("[ -~]{6,40}", 1..8),
        seed in any::<u64>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        let blob = binary_with_strings(&strings, &mut rng, 256);
        let found = extract_strings(&blob, 6);
        for s in &strings {
            prop_assert!(
                found.iter().any(|f| f.contains(s)),
                "planted string {s:?} missing"
            );
        }
    }

    #[test]
    fn encryption_roundtrip_arbitrary_files(
        paths in proptest::collection::hash_set("[a-z]{1,8}/[a-z]{1,8}\\.[a-z]{1,4}", 1..6),
        seed in any::<u64>(),
    ) {
        let files: Vec<AppFile> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                AppFile::binary(
                    format!("Payload/App.app/{p}"),
                    vec![(i % 251) as u8; 10 + i * 7],
                )
            })
            .collect();
        let pkg = AppPackage::new(Platform::Ios, files);
        let round = pkg.clone().encrypt(seed).decrypt(seed);
        prop_assert_eq!(round, pkg);
    }

    #[test]
    fn encryption_with_wrong_key_differs(seed in any::<u64>()) {
        let pkg = AppPackage::new(
            Platform::Ios,
            vec![AppFile::binary("Payload/App.app/App", vec![7u8; 64])],
        );
        let enc = pkg.clone().encrypt(seed);
        let wrong = enc.decrypt(seed ^ 1);
        prop_assert_ne!(wrong, pkg);
    }
}
