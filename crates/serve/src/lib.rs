//! Overload-robust pin-validation service.
//!
//! `pinning-serve` wraps the offline validation library — chain
//! validation ([`pinning_pki::validate`]), pin resolution and CT
//! inclusion proofs ([`pinning_ctlog`]) — in a long-running
//! request/response front end engineered to stay correct and responsive
//! under hostile load. The paper measures pinning offline; the ROADMAP
//! north star is the same analysis as a service under "heavy traffic from
//! millions of users", where the next failure mode after crashes (PR 3)
//! and malformed bytes (PR 5) is *overload*.
//!
//! Robustness mechanisms, front to back:
//!
//! 1. **Bounded admission queue** — [`ServeConfig::queue_capacity`] caps
//!    queued work; past the cap requests are shed with
//!    [`ShedReason::QueueFull`], never queued unboundedly.
//! 2. **Circuit breakers at the front door** — the shared
//!    [`pinning_resilience::breaker`] state machine (promoted from the
//!    PR 3 netsim test bed) rejects requests to endpoints whose backend
//!    keeps faulting, before they consume queue space.
//! 3. **Brownout** — when queue depth crosses the high watermark the
//!    service enters a degraded mode that answers from the PR 4 caches
//!    only (marked [`Outcome::Degraded`]), recovering at the low
//!    watermark (hysteresis, so it cannot flap per request).
//! 4. **Deadline propagation** — each admitted request carries a
//!    [`pinning_resilience::Deadline`] work budget threaded through
//!    `pki::validate` and the ctlog proof generator; work is abandoned
//!    the moment the budget runs out, yielding a structured
//!    [`Outcome::TimedOut`], never a partial verdict.
//! 5. **Retry budgets** — transient backend faults are retried under the
//!    shared [`pinning_resilience::RetryPolicy`] with seeded jitter drawn
//!    from a per-request RNG handle, byte-reproducible at any
//!    concurrency.
//!
//! The whole service is a single-threaded discrete-event simulation over
//! virtual ticks with `workers` virtual executors, so every counter in
//! [`ServeSummary`] is a pure function of (config, request trace) —
//! two runs with the same seed are identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod request;
pub mod service;
pub mod stats;

pub use config::ServeConfig;
pub use request::{
    BackendFault, EndpointKind, Outcome, Payload, RequestBody, Response, ServeRequest, ShedReason,
    TimeoutStage,
};
pub use service::{Backend, PinService};
pub use stats::ServeSummary;
