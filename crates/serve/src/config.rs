//! Service tuning knobs.

use pinning_resilience::{BreakerConfig, RetryPolicy};

/// Configuration for a [`crate::PinService`].
///
/// All times are virtual ticks (one tick = one work unit of the deadline
/// cost model, roughly a virtual microsecond). The watermarks implement
/// brownout hysteresis: the service degrades when queue depth reaches
/// `brownout_high` and recovers only once the backlog has drained to
/// `brownout_low`, so a queue hovering at the threshold cannot flap the
/// service in and out of degraded mode per request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Seed for all service randomness (retry jitter, backend flakiness).
    pub seed: u64,
    /// Virtual executors draining the queue.
    pub workers: usize,
    /// Admission queue bound; arrivals past it are shed, never queued.
    pub queue_capacity: usize,
    /// Queue depth at which brownout (cache-only serving) begins.
    pub brownout_high: usize,
    /// Queue depth at which brownout ends.
    pub brownout_low: usize,
    /// Deadline for `Validate` requests, ticks from arrival.
    pub deadline_validate: u64,
    /// Deadline for `Resolve` requests, ticks from arrival.
    pub deadline_resolve: u64,
    /// Deadline for `Proof` requests, ticks from arrival (proofs pay an
    /// O(tree) authenticator build on cold trees, so this is the longest).
    pub deadline_proof: u64,
    /// Retry budget for transient backend faults. `backoff_secs` is read
    /// as *ticks* here; `deadline_secs` is unused (the per-endpoint
    /// deadlines above bound each request).
    pub retry: RetryPolicy,
    /// Probability a log-backend query transiently fails (`Resolve` /
    /// `Proof` only; validation is local CPU and never flakes).
    pub backend_flakiness: f64,
    /// Circuit-breaker tuning for the admission path.
    pub breaker: BreakerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 0,
            workers: 4,
            queue_capacity: 64,
            brownout_high: 48,
            brownout_low: 16,
            deadline_validate: 2_000,
            deadline_resolve: 1_500,
            deadline_proof: 4_000,
            retry: RetryPolicy {
                max_attempts: 3,
                backoff_secs: 20,
                jitter_pct: 50,
                deadline_secs: 0,
            },
            backend_flakiness: 0.0,
            breaker: BreakerConfig::default(),
        }
    }
}

impl ServeConfig {
    /// The deadline class for `endpoint`.
    pub fn deadline_for(&self, endpoint: crate::EndpointKind) -> u64 {
        match endpoint {
            crate::EndpointKind::Validate => self.deadline_validate,
            crate::EndpointKind::Resolve => self.deadline_resolve,
            crate::EndpointKind::Proof => self.deadline_proof,
        }
    }
}
