//! The discrete-event serving engine.
//!
//! [`PinService`] is a single-threaded discrete-event simulation: requests
//! arrive on a virtual tick clock, `workers` virtual executors drain a
//! bounded FIFO queue, and every expensive operation charges fixed work
//! units (1 tick = 1 unit) against the request's
//! [`pinning_resilience::Deadline`]. Service time *is* work charged, so
//! latency, queue depth, shedding, and brownout transitions are a pure
//! function of (config, request trace) — independent of host speed,
//! thread count, and OS scheduling. That is what makes the overload bench
//! assert exact equality between same-seed runs.
//!
//! Admission pipeline, in order, at each arrival tick:
//!
//! 1. **Breaker** — an open endpoint breaker sheds the request at the
//!    front door ([`ShedReason::BreakerOpen`]).
//! 2. **Brownout hysteresis** — queue depth ≥ high watermark enters
//!    cache-only mode; ≤ low watermark leaves it.
//! 3. **Brownout serving** — in brownout, answer synchronously from the
//!    caches ([`Outcome::Degraded`]) or shed; nothing queues, so the
//!    backlog can only drain.
//! 4. **Queue bound** — at capacity, shed ([`ShedReason::QueueFull`]).
//!    Otherwise enqueue with `deadline_at = arrival + endpoint deadline`.

use crate::config::ServeConfig;
use crate::request::{
    BackendFault, EndpointKind, Outcome, Payload, RequestBody, Response, ServeRequest, ShedReason,
    TimeoutStage,
};
use crate::stats::ServeSummary;
use pinning_crypto::SplitMix64;
use pinning_ctlog::resolver::COST_LOCATOR_LOOKUP;
use pinning_ctlog::{verify_inclusion, LogSet, PinResolver};
use pinning_pki::store::RootStore;
use pinning_pki::time::SimTime;
use pinning_pki::validate::{
    cached_chain_verdict, validate_chain_cached_within, RevocationList, ValidationOptions,
};
use pinning_pki::Certificate;
use pinning_resilience::{Admission, BreakerSet, Deadline};
use std::collections::VecDeque;

/// Work units charged per certificate for DER decoding at the front end.
pub const COST_DECODE_PER_CERT: u64 = 3;
/// Worker teardown overhead per executed request, ticks.
pub const COST_EXECUTE_OVERHEAD: u64 = 1;

/// The validation/CT state a service instance answers from (borrowed —
/// the service never owns the world).
#[derive(Debug)]
pub struct Backend<'a> {
    /// Trusted roots chains must anchor in.
    pub roots: &'a RootStore,
    /// The CT log shards pins resolve against.
    pub logs: &'a LogSet,
    /// Revocations applied to leaves.
    pub crl: RevocationList,
    /// Validation knobs (full checks by default).
    pub options: ValidationOptions,
    /// Validation time.
    pub now: SimTime,
}

struct Queued {
    req: ServeRequest,
    deadline_at: u64,
}

/// The serving engine. Create one per run; feed it the full arrival
/// trace via [`PinService::run`].
pub struct PinService<'a> {
    config: ServeConfig,
    backend: Backend<'a>,
    resolver: PinResolver<'a>,
    breakers: BreakerSet<BackendFault>,
    queue: VecDeque<Queued>,
    workers_free_at: Vec<u64>,
    brownout: bool,
    brownout_entries: u64,
    peak_queue_depth: u64,
    cache_hits: u64,
    cache_misses: u64,
    backend_faults: u64,
}

impl<'a> PinService<'a> {
    /// A fresh service over `backend` (breaker tuning taken from the
    /// config).
    pub fn new(config: ServeConfig, backend: Backend<'a>) -> Self {
        let workers = config.workers.max(1);
        let resolver = PinResolver::new(backend.logs);
        let breakers = BreakerSet::new(config.breaker);
        PinService {
            config,
            backend,
            resolver,
            breakers,
            queue: VecDeque::new(),
            workers_free_at: vec![0; workers],
            brownout: false,
            brownout_entries: 0,
            peak_queue_depth: 0,
            cache_hits: 0,
            cache_misses: 0,
            backend_faults: 0,
        }
    }

    /// Processes an arrival trace to completion and returns one response
    /// per request, in request-id order.
    ///
    /// The trace is sorted by (arrival, id) first, so callers may pass
    /// requests in any order.
    pub fn run(&mut self, requests: &[ServeRequest]) -> Vec<Response> {
        let mut order: Vec<&ServeRequest> = requests.iter().collect();
        order.sort_by_key(|r| (r.arrival, r.id));
        let mut responses = Vec::with_capacity(requests.len());
        for req in order {
            self.dispatch_until(req.arrival, &mut responses);
            self.admit(req, &mut responses);
        }
        self.dispatch_until(u64::MAX, &mut responses);
        responses.sort_by_key(|r| r.id);
        responses
    }

    /// The run summary: response-derived counters merged with the
    /// observables the service tracked live (queue peaks, brownout
    /// transitions, breaker trips, cache traffic).
    pub fn summary(&self, responses: &[Response]) -> ServeSummary {
        let mut s = ServeSummary::from_responses(responses);
        s.breaker_trips = self.breakers.trips() as u64;
        s.backend_faults = self.backend_faults;
        s.brownout_entries = self.brownout_entries;
        s.peak_queue_depth = self.peak_queue_depth;
        s.cache_hits = self.cache_hits;
        s.cache_misses = self.cache_misses;
        s
    }

    /// Whether the service is currently in brownout (cache-only) mode.
    pub fn in_brownout(&self) -> bool {
        self.brownout
    }

    /// Executes queued work on any worker that can start no later than
    /// `now`, in FIFO order (workers tie-break by lowest index).
    fn dispatch_until(&mut self, now: u64, responses: &mut Vec<Response>) {
        while let Some(head) = self.queue.front() {
            let wi = (0..self.workers_free_at.len())
                .min_by_key(|&i| self.workers_free_at[i])
                .expect("at least one worker");
            let start = self.workers_free_at[wi].max(head.req.arrival);
            if start > now {
                break;
            }
            let item = self.queue.pop_front().expect("checked non-empty");
            let (response, busy_until) = self.execute(item, start);
            self.workers_free_at[wi] = busy_until;
            responses.push(response);
        }
    }

    /// Admission decision for one arrival (see the module docs for the
    /// pipeline order).
    fn admit(&mut self, req: &ServeRequest, responses: &mut Vec<Response>) {
        let endpoint = req.body.endpoint();
        let t = req.arrival;
        let shed = |outcome: Outcome| Response {
            id: req.id,
            endpoint,
            outcome,
            arrived_at: t,
            finished_at: t,
            retries: 0,
        };

        if let Admission::Skip(_) = self.breakers.admit(endpoint.name()) {
            responses.push(shed(Outcome::Shed(ShedReason::BreakerOpen)));
            return;
        }

        if !self.brownout && self.queue.len() >= self.config.brownout_high {
            self.brownout = true;
            self.brownout_entries += 1;
        } else if self.brownout && self.queue.len() <= self.config.brownout_low {
            self.brownout = false;
        }

        if self.brownout {
            let outcome = self.serve_degraded(&req.body);
            responses.push(shed(outcome));
            return;
        }

        if self.queue.len() >= self.config.queue_capacity {
            responses.push(shed(Outcome::Shed(ShedReason::QueueFull)));
            return;
        }

        self.queue.push_back(Queued {
            req: req.clone(),
            deadline_at: t + self.config.deadline_for(endpoint),
        });
        self.peak_queue_depth = self.peak_queue_depth.max(self.queue.len() as u64);
    }

    /// Cache-only answer during brownout; never queues, never computes.
    fn serve_degraded(&mut self, body: &RequestBody) -> Outcome {
        match body {
            RequestBody::ValidateChain {
                hostname,
                chain_der,
            } => {
                let mut chain = Vec::with_capacity(chain_der.len());
                for der in chain_der {
                    match Certificate::from_der(der) {
                        Ok(c) => chain.push(c),
                        // Decoding is cheap and the structured rejection is
                        // complete in itself — still an honest degraded
                        // answer for hostile bytes.
                        Err(e) => return Outcome::Degraded(Payload::Undecodable(e)),
                    }
                }
                match cached_chain_verdict(
                    &chain,
                    self.backend.roots,
                    hostname,
                    self.backend.now,
                    &self.backend.crl,
                    &self.backend.options,
                ) {
                    Some(verdict) => Outcome::Degraded(Payload::ChainVerdict(verdict)),
                    None => Outcome::Shed(ShedReason::DegradedCacheMiss),
                }
            }
            RequestBody::ResolvePin { alg, digest } => {
                match self.resolver.cached_resolution(*alg, digest) {
                    Some(locs) => Outcome::Degraded(Payload::PinResolution {
                        matches: locs.len(),
                    }),
                    None => Outcome::Shed(ShedReason::DegradedCacheMiss),
                }
            }
            // Proof generation has no request-keyed cache: shed honestly.
            RequestBody::InclusionProof { .. } => Outcome::Shed(ShedReason::DegradedUnavailable),
        }
    }

    /// Runs one dequeued request on a worker starting at `start`; returns
    /// the response and the tick the worker frees up.
    fn execute(&mut self, item: Queued, start: u64) -> (Response, u64) {
        let endpoint = item.req.body.endpoint();
        let respond = |outcome: Outcome, finished_at: u64, retries: u32| Response {
            id: item.req.id,
            endpoint,
            outcome,
            arrived_at: item.req.arrival,
            finished_at,
            retries,
        };

        // Deadline already passed while queued: discard, don't compute.
        if start >= item.deadline_at {
            return (
                respond(Outcome::TimedOut(TimeoutStage::Queue), item.deadline_at, 0),
                start + COST_EXECUTE_OVERHEAD,
            );
        }

        let deadline = Deadline::with_budget(item.deadline_at - start);
        let mut rng =
            SplitMix64::new(self.config.seed).derive(&format!("serve/req/{}", item.req.id));
        let max_attempts = self.config.retry.max_attempts.max(1);
        let flaky_endpoint = matches!(endpoint, EndpointKind::Resolve | EndpointKind::Proof);

        let mut outcome = Outcome::BackendFailed {
            attempts: max_attempts,
        };
        let mut retries = 0;
        for attempt in 0..max_attempts {
            retries = attempt;
            let backoff = self.config.retry.backoff_before(attempt, &mut rng);
            if backoff > 0 && deadline.charge(backoff).is_err() {
                outcome = Outcome::TimedOut(TimeoutStage::RetryBackoff);
                break;
            }
            if flaky_endpoint
                && self.config.backend_flakiness > 0.0
                && rng.chance(self.config.backend_flakiness)
            {
                // The simulated log backend dropped this query.
                self.backend_faults += 1;
                self.breakers
                    .record_fault(endpoint.name(), BackendFault::Transient);
                if deadline.charge(COST_LOCATOR_LOOKUP).is_err() {
                    outcome = Outcome::TimedOut(match endpoint {
                        EndpointKind::Resolve => TimeoutStage::PinResolution,
                        _ => TimeoutStage::InclusionProof,
                    });
                    break;
                }
                continue; // next attempt (or fall out as BackendFailed)
            }
            if flaky_endpoint {
                self.breakers.record_success(endpoint.name());
            }
            outcome = self.perform(&item.req.body, &deadline);
            break;
        }

        let finished_at = start + deadline.spent();
        (
            respond(outcome, finished_at, retries),
            finished_at + COST_EXECUTE_OVERHEAD,
        )
    }

    /// The actual backend work, all charged against `deadline`.
    fn perform(&mut self, body: &RequestBody, deadline: &Deadline) -> Outcome {
        match body {
            RequestBody::ValidateChain {
                hostname,
                chain_der,
            } => {
                if deadline
                    .charge(COST_DECODE_PER_CERT * chain_der.len() as u64)
                    .is_err()
                {
                    return Outcome::TimedOut(TimeoutStage::ChainValidation);
                }
                let mut chain = Vec::with_capacity(chain_der.len());
                for der in chain_der {
                    match Certificate::from_der(der) {
                        Ok(c) => chain.push(c),
                        Err(e) => return Outcome::Ok(Payload::Undecodable(e)),
                    }
                }
                // Probe the memo first purely for accounting: the service
                // reports its own hit rate without touching the study's
                // global cache counters.
                let was_cached = cached_chain_verdict(
                    &chain,
                    self.backend.roots,
                    hostname,
                    self.backend.now,
                    &self.backend.crl,
                    &self.backend.options,
                )
                .is_some();
                match validate_chain_cached_within(
                    &chain,
                    self.backend.roots,
                    hostname,
                    self.backend.now,
                    &self.backend.crl,
                    &self.backend.options,
                    deadline,
                ) {
                    Ok(verdict) => {
                        if was_cached {
                            self.cache_hits += 1;
                        } else {
                            self.cache_misses += 1;
                        }
                        Outcome::Ok(Payload::ChainVerdict(verdict))
                    }
                    Err(_) => Outcome::TimedOut(TimeoutStage::ChainValidation),
                }
            }
            RequestBody::ResolvePin { alg, digest } => {
                if deadline.charge(COST_LOCATOR_LOOKUP).is_err() {
                    return Outcome::TimedOut(TimeoutStage::PinResolution);
                }
                let was_cached = self.resolver.cached_resolution(*alg, digest).is_some();
                let locs = self.resolver.resolve_locators(*alg, digest);
                if was_cached {
                    self.cache_hits += 1;
                } else {
                    self.cache_misses += 1;
                }
                Outcome::Ok(Payload::PinResolution {
                    matches: locs.len(),
                })
            }
            RequestBody::InclusionProof { alg, digest } => {
                if deadline.charge(COST_LOCATOR_LOOKUP).is_err() {
                    return Outcome::TimedOut(TimeoutStage::InclusionProof);
                }
                let was_cached = self.resolver.cached_resolution(*alg, digest).is_some();
                let locs = self.resolver.resolve_locators(*alg, digest);
                if was_cached {
                    self.cache_hits += 1;
                } else {
                    self.cache_misses += 1;
                }
                let Some(&loc) = locs.first() else {
                    return Outcome::Ok(Payload::NotLogged);
                };
                let shard = &self.backend.logs.shards()[loc.0];
                let tree_size = shard.log.len() as u64;
                match self
                    .resolver
                    .inclusion_proof_within(loc, tree_size, deadline)
                {
                    Err(_) => Outcome::TimedOut(TimeoutStage::InclusionProof),
                    Ok(None) => Outcome::Ok(Payload::NotLogged),
                    Ok(Some(proof)) => {
                        let leaf = shard.log.leaf_hash(loc.1).expect("located entry exists");
                        let root = shard.log.root_at(tree_size).expect("head tree state");
                        let verified = verify_inclusion(&leaf, loc.1, tree_size, &proof, &root);
                        Outcome::Ok(Payload::InclusionProof {
                            tree_size,
                            proof_len: proof.len(),
                            verified,
                        })
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_crypto::sig::KeyPair;
    use pinning_ctlog::{LogShard, ShardPolicy};
    use pinning_pki::authority::CertificateAuthority;
    use pinning_pki::name::DistinguishedName;
    use pinning_pki::pin::PinAlgorithm;
    use pinning_pki::time::{Validity, YEAR};
    use pinning_pki::validate::validate_chain;

    /// A tiny PKI + CT world for serving: a trusted chain for
    /// `pay.shop.com`, an untrusted look-alike for `cold.shop.com`, and a
    /// populated log set. Seeds MUST be unique per test: the validation
    /// memo is process-global and tests share one process, so distinct
    /// fixtures must produce distinct memo keys.
    struct Fixture {
        store: RootStore,
        chain: Vec<Certificate>,
        cold_chain: Vec<Certificate>,
        logs: LogSet,
    }

    fn fixture(seed: u64) -> Fixture {
        let mut rng = SplitMix64::new(seed);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Serve Root", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let mut inter = root.issue_intermediate(
            DistinguishedName::new("Serve Inter", "Sim", "US"),
            &mut rng,
            Validity::starting(SimTime(0), 10 * YEAR),
            Some(1),
        );
        let key = KeyPair::generate(&mut rng);
        let leaf = inter.issue_leaf(
            &["pay.shop.com".to_string()],
            "Shop",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        let cold_key = KeyPair::generate(&mut rng);
        let cold_leaf = inter.issue_leaf(
            &["cold.shop.com".to_string()],
            "Shop",
            &cold_key,
            Validity::starting(SimTime(0), YEAR),
        );
        let mut store = RootStore::new("serve-test");
        store.add(root.cert.clone());

        let window = Validity {
            not_before: SimTime::EPOCH,
            not_after: SimTime(u64::MAX),
        };
        let mut logs = LogSet::new();
        logs.push_shard(LogShard::new(
            "s0",
            "Op0",
            ShardPolicy::open(window),
            KeyPair::generate(&mut rng),
        ));
        for i in 0..16 {
            let k = KeyPair::generate(&mut rng);
            let c = root.issue_leaf(
                &[format!("filler{i}.example")],
                "Filler",
                &k,
                Validity::starting(SimTime(0), YEAR),
            );
            logs.submit(&c);
        }
        logs.submit(&leaf);

        Fixture {
            store,
            chain: vec![leaf, inter.cert.clone(), root.cert.clone()],
            cold_chain: vec![cold_leaf, inter.cert.clone(), root.cert.clone()],
            logs,
        }
    }

    fn backend(f: &Fixture) -> Backend<'_> {
        Backend {
            roots: &f.store,
            logs: &f.logs,
            crl: RevocationList::empty(),
            options: ValidationOptions::default(),
            now: SimTime(100),
        }
    }

    fn validate_request(id: u64, arrival: u64, chain: &[Certificate], host: &str) -> ServeRequest {
        ServeRequest {
            id,
            arrival,
            body: RequestBody::ValidateChain {
                hostname: host.to_string(),
                chain_der: chain.iter().map(Certificate::to_der).collect(),
            },
        }
    }

    fn offline_verdict(
        f: &Fixture,
        chain: &[Certificate],
        host: &str,
    ) -> Result<(), pinning_pki::error::ValidationError> {
        validate_chain(
            chain,
            &f.store,
            host,
            SimTime(100),
            &RevocationList::empty(),
            &ValidationOptions::default(),
        )
    }

    #[test]
    fn fresh_verdicts_match_offline_library() {
        let f = fixture(0x5e41);
        let mut svc = PinService::new(ServeConfig::default(), backend(&f));
        // Well-spaced arrivals: no overload, everything served fresh.
        let reqs: Vec<ServeRequest> = (0..4)
            .map(|i| validate_request(i, i * 10_000, &f.chain, "pay.shop.com"))
            .collect();
        let responses = svc.run(&reqs);
        assert_eq!(responses.len(), 4);
        let expected = offline_verdict(&f, &f.chain, "pay.shop.com");
        for r in &responses {
            assert_eq!(
                r.outcome,
                Outcome::Ok(Payload::ChainVerdict(expected.clone())),
                "response {} must be byte-identical to the offline verdict",
                r.id
            );
            assert!(r.finished_at > r.arrived_at);
        }
        let s = svc.summary(&responses);
        assert_eq!(s.served_ok, 4);
        assert_eq!(s.shed_total(), 0);
        // First validation misses the memo, the rest ride it.
        assert_eq!((s.cache_misses, s.cache_hits), (1, 3));
    }

    #[test]
    fn deadline_mid_verification_times_out_without_partial_verdict() {
        use pinning_pki::validate::{
            COST_CHAIN_SETUP, COST_MEMO_PROBE, COST_PER_CERT_OVERHEAD, COST_SIGNATURE_VERIFY,
        };
        let f = fixture(0x5e42);
        // Budget lands mid-walk: decode + memo probe + setup + overhead +
        // the FIRST signature verify fit, the second does not.
        let to_first_sig = COST_DECODE_PER_CERT * 3
            + COST_MEMO_PROBE
            + COST_CHAIN_SETUP
            + COST_PER_CERT_OVERHEAD * 3
            + COST_SIGNATURE_VERIFY;
        let config = ServeConfig {
            deadline_validate: to_first_sig + COST_SIGNATURE_VERIFY / 2,
            ..ServeConfig::default()
        };
        let mut svc = PinService::new(config, backend(&f));
        let responses = svc.run(&[validate_request(0, 0, &f.chain, "pay.shop.com")]);
        assert_eq!(
            responses[0].outcome,
            Outcome::TimedOut(TimeoutStage::ChainValidation),
            "a deadline expiring mid-verification must yield a structured timeout"
        );
        // The latency is exactly the deadline: the budget saturated.
        assert_eq!(
            responses[0].finished_at - responses[0].arrived_at,
            to_first_sig + COST_SIGNATURE_VERIFY / 2
        );
        // And the abandoned walk must not have poisoned the memo.
        assert_eq!(
            cached_chain_verdict(
                &f.chain,
                &f.store,
                "pay.shop.com",
                SimTime(100),
                &RevocationList::empty(),
                &ValidationOptions::default(),
            ),
            None,
            "timed-out validations are never memoized"
        );
    }

    #[test]
    fn queue_bound_holds_and_overflow_sheds() {
        let f = fixture(0x5e43);
        let config = ServeConfig {
            workers: 1,
            queue_capacity: 4,
            brownout_high: 100, // out of reach: isolate the queue bound
            brownout_low: 50,
            ..ServeConfig::default()
        };
        let mut svc = PinService::new(config, backend(&f));
        // 30 simultaneous arrivals against one worker.
        let reqs: Vec<ServeRequest> = (0..30)
            .map(|i| validate_request(i, 0, &f.chain, "pay.shop.com"))
            .collect();
        let responses = svc.run(&reqs);
        let s = svc.summary(&responses);
        assert_eq!(s.peak_queue_depth, 4, "queue must stop at the bound");
        assert!(s.shed_queue_full > 0, "overflow must shed explicitly");
        assert_eq!(
            s.total,
            s.served_ok + s.timed_out + s.shed_total(),
            "every request reaches exactly one terminal state"
        );
    }

    #[test]
    fn brownout_serves_cached_answers_and_sheds_cold_ones() {
        let f = fixture(0x5e44);
        let config = ServeConfig {
            workers: 1,
            queue_capacity: 10,
            brownout_high: 6,
            brownout_low: 2,
            ..ServeConfig::default()
        };
        let mut svc = PinService::new(config, backend(&f));
        let mut reqs = Vec::new();
        // Prime the validation memo with the warm chain, unhurried.
        reqs.push(validate_request(0, 0, &f.chain, "pay.shop.com"));
        // Flood at one tick: warm and cold chains alternating.
        for i in 0..24u64 {
            let (chain, host) = if i % 2 == 0 {
                (&f.chain, "pay.shop.com")
            } else {
                (&f.cold_chain, "cold.shop.com")
            };
            reqs.push(validate_request(1 + i, 50_000, chain, host));
        }
        // Long after the storm: normal service must have resumed.
        reqs.push(validate_request(100, 10_000_000, &f.chain, "pay.shop.com"));
        let responses = svc.run(&reqs);
        let s = svc.summary(&responses);
        assert!(s.brownout_entries > 0, "the flood must enter brownout");
        assert!(s.degraded > 0, "warm requests are answered from cache");
        assert!(s.shed_degraded > 0, "cold requests are shed, not invented");
        // Degraded answers are real memoized verdicts, marked as such.
        let expected = offline_verdict(&f, &f.chain, "pay.shop.com");
        for r in responses
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Degraded(_)))
        {
            assert_eq!(
                r.outcome,
                Outcome::Degraded(Payload::ChainVerdict(expected.clone()))
            );
        }
        // Hysteresis released: the post-storm request is served fresh.
        let last = responses.iter().find(|r| r.id == 100).unwrap();
        assert!(matches!(last.outcome, Outcome::Ok(_)), "{:?}", last.outcome);
    }

    #[test]
    fn breaker_opens_on_persistent_backend_faults_and_sheds_at_admission() {
        let f = fixture(0x5e45);
        let digest = f.chain[0].spki_sha256().to_vec();
        let config = ServeConfig {
            backend_flakiness: 1.0, // the log backend is down for the run
            ..ServeConfig::default()
        };
        let mut svc = PinService::new(config, backend(&f));
        let reqs: Vec<ServeRequest> = (0..8)
            .map(|i| ServeRequest {
                id: i,
                arrival: i * 100_000, // well spaced: no queueing effects
                body: RequestBody::ResolvePin {
                    alg: PinAlgorithm::Sha256,
                    digest: digest.clone(),
                },
            })
            .collect();
        let responses = svc.run(&reqs);
        let s = svc.summary(&responses);
        assert!(s.backend_failed > 0, "retry budgets must exhaust");
        assert!(
            s.breaker_trips > 0,
            "persistent faults must trip the breaker"
        );
        assert!(
            s.shed_breaker_open > 0,
            "an open breaker must shed at admission"
        );
        assert!(s.retries > 0, "failed attempts must consume retries");
    }

    #[test]
    fn same_seed_runs_are_identical_once_warm() {
        let f = fixture(0x5e46);
        let digest = f.chain[0].spki_sha256().to_vec();
        let mut reqs = Vec::new();
        let mut id = 0u64;
        // A storm with everything in it: warm/cold validations, resolves,
        // proofs, all at 4 ticks apart (far faster than service).
        for burst in 0..3u64 {
            for i in 0..20u64 {
                let arrival = burst * 100_000 + i * 4;
                let body = match i % 4 {
                    0 => RequestBody::ValidateChain {
                        hostname: "pay.shop.com".to_string(),
                        chain_der: f.chain.iter().map(Certificate::to_der).collect(),
                    },
                    1 => RequestBody::ValidateChain {
                        hostname: "cold.shop.com".to_string(),
                        chain_der: f.cold_chain.iter().map(Certificate::to_der).collect(),
                    },
                    2 => RequestBody::ResolvePin {
                        alg: PinAlgorithm::Sha256,
                        digest: digest.clone(),
                    },
                    _ => RequestBody::InclusionProof {
                        alg: PinAlgorithm::Sha256,
                        digest: digest.clone(),
                    },
                };
                reqs.push(ServeRequest { id, arrival, body });
                id += 1;
            }
        }
        let config = ServeConfig {
            workers: 2,
            queue_capacity: 8,
            brownout_high: 6,
            brownout_low: 2,
            backend_flakiness: 0.3,
            seed: 0xD15EA5E,
            ..ServeConfig::default()
        };
        // Warm-up run: settles the process-global validation memo so the
        // two compared runs see identical cache state.
        let mut warmup = PinService::new(config.clone(), backend(&f));
        let _ = warmup.run(&reqs);

        let run = || {
            let mut svc = PinService::new(config.clone(), backend(&f));
            let responses = svc.run(&reqs);
            let summary = svc.summary(&responses);
            (responses, summary)
        };
        let (r1, s1) = run();
        let (r2, s2) = run();
        assert_eq!(r1, r2, "same seed, same trace ⇒ identical responses");
        assert_eq!(s1, s2, "…and identical summaries");
        // And the storm actually exercised the machinery.
        assert!(s1.shed_total() > 0 || s1.degraded > 0, "{s1:?}");
    }

    #[test]
    fn hostile_bytes_get_structured_answers_not_panics() {
        let f = fixture(0x5e47);
        let mut svc = PinService::new(ServeConfig::default(), backend(&f));
        let mut garbage = f.chain[0].to_der();
        garbage.truncate(garbage.len() / 2);
        let reqs = vec![
            ServeRequest {
                id: 0,
                arrival: 0,
                body: RequestBody::ValidateChain {
                    hostname: "pay.shop.com".to_string(),
                    chain_der: vec![garbage],
                },
            },
            ServeRequest {
                id: 1,
                arrival: 10_000,
                body: RequestBody::ResolvePin {
                    alg: PinAlgorithm::Sha256,
                    digest: vec![0xEE; 32], // resolves to nothing
                },
            },
            ServeRequest {
                id: 2,
                arrival: 20_000,
                body: RequestBody::InclusionProof {
                    alg: PinAlgorithm::Sha256,
                    digest: vec![0xEE; 32],
                },
            },
        ];
        let responses = svc.run(&reqs);
        assert!(matches!(
            responses[0].outcome,
            Outcome::Ok(Payload::Undecodable(_))
        ));
        assert_eq!(
            responses[1].outcome,
            Outcome::Ok(Payload::PinResolution { matches: 0 })
        );
        assert_eq!(responses[2].outcome, Outcome::Ok(Payload::NotLogged));
    }

    #[test]
    fn proof_endpoint_generates_verified_proofs() {
        let f = fixture(0x5e48);
        let digest = f.chain[0].spki_sha256().to_vec();
        let mut svc = PinService::new(ServeConfig::default(), backend(&f));
        let responses = svc.run(&[ServeRequest {
            id: 0,
            arrival: 0,
            body: RequestBody::InclusionProof {
                alg: PinAlgorithm::Sha256,
                digest,
            },
        }]);
        match &responses[0].outcome {
            Outcome::Ok(Payload::InclusionProof {
                tree_size,
                proof_len,
                verified,
            }) => {
                assert_eq!(*tree_size, 17, "16 fillers + the leaf");
                assert!(*proof_len > 0);
                assert!(verified, "the proof must verify against the log root");
            }
            other => panic!("expected a verified proof, got {other:?}"),
        }
    }
}
