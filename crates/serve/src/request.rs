//! Request and response vocabulary for the serving front end.
//!
//! Requests arrive as raw bytes (chains as DER, pins as digests) exactly
//! as a network front end would see them — the service decodes hostile
//! input itself, under the same parse budgets as the offline library, and
//! a malformed body is a *successful* response saying so, not a panic.
//!
//! Every terminal state is explicit: a response is served fresh, served
//! degraded from cache, timed out at a named stage, shed with a named
//! reason, or failed after exhausting its retry budget. Nothing is
//! dropped silently, and a timed-out request never carries a partial
//! payload.

use pinning_pki::error::{DecodeError, ValidationError};
use pinning_pki::pin::PinAlgorithm;

/// The three service endpoints, each with its own deadline class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointKind {
    /// Full chain validation (`POST /validate` in a real deployment).
    Validate,
    /// SPKI pin → logged certificates (`GET /resolve`).
    Resolve,
    /// SPKI pin → CT inclusion proof for its first logged entry
    /// (`GET /proof`).
    Proof,
}

impl EndpointKind {
    /// Stable name, used as the circuit-breaker endpoint key and in
    /// reports.
    pub fn name(&self) -> &'static str {
        match self {
            EndpointKind::Validate => "validate",
            EndpointKind::Resolve => "resolve",
            EndpointKind::Proof => "proof",
        }
    }
}

/// One request body, as raw input (nothing pre-decoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestBody {
    /// Validate a leaf-first DER chain for `hostname`.
    ValidateChain {
        /// Hostname the leaf must match.
        hostname: String,
        /// The chain, one DER blob per certificate, leaf first.
        chain_der: Vec<Vec<u8>>,
    },
    /// Resolve an SPKI pin digest against the CT logs.
    ResolvePin {
        /// Digest algorithm of the pin.
        alg: PinAlgorithm,
        /// The pin digest bytes.
        digest: Vec<u8>,
    },
    /// Produce (and verify) an inclusion proof for the pin's first
    /// logged certificate.
    InclusionProof {
        /// Digest algorithm of the pin.
        alg: PinAlgorithm,
        /// The pin digest bytes.
        digest: Vec<u8>,
    },
}

impl RequestBody {
    /// The endpoint this body targets.
    pub fn endpoint(&self) -> EndpointKind {
        match self {
            RequestBody::ValidateChain { .. } => EndpointKind::Validate,
            RequestBody::ResolvePin { .. } => EndpointKind::Resolve,
            RequestBody::InclusionProof { .. } => EndpointKind::Proof,
        }
    }
}

/// One inbound request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// Caller-assigned id, echoed in the response (unique per run).
    pub id: u64,
    /// Arrival tick on the service's virtual clock.
    pub arrival: u64,
    /// What is being asked.
    pub body: RequestBody,
}

/// A successfully computed answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// The full validation verdict for the chain (pass or the exact
    /// library error) — byte-identical to the offline library's.
    ChainVerdict(Result<(), ValidationError>),
    /// The request body failed to decode under the parse budget; hostile
    /// input answered structurally, not served partially.
    Undecodable(DecodeError),
    /// How many logged certificates carry the pinned SPKI.
    PinResolution {
        /// Matching log entries across all shards.
        matches: usize,
    },
    /// An inclusion proof was generated and checked.
    InclusionProof {
        /// Tree size the proof was generated under.
        tree_size: u64,
        /// Number of audit-path nodes in the proof.
        proof_len: usize,
        /// Whether the proof verified against the log's root.
        verified: bool,
    },
    /// The pin resolves to no logged certificate, so no proof exists.
    NotLogged,
}

/// Why a request was rejected without being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission queue was at capacity.
    QueueFull,
    /// The endpoint's circuit breaker was open.
    BreakerOpen,
    /// Brownout: the caches held no answer for this request.
    DegradedCacheMiss,
    /// Brownout: this endpoint has no cache-only path at all.
    DegradedUnavailable,
}

/// The stage at which a request's deadline expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutStage {
    /// The deadline passed while the request waited in the queue.
    Queue,
    /// Mid chain-validation (decode or verification walk).
    ChainValidation,
    /// During the pin-resolution lookup.
    PinResolution,
    /// During inclusion-proof generation.
    InclusionProof,
    /// The jittered retry backoff consumed the rest of the budget.
    RetryBackoff,
}

/// Transient backend fault, the circuit breakers' payload: the simulated
/// log backend dropped a query (the validation backend is local CPU and
/// never flakes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendFault {
    /// Transient query failure; retryable.
    Transient,
}

/// Terminal state of one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Served fresh; the payload is authoritative.
    Ok(Payload),
    /// Served during brownout from cache only; the payload was computed
    /// under an earlier request and may be stale relative to a fresh run.
    Degraded(Payload),
    /// The deadline expired at the given stage. Carries no payload — a
    /// partial verdict is never exposed.
    TimedOut(TimeoutStage),
    /// Rejected at admission with an explicit reason.
    Shed(ShedReason),
    /// The backend faulted on every attempt the retry budget allowed.
    BackendFailed {
        /// Attempts consumed (== the configured maximum).
        attempts: u32,
    },
}

impl Outcome {
    /// Whether the request was accepted and answered (fresh or degraded).
    pub fn is_served(&self) -> bool {
        matches!(self, Outcome::Ok(_) | Outcome::Degraded(_))
    }
}

/// The service's answer to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of [`ServeRequest::id`].
    pub id: u64,
    /// Endpoint the request targeted.
    pub endpoint: EndpointKind,
    /// Terminal state.
    pub outcome: Outcome,
    /// Arrival tick (echo of the request).
    pub arrived_at: u64,
    /// Tick at which the terminal state was reached; latency is
    /// `finished_at - arrived_at`.
    pub finished_at: u64,
    /// Retries consumed (0 = first attempt succeeded or never ran).
    pub retries: u32,
}
