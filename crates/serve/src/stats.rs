//! Run accounting: counters, latency percentiles, JSON rendering.

use crate::request::{Outcome, Response, ShedReason};

/// Exact (integer-only) summary of one service run.
///
/// Everything here is a deterministic function of (config, request
/// trace): two runs with the same seed must produce `==` summaries, which
/// the bench gate asserts literally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests received.
    pub total: u64,
    /// Served fresh ([`Outcome::Ok`]).
    pub served_ok: u64,
    /// Served cache-only during brownout ([`Outcome::Degraded`]).
    pub degraded: u64,
    /// Shed: queue at capacity.
    pub shed_queue_full: u64,
    /// Shed: circuit breaker open.
    pub shed_breaker_open: u64,
    /// Shed: brownout cache miss or cache-less endpoint.
    pub shed_degraded: u64,
    /// Deadline expired (any stage).
    pub timed_out: u64,
    /// Retry budget exhausted on backend faults.
    pub backend_failed: u64,
    /// Circuit-breaker trips (closed→open transitions).
    pub breaker_trips: u64,
    /// Transient backend faults observed (pre-retry).
    pub backend_faults: u64,
    /// Retries consumed across all requests.
    pub retries: u64,
    /// Times the service entered brownout.
    pub brownout_entries: u64,
    /// Highest queue depth observed (must stay ≤ the configured bound).
    pub peak_queue_depth: u64,
    /// Cache hits on the accepted (non-degraded) serving path.
    pub cache_hits: u64,
    /// Cache misses on the accepted serving path.
    pub cache_misses: u64,
    /// Latency percentiles over accepted requests (ticks from arrival to
    /// terminal state; shed requests are excluded — they terminate at
    /// arrival by construction).
    pub p50: u64,
    /// 99th percentile latency, ticks.
    pub p99: u64,
    /// 99.9th percentile latency, ticks.
    pub p999: u64,
    /// Maximum accepted-request latency, ticks.
    pub max_latency: u64,
    /// Tick of the last terminal state (0 for an empty run); with the
    /// first arrival this bounds the makespan for throughput numbers.
    pub last_finish: u64,
}

/// Nearest-rank percentile over an ascending-sorted slice: the smallest
/// value with at least `num/den` of the mass at or below it.
fn percentile(sorted: &[u64], num: u64, den: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * num).div_ceil(den);
    let idx = rank.max(1) as usize - 1;
    sorted[idx.min(sorted.len() - 1)]
}

impl ServeSummary {
    /// Builds the response-derived part of the summary; the service fills
    /// in the queue/brownout/breaker/cache observables it tracked live.
    pub fn from_responses(responses: &[Response]) -> Self {
        let mut s = ServeSummary {
            total: responses.len() as u64,
            ..ServeSummary::default()
        };
        let mut latencies = Vec::new();
        for r in responses {
            match &r.outcome {
                Outcome::Ok(_) => s.served_ok += 1,
                Outcome::Degraded(_) => s.degraded += 1,
                Outcome::TimedOut(_) => s.timed_out += 1,
                Outcome::BackendFailed { .. } => s.backend_failed += 1,
                Outcome::Shed(reason) => match reason {
                    ShedReason::QueueFull => s.shed_queue_full += 1,
                    ShedReason::BreakerOpen => s.shed_breaker_open += 1,
                    ShedReason::DegradedCacheMiss | ShedReason::DegradedUnavailable => {
                        s.shed_degraded += 1
                    }
                },
            }
            s.retries += r.retries as u64;
            s.last_finish = s.last_finish.max(r.finished_at);
            if !matches!(r.outcome, Outcome::Shed(_)) {
                latencies.push(r.finished_at - r.arrived_at);
            }
        }
        latencies.sort_unstable();
        s.p50 = percentile(&latencies, 50, 100);
        s.p99 = percentile(&latencies, 99, 100);
        s.p999 = percentile(&latencies, 999, 1000);
        s.max_latency = latencies.last().copied().unwrap_or(0);
        s
    }

    /// Requests shed for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_queue_full + self.shed_breaker_open + self.shed_degraded
    }

    /// Cache hit rate over the accepted serving path, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Renders the summary as a JSON object (hand-rolled, stable field
    /// order; no external dependencies).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"total\": {}, \"served_ok\": {}, \"degraded\": {}, ",
                "\"shed_queue_full\": {}, \"shed_breaker_open\": {}, \"shed_degraded\": {}, ",
                "\"timed_out\": {}, \"backend_failed\": {}, \"breaker_trips\": {}, ",
                "\"backend_faults\": {}, \"retries\": {}, \"brownout_entries\": {}, ",
                "\"peak_queue_depth\": {}, \"cache_hits\": {}, \"cache_misses\": {}, ",
                "\"cache_hit_rate\": {:.4}, \"latency_ticks\": {{\"p50\": {}, \"p99\": {}, ",
                "\"p999\": {}, \"max\": {}}}, \"last_finish\": {}}}"
            ),
            self.total,
            self.served_ok,
            self.degraded,
            self.shed_queue_full,
            self.shed_breaker_open,
            self.shed_degraded,
            self.timed_out,
            self.backend_failed,
            self.breaker_trips,
            self.backend_faults,
            self.retries,
            self.brownout_entries,
            self.peak_queue_depth,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate(),
            self.p50,
            self.p99,
            self.p999,
            self.max_latency,
            self.last_finish,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50, 100), 50);
        assert_eq!(percentile(&v, 99, 100), 99);
        assert_eq!(percentile(&v, 999, 1000), 100);
        assert_eq!(percentile(&[7], 50, 100), 7);
        assert_eq!(percentile(&[], 50, 100), 0);
    }

    #[test]
    fn json_is_stable_and_balanced() {
        let s = ServeSummary::default();
        let j = s.to_json();
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces: {j}"
        );
        assert!(j.contains("\"cache_hit_rate\": 0.0000"));
    }
}
