//! "Store evolution" report family: longitudinal deltas across epochs.
//!
//! The epoch engine (`pinning-epoch`) computes one set of rows per epoch
//! and accumulates them here. Everything except [`table_epoch_costs`] is
//! derived purely from measured records and world state, so the rendered
//! text is byte-identical between an incremental run and a cold full
//! re-run — the costs table reports wall-clock and replay counts, which
//! legitimately differ, and is therefore kept out of the byte-compared
//! artifact.

use crate::text::{Align, TextTable};

/// Pinning share of one dataset at one epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdoptionPoint {
    /// Epoch index (0 = baseline).
    pub epoch: usize,
    /// Dataset label, e.g. `"android/popular"`.
    pub dataset: String,
    /// Apps in the dataset.
    pub apps: usize,
    /// Apps observed pinning at runtime.
    pub pinning: usize,
}

/// Renders the pinning-adoption trend table (one row per epoch×dataset).
pub fn table_adoption_trend(points: &[AdoptionPoint]) -> String {
    let mut t = TextTable::new(
        "Store evolution: pinning adoption per dataset",
        &["Epoch", "Dataset", "Pinning", "Share"],
    )
    .aligns(&[Align::Right, Align::Left, Align::Right, Align::Right]);
    for p in points {
        let share = if p.apps == 0 {
            0.0
        } else {
            100.0 * p.pinning as f64 / p.apps as f64
        };
        t.row(&[
            p.epoch.to_string(),
            p.dataset.clone(),
            format!("{}/{}", p.pinning, p.apps),
            format!("{share:.1}%"),
        ]);
    }
    t.render()
}

/// Fallout of one root-distrust event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistrustRow {
    /// Epoch the distrust landed in.
    pub epoch: usize,
    /// Common name of the distrusted root.
    pub root: String,
    /// Apps whose destination set chains to the distrusted root.
    pub apps_touched: usize,
    /// Of those, apps that pinned in the prior epoch and now fail —
    /// the paper's "pinning turns a root distrust into an outage" case.
    pub newly_broken: usize,
}

/// Renders the distrust-breakage table.
pub fn table_distrust_breakage(rows: &[DistrustRow]) -> String {
    let mut t = TextTable::new(
        "Store evolution: apps newly broken by root distrust",
        &["Epoch", "Distrusted root", "Apps touched", "Newly broken"],
    )
    .aligns(&[Align::Right, Align::Left, Align::Right, Align::Right]);
    for r in rows {
        t.row(&[
            r.epoch.to_string(),
            r.root.clone(),
            r.apps_touched.to_string(),
            r.newly_broken.to_string(),
        ]);
    }
    if rows.is_empty() {
        t.row(&["-", "(no distrust events)", "0", "0"]);
    }
    t.render()
}

/// Survival of pinning apps across one pin rotation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RotationRow {
    /// Epoch the rotation landed in.
    pub epoch: usize,
    /// Rotated hostname.
    pub hostname: String,
    /// Apps that pinned this hostname before the rotation.
    pub pinned_before: usize,
    /// Of those, apps still connecting after the rotation (backup pins or
    /// a pin target the rotation preserved).
    pub surviving: usize,
}

/// Renders the pin-rotation survival table.
pub fn table_rotation_survival(rows: &[RotationRow]) -> String {
    let mut t = TextTable::new(
        "Store evolution: pin-rotation survival",
        &["Epoch", "Hostname", "Pinned before", "Surviving"],
    )
    .aligns(&[Align::Right, Align::Left, Align::Right, Align::Right]);
    for r in rows {
        t.row(&[
            r.epoch.to_string(),
            r.hostname.clone(),
            r.pinned_before.to_string(),
            r.surviving.to_string(),
        ]);
    }
    if rows.is_empty() {
        t.row(&["-", "(no rotations)", "0", "0"]);
    }
    t.render()
}

/// CT-coverage snapshot at one epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CtDriftPoint {
    /// Epoch index (0 = baseline).
    pub epoch: usize,
    /// Hostnames whose served leaf is present in at least one CT log.
    pub covered_hosts: usize,
    /// Hostnames probed.
    pub total_hosts: usize,
    /// Unique certificates across all logs (log growth).
    pub unique_certs: usize,
}

/// Renders the CT-coverage drift table.
pub fn table_ct_drift(points: &[CtDriftPoint]) -> String {
    let mut t = TextTable::new(
        "Store evolution: CT-coverage drift",
        &["Epoch", "Leaf coverage", "Share", "Unique certs in logs"],
    )
    .aligns(&[Align::Right, Align::Right, Align::Right, Align::Right]);
    for p in points {
        let share = if p.total_hosts == 0 {
            0.0
        } else {
            100.0 * p.covered_hosts as f64 / p.total_hosts as f64
        };
        t.row(&[
            p.epoch.to_string(),
            format!("{}/{}", p.covered_hosts, p.total_hosts),
            format!("{share:.1}%"),
            p.unique_certs.to_string(),
        ]);
    }
    t.render()
}

/// Event-taxonomy counts for one epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventCountRow {
    /// Epoch the events landed in.
    pub epoch: usize,
    /// Event label (the `EpochEvent` variant name).
    pub label: String,
    /// How many events of this kind the epoch applied.
    pub count: usize,
}

/// Renders the per-epoch event mix.
pub fn table_epoch_events(rows: &[EventCountRow]) -> String {
    let mut t = TextTable::new(
        "Store evolution: epoch event mix",
        &["Epoch", "Event", "Count"],
    )
    .aligns(&[Align::Right, Align::Left, Align::Right]);
    for r in rows {
        t.row(&[r.epoch.to_string(), r.label.clone(), r.count.to_string()]);
    }
    t.render()
}

/// Incremental-cost accounting for one epoch (wall-clock and replay
/// counts — NOT part of the byte-compared deterministic artifact).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochCostRow {
    /// Epoch index.
    pub epoch: usize,
    /// Apps replayed from the prior epoch's journal (clean fingerprint).
    pub replayed: usize,
    /// Apps re-measured (dirty fingerprint).
    pub reanalyzed: usize,
    /// Wall-clock milliseconds the epoch took.
    pub wall_ms: u64,
}

/// Renders the incremental-cost table.
pub fn table_epoch_costs(rows: &[EpochCostRow]) -> String {
    let mut t = TextTable::new(
        "Store evolution: incremental cost per epoch",
        &["Epoch", "Replayed", "Reanalyzed", "Dirty share", "Wall ms"],
    )
    .aligns(&[
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for r in rows {
        let total = r.replayed + r.reanalyzed;
        let share = if total == 0 {
            0.0
        } else {
            100.0 * r.reanalyzed as f64 / total as f64
        };
        t.row(&[
            r.epoch.to_string(),
            r.replayed.to_string(),
            r.reanalyzed.to_string(),
            format!("{share:.1}%"),
            r.wall_ms.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adoption_trend_renders_shares() {
        let s = table_adoption_trend(&[
            AdoptionPoint {
                epoch: 0,
                dataset: "android/popular".into(),
                apps: 20,
                pinning: 5,
            },
            AdoptionPoint {
                epoch: 1,
                dataset: "android/popular".into(),
                apps: 20,
                pinning: 7,
            },
        ]);
        assert!(s.contains("pinning adoption"));
        assert!(s.contains("5/20"));
        assert!(s.contains("25.0%"));
        assert!(s.contains("35.0%"));
    }

    #[test]
    fn empty_distrust_and_rotation_tables_render_placeholders() {
        assert!(table_distrust_breakage(&[]).contains("(no distrust events)"));
        assert!(table_rotation_survival(&[]).contains("(no rotations)"));
    }

    #[test]
    fn ct_drift_and_costs_render() {
        let s = table_ct_drift(&[CtDriftPoint {
            epoch: 2,
            covered_hosts: 30,
            total_hosts: 40,
            unique_certs: 55,
        }]);
        assert!(s.contains("30/40"));
        assert!(s.contains("75.0%"));
        let c = table_epoch_costs(&[EpochCostRow {
            epoch: 1,
            replayed: 45,
            reanalyzed: 5,
            wall_ms: 123,
        }]);
        assert!(c.contains("10.0%"), "dirty share: {c}");
        assert!(c.contains("123"));
    }

    #[test]
    fn event_mix_renders() {
        let s = table_epoch_events(&[EventCountRow {
            epoch: 1,
            label: "server-reissue".into(),
            count: 3,
        }]);
        assert!(s.contains("server-reissue"));
    }
}
