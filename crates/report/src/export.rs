//! CSV export of the study's tables — the machine-readable half of the
//! released dataset (the human-readable half being [`crate::tables`]).

use crate::tables::{Table3Row, Table6Row, Table8Row};
use pinning_analysis::categories::CategoryRow;
use pinning_analysis::destinations::AppDestinationProfile;
use pinning_analysis::pii::PiiComparison;
use pinning_app::pii::PiiType;
use pinning_app::platform::Platform;
use pinning_store::whois::Party;

/// Escapes one CSV field (RFC 4180 quoting).
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Joins fields into one CSV line.
pub fn csv_line<S: AsRef<str>>(fields: &[S]) -> String {
    fields
        .iter()
        .map(|f| csv_field(f.as_ref()))
        .collect::<Vec<_>>()
        .join(",")
}

/// Table 3 as CSV.
pub fn table3_csv(rows: &[Table3Row]) -> String {
    let mut out = String::from("dataset,platform,n,dynamic,static_embedded,nsc\n");
    for r in rows {
        out.push_str(&csv_line(&[
            r.dataset.to_string(),
            r.platform.to_string(),
            r.n.to_string(),
            r.dynamic.to_string(),
            r.static_embedded.to_string(),
            r.nsc.map(|n| n.to_string()).unwrap_or_default(),
        ]));
        out.push('\n');
    }
    out
}

/// Tables 4/5 as CSV.
pub fn categories_csv(platform: Platform, rows: &[CategoryRow]) -> String {
    let mut out =
        String::from("platform,category,population_rank,pinning_apps,total_apps,pinning_pct\n");
    for r in rows {
        out.push_str(&csv_line(&[
            platform.to_string(),
            r.category.label_on(platform).to_string(),
            r.population_rank.to_string(),
            r.pinning_apps.to_string(),
            r.total_apps.to_string(),
            format!("{:.4}", r.pinning_pct),
        ]));
        out.push('\n');
    }
    out
}

/// Table 6 as CSV.
pub fn table6_csv(rows: &[Table6Row]) -> String {
    let mut out = String::from("platform,default_pki,custom_pki,unavailable\n");
    for r in rows {
        out.push_str(&csv_line(&[
            r.platform.to_string(),
            r.default_pki.to_string(),
            r.custom_pki.to_string(),
            r.unavailable.to_string(),
        ]));
        out.push('\n');
    }
    out
}

/// Table 8 as CSV.
pub fn table8_csv(rows: &[Table8Row]) -> String {
    let mut out =
        String::from("dataset,platform,overall_pct,pinning_pct,total_apps,pinning_apps\n");
    for r in rows {
        out.push_str(&csv_line(&[
            r.dataset.to_string(),
            r.platform.to_string(),
            format!("{:.4}", r.row.overall_pct),
            format!("{:.4}", r.row.pinning_pct),
            r.row.total_apps.to_string(),
            r.row.pinning_apps.to_string(),
        ]));
        out.push('\n');
    }
    out
}

/// Table 9 as CSV.
pub fn table9_csv(per_platform: &[(Platform, PiiComparison)]) -> String {
    let mut out = String::from("platform,pii,pinned_pct,unpinned_pct,chi_square,significant\n");
    for (platform, cmp) in per_platform {
        for pii in PiiType::ALL {
            let Some(t) = cmp.tables.get(&pii) else {
                continue;
            };
            out.push_str(&csv_line(&[
                platform.to_string(),
                pii.label().to_string(),
                format!("{:.4}", t.pinned_pct()),
                format!("{:.4}", t.unpinned_pct()),
                format!("{:.4}", t.chi_square()),
                t.significant().to_string(),
            ]));
            out.push('\n');
        }
    }
    out
}

/// Figure 5's per-destination rows as CSV.
pub fn destinations_csv(platform: Platform, profiles: &[AppDestinationProfile]) -> String {
    let mut out = String::from("platform,app,domain,pinned,party\n");
    for p in profiles {
        for e in &p.entries {
            out.push_str(&csv_line(&[
                platform.to_string(),
                p.app_name.clone(),
                e.domain.clone(),
                e.pinned.to_string(),
                match e.party {
                    Party::First => "first".to_string(),
                    Party::Third => "third".to_string(),
                },
            ]));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_store::datasets::DatasetKind;

    #[test]
    fn escaping() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("q\"x"), "\"q\"\"x\"");
        assert_eq!(csv_line(&["a", "b,c"]), "a,\"b,c\"");
    }

    #[test]
    fn table3_csv_shape() {
        let rows = vec![Table3Row {
            dataset: DatasetKind::Popular,
            platform: Platform::Ios,
            n: 1000,
            dynamic: 114,
            static_embedded: 334,
            nsc: None,
        }];
        let csv = table3_csv(&rows);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "dataset,platform,n,dynamic,static_embedded,nsc"
        );
        assert_eq!(lines.next().unwrap(), "Popular,iOS,1000,114,334,");
    }

    #[test]
    fn table9_csv_has_chi_square() {
        use pinning_analysis::pii::Contingency;
        let mut cmp = PiiComparison::default();
        cmp.tables.insert(
            PiiType::AdvertisingId,
            Contingency {
                pinned_with: 1,
                pinned_without: 1,
                unpinned_with: 1,
                unpinned_without: 1,
            },
        );
        let csv = table9_csv(&[(Platform::Android, cmp)]);
        assert!(csv.contains("Ad. ID"));
        assert!(csv.lines().count() >= 2);
    }
}
