//! A small aligned-monospace table builder.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (text).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// An aligned text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers (all left-aligned).
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns: vec![Align::Left; headers.len()],
            rows: Vec::new(),
        }
    }

    /// Sets per-column alignment (panics on length mismatch).
    pub fn aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment arity mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Appends a row (padded/truncated to the header arity).
    pub fn row<S: ToString>(&mut self, cells: &[S]) -> &mut Self {
        let mut row: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                match aligns[i] {
                    Align::Left => {
                        line.push_str(cell);
                        line.push_str(&" ".repeat(pad));
                    }
                    Align::Right => {
                        line.push_str(&" ".repeat(pad));
                        line.push_str(cell);
                    }
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths, &vec![Align::Left; ncols]));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths, &self.aligns));
            out.push('\n');
        }
        out
    }
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Formats `pct% (count)` as the paper's Table 3 cells do.
pub fn pct_count(p: f64, n: usize) -> String {
    format!("{p:.2}% ({n})")
}

/// A horizontal ASCII bar of `width` cells, `filled` of them solid.
pub fn bar(filled: usize, width: usize) -> String {
    let filled = filled.min(width);
    format!("[{}{}]", "#".repeat(filled), ".".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new("T", &["name", "value"]).aligns(&[Align::Left, Align::Right]);
        t.row(&["a", "1"]);
        t.row(&["longer-name", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].starts_with("name"));
        // Right-aligned numbers end at the same column.
        let l3 = lines[3];
        let l4 = lines[4];
        assert!(l3.ends_with('1'));
        assert!(l4.ends_with('5'));
        assert_eq!(l3.rfind('1').unwrap(), l4.rfind('5').unwrap());
    }

    #[test]
    fn rows_padded_to_arity() {
        let mut t = TextTable::new("", &["a", "b", "c"]);
        t.row(&["x"]);
        assert_eq!(t.n_rows(), 1);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn helpers() {
        assert_eq!(pct(12.34), "12.3%");
        assert_eq!(pct_count(6.7, 67), "6.70% (67)");
        assert_eq!(bar(2, 5), "[##...]");
        assert_eq!(bar(9, 5), "[#####]");
    }
}
