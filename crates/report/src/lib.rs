//! Renderers for every table and figure in the paper.
//!
//! This crate is purely presentational: `pinning-core` computes the row
//! data (so the numbers come from the measurement pipeline, never from
//! hard-coded expectations) and hands typed row structs to the renderers
//! here, which produce aligned monospace tables and ASCII heatmaps that
//! mirror the paper's layout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evolution;
pub mod export;
pub mod figures;
pub mod tables;
pub mod text;

pub use text::TextTable;
