//! Figure renderers (Figures 1–5) — ASCII equivalents of the paper's
//! plots, carrying the same data series.

use crate::text::{bar, Align, TextTable};
use pinning_analysis::consistency::CommonDatasetSummary;
use pinning_analysis::destinations::AppDestinationProfile;
use pinning_store::whois::Party;

/// Figure 1: the methodology overview, reproduced as a diagram of the
/// actual pipeline stages this repository implements.
pub fn figure1_ascii() -> String {
    "\
Figure 1: methodology overview
  (1) crawl stores ──► (2) static scan ──► (3) CT-log pin resolution
        │                                         │
        ▼                                         ▼
  (4) install on device ──► (5) non-MITM capture ─┐
        │                                         ├──► differential
        └───────────────► (6) MITM capture ───────┘     comparison
                                                        │
                              pinned destinations ◄─────┘
"
    .to_string()
}

/// Renders Figure 2: the Common-dataset pinning split.
pub fn figure2(s: &CommonDatasetSummary) -> String {
    let width = 30;
    let total = s.total_pinners().max(1);
    let scale = |n: usize| (n * width).div_ceil(total);
    let mut out = String::from("Figure 2: pinning in the Common dataset, by platform split\n");
    let rows = [
        ("Pinned on Android & iOS", s.pin_both),
        ("  consistent", s.both_consistent),
        ("    (identical pinned sets)", s.both_identical),
        ("  inconsistent", s.both_inconsistent),
        ("  inconclusive", s.both_inconclusive),
        (
            "Pinned on Android only",
            s.android_only.0 + s.android_only.1,
        ),
        ("Pinned on iOS only", s.ios_only.0 + s.ios_only.1),
    ];
    for (label, n) in rows {
        out.push_str(&format!("  {label:<28} {} {n}\n", bar(scale(n), width)));
    }
    out.push_str(&format!(
        "  total pinning common apps: {}\n",
        s.total_pinners()
    ));
    out
}

/// One row of the Figure 3 heatmap (apps pinning on both platforms but
/// inconsistently).
#[derive(Debug, Clone)]
pub struct Figure3Row {
    /// App display name.
    pub app: String,
    /// Jaccard index of pinned sets (overlap column).
    pub jaccard: f64,
    /// % of Android-pinned domains unpinned on iOS.
    pub android_unpinned_on_ios: f64,
    /// % of iOS-pinned domains unpinned on Android.
    pub ios_unpinned_on_android: f64,
}

/// Renders Figure 3.
pub fn figure3(rows: &[Figure3Row]) -> String {
    let mut t = TextTable::new(
        "Figure 3: inconsistent pinning among both-platform pinners (heatmap values)",
        &[
            "App",
            "Pinned overlap (Jaccard)",
            "% A-pinned unpinned on iOS",
            "% iOS-pinned unpinned on A",
        ],
    )
    .aligns(&[Align::Left, Align::Right, Align::Right, Align::Right]);
    for r in rows {
        t.row(&[
            r.app.clone(),
            format!("{:.2}", r.jaccard),
            format!("{:.0}%", r.android_unpinned_on_ios),
            format!("{:.0}%", r.ios_unpinned_on_android),
        ]);
    }
    t.render()
}

/// One row of the Figure 4 heatmaps (exclusive-platform pinners).
#[derive(Debug, Clone)]
pub struct Figure4Row {
    /// App display name.
    pub app: String,
    /// % of pinned domains appearing unpinned on the other platform.
    pub pct_unpinned_on_other: f64,
}

/// Renders Figure 4 (both panels).
pub fn figure4(android_only: &[Figure4Row], ios_only: &[Figure4Row]) -> String {
    let mut out = String::from(
        "Figure 4: exclusive-platform pinners — % of pinned domains seen unpinned on the other platform\n",
    );
    for (label, rows) in [
        ("(a) Android-only pinners", android_only),
        ("(b) iOS-only pinners", ios_only),
    ] {
        out.push_str(&format!("  {label}\n"));
        for r in rows {
            out.push_str(&format!(
                "    {:<24} {} {:.0}%\n",
                r.app,
                bar(
                    (r.pct_unpinned_on_other / 100.0 * 20.0).round() as usize,
                    20
                ),
                r.pct_unpinned_on_other
            ));
        }
    }
    out
}

/// Renders Figure 5 for one platform: per-app stacked bars of pinned vs
/// unpinned destinations, split first/third party (F = first, t = third;
/// uppercase = pinned).
pub fn figure5(platform_label: &str, profiles: &[AppDestinationProfile]) -> String {
    let mut out = format!(
        "Figure 5 ({platform_label}): per-app destinations — P/p = first-party pinned/unpinned, T/t = third-party pinned/unpinned\n"
    );
    for p in profiles {
        let (fp, fu, tp, tu) = p.quad_counts();
        let mut cells = String::new();
        cells.push_str(&"P".repeat(fp));
        cells.push_str(&"p".repeat(fu));
        cells.push_str(&"T".repeat(tp));
        cells.push_str(&"t".repeat(tu));
        out.push_str(&format!(
            "  {:<20} |{cells}| {:.0}% pinned\n",
            truncate(&p.app_name, 20),
            p.pct_pinned()
        ));
    }
    // Summary lines mirroring the §5.2 claims.
    let pins_all_fp = profiles.iter().filter(|p| p.pins_all_first_party()).count();
    let pins_everything = profiles.iter().filter(|p| p.pins_everything()).count();
    let third_pinned: usize = profiles
        .iter()
        .flat_map(|p| &p.entries)
        .filter(|e| e.pinned && e.party == Party::Third)
        .count();
    let total_pinned: usize = profiles
        .iter()
        .flat_map(|p| &p.entries)
        .filter(|e| e.pinned)
        .count();
    out.push_str(&format!(
        "  apps pinning all first-party destinations: {pins_all_fp}; pinning everything: {pins_everything}; third-party share of pinned destinations: {third_pinned}/{total_pinned}\n"
    ));
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n - 1).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_analysis::destinations::DestinationEntry;

    #[test]
    fn figure2_counts_render() {
        let s = CommonDatasetSummary {
            pin_both: 27,
            both_consistent: 15,
            both_identical: 13,
            both_inconsistent: 6,
            both_inconclusive: 6,
            android_only: (10, 10),
            ios_only: (7, 15),
        };
        let text = figure2(&s);
        assert!(text.contains("27"));
        assert!(text.contains("total pinning common apps: 69"));
    }

    #[test]
    fn figure3_renders_rows() {
        let rows = vec![Figure3Row {
            app: "Twitter".into(),
            jaccard: 0.5,
            android_unpinned_on_ios: 50.0,
            ios_unpinned_on_android: 0.0,
        }];
        let s = figure3(&rows);
        assert!(s.contains("Twitter"));
        assert!(s.contains("0.50"));
    }

    #[test]
    fn figure5_bars_and_summary() {
        let profiles = vec![AppDestinationProfile {
            app_name: "Shop".into(),
            entries: vec![
                DestinationEntry {
                    domain: "api.shop.com".into(),
                    pinned: true,
                    party: Party::First,
                },
                DestinationEntry {
                    domain: "cdn.x.com".into(),
                    pinned: false,
                    party: Party::Third,
                },
            ],
        }];
        let s = figure5("Android", &profiles);
        assert!(s.contains("|Pt|"), "{s}");
        assert!(s.contains("50% pinned"));
        assert!(s.contains("pinning all first-party destinations: 1"));
    }

    #[test]
    fn figure4_renders_both_panels() {
        let a = vec![Figure4Row {
            app: "Vudu".into(),
            pct_unpinned_on_other: 100.0,
        }];
        let i = vec![Figure4Row {
            app: "Zero".into(),
            pct_unpinned_on_other: 50.0,
        }];
        let s = figure4(&a, &i);
        assert!(s.contains("(a) Android-only pinners"));
        assert!(s.contains("(b) iOS-only pinners"));
        assert!(s.contains("Vudu"));
        assert!(s.contains("Zero"));
        assert!(s.contains("100%"));
    }

    #[test]
    fn long_app_names_truncated() {
        let profiles = vec![AppDestinationProfile {
            app_name: "An Extremely Long Application Name".into(),
            entries: vec![DestinationEntry {
                domain: "a.com".into(),
                pinned: false,
                party: Party::Third,
            }],
        }];
        let s = figure5("iOS", &profiles);
        assert!(s.contains('…'));
    }

    #[test]
    fn figure1_is_nonempty() {
        assert!(figure1_ascii().contains("MITM"));
    }
}
