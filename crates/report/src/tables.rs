//! Table renderers (Tables 1–9).

use crate::text::{bar, pct_count, Align, TextTable};
use pinning_analysis::categories::CategoryRow;
use pinning_analysis::pii::PiiComparison;
use pinning_analysis::security::WeakCipherRow;
use pinning_analysis::statics::attribution::FrameworkCount;
use pinning_app::pii::PiiType;
use pinning_app::platform::Platform;
use pinning_store::datasets::DatasetKind;

/// Table 1: top-10 category mix per dataset.
#[derive(Debug, Clone, Default)]
pub struct Table1 {
    /// One column per dataset: `(label, [(category, pct)])`.
    pub columns: Vec<(String, Vec<(String, f64)>)>,
}

/// Renders Table 1.
pub fn table1(data: &Table1) -> String {
    let mut out = String::from("Table 1: Top app categories per dataset (% of dataset)\n");
    for (label, rows) in &data.columns {
        let mut t = TextTable::new(format!("  {label}"), &["rank", "category", "%"]).aligns(&[
            Align::Right,
            Align::Left,
            Align::Right,
        ]);
        for (i, (cat, p)) in rows.iter().enumerate().take(10) {
            t.row(&[format!("{}", i + 1), cat.clone(), format!("{p:.0}%")]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// One prior-work row of Table 2.
#[derive(Debug, Clone)]
pub struct PriorWorkRow {
    /// Study citation.
    pub study: String,
    /// Publication year.
    pub year: u32,
    /// Reported prevalence (already formatted, e.g. `"0.67%"`).
    pub prevalence: String,
    /// Analysis style.
    pub analysis: String,
    /// Dataset size.
    pub dataset_size: String,
    /// Dataset source.
    pub source: String,
}

/// The fixed prior-work rows of Table 2 (literature constants).
pub fn prior_work_rows() -> Vec<PriorWorkRow> {
    let mk =
        |study: &str, year, prev: &str, analysis: &str, size: &str, source: &str| PriorWorkRow {
            study: study.into(),
            year,
            prevalence: prev.into(),
            analysis: analysis.into(),
            dataset_size: size.into(),
            source: source.into(),
        };
    vec![
        mk(
            "Fahl et al. [26]",
            2012,
            "10%",
            "Dynamic",
            "20",
            "High-profile Android apps",
        ),
        mk(
            "Oltrogge et al. [37]",
            2015,
            "0.07%",
            "Static",
            "639,283",
            "Google Play store",
        ),
        mk(
            "Razaghpanah et al. [42]",
            2017,
            "2%",
            "Dynamic",
            "7,258",
            "Android apps in the wild",
        ),
        mk(
            "Stone et al. [48]",
            2017,
            "28%",
            "Dynamic",
            "135",
            "Security-sensitive apps",
        ),
        mk(
            "Possemato et al. [41]",
            2020,
            "0.62%",
            "Static",
            "16,332",
            "Android apps using NSCs",
        ),
        mk(
            "Oltrogge et al. [38]",
            2021,
            "0.67%",
            "Static",
            "99,212",
            "Android apps using NSCs",
        ),
    ]
}

/// Renders Table 2, appending this reproduction's NSC-technique results so
/// the comparison the paper makes ("same technique, our datasets") is
/// explicit.
pub fn table2(ours: &[PriorWorkRow]) -> String {
    let mut t = TextTable::new(
        "Table 2: Certificate pinning prevalence in prior work (and this pipeline's NSC re-run)",
        &[
            "Study",
            "Year",
            "Prevalence",
            "Analysis",
            "Dataset size",
            "Dataset source",
        ],
    )
    .aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Left,
        Align::Right,
        Align::Left,
    ]);
    for r in prior_work_rows().iter().chain(ours) {
        t.row(&[
            r.study.clone(),
            r.year.to_string(),
            r.prevalence.clone(),
            r.analysis.clone(),
            r.dataset_size.clone(),
            r.source.clone(),
        ]);
    }
    t.render()
}

/// One Table 3 row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Dataset family.
    pub dataset: DatasetKind,
    /// Platform.
    pub platform: Platform,
    /// Dataset size.
    pub n: usize,
    /// Dynamic-analysis pinning apps (count).
    pub dynamic: usize,
    /// Embedded-certificate static signal (count).
    pub static_embedded: usize,
    /// NSC configuration-file signal (count; None on iOS).
    pub nsc: Option<usize>,
}

impl Table3Row {
    fn pct(&self, count: usize) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.n as f64
        }
    }
}

/// Renders Table 3 (the headline prevalence table).
pub fn table3(rows: &[Table3Row]) -> String {
    let mut t = TextTable::new(
        "Table 3: Pinning prevalence by method (dynamic vs static embedded certs vs NSC config)",
        &[
            "Dataset",
            "Platform",
            "Dynamic",
            "Static: embedded",
            "Static: config (*)",
        ],
    )
    .aligns(&[
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for r in rows {
        t.row(&[
            format!("{} (n = {})", r.dataset, r.n),
            r.platform.to_string(),
            pct_count(r.pct(r.dynamic), r.dynamic),
            pct_count(r.pct(r.static_embedded), r.static_embedded),
            match r.nsc {
                Some(n) => pct_count(r.pct(n), n),
                None => "-".to_string(),
            },
        ]);
    }
    let mut s = t.render();
    s.push_str("(*) the technique used by prior work; unavailable on the study's iOS version\n");
    s
}

/// Renders Tables 4/5 (top pinning categories for one platform).
pub fn table_categories(platform: Platform, rows: &[CategoryRow]) -> String {
    let title = match platform {
        Platform::Android => "Table 4: Top categories of pinning apps, Android (all datasets)",
        Platform::Ios => "Table 5: Top categories of pinning apps, iOS (all datasets)",
    };
    let mut t = TextTable::new(title, &["Category (rank)", "Pinning %", "No. of Apps"]).aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
    ]);
    for r in rows {
        t.row(&[
            format!("{} ({})", r.category.label_on(platform), r.population_rank),
            format!("{:.2} %", r.pinning_pct),
            r.pinning_apps.to_string(),
        ]);
    }
    t.render()
}

/// One Table 6 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table6Row {
    /// Platform.
    pub platform: Platform,
    /// Pinned destinations on the default PKI.
    pub default_pki: usize,
    /// Pinned destinations on custom PKIs.
    pub custom_pki: usize,
    /// Destinations whose chains could not be retrieved.
    pub unavailable: usize,
}

/// Renders Table 6.
pub fn table6(rows: &[Table6Row]) -> String {
    let mut t = TextTable::new(
        "Table 6: PKI type used by pinned destinations",
        &["Platform", "Default PKI", "Custom PKI", "Data Unavailable"],
    )
    .aligns(&[Align::Left, Align::Right, Align::Right, Align::Right]);
    for r in rows {
        t.row(&[
            r.platform.to_string(),
            r.default_pki.to_string(),
            r.custom_pki.to_string(),
            r.unavailable.to_string(),
        ]);
    }
    t.render()
}

/// Renders Table 7 (top frameworks shipping certificates, per platform).
pub fn table7(android: &[FrameworkCount], ios: &[FrameworkCount], top_n: usize) -> String {
    let mut t = TextTable::new(
        "Table 7: Top third-party frameworks that include certificate/pin material",
        &["Platform", "Framework", "# apps"],
    )
    .aligns(&[Align::Left, Align::Left, Align::Right]);
    for f in android.iter().take(top_n) {
        t.row(&["Android", &f.framework, &f.apps.to_string()]);
    }
    for f in ios.iter().take(top_n) {
        t.row(&["iOS", &f.framework, &f.apps.to_string()]);
    }
    t.render()
}

/// One Table 8 row.
#[derive(Debug, Clone)]
pub struct Table8Row {
    /// Dataset family.
    pub dataset: DatasetKind,
    /// Platform.
    pub platform: Platform,
    /// Measured weak-cipher shares.
    pub row: WeakCipherRow,
}

/// Renders Table 8.
pub fn table8(rows: &[Table8Row]) -> String {
    let mut t = TextTable::new(
        "Table 8: Apps advertising weak ciphers (DES/3DES/RC4/EXPORT): overall vs pinned connections",
        &["Dataset", "Platform", "Overall", "Pinning apps"],
    )
    .aligns(&[Align::Left, Align::Left, Align::Right, Align::Right]);
    for r in rows {
        t.row(&[
            r.dataset.to_string(),
            r.platform.to_string(),
            format!("{:.2}%", r.row.overall_pct),
            format!("{:.2}%", r.row.pinning_pct),
        ]);
    }
    t.render()
}

/// Renders Table 9 (PII in pinned vs non-pinned traffic, with the
/// chi-square significance markers).
pub fn table9(per_platform: &[(Platform, PiiComparison)]) -> String {
    let mut t = TextTable::new(
        "Table 9: PII in pinned vs non-pinned decrypted traffic ((*) = significant, chi-square p<0.05)",
        &["Platform", "PII", "Pinned", "Non-Pinned"],
    )
    .aligns(&[Align::Left, Align::Left, Align::Right, Align::Right]);
    for (platform, cmp) in per_platform {
        for pii in PiiType::ALL {
            let Some(c) = cmp.tables.get(&pii) else {
                continue;
            };
            // The paper prints only the PII rows it searched for; rows that
            // never occur on either side are elided for readability.
            if c.pinned_with == 0 && c.unpinned_with == 0 {
                continue;
            }
            let star = if c.significant() { "*" } else { "" };
            t.row(&[
                platform.to_string(),
                format!("{pii}{star}"),
                format!("{:.2} %", c.pinned_pct()),
                format!("{:.2} %", c.unpinned_pct()),
            ]);
        }
    }
    t.render()
}

/// One per-dataset row of the CT pin-resolution table (§4.1.3): how many
/// of the dataset's unique well-formed pins resolve through the log union.
#[derive(Debug, Clone)]
pub struct CtCoverageRow {
    /// Dataset family.
    pub dataset: DatasetKind,
    /// Platform.
    pub platform: Platform,
    /// Unique pins that resolved to at least one logged certificate.
    pub resolved: usize,
    /// Unique well-formed pins in the dataset.
    pub total: usize,
}

/// One per-shard row of the log-coverage table.
#[derive(Debug, Clone)]
pub struct CtShardRow {
    /// Shard name, e.g. `"argon-legacy"`.
    pub shard: String,
    /// Operator running the shard.
    pub operator: String,
    /// Entries the shard accepted.
    pub entries: usize,
}

/// Renders the "CT resolution & log coverage" section: per-dataset
/// resolved/unresolved pin counts, per-shard entry counts, the resolver's
/// cache hit rate, and the auditor's findings (pre-rendered one-liners;
/// an empty slice prints a clean bill of health).
pub fn table_ct(
    datasets: &[CtCoverageRow],
    shards: &[CtShardRow],
    cache_hit_rate: f64,
    findings: &[String],
) -> String {
    let mut t = TextTable::new(
        "CT resolution & log coverage (crt.sh substitute, §4.1.3)",
        &["Dataset", "Platform", "Resolved", "Unresolved", "Rate"],
    )
    .aligns(&[
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    for r in datasets {
        let rate = if r.total == 0 {
            0.0
        } else {
            100.0 * r.resolved as f64 / r.total as f64
        };
        t.row(&[
            r.dataset.to_string(),
            r.platform.to_string(),
            r.resolved.to_string(),
            (r.total - r.resolved).to_string(),
            format!("{rate:.1}%"),
        ]);
    }
    let mut out = t.render();
    let mut s = TextTable::new("  Log shards", &["Shard", "Operator", "Entries"]).aligns(&[
        Align::Left,
        Align::Left,
        Align::Right,
    ]);
    for r in shards {
        s.row(&[&r.shard, &r.operator, &r.entries.to_string()]);
    }
    out.push_str(&s.render());
    out.push_str(&format!(
        "  resolver cache hit rate: {:.1}%\n",
        100.0 * cache_hit_rate
    ));
    if findings.is_empty() {
        out.push_str("  auditor: all shards consistent, no mis-issuance\n");
    } else {
        out.push_str(&format!("  auditor: {} finding(s)\n", findings.len()));
        for f in findings {
            out.push_str(&format!("    {f}\n"));
        }
    }
    out
}

/// Supervision telemetry for one study run (the "Run health" table).
///
/// Kept separate from the deterministic report tables: a resumed run
/// legitimately differs here (resumed vs fresh counts) while every Table
/// 1–9 byte stays identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunHealthReport {
    /// Worker panics converted into degraded records.
    pub panics_recovered: u32,
    /// Circuit-breaker trips summed over all apps.
    pub breaker_trips: u32,
    /// Apps whose wall-clock measurement exceeded the watchdog deadline.
    pub watchdog_breaches: u32,
    /// Journals that lost records to corruption during resume.
    pub journal_truncations: u32,
    /// Bytes quarantined by the journal scrubber (damaged spans, torn
    /// tails, dropped duplicates).
    pub quarantined_bytes: u64,
    /// Whole records destroyed by mid-journal damage.
    pub quarantined_records: u32,
    /// Journal self-heals: resyncs past damage plus dropped duplicate
    /// segments.
    pub journal_repairs: u32,
    /// Checkpoint loads that fell back past a damaged slot.
    pub checkpoints_recovered: u32,
    /// Apps recovered from the journal instead of re-measured.
    pub resumed_apps: usize,
    /// Apps measured by this process.
    pub fresh_apps: usize,
    /// Epoch engine: apps whose verdict was replayed from the prior epoch
    /// because their fingerprint was clean (0 outside epoch runs).
    pub replayed_prior_epoch: usize,
    /// Epoch engine: apps re-measured because an epoch event dirtied
    /// their fingerprint (0 outside epoch runs).
    pub reanalyzed_dirty: usize,
    /// Per-cache hit/miss activity during this run (empty when the caching
    /// layer was disabled).
    pub cache_rows: Vec<CacheRow>,
    /// Peak resident-set size of the process, KiB (`None` when the
    /// platform exposes no high-water mark). The streaming engine uses
    /// this row to make memory flatness observable per run.
    pub peak_rss_kib: Option<u64>,
    /// Measured throughput, apps per second of wall-clock study time
    /// (`None` for runs that did not time themselves).
    pub apps_per_sec: Option<f64>,
}

/// One derived-value cache's activity for the run-health table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheRow {
    /// Cache name (e.g. `"cert-fingerprint"`).
    pub name: String,
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that computed and stored a fresh value.
    pub misses: u64,
}

/// Renders the "Run health" table: what the supervision layer absorbed so
/// the study could finish.
pub fn table_run_health(r: &RunHealthReport) -> String {
    let mut t = TextTable::new(
        "Run health (supervision & journal telemetry)",
        &["Event", "Count"],
    )
    .aligns(&[Align::Left, Align::Right]);
    t.row(&["worker panics recovered", &r.panics_recovered.to_string()]);
    t.row(&["circuit-breaker trips", &r.breaker_trips.to_string()]);
    t.row(&["watchdog breaches", &r.watchdog_breaches.to_string()]);
    t.row(&["journal truncations", &r.journal_truncations.to_string()]);
    t.row(&["quarantined bytes", &r.quarantined_bytes.to_string()]);
    t.row(&["quarantined records", &r.quarantined_records.to_string()]);
    t.row(&["journal repairs", &r.journal_repairs.to_string()]);
    t.row(&[
        "checkpoints recovered",
        &r.checkpoints_recovered.to_string(),
    ]);
    t.row(&["apps resumed from journal", &r.resumed_apps.to_string()]);
    t.row(&["apps measured fresh", &r.fresh_apps.to_string()]);
    t.row(&[
        "apps replayed from prior epoch",
        &r.replayed_prior_epoch.to_string(),
    ]);
    t.row(&["apps reanalyzed (dirty)", &r.reanalyzed_dirty.to_string()]);
    t.row(&[
        "peak RSS (KiB)",
        &r.peak_rss_kib
            .map_or_else(|| "—".to_string(), |k| k.to_string()),
    ]);
    t.row(&[
        "throughput (apps/sec)",
        &r.apps_per_sec
            .map_or_else(|| "—".to_string(), |v| format!("{v:.1}")),
    ]);
    for c in &r.cache_rows {
        let total = c.hits + c.misses;
        let rate = if total == 0 {
            0.0
        } else {
            100.0 * c.hits as f64 / total as f64
        };
        t.row(&[
            &format!("cache {} (hit/miss)", c.name),
            &format!("{}/{} ({rate:.1}%)", c.hits, c.misses),
        ]);
    }
    t.render()
}

/// One decode layer's row in the "Malformed-input resilience" table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResilienceRow {
    /// Decode layer label (e.g. `"der"`, `"nsc"`, `"chain"`).
    pub layer: &'static str,
    /// Apps rejected at this layer with a structured `MalformedInput`.
    pub rejected: usize,
    /// Of those, rejections caused by a parse-budget limit trip rather
    /// than a structural defect.
    pub budget_trips: usize,
}

/// Renders the "Malformed-input resilience" table: per-layer structured
/// rejection counts for the adversarial cohort, how many rejections were
/// budget trips, and the zero-crash attestation (worker panics observed
/// while the hostile apps were being measured).
pub fn table_resilience(rows: &[ResilienceRow], hostile_apps: usize, panics: u32) -> String {
    let mut t = TextTable::new(
        "Malformed-input resilience (adversarial cohort)",
        &["Layer", "Rejected", "Budget trips"],
    )
    .aligns(&[Align::Left, Align::Right, Align::Right]);
    let (mut rejected, mut trips) = (0usize, 0usize);
    for r in rows {
        t.row(&[
            r.layer,
            &r.rejected.to_string(),
            &r.budget_trips.to_string(),
        ]);
        rejected += r.rejected;
        trips += r.budget_trips;
    }
    t.row(&["total", &rejected.to_string(), &trips.to_string()]);
    let mut out = t.render();
    out.push_str(&format!(
        "  hostile apps planted: {hostile_apps}, rejected with structured errors: {rejected}\n"
    ));
    out.push_str(&format!(
        "  crashes (worker panics) during the run: {panics}{}\n",
        if panics == 0 {
            " — zero-crash attestation holds"
        } else {
            " — ATTESTATION VIOLATED"
        }
    ));
    out
}

/// A quick textual share bar used in several summaries.
pub fn share_bar(label: &str, num: usize, den: usize, width: usize) -> String {
    let p = if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    };
    format!(
        "{label:<28} {} {num}/{den} ({:.1}%)",
        bar((p * width as f64).round() as usize, width),
        p * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_contains_prior_and_ours() {
        let ours = vec![PriorWorkRow {
            study: "This work (NSC)".into(),
            year: 2022,
            prevalence: "1.8%".into(),
            analysis: "Static".into(),
            dataset_size: "1,000".into(),
            source: "Popular Android".into(),
        }];
        let s = table2(&ours);
        assert!(s.contains("Fahl"));
        assert!(s.contains("This work (NSC)"));
        assert!(s.contains("0.67%"));
    }

    #[test]
    fn table3_renders_ios_nsc_as_dash() {
        let rows = vec![Table3Row {
            dataset: DatasetKind::Popular,
            platform: Platform::Ios,
            n: 1000,
            dynamic: 114,
            static_embedded: 334,
            nsc: None,
        }];
        let s = table3(&rows);
        assert!(s.contains("11.40% (114)"));
        assert!(s.contains("33.40% (334)"));
        assert!(s.lines().any(|l| l.trim_end().ends_with('-')));
    }

    #[test]
    fn table_ct_renders_coverage_shards_and_findings() {
        let datasets = vec![CtCoverageRow {
            dataset: DatasetKind::Popular,
            platform: Platform::Android,
            resolved: 3,
            total: 7,
        }];
        let shards = vec![CtShardRow {
            shard: "argon-legacy".into(),
            operator: "argon CT".into(),
            entries: 42,
        }];
        let clean = table_ct(&datasets, &shards, 0.8, &[]);
        assert!(clean.contains("CT resolution & log coverage"));
        assert!(clean.contains("42.9%"), "3/7 resolved:\n{clean}");
        assert!(clean.contains("argon-legacy"));
        assert!(clean.contains("cache hit rate: 80.0%"));
        assert!(clean.contains("no mis-issuance"));
        let dirty = table_ct(&datasets, &shards, 0.8, &["mis-issuance of x".into()]);
        assert!(dirty.contains("1 finding(s)"));
        assert!(dirty.contains("mis-issuance of x"));
    }

    #[test]
    fn table6_renders_counts() {
        let s = table6(&[Table6Row {
            platform: Platform::Android,
            default_pki: 163,
            custom_pki: 4,
            unavailable: 11,
        }]);
        assert!(s.contains("163"));
        assert!(s.contains("Android"));
    }

    #[test]
    fn table9_marks_significance() {
        use pinning_analysis::pii::Contingency;
        let mut cmp = PiiComparison::default();
        cmp.tables.insert(
            PiiType::AdvertisingId,
            Contingency {
                pinned_with: 200,
                pinned_without: 600,
                unpinned_with: 300,
                unpinned_without: 1900,
            },
        );
        let s = table9(&[(Platform::Ios, cmp)]);
        assert!(s.contains("Ad. ID*"), "{s}");
    }

    #[test]
    fn table1_renders_top10_only() {
        let rows: Vec<(String, f64)> = (0..15)
            .map(|i| (format!("Cat{i}"), 15.0 - i as f64))
            .collect();
        let t = Table1 {
            columns: vec![("Android / Popular".into(), rows)],
        };
        let s = table1(&t);
        assert!(s.contains("Cat0"));
        assert!(s.contains("Cat9"));
        assert!(!s.contains("Cat10"), "top-10 truncation");
    }

    #[test]
    fn table7_truncates_and_labels_platforms() {
        let android: Vec<FrameworkCount> = (0..8)
            .map(|i| FrameworkCount {
                framework: format!("A{i}"),
                apps: 20 - i,
            })
            .collect();
        let ios = vec![FrameworkCount {
            framework: "Amplitude".into(),
            apps: 45,
        }];
        let s = table7(&android, &ios, 5);
        assert!(s.contains("A4"));
        assert!(!s.contains("A5"), "top-5 truncation");
        assert!(s.contains("Amplitude"));
        assert!(s.contains("iOS"));
    }

    #[test]
    fn table8_formats_percentages() {
        let s = table8(&[Table8Row {
            dataset: DatasetKind::Common,
            platform: Platform::Android,
            row: WeakCipherRow {
                overall_pct: 8.35,
                pinning_pct: 23.4,
                total_apps: 575,
                pinning_apps: 47,
            },
        }]);
        assert!(s.contains("8.35%"));
        assert!(s.contains("23.40%"));
    }

    #[test]
    fn categories_table_renders_platform_labels() {
        use pinning_analysis::categories::CategoryRow;
        use pinning_app::category::Category;
        let rows = vec![CategoryRow {
            category: Category::Tools,
            population_rank: 15,
            pinning_apps: 3,
            total_apps: 55,
            pinning_pct: 5.45,
        }];
        let s = table_categories(Platform::Ios, &rows);
        assert!(
            s.contains("Utilities (15)"),
            "iOS label for Tools is Utilities: {s}"
        );
        let s = table_categories(Platform::Android, &rows);
        assert!(s.contains("Tools (15)"));
    }

    #[test]
    fn run_health_renders_every_counter() {
        let s = table_run_health(&RunHealthReport {
            panics_recovered: 1,
            breaker_trips: 7,
            watchdog_breaches: 0,
            journal_truncations: 1,
            quarantined_bytes: 58,
            quarantined_records: 2,
            journal_repairs: 3,
            checkpoints_recovered: 1,
            resumed_apps: 4,
            fresh_apps: 46,
            replayed_prior_epoch: 39,
            reanalyzed_dirty: 11,
            cache_rows: vec![CacheRow {
                name: "cert-fingerprint".into(),
                hits: 900,
                misses: 100,
            }],
            peak_rss_kib: Some(123_456),
            apps_per_sec: Some(87.5),
        });
        assert!(s.contains("Run health"));
        assert!(s.contains("worker panics recovered"));
        assert!(s.contains("circuit-breaker trips"));
        assert!(s.contains("apps replayed from prior epoch"));
        assert!(s.contains("apps reanalyzed (dirty)"));
        assert!(s.contains("quarantined records"));
        assert!(s.contains("journal repairs"));
        assert!(s.contains("checkpoints recovered"));
        for n in ["1", "7", "58", "4", "46", "39", "11"] {
            assert!(s.contains(n), "missing {n} in:\n{s}");
        }
        assert!(s.contains("cache cert-fingerprint (hit/miss)"));
        assert!(s.contains("900/100 (90.0%)"));
        assert!(s.contains("peak RSS (KiB)"));
        assert!(s.contains("123456"));
        assert!(s.contains("throughput (apps/sec)"));
        assert!(s.contains("87.5"));
        // Untimed runs render a dash, not a bogus zero.
        let dashes = table_run_health(&RunHealthReport::default());
        assert!(dashes.contains("—"));
    }

    #[test]
    fn share_bar_shape() {
        let s = share_bar("circumvented", 1, 2, 10);
        assert!(s.contains("1/2"));
        assert!(s.contains("50.0%"));
    }
}
