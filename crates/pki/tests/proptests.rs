//! Property tests for certificates, chains, and pins.

use pinning_pki::authority::CertificateAuthority;
use pinning_pki::cert::Certificate;
use pinning_pki::encode::pem_decode_all;
use pinning_pki::name::DistinguishedName;
use pinning_pki::pin::{Pin, PinSet, SpkiPin};
use pinning_pki::store::RootStore;
use pinning_pki::time::{SimTime, Validity, YEAR};
use pinning_pki::validate::{validate_chain, RevocationList, ValidationOptions};
use pinning_crypto::sig::KeyPair;
use pinning_crypto::SplitMix64;
use proptest::prelude::*;

fn arbitrary_leaf(seed: u64, cn: &str, org: &str, serial_salt: u64) -> (Certificate, Certificate) {
    let mut rng = SplitMix64::new(seed);
    let mut root = CertificateAuthority::new_root(
        DistinguishedName::new(format!("Root {serial_salt}"), "Sim", "US"),
        &mut rng,
        SimTime(0),
    );
    let key = KeyPair::generate(&mut rng);
    let leaf = root.issue_leaf(
        &[cn.to_string()],
        org,
        &key,
        Validity::starting(SimTime(0), YEAR),
    );
    (leaf, root.cert.clone())
}

proptest! {
    #[test]
    fn der_roundtrip_arbitrary_names(
        seed in any::<u64>(),
        cn in "[a-z0-9.-]{1,40}",
        org in "[A-Za-z0-9 ]{0,30}",
    ) {
        let (leaf, _) = arbitrary_leaf(seed, &cn, &org, 1);
        let back = Certificate::from_der(&leaf.to_der()).unwrap();
        prop_assert_eq!(back, leaf);
    }

    #[test]
    fn pem_roundtrip_cert(seed in any::<u64>(), cn in "[a-z]{1,20}\\.com") {
        let (leaf, root) = arbitrary_leaf(seed, &cn, "Org", 2);
        let bundle = format!("{}{}", leaf.to_pem(), root.to_pem());
        let ders = pem_decode_all(&bundle).unwrap();
        prop_assert_eq!(ders.len(), 2);
        prop_assert_eq!(Certificate::from_der(&ders[0]).unwrap(), leaf);
        prop_assert_eq!(Certificate::from_der(&ders[1]).unwrap(), root);
    }

    #[test]
    fn valid_chain_validates_and_tampered_fails(
        seed in any::<u64>(),
        host in "[a-z]{1,12}\\.example",
    ) {
        let (leaf, root) = arbitrary_leaf(seed, &host, "Org", 3);
        let mut store = RootStore::new("t");
        store.add(root.clone());
        let chain = vec![leaf.clone(), root];
        prop_assert!(validate_chain(
            &chain, &store, &host, SimTime(100), &RevocationList::empty(),
            &ValidationOptions::default()
        ).is_ok());

        // Any SAN tamper breaks the signature.
        let mut bad = chain.clone();
        bad[0].tbs.san.push("evil.example".to_string());
        prop_assert!(validate_chain(
            &bad, &store, &host, SimTime(100), &RevocationList::empty(),
            &ValidationOptions::default()
        ).is_err());
    }

    #[test]
    fn adding_roots_never_invalidates(seed in any::<u64>(), extra in 1u64..6) {
        let (leaf, root) = arbitrary_leaf(seed, "m.example", "Org", 4);
        let mut store = RootStore::new("t");
        store.add(root.clone());
        let chain = vec![leaf, root];
        let before = validate_chain(
            &chain, &store, "m.example", SimTime(100), &RevocationList::empty(),
            &ValidationOptions::default(),
        ).is_ok();
        // Grow the store with unrelated roots.
        let mut rng = SplitMix64::new(seed ^ 0xeeee);
        for i in 0..extra {
            let other = CertificateAuthority::new_root(
                DistinguishedName::new(format!("Extra {i}"), "X", "US"),
                &mut rng,
                SimTime(0),
            );
            store.add(other.cert.clone());
        }
        let after = validate_chain(
            &chain, &store, "m.example", SimTime(100), &RevocationList::empty(),
            &ValidationOptions::default(),
        ).is_ok();
        prop_assert_eq!(before, after);
        prop_assert!(after, "chain must stay valid as trust grows");
    }

    #[test]
    fn pinset_position_independence(seed in any::<u64>(), pin_root in any::<bool>()) {
        let (leaf, root) = arbitrary_leaf(seed, "p.example", "Org", 5);
        let pinned = if pin_root { &root } else { &leaf };
        let set = PinSet::from_pins(vec![Pin::Spki(SpkiPin::sha256_of(pinned))]);
        let chain = [leaf.clone(), root.clone()];
        prop_assert!(set.matches_chain(&chain));
        // And a chain without the pinned certificate never matches.
        let other_chain = if pin_root { vec![leaf] } else { vec![root] };
        prop_assert!(!set.matches_chain(&other_chain));
    }

    #[test]
    fn fingerprints_injective_over_serial(seed in any::<u64>(), delta in 1u64..1000) {
        let (leaf, _) = arbitrary_leaf(seed, "f.example", "Org", 6);
        let mut renewed = leaf.clone();
        renewed.tbs.serial = renewed.tbs.serial.wrapping_add(delta);
        prop_assert_ne!(leaf.fingerprint_sha256(), renewed.fingerprint_sha256());
        // SPKI digest is untouched by serial changes.
        prop_assert_eq!(leaf.spki_sha256(), renewed.spki_sha256());
    }
}
