//! Property-style tests for certificates, chains, and pins, driven by a
//! deterministic SplitMix64 input sweep (no external crates, fully offline).

use pinning_crypto::sig::KeyPair;
use pinning_crypto::SplitMix64;
use pinning_pki::authority::CertificateAuthority;
use pinning_pki::cert::Certificate;
use pinning_pki::encode::pem_decode_all;
use pinning_pki::name::DistinguishedName;
use pinning_pki::pin::{Pin, PinSet, SpkiPin};
use pinning_pki::store::RootStore;
use pinning_pki::time::{SimTime, Validity, YEAR};
use pinning_pki::validate::{validate_chain, RevocationList, ValidationOptions};

const CASES: u64 = 60;

fn arbitrary_leaf(seed: u64, cn: &str, org: &str, serial_salt: u64) -> (Certificate, Certificate) {
    let mut rng = SplitMix64::new(seed);
    let mut root = CertificateAuthority::new_root(
        DistinguishedName::new(format!("Root {serial_salt}"), "Sim", "US"),
        &mut rng,
        SimTime(0),
    );
    let key = KeyPair::generate(&mut rng);
    let leaf = root.issue_leaf(
        &[cn.to_string()],
        org,
        &key,
        Validity::starting(SimTime(0), YEAR),
    );
    (leaf, root.cert.clone())
}

fn ascii(rng: &mut SplitMix64, alphabet: &[u8], min: usize, max: usize) -> String {
    let len = min as u64 + rng.next_below((max - min) as u64 + 1);
    (0..len)
        .map(|_| alphabet[rng.next_below(alphabet.len() as u64) as usize] as char)
        .collect()
}

#[test]
fn der_roundtrip_arbitrary_names() {
    let mut rng = SplitMix64::new(0xde6);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let cn = ascii(&mut rng, b"abcdefghijklmnopqrstuvwxyz0123456789.-", 1, 40);
        let org = ascii(
            &mut rng,
            b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 ",
            0,
            30,
        );
        let (leaf, _) = arbitrary_leaf(seed, &cn, &org, 1);
        let back = Certificate::from_der(&leaf.to_der()).unwrap();
        assert_eq!(back, leaf);
    }
}

#[test]
fn pem_roundtrip_cert() {
    let mut rng = SplitMix64::new(0x9e8);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let cn = format!(
            "{}.com",
            ascii(&mut rng, b"abcdefghijklmnopqrstuvwxyz", 1, 20)
        );
        let (leaf, root) = arbitrary_leaf(seed, &cn, "Org", 2);
        let bundle = format!("{}{}", leaf.to_pem(), root.to_pem());
        let ders = pem_decode_all(&bundle).unwrap();
        assert_eq!(ders.len(), 2);
        assert_eq!(Certificate::from_der(&ders[0]).unwrap(), leaf);
        assert_eq!(Certificate::from_der(&ders[1]).unwrap(), root);
    }
}

#[test]
fn valid_chain_validates_and_tampered_fails() {
    let mut rng = SplitMix64::new(0xc4a);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let host = format!(
            "{}.example",
            ascii(&mut rng, b"abcdefghijklmnopqrstuvwxyz", 1, 12)
        );
        let (leaf, root) = arbitrary_leaf(seed, &host, "Org", 3);
        let mut store = RootStore::new("t");
        store.add(root.clone());
        let chain = vec![leaf.clone(), root];
        assert!(validate_chain(
            &chain,
            &store,
            &host,
            SimTime(100),
            &RevocationList::empty(),
            &ValidationOptions::default()
        )
        .is_ok());

        // Any SAN tamper breaks the signature.
        let mut bad = chain.clone();
        bad[0].tbs.san.push("evil.example".to_string());
        bad[0].invalidate_derived(); // clones share the derived-value cache
        assert!(validate_chain(
            &bad,
            &store,
            &host,
            SimTime(100),
            &RevocationList::empty(),
            &ValidationOptions::default()
        )
        .is_err());
    }
}

#[test]
fn adding_roots_never_invalidates() {
    let mut rng = SplitMix64::new(0x600);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let extra = 1 + rng.next_below(5);
        let (leaf, root) = arbitrary_leaf(seed, "m.example", "Org", 4);
        let mut store = RootStore::new("t");
        store.add(root.clone());
        let chain = vec![leaf, root];
        let before = validate_chain(
            &chain,
            &store,
            "m.example",
            SimTime(100),
            &RevocationList::empty(),
            &ValidationOptions::default(),
        )
        .is_ok();
        // Grow the store with unrelated roots.
        let mut extra_rng = SplitMix64::new(seed ^ 0xeeee);
        for i in 0..extra {
            let other = CertificateAuthority::new_root(
                DistinguishedName::new(format!("Extra {i}"), "X", "US"),
                &mut extra_rng,
                SimTime(0),
            );
            store.add(other.cert.clone());
        }
        let after = validate_chain(
            &chain,
            &store,
            "m.example",
            SimTime(100),
            &RevocationList::empty(),
            &ValidationOptions::default(),
        )
        .is_ok();
        assert_eq!(before, after);
        assert!(after, "chain must stay valid as trust grows");
    }
}

#[test]
fn pinset_position_independence() {
    let mut rng = SplitMix64::new(0x915);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let pin_root = rng.chance(0.5);
        let (leaf, root) = arbitrary_leaf(seed, "p.example", "Org", 5);
        let pinned = if pin_root { &root } else { &leaf };
        let set = PinSet::from_pins(vec![Pin::Spki(SpkiPin::sha256_of(pinned))]);
        let chain = [leaf.clone(), root.clone()];
        assert!(set.matches_chain(&chain));
        // And a chain without the pinned certificate never matches.
        let other_chain = if pin_root { vec![leaf] } else { vec![root] };
        assert!(!set.matches_chain(&other_chain));
    }
}

#[test]
fn fingerprints_injective_over_serial() {
    let mut rng = SplitMix64::new(0xf19);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let delta = 1 + rng.next_below(999);
        let (leaf, _) = arbitrary_leaf(seed, "f.example", "Org", 6);
        let mut renewed = leaf.clone();
        renewed.tbs.serial = renewed.tbs.serial.wrapping_add(delta);
        renewed.invalidate_derived(); // clones share the derived-value cache
        assert_ne!(leaf.fingerprint_sha256(), renewed.fingerprint_sha256());
        // SPKI digest is untouched by serial changes.
        assert_eq!(leaf.spki_sha256(), renewed.spki_sha256());
    }
}

// ---------------------------------------------------------------------
// Hostile-input properties: every decoder rejects with a structured
// error — never a panic, never an unbounded allocation.
// ---------------------------------------------------------------------

fn mutate_bytes(rng: &mut SplitMix64, buf: &mut Vec<u8>) {
    if buf.is_empty() {
        return;
    }
    let len = buf.len() as u64;
    match rng.next_below(4) {
        0 => {
            let i = rng.next_below(len) as usize;
            buf[i] ^= 1 << rng.next_below(8);
        }
        1 => buf.truncate(rng.next_below(len) as usize),
        2 => {
            // Length-field lie: stamp a huge big-endian run anywhere.
            let i = rng.next_below(len) as usize;
            for (dst, src) in buf[i..].iter_mut().zip(u64::MAX.to_be_bytes()) {
                *dst = src;
            }
        }
        _ => {
            let at = rng.next_below(len + 1) as usize;
            let mut garbage = vec![0u8; 1 + rng.next_below(12) as usize];
            rng.fill_bytes(&mut garbage);
            buf.splice(at..at, garbage);
        }
    }
}

#[test]
fn from_der_never_panics_on_mutated_certificates() {
    let mut rng = SplitMix64::new(0xFDE0);
    let (leaf, root) = arbitrary_leaf(1, "host.example", "Org", 7);
    let corpus = [leaf.to_der(), root.to_der()];
    for _ in 0..CASES * 8 {
        let mut der = corpus[rng.next_below(2) as usize].clone();
        for _ in 0..=rng.next_below(3) {
            mutate_bytes(&mut rng, &mut der);
        }
        // Must return, Ok or Err — any panic fails the test harness.
        let _ = Certificate::from_der(&der);
    }
}

#[test]
fn from_der_never_panics_on_random_bytes() {
    let mut rng = SplitMix64::new(0xFDE1);
    for _ in 0..CASES * 8 {
        let mut buf = vec![0u8; rng.next_below(400) as usize];
        rng.fill_bytes(&mut buf);
        let _ = Certificate::from_der(&buf);
    }
}

#[test]
fn pem_decode_never_panics_on_mutated_text() {
    let mut rng = SplitMix64::new(0xFDE2);
    let (leaf, _) = arbitrary_leaf(2, "pem.example", "Org", 8);
    let base = leaf.to_pem().into_bytes();
    for _ in 0..CASES * 8 {
        let mut text = base.clone();
        for _ in 0..=rng.next_below(3) {
            mutate_bytes(&mut rng, &mut text);
        }
        if let Ok(s) = std::str::from_utf8(&text) {
            let _ = pem_decode_all(s);
        }
    }
}

#[test]
fn decoders_reject_over_budget_input_up_front() {
    use pinning_pki::encode::pem_decode_all_with_budget;
    use pinning_pki::error::DecodeError;
    use pinning_pki::limits::{Budget, Limit};
    let strict = Budget::strict();
    let big = vec![0u8; strict.max_input_bytes + 1];
    assert!(matches!(
        Certificate::from_der_with_budget(&big, &strict),
        Err(DecodeError::LimitExceeded(Limit::InputBytes))
    ));
    let big_text = "B".repeat(strict.max_input_bytes + 1);
    assert!(matches!(
        pem_decode_all_with_budget(&big_text, &strict),
        Err(DecodeError::LimitExceeded(Limit::InputBytes))
    ));
}
