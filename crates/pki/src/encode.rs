//! Deterministic DER-like binary encoding and PEM framing.
//!
//! Real DER is a general-purpose ASN.1 encoding; our certificates need only
//! a fixed schema, so we use a simple tag-length-value format with one-byte
//! tags and 32-bit big-endian lengths. What matters for the reproduction:
//!
//! * encoding is **deterministic** — equal certificates produce equal bytes,
//!   so fingerprints and raw-certificate pins are stable;
//! * the PEM framing uses the exact delimiters
//!   (`-----BEGIN CERTIFICATE-----`) that the paper's static scanner
//!   searches for (§4.1.2);
//! * certificates round-trip, because static analysis *parses back* the
//!   blobs it finds in app packages.

use crate::error::DecodeError;
use crate::limits::{Budget, Limit};
use pinning_crypto::base64::{b64decode, b64encode};

/// Tags used by the encoding.
pub mod tag {
    /// Outer certificate structure.
    pub const CERTIFICATE: u8 = 0x30;
    /// To-be-signed body.
    pub const TBS: u8 = 0x31;
    /// Signature value.
    pub const SIGNATURE: u8 = 0x32;
    /// Distinguished name.
    pub const NAME: u8 = 0x33;
    /// UTF-8 string.
    pub const STRING: u8 = 0x34;
    /// Unsigned 64-bit integer.
    pub const U64: u8 = 0x35;
    /// Raw byte string.
    pub const BYTES: u8 = 0x36;
    /// List (count-prefixed sequence of values).
    pub const LIST: u8 = 0x37;
    /// Boolean.
    pub const BOOL: u8 = 0x38;
    /// Optional: present.
    pub const SOME: u8 = 0x39;
    /// Optional: absent.
    pub const NONE: u8 = 0x3a;
}

/// Append-only TLV writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn tlv(&mut self, t: u8, value: &[u8]) {
        self.buf.push(t);
        self.buf
            .extend_from_slice(&(value.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(value);
    }

    /// Writes a tagged u64.
    pub fn u64(&mut self, v: u64) {
        self.tlv(tag::U64, &v.to_be_bytes());
    }

    /// Writes a tagged UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.tlv(tag::STRING, s.as_bytes());
    }

    /// Writes a tagged byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.tlv(tag::BYTES, b);
    }

    /// Writes a tagged boolean.
    pub fn boolean(&mut self, v: bool) {
        self.tlv(tag::BOOL, &[v as u8]);
    }

    /// Writes an optional u64.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                let mut inner = Writer::new();
                inner.u64(x);
                self.tlv(tag::SOME, &inner.into_bytes());
            }
            None => self.tlv(tag::NONE, &[]),
        }
    }

    /// Writes a nested structure under `t` using `f` to fill it.
    pub fn nested(&mut self, t: u8, f: impl FnOnce(&mut Writer)) {
        let mut inner = Writer::new();
        f(&mut inner);
        self.tlv(t, &inner.into_bytes());
    }

    /// Writes a list of items under [`tag::LIST`].
    pub fn list<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Writer, &T)) {
        let mut inner = Writer::new();
        inner.u64(items.len() as u64);
        for item in items {
            f(&mut inner, item);
        }
        self.tlv(tag::LIST, &inner.into_bytes());
    }
}

/// Cursor-based TLV reader.
///
/// Every reader enforces a [`Budget`]: total input size, nesting depth, and
/// a per-parse work counter. [`Reader::new`] applies [`Budget::STANDARD`];
/// [`Reader::with_budget`] takes an explicit one. A budget trip surfaces as
/// [`DecodeError::LimitExceeded`], never a panic or an unbounded loop.
#[derive(Debug)]
pub struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
    budget: Budget,
    depth: usize,
    work: u64,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `input` under [`Budget::STANDARD`].
    pub fn new(input: &'a [u8]) -> Self {
        Reader::with_budget(input, Budget::STANDARD)
    }

    /// Creates a reader over `input` under an explicit `budget`.
    pub fn with_budget(input: &'a [u8], budget: Budget) -> Self {
        Reader {
            input,
            pos: 0,
            budget,
            depth: 0,
            work: 0,
        }
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len().saturating_sub(self.pos)
    }

    /// Charges one unit of decode work and enforces the input-size and
    /// work limits (checked here so that every primitive read pays it).
    fn charge(&mut self) -> Result<(), DecodeError> {
        if self.input.len() > self.budget.max_input_bytes {
            return Err(DecodeError::LimitExceeded(Limit::InputBytes));
        }
        self.work += 1;
        if self.work > self.budget.max_work {
            return Err(DecodeError::LimitExceeded(Limit::Work));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.input.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn header(&mut self, expected: u8) -> Result<usize, DecodeError> {
        self.charge()?;
        let t = self.take(1)?[0];
        if t != expected {
            return Err(DecodeError::UnexpectedTag { expected, found: t });
        }
        let len_bytes = self.take(4)?;
        let len =
            u32::from_be_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
        if self.pos + len > self.input.len() {
            return Err(DecodeError::BadLength);
        }
        Ok(len)
    }

    /// Reads a tagged u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let len = self.header(tag::U64)?;
        if len != 8 {
            return Err(DecodeError::BadFieldSize);
        }
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a tagged UTF-8 string.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.header(tag::STRING)?;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    /// Reads a tagged byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.header(tag::BYTES)?;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a tagged byte string into a fixed-size array.
    pub fn bytes_fixed<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let v = self.bytes()?;
        v.try_into().map_err(|_| DecodeError::BadFieldSize)
    }

    /// Reads a tagged boolean.
    pub fn boolean(&mut self) -> Result<bool, DecodeError> {
        let len = self.header(tag::BOOL)?;
        if len != 1 {
            return Err(DecodeError::BadFieldSize);
        }
        Ok(self.take(1)?[0] != 0)
    }

    /// Reads an optional u64.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, DecodeError> {
        let t = *self.input.get(self.pos).ok_or(DecodeError::Truncated)?;
        match t {
            tag::SOME => {
                let len = self.header(tag::SOME)?;
                let body = self.take(len)?;
                let mut inner = self.child(body)?;
                Ok(Some(inner.u64()?))
            }
            tag::NONE => {
                let _ = self.header(tag::NONE)?;
                Ok(None)
            }
            found => Err(DecodeError::UnexpectedTag {
                expected: tag::SOME,
                found,
            }),
        }
    }

    /// Builds a sub-reader over `body` one nesting level deeper, enforcing
    /// the depth limit.
    fn child(&self, body: &'a [u8]) -> Result<Reader<'a>, DecodeError> {
        if self.depth + 1 > self.budget.max_depth {
            return Err(DecodeError::LimitExceeded(Limit::Depth));
        }
        Ok(Reader {
            input: body,
            pos: 0,
            budget: self.budget,
            depth: self.depth + 1,
            work: self.work,
        })
    }

    /// Enters a nested structure tagged `t`, returning a sub-reader.
    pub fn nested(&mut self, t: u8) -> Result<Reader<'a>, DecodeError> {
        let len = self.header(t)?;
        let body = self.take(len)?;
        self.child(body)
    }

    /// Reads a list, calling `f` once per element.
    ///
    /// A lying element count cannot drive allocation: every element consumes
    /// at least one input byte, so a count larger than the remaining input is
    /// rejected up front and pre-allocation is capped at the remaining input
    /// size.
    pub fn list<T>(
        &mut self,
        mut f: impl FnMut(&mut Reader<'a>) -> Result<T, DecodeError>,
    ) -> Result<Vec<T>, DecodeError> {
        let mut inner = self.nested(tag::LIST)?;
        let n = inner.u64()? as usize;
        if n > inner.remaining() {
            return Err(DecodeError::BadLength);
        }
        let mut out = Vec::with_capacity(n.min(inner.remaining()));
        for _ in 0..n {
            out.push(f(&mut inner)?);
        }
        Ok(out)
    }
}

/// The PEM begin delimiter for certificates (the literal string the paper's
/// scanner searches for).
pub const PEM_BEGIN_CERT: &str = "-----BEGIN CERTIFICATE-----";
/// The PEM end delimiter for certificates.
pub const PEM_END_CERT: &str = "-----END CERTIFICATE-----";

/// Wraps DER bytes in PEM framing with 64-character base64 lines.
pub fn pem_encode(der: &[u8]) -> String {
    let b64 = b64encode(der);
    let mut out = String::with_capacity(b64.len() + 64);
    out.push_str(PEM_BEGIN_CERT);
    out.push('\n');
    let mut line_len = 0;
    for c in b64.chars() {
        out.push(c);
        line_len += 1;
        if line_len == 64 {
            out.push('\n');
            line_len = 0;
        }
    }
    if line_len > 0 {
        out.push('\n');
    }
    out.push_str(PEM_END_CERT);
    out.push('\n');
    out
}

/// Extracts the DER bodies of every `CERTIFICATE` PEM block in `text`.
///
/// Tolerates leading/trailing junk around blocks (app packages interleave
/// PEM with other asset content). Returns an error if a BEGIN has no END or
/// a body fails to base64-decode. Runs under [`Budget::STANDARD`]; see
/// [`pem_decode_all_with_budget`] for an explicit budget.
pub fn pem_decode_all(text: &str) -> Result<Vec<Vec<u8>>, DecodeError> {
    pem_decode_all_with_budget(text, &Budget::STANDARD)
}

/// [`pem_decode_all`] under an explicit [`Budget`]: rejects oversized inputs
/// before scanning and bounds each block's base64 decode by the remaining
/// budget.
pub fn pem_decode_all_with_budget(
    text: &str,
    budget: &Budget,
) -> Result<Vec<Vec<u8>>, DecodeError> {
    if text.len() > budget.max_input_bytes {
        return Err(DecodeError::LimitExceeded(Limit::InputBytes));
    }
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find(PEM_BEGIN_CERT) {
        let after_begin = &rest[start + PEM_BEGIN_CERT.len()..];
        let end = after_begin.find(PEM_END_CERT).ok_or(DecodeError::BadPem)?;
        let body: String = after_begin[..end]
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        let der = b64decode(&body).map_err(|_| DecodeError::BadPemBase64)?;
        out.push(der);
        rest = &after_begin[end + PEM_END_CERT.len()..];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let mut w = Writer::new();
        w.u64(0xdead_beef_cafe_f00d);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u64().unwrap(), 0xdead_beef_cafe_f00d);
        assert!(r.is_empty());
    }

    #[test]
    fn string_roundtrip() {
        let mut w = Writer::new();
        w.string("api.example.com");
        let bytes = w.into_bytes();
        assert_eq!(Reader::new(&bytes).string().unwrap(), "api.example.com");
    }

    #[test]
    fn list_roundtrip() {
        let items = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let mut w = Writer::new();
        w.list(&items, |w, s| w.string(s));
        let bytes = w.into_bytes();
        let got = Reader::new(&bytes).list(|r| r.string()).unwrap();
        assert_eq!(got, items);
    }

    #[test]
    fn opt_roundtrip() {
        for v in [None, Some(7u64)] {
            let mut w = Writer::new();
            w.opt_u64(v);
            let bytes = w.into_bytes();
            assert_eq!(Reader::new(&bytes).opt_u64().unwrap(), v);
        }
    }

    #[test]
    fn nested_roundtrip() {
        let mut w = Writer::new();
        w.nested(tag::TBS, |w| {
            w.u64(1);
            w.boolean(true);
        });
        let bytes = w.into_bytes();
        let mut outer = Reader::new(&bytes);
        let mut inner = outer.nested(tag::TBS).unwrap();
        assert_eq!(inner.u64().unwrap(), 1);
        assert!(inner.boolean().unwrap());
        assert!(inner.is_empty());
    }

    #[test]
    fn wrong_tag_rejected() {
        let mut w = Writer::new();
        w.u64(1);
        let bytes = w.into_bytes();
        assert_eq!(
            Reader::new(&bytes).string(),
            Err(DecodeError::UnexpectedTag {
                expected: tag::STRING,
                found: tag::U64
            })
        );
    }

    #[test]
    fn truncation_rejected() {
        let mut w = Writer::new();
        w.bytes(&[1, 2, 3, 4, 5]);
        let bytes = w.into_bytes();
        assert_eq!(
            Reader::new(&bytes[..4]).bytes(),
            Err(DecodeError::Truncated)
        );
        // Header claims 5 bytes but body cut short → BadLength.
        assert_eq!(
            Reader::new(&bytes[..7]).bytes(),
            Err(DecodeError::BadLength)
        );
    }

    #[test]
    fn pem_roundtrip_single() {
        let der = vec![9u8; 100];
        let pem = pem_encode(&der);
        assert!(pem.starts_with(PEM_BEGIN_CERT));
        assert!(pem.trim_end().ends_with(PEM_END_CERT));
        assert_eq!(pem_decode_all(&pem).unwrap(), vec![der]);
    }

    #[test]
    fn pem_roundtrip_multiple_with_junk() {
        let a = vec![1u8; 10];
        let b = vec![2u8; 200];
        let text = format!(
            "garbage\n{}\nmiddle junk{}\ntrailing",
            pem_encode(&a),
            pem_encode(&b)
        );
        assert_eq!(pem_decode_all(&text).unwrap(), vec![a, b]);
    }

    #[test]
    fn pem_unterminated_rejected() {
        let text = format!("{PEM_BEGIN_CERT}\nAAAA\n");
        assert_eq!(pem_decode_all(&text), Err(DecodeError::BadPem));
    }

    #[test]
    fn pem_bad_base64_rejected() {
        let text = format!("{PEM_BEGIN_CERT}\n!!!!\n{PEM_END_CERT}\n");
        assert_eq!(pem_decode_all(&text), Err(DecodeError::BadPemBase64));
    }

    #[test]
    fn pem_lines_are_64_chars() {
        let pem = pem_encode(&[7u8; 120]);
        for line in pem.lines() {
            if !line.starts_with("-----") {
                assert!(line.len() <= 64);
            }
        }
    }

    #[test]
    fn lying_list_count_rejected_without_allocation() {
        // Hand-craft a LIST whose count field claims 2^60 elements but whose
        // body holds nothing: the reader must reject it up front instead of
        // pre-allocating.
        let mut inner = Writer::new();
        inner.u64(1u64 << 60);
        let mut w = Writer::new();
        w.tlv(tag::LIST, &inner.into_bytes());
        let bytes = w.into_bytes();
        assert_eq!(
            Reader::new(&bytes).list(|r| r.u64()),
            Err(DecodeError::BadLength)
        );
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Build nesting deeper than the strict budget allows.
        let strict = Budget::strict();
        let mut body = Writer::new();
        body.u64(7);
        let mut bytes = body.into_bytes();
        for _ in 0..strict.max_depth + 2 {
            let mut w = Writer::new();
            w.tlv(tag::TBS, &bytes);
            bytes = w.into_bytes();
        }
        let mut r = Reader::with_budget(&bytes, strict);
        let mut result = Ok(());
        for _ in 0..strict.max_depth + 2 {
            match r.nested(tag::TBS) {
                Ok(inner) => r = inner,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        assert_eq!(result, Err(DecodeError::LimitExceeded(Limit::Depth)));
    }

    #[test]
    fn oversized_input_rejected() {
        let tight = Budget {
            max_input_bytes: 8,
            ..Budget::strict()
        };
        let mut w = Writer::new();
        w.bytes(&[0u8; 32]);
        let bytes = w.into_bytes();
        assert_eq!(
            Reader::with_budget(&bytes, tight).bytes(),
            Err(DecodeError::LimitExceeded(Limit::InputBytes))
        );
    }

    #[test]
    fn work_budget_is_enforced() {
        let tight = Budget {
            max_work: 4,
            ..Budget::strict()
        };
        let items: Vec<u64> = (0..16).collect();
        let mut w = Writer::new();
        w.list(&items, |w, v| w.u64(*v));
        let bytes = w.into_bytes();
        assert_eq!(
            Reader::with_budget(&bytes, tight).list(|r| r.u64()),
            Err(DecodeError::LimitExceeded(Limit::Work))
        );
    }

    #[test]
    fn pem_empty_der_roundtrip() {
        let pem = pem_encode(&[]);
        assert_eq!(pem_decode_all(&pem).unwrap(), vec![Vec::<u8>::new()]);
    }

    #[test]
    fn pem_budget_rejects_oversized_input() {
        let tight = Budget {
            max_input_bytes: 16,
            ..Budget::strict()
        };
        let text = pem_encode(&[1u8; 64]);
        assert_eq!(
            pem_decode_all_with_budget(&text, &tight),
            Err(DecodeError::LimitExceeded(Limit::InputBytes))
        );
    }
}
