//! The shared PKI universe: public CAs and platform root stores.
//!
//! Real mobile root stores are "a tangled mass" (Vallina-Rodriguez et al.,
//! the paper's reference 50): Android's AOSP store, Apple's iOS store and
//! Mozilla's store mostly overlap, OEMs add extra (sometimes obscure or
//! expired) roots to Android devices, and apps can opt out of all of them
//! with a custom PKI. [`PkiUniverse`] generates that topology
//! deterministically so that Table 6's default-vs-custom-PKI classification
//! has something real to classify.

use crate::authority::CertificateAuthority;
use crate::chain::CertificateChain;
use crate::name::DistinguishedName;
use crate::store::RootStore;
use crate::time::{SimTime, Validity, DAY, YEAR};
use pinning_crypto::sig::KeyPair;
use pinning_crypto::SplitMix64;

/// Configuration for universe generation.
#[derive(Debug, Clone)]
pub struct UniverseConfig {
    /// Number of public root CAs (real stores carry ~130–170).
    pub n_roots: usize,
    /// Fraction of roots present in *all three* major stores.
    pub common_fraction: f64,
    /// Number of extra OEM-only roots added to the Android OEM store.
    pub n_oem_extra: usize,
    /// Of the OEM extras, how many are already expired at `now` (the
    /// "expired, unknown, or obscure CA certificates" of §2.1).
    pub n_oem_expired: usize,
    /// Intermediates issued under each root.
    pub intermediates_per_root: usize,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            n_roots: 140,
            common_fraction: 0.85,
            n_oem_extra: 6,
            n_oem_expired: 2,
            intermediates_per_root: 2,
        }
    }
}

impl UniverseConfig {
    /// A scaled-down universe for fast tests.
    pub fn tiny() -> Self {
        UniverseConfig {
            n_roots: 8,
            common_fraction: 0.75,
            n_oem_extra: 2,
            n_oem_expired: 1,
            intermediates_per_root: 1,
        }
    }
}

/// The complete simulated PKI.
#[derive(Debug, Clone)]
pub struct PkiUniverse {
    roots: Vec<CertificateAuthority>,
    intermediates: Vec<CertificateAuthority>,
    /// Which root each intermediate hangs under.
    inter_parent: Vec<usize>,
    /// Mozilla's store (the validation reference, per §5.3.1).
    pub mozilla: RootStore,
    /// AOSP store, as shipped on a factory Android image.
    pub aosp: RootStore,
    /// AOSP plus OEM additions.
    pub aosp_oem: RootStore,
    /// Apple's iOS store.
    pub ios: RootStore,
    /// "Now" for the simulation (certificate issuance references this).
    now: SimTime,
}

impl PkiUniverse {
    /// Generates the universe from a seed.
    pub fn generate(config: &UniverseConfig, rng: &mut SplitMix64) -> Self {
        let now = SimTime::at(5, 0, 0); // five simulated years of history
        let genesis = SimTime::EPOCH;

        let mut roots = Vec::with_capacity(config.n_roots);
        let mut mozilla = RootStore::new("Mozilla");
        let mut aosp = RootStore::new("AOSP");
        let mut ios = RootStore::new("iOS");

        for i in 0..config.n_roots {
            let name = DistinguishedName::new(
                format!("SimTrust Root CA {i}"),
                format!("SimTrust {i}"),
                "US",
            );
            let ca = CertificateAuthority::new_root(name, rng, genesis);
            // Placement: most roots are in all three stores; the rest land in
            // a random non-empty subset, modeling store divergence.
            if rng.chance(config.common_fraction) {
                mozilla.add(ca.cert.clone());
                aosp.add(ca.cert.clone());
                ios.add(ca.cert.clone());
            } else {
                let mut placed = false;
                while !placed {
                    if rng.chance(0.5) {
                        mozilla.add(ca.cert.clone());
                        placed = true;
                    }
                    if rng.chance(0.5) {
                        aosp.add(ca.cert.clone());
                        placed = true;
                    }
                    if rng.chance(0.5) {
                        ios.add(ca.cert.clone());
                        placed = true;
                    }
                }
            }
            roots.push(ca);
        }

        // OEM extras: obscure roots only on the OEM Android image.
        let mut aosp_oem = RootStore::new("AOSP+OEM");
        for cert in aosp.iter() {
            aosp_oem.add(cert.clone());
        }
        for i in 0..config.n_oem_extra {
            let name = DistinguishedName::new(
                format!("ObscureNational Root {i}"),
                format!("Obscure Gov {i}"),
                "ZZ",
            );
            let validity = if i < config.n_oem_expired {
                // Already expired at `now`.
                Validity::starting(genesis, YEAR)
            } else {
                Validity::starting(genesis, 25 * YEAR)
            };
            let ca = CertificateAuthority::new_root_with_validity(name, rng, validity);
            aosp_oem.add(ca.cert.clone());
            roots.push(ca);
        }

        // Intermediates under each public root.
        let mut intermediates = Vec::new();
        let mut inter_parent = Vec::new();
        let n_public = config.n_roots;
        for (parent, root) in roots.iter_mut().enumerate().take(n_public) {
            for j in 0..config.intermediates_per_root {
                let name = DistinguishedName::new(
                    format!("SimTrust Issuing CA {parent}-{j}"),
                    root.name().organization.clone(),
                    "US",
                );
                let inter = root.issue_intermediate(
                    name,
                    rng,
                    Validity::starting(genesis, 15 * YEAR),
                    None,
                );
                intermediates.push(inter);
                inter_parent.push(parent);
            }
        }

        PkiUniverse {
            roots,
            intermediates,
            inter_parent,
            mozilla,
            aosp,
            aosp_oem,
            ios,
            now,
        }
    }

    /// The simulation's "now".
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances (or rewinds) the simulation clock. Epoch evolution moves
    /// `now` forward so that certificates issued in later epochs are dated
    /// relative to the advanced clock, exactly like the originals were.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// The index of the intermediate whose subject is `issuer`, if any —
    /// lets a reissued leaf hang under the same intermediate as the
    /// certificate it replaces.
    pub fn intermediate_index(&self, issuer: &DistinguishedName) -> Option<usize> {
        self.intermediates
            .iter()
            .position(|ca| ca.cert.tbs.subject == *issuer)
    }

    /// The intermediate authority at `idx` (its keypair re-signs same-key
    /// leaf renewals).
    pub fn intermediate(&self, idx: usize) -> Option<&CertificateAuthority> {
        self.intermediates.get(idx)
    }

    /// All public root CAs (excluding OEM extras).
    pub fn public_roots(&self) -> &[CertificateAuthority] {
        // OEM extras were appended after `n_public`; exposing all is fine for
        // analysis, but chains are only issued under public roots.
        &self.roots
    }

    /// Number of intermediates.
    pub fn n_intermediates(&self) -> usize {
        self.intermediates.len()
    }

    /// Issues a default-PKI server chain for `hostnames` under a
    /// deterministic-but-arbitrary public intermediate.
    ///
    /// Returns `[leaf, intermediate, root]`. `key` may be reused across
    /// calls to model key-reusing renewals.
    pub fn issue_server_chain(
        &mut self,
        hostnames: &[String],
        organization: &str,
        key: &KeyPair,
        lifetime_days: u64,
        rng: &mut SplitMix64,
    ) -> CertificateChain {
        assert!(
            !self.intermediates.is_empty(),
            "universe has no intermediates"
        );
        let idx = rng.next_below(self.intermediates.len() as u64) as usize;
        self.issue_server_chain_via(idx, hostnames, organization, key, lifetime_days)
    }

    /// Issues a default-PKI chain under a *specific* intermediate (index into
    /// the intermediate list) — used when a hostname's chain must be stable.
    pub fn issue_server_chain_via(
        &mut self,
        inter_idx: usize,
        hostnames: &[String],
        organization: &str,
        key: &KeyPair,
        lifetime_days: u64,
    ) -> CertificateChain {
        let start = self.now - 30 * DAY; // issued a month ago
        let inter = &mut self.intermediates[inter_idx];
        let leaf = inter.issue_leaf(
            hostnames,
            organization,
            key,
            Validity::starting(start, lifetime_days * DAY),
        );
        let root_idx = self.inter_parent[inter_idx];
        CertificateChain::new(vec![
            leaf,
            inter.cert.clone(),
            self.roots[root_idx].cert.clone(),
        ])
    }

    /// Like [`PkiUniverse::issue_server_chain_via`] but with a
    /// caller-supplied serial and
    /// no mutation: the intermediate's serial counter is left alone. Streamed
    /// world generation issues chains shard-by-shard, and deriving each
    /// serial from the hostname's own RNG stream keeps the chain a host gets
    /// independent of issuance order across shards.
    pub fn issue_server_chain_via_seeded(
        &self,
        inter_idx: usize,
        hostnames: &[String],
        organization: &str,
        key: &KeyPair,
        lifetime_days: u64,
        serial: u64,
    ) -> CertificateChain {
        let start = self.now - 30 * DAY; // issued a month ago
        let inter = &self.intermediates[inter_idx];
        let leaf = inter.issue_leaf_with_serial(
            hostnames,
            organization,
            key,
            Validity::starting(start, lifetime_days * DAY),
            serial,
        );
        let root_idx = self.inter_parent[inter_idx];
        CertificateChain::new(vec![
            leaf,
            inter.cert.clone(),
            self.roots[root_idx].cert.clone(),
        ])
    }

    /// Creates a custom (private) CA not present in any public store, and
    /// issues a chain for `hostnames` under it — the "custom PKI" rows of
    /// Table 6.
    pub fn issue_custom_chain(
        &self,
        organization: &str,
        hostnames: &[String],
        key: &KeyPair,
        lifetime_days: u64,
        rng: &mut SplitMix64,
    ) -> (CertificateAuthority, CertificateChain) {
        let start = self.now - 30 * DAY;
        let mut ca = CertificateAuthority::new_root(
            DistinguishedName::new(format!("{organization} Private Root"), organization, "US"),
            rng,
            SimTime::EPOCH,
        );
        let leaf = ca.issue_leaf(
            hostnames,
            organization,
            key,
            Validity::starting(start, lifetime_days * DAY),
        );
        let chain = CertificateChain::new(vec![leaf, ca.cert.clone()]);
        (ca, chain)
    }

    /// Issues a bare self-signed certificate (no chain) for `hostnames` —
    /// the long-lived self-signed oddity of §5.3.1.
    pub fn issue_self_signed(
        &self,
        organization: &str,
        hostnames: &[String],
        lifetime_years: u64,
        rng: &mut SplitMix64,
    ) -> CertificateChain {
        let leaf = CertificateAuthority::self_signed_leaf(
            hostnames,
            organization,
            rng,
            Validity::starting(self.now - 30 * DAY, lifetime_years * YEAR),
        );
        CertificateChain::new(vec![leaf])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{validate_chain, RevocationList, ValidationOptions};

    fn universe() -> PkiUniverse {
        PkiUniverse::generate(&UniverseConfig::tiny(), &mut SplitMix64::new(0x11e))
    }

    #[test]
    fn stores_are_populated() {
        let u = universe();
        assert!(!u.mozilla.is_empty());
        assert!(!u.aosp.is_empty());
        assert!(!u.ios.is_empty());
        // OEM store strictly extends AOSP.
        assert!(u.aosp_oem.len() > u.aosp.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = universe();
        let b = universe();
        assert_eq!(a.mozilla.len(), b.mozilla.len());
        let mut names_a: Vec<_> = a.mozilla.iter().map(|c| c.tbs.subject.clone()).collect();
        let mut names_b: Vec<_> = b.mozilla.iter().map(|c| c.tbs.subject.clone()).collect();
        names_a.sort();
        names_b.sort();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn default_chain_validates_against_all_stores_when_common() {
        let mut u = universe();
        let mut rng = SplitMix64::new(9);
        let key = KeyPair::generate(&mut rng);
        // Try a few intermediates until we find one whose root is in all stores.
        let mut validated_somewhere = false;
        for idx in 0..u.n_intermediates() {
            let chain =
                u.issue_server_chain_via(idx, &["www.site.com".to_string()], "Site", &key, 398);
            let now = u.now();
            let ok_all = [&u.mozilla, &u.aosp, &u.ios].iter().all(|store| {
                validate_chain(
                    chain.certs(),
                    store,
                    "www.site.com",
                    now,
                    &RevocationList::empty(),
                    &ValidationOptions::default(),
                )
                .is_ok()
            });
            if ok_all {
                validated_somewhere = true;
                break;
            }
        }
        assert!(
            validated_somewhere,
            "no chain validated in all three stores"
        );
    }

    #[test]
    fn custom_chain_fails_public_stores() {
        let u = universe();
        let mut rng = SplitMix64::new(10);
        let key = KeyPair::generate(&mut rng);
        let (_ca, chain) = u.issue_custom_chain(
            "Fintech",
            &["api.fintech.io".to_string()],
            &key,
            398,
            &mut rng,
        );
        let err = validate_chain(
            chain.certs(),
            &u.mozilla,
            "api.fintech.io",
            u.now(),
            &RevocationList::empty(),
            &ValidationOptions::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn self_signed_is_single_cert() {
        let u = universe();
        let mut rng = SplitMix64::new(11);
        let chain = u.issue_self_signed("Corp", &["x.corp.com".to_string()], 27, &mut rng);
        assert_eq!(chain.len(), 1);
        assert!(chain.leaf().unwrap().is_self_signed());
        // 27-year validity (§5.3.1's observed oddity).
        assert!(chain.leaf().unwrap().tbs.validity.duration_secs() >= 27 * YEAR);
    }

    #[test]
    fn oem_extras_include_expired_roots() {
        let u = universe();
        let expired = u
            .aosp_oem
            .iter()
            .filter(|c| !c.tbs.validity.contains(u.now()))
            .count();
        assert!(expired >= 1, "expected at least one expired OEM root");
    }

    #[test]
    fn issued_chains_link() {
        let mut u = universe();
        let mut rng = SplitMix64::new(12);
        let key = KeyPair::generate(&mut rng);
        let chain = u.issue_server_chain(&["a.b.c".to_string()], "ABC", &key, 90, &mut rng);
        assert_eq!(chain.len(), 3);
        assert!(chain.linkage_ok());
    }
}
