//! Distinguished names and RFC 6125-style hostname matching.

use core::fmt;

/// A simplified X.500 distinguished name.
///
/// Only the attributes the methodology actually consults are modeled:
/// Common Name (used by the paper for static↔dynamic certificate matching,
/// §5.3.2), Organization (used for first-/third-party attribution), and
/// Country.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DistinguishedName {
    /// Common Name, e.g. `"api.example.com"` or `"SimTrust Root CA 3"`.
    pub common_name: String,
    /// Organization, e.g. `"Example Corp"`.
    pub organization: String,
    /// ISO country code, e.g. `"US"`.
    pub country: String,
}

impl DistinguishedName {
    /// Builds a name with just a CN (organization/country defaulted).
    pub fn cn(common_name: impl Into<String>) -> Self {
        DistinguishedName {
            common_name: common_name.into(),
            organization: String::new(),
            country: "US".to_string(),
        }
    }

    /// Builds a full name.
    pub fn new(
        common_name: impl Into<String>,
        organization: impl Into<String>,
        country: impl Into<String>,
    ) -> Self {
        DistinguishedName {
            common_name: common_name.into(),
            organization: organization.into(),
            country: country.into(),
        }
    }
}

impl fmt::Display for DistinguishedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CN={}", self.common_name)?;
        if !self.organization.is_empty() {
            write!(f, ", O={}", self.organization)?;
        }
        if !self.country.is_empty() {
            write!(f, ", C={}", self.country)?;
        }
        Ok(())
    }
}

/// RFC 6125-style hostname matching against a DNS name pattern.
///
/// Rules implemented (the subset real TLS stacks enforce):
///
/// * comparison is case-insensitive;
/// * a wildcard is only honoured as the complete leftmost label
///   (`*.example.com`), never partial (`f*.example.com` is treated literally)
///   and never in other positions;
/// * the wildcard matches exactly **one** label: `*.example.com` matches
///   `api.example.com` but neither `example.com` nor `a.b.example.com`;
/// * a wildcard pattern must retain at least two literal labels
///   (`*.com` is rejected outright).
pub fn match_hostname(pattern: &str, hostname: &str) -> bool {
    let pattern = pattern.to_ascii_lowercase();
    let hostname = hostname.to_ascii_lowercase();
    if pattern.is_empty() || hostname.is_empty() {
        return false;
    }
    if let Some(suffix) = pattern.strip_prefix("*.") {
        // Reject over-broad wildcards like `*.com`.
        if suffix.split('.').filter(|l| !l.is_empty()).count() < 2 {
            return false;
        }
        match hostname.split_once('.') {
            Some((first_label, rest)) => !first_label.is_empty() && rest == suffix,
            None => false,
        }
    } else {
        pattern == hostname
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match() {
        assert!(match_hostname("api.example.com", "api.example.com"));
        assert!(!match_hostname("api.example.com", "www.example.com"));
    }

    #[test]
    fn case_insensitive() {
        assert!(match_hostname("API.Example.COM", "api.example.com"));
    }

    #[test]
    fn wildcard_single_label() {
        assert!(match_hostname("*.example.com", "api.example.com"));
        assert!(!match_hostname("*.example.com", "example.com"));
        assert!(!match_hostname("*.example.com", "a.b.example.com"));
    }

    #[test]
    fn wildcard_not_partial() {
        // Partial wildcards are treated as literals, so no match.
        assert!(!match_hostname("f*.example.com", "foo.example.com"));
    }

    #[test]
    fn wildcard_not_too_broad() {
        assert!(!match_hostname("*.com", "example.com"));
    }

    #[test]
    fn wildcard_only_leftmost() {
        assert!(!match_hostname("api.*.com", "api.example.com"));
    }

    #[test]
    fn empty_inputs() {
        assert!(!match_hostname("", "example.com"));
        assert!(!match_hostname("example.com", ""));
    }

    #[test]
    fn display_name() {
        let dn = DistinguishedName::new("x.com", "X Corp", "US");
        assert_eq!(dn.to_string(), "CN=x.com, O=X Corp, C=US");
        assert_eq!(DistinguishedName::cn("y").to_string(), "CN=y, C=US");
    }
}
