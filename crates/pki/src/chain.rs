//! Certificate chains, leaf-first, as carried in TLS `Certificate` messages.

use crate::cert::Certificate;

/// An ordered certificate chain: `certs[0]` is the leaf, each subsequent
/// certificate is expected to have issued the previous one. Servers may or
/// may not include the root itself (both happen in the wild; validation
/// handles both).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateChain {
    certs: Vec<Certificate>,
}

impl CertificateChain {
    /// Builds a chain from leaf-first certificates.
    pub fn new(certs: Vec<Certificate>) -> Self {
        CertificateChain { certs }
    }

    /// The leaf (end-entity) certificate, if the chain is non-empty.
    pub fn leaf(&self) -> Option<&Certificate> {
        self.certs.first()
    }

    /// The topmost presented certificate (closest to the root).
    pub fn top(&self) -> Option<&Certificate> {
        self.certs.last()
    }

    /// All certificates, leaf first.
    pub fn certs(&self) -> &[Certificate] {
        &self.certs
    }

    /// Mutable access to the certificates, leaf first (used by interning
    /// passes that swap in canonical-sharing copies).
    pub fn certs_mut(&mut self) -> &mut [Certificate] {
        &mut self.certs
    }

    /// Number of certificates in the chain.
    pub fn len(&self) -> usize {
        self.certs.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.certs.is_empty()
    }

    /// Intermediates only (everything strictly between leaf and top); empty
    /// for chains of length ≤ 2.
    pub fn intermediates(&self) -> &[Certificate] {
        if self.certs.len() <= 2 {
            &[]
        } else {
            &self.certs[1..self.certs.len() - 1]
        }
    }

    /// Serializes every certificate to concatenated PEM blocks (the format
    /// servers and apps bundle chains in).
    pub fn to_pem_bundle(&self) -> String {
        self.certs.iter().map(|c| c.to_pem()).collect()
    }

    /// Parses a PEM bundle back into a chain.
    pub fn from_pem_bundle(text: &str) -> Result<Self, crate::error::DecodeError> {
        let ders = crate::encode::pem_decode_all(text)?;
        let certs = ders
            .iter()
            .map(|d| Certificate::from_der(d))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CertificateChain::new(certs))
    }

    /// Structural sanity check: adjacent issuer/subject names line up.
    /// (Signature checking is [`crate::validate::validate_chain`]'s job.)
    pub fn linkage_ok(&self) -> bool {
        self.certs
            .windows(2)
            .all(|w| w[0].tbs.issuer == w[1].tbs.subject)
    }
}

impl core::ops::Index<usize> for CertificateChain {
    type Output = Certificate;
    fn index(&self, i: usize) -> &Certificate {
        &self.certs[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::CertificateAuthority;
    use crate::name::DistinguishedName;
    use crate::time::{SimTime, Validity, YEAR};
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;

    fn build_three_level() -> CertificateChain {
        let mut rng = SplitMix64::new(0xC8A1);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Root", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let mut inter = root.issue_intermediate(
            DistinguishedName::new("Inter", "Sim", "US"),
            &mut rng,
            Validity::starting(SimTime(0), 10 * YEAR),
            None,
        );
        let key = KeyPair::generate(&mut rng);
        let leaf = inter.issue_leaf(
            &["shop.example.com".to_string()],
            "Shop",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        CertificateChain::new(vec![leaf, inter.cert.clone(), root.cert.clone()])
    }

    #[test]
    fn accessors() {
        let chain = build_three_level();
        assert_eq!(chain.len(), 3);
        assert_eq!(
            chain.leaf().unwrap().tbs.subject.common_name,
            "shop.example.com"
        );
        assert_eq!(chain.top().unwrap().tbs.subject.common_name, "Root");
        assert_eq!(chain.intermediates().len(), 1);
        assert_eq!(chain.intermediates()[0].tbs.subject.common_name, "Inter");
    }

    #[test]
    fn linkage() {
        let chain = build_three_level();
        assert!(chain.linkage_ok());
        let mut certs = chain.certs().to_vec();
        certs.swap(1, 2);
        assert!(!CertificateChain::new(certs).linkage_ok());
    }

    #[test]
    fn pem_bundle_roundtrip() {
        let chain = build_three_level();
        let bundle = chain.to_pem_bundle();
        assert_eq!(bundle.matches("BEGIN CERTIFICATE").count(), 3);
        let parsed = CertificateChain::from_pem_bundle(&bundle).unwrap();
        assert_eq!(parsed, chain);
    }

    #[test]
    fn short_chain_has_no_intermediates() {
        let chain = build_three_level();
        let two = CertificateChain::new(chain.certs()[..2].to_vec());
        assert!(two.intermediates().is_empty());
        let empty = CertificateChain::new(vec![]);
        assert!(empty.is_empty());
        assert!(empty.leaf().is_none());
        assert!(empty.linkage_ok()); // vacuous
    }
}
