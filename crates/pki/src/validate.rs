//! Full chain validation.
//!
//! Implements the checks a real TLS stack performs and that the paper
//! verifies pinning apps do not subvert (§5.3.4): signature chaining, basic
//! constraints, path-length constraints, validity windows, hostname
//! matching, root-store anchoring, and leaf revocation.

use crate::cache;
use crate::cert::Certificate;
use crate::error::ValidationError;
use crate::store::RootStore;
use crate::time::SimTime;
use pinning_crypto::Sha256;
use pinning_resilience::{Deadline, DeadlineExceeded};
use std::collections::{HashMap, HashSet};
use std::sync::{OnceLock, RwLock};

/// Work units charged per certificate for screening, expiry, and linkage
/// bookkeeping (cheap, non-cryptographic passes over the chain).
pub const COST_PER_CERT_OVERHEAD: u64 = 2;
/// Flat work units charged once per validation for setup.
pub const COST_CHAIN_SETUP: u64 = 2;
/// Work units charged before each signature verification — the dominant
/// cost, charged *before* the verify so an expired deadline abandons the
/// chain walk mid-way.
pub const COST_SIGNATURE_VERIFY: u64 = 40;
/// Work units charged for the root-store anchor lookup.
pub const COST_ANCHOR_LOOKUP: u64 = 4;
/// Work units charged for the hostname match.
pub const COST_HOSTNAME_CHECK: u64 = 2;
/// Work units charged for the leaf revocation check.
pub const COST_REVOCATION_CHECK: u64 = 1;
/// Work units charged for probing the validation memo.
pub const COST_MEMO_PROBE: u64 = 2;

/// A set of revoked certificate serial numbers.
///
/// The paper notes revocation only applies to leaf certificates (§5.3.1);
/// we model it the same way — only the leaf is checked.
#[derive(Debug, Clone, Default)]
pub struct RevocationList {
    revoked: HashSet<u64>,
}

impl RevocationList {
    /// An empty CRL.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Marks a serial revoked.
    pub fn revoke(&mut self, serial: u64) {
        self.revoked.insert(serial);
    }

    /// Whether `serial` is revoked.
    pub fn is_revoked(&self, serial: u64) -> bool {
        self.revoked.contains(&serial)
    }

    /// Number of revoked serials.
    pub fn len(&self) -> usize {
        self.revoked.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.revoked.is_empty()
    }
}

/// Knobs for validation.
///
/// Real apps occasionally disable individual checks (that is exactly the
/// kind of flaw Stone et al. look for); the options model that so the
/// simulation can plant — and the analysis can hunt for — such apps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationOptions {
    /// Enforce hostname matching on the leaf.
    pub check_hostname: bool,
    /// Enforce validity windows.
    pub check_expiry: bool,
    /// Enforce leaf revocation.
    pub check_revocation: bool,
}

impl Default for ValidationOptions {
    fn default() -> Self {
        ValidationOptions {
            check_hostname: true,
            check_expiry: true,
            check_revocation: true,
        }
    }
}

/// Validates `chain` (leaf-first) for `hostname` at time `now` against the
/// trusted roots in `store`.
///
/// The chain may or may not include the root itself. Validation succeeds iff:
///
/// 1. the chain is non-empty and each certificate was signed by the next
///    (verified cryptographically, not just by name);
/// 2. every issuing certificate has the CA bit and respects its path-length
///    constraint;
/// 3. every certificate is inside its validity window (if enabled);
/// 4. the top of the chain either *is* a trusted root or was signed by one;
/// 5. the leaf matches `hostname` (if enabled) and is not revoked (if
///    enabled).
pub fn validate_chain(
    chain: &[Certificate],
    store: &RootStore,
    hostname: &str,
    now: SimTime,
    crl: &RevocationList,
    options: &ValidationOptions,
) -> Result<(), ValidationError> {
    validate_chain_within(
        chain,
        store,
        hostname,
        now,
        crl,
        options,
        &Deadline::unlimited(),
    )
    .expect("unlimited deadline cannot expire")
}

/// [`validate_chain`] under a work-budget deadline.
///
/// This is the single implementation of chain validation — the plain
/// entry point delegates here with [`Deadline::unlimited`], so a verdict
/// produced under a finite deadline is byte-identical to the offline
/// library's for the same input. Work is charged in fixed units (the
/// `COST_*` constants) *before* it is performed; the moment a charge
/// overruns the budget the walk is abandoned and `Err(DeadlineExceeded)`
/// is returned — never a partial verdict.
#[allow(clippy::too_many_arguments)]
pub fn validate_chain_within(
    chain: &[Certificate],
    store: &RootStore,
    hostname: &str,
    now: SimTime,
    crl: &RevocationList,
    options: &ValidationOptions,
    deadline: &Deadline,
) -> Result<Result<(), ValidationError>, DeadlineExceeded> {
    match validate_chain_impl(chain, store, hostname, now, crl, options, deadline) {
        Ok(()) => Ok(Ok(())),
        Err(Verdict::Invalid(e)) => Ok(Err(e)),
        Err(Verdict::TimedOut) => Err(DeadlineExceeded),
    }
}

/// Internal outcome separating "the chain is bad" from "we ran out of
/// budget before knowing", so `?` can be used on both paths.
enum Verdict {
    Invalid(ValidationError),
    TimedOut,
}

impl From<ValidationError> for Verdict {
    fn from(e: ValidationError) -> Self {
        Verdict::Invalid(e)
    }
}

impl From<DeadlineExceeded> for Verdict {
    fn from(_: DeadlineExceeded) -> Self {
        Verdict::TimedOut
    }
}

fn validate_chain_impl(
    chain: &[Certificate],
    store: &RootStore,
    hostname: &str,
    now: SimTime,
    crl: &RevocationList,
    options: &ValidationOptions,
    deadline: &Deadline,
) -> Result<(), Verdict> {
    // The cheap linear passes (screening, expiry, linkage bookkeeping) are
    // charged up front as a function of chain length.
    deadline.charge(COST_CHAIN_SETUP + COST_PER_CERT_OVERHEAD * chain.len() as u64)?;
    let leaf = chain.first().ok_or(ValidationError::EmptyChain)?;

    // Screen structure before any cryptographic work: pathological chains
    // (cycles, absurd depth, giant SAN lists, stacked wildcards) are
    // rejected up front under the standard hostile-input budget.
    crate::limits::screen_chain(chain, &crate::limits::Budget::STANDARD)
        .map_err(ValidationError::Malformed)?;

    if options.check_expiry {
        for cert in chain {
            if now < cert.tbs.validity.not_before {
                return Err(ValidationError::NotYetValid {
                    subject: cert.tbs.subject.common_name.clone(),
                }
                .into());
            }
            if now > cert.tbs.validity.not_after {
                return Err(ValidationError::Expired {
                    subject: cert.tbs.subject.common_name.clone(),
                    not_after: cert.tbs.validity.not_after,
                    now,
                }
                .into());
            }
        }
    }

    // Walk leaf → top verifying linkage, signatures, CA bits, path lengths.
    for i in 0..chain.len().saturating_sub(1) {
        let child = &chain[i];
        let parent = &chain[i + 1];
        if child.tbs.issuer != parent.tbs.subject {
            return Err(ValidationError::BrokenLinkage {
                child: child.tbs.subject.common_name.clone(),
                parent: parent.tbs.subject.common_name.clone(),
            }
            .into());
        }
        if !parent.tbs.is_ca {
            return Err(ValidationError::NotACa {
                subject: parent.tbs.subject.common_name.clone(),
            }
            .into());
        }
        // Path length: a CA with path_len = n may have at most n CA certs
        // *below* it (not counting the leaf).
        if let Some(max) = parent.tbs.path_len {
            let cas_below = chain[..=i].iter().filter(|c| c.tbs.is_ca).count() as u64;
            if cas_below > max {
                return Err(ValidationError::PathLenExceeded {
                    subject: parent.tbs.subject.common_name.clone(),
                }
                .into());
            }
        }
        // Charge the signature verify *before* doing it: an expired
        // deadline abandons the walk here, mid-chain.
        deadline.charge(COST_SIGNATURE_VERIFY)?;
        if !parent
            .tbs
            .public_key
            .verify(&child.tbs.to_bytes(), &child.signature)
        {
            return Err(ValidationError::BadSignature {
                subject: child.tbs.subject.common_name.clone(),
            }
            .into());
        }
    }

    // Anchor the top of the chain in the root store.
    deadline.charge(COST_ANCHOR_LOOKUP)?;
    let top = chain.last().expect("non-empty checked above");
    let anchored = if top.is_self_signed() {
        // Chain includes its root: the root itself must be trusted (and its
        // self-signature must verify).
        deadline.charge(COST_SIGNATURE_VERIFY)?;
        store.contains(top)
            && top
                .tbs
                .public_key
                .verify(&top.tbs.to_bytes(), &top.signature)
    } else {
        // Chain excludes the root: a trusted root must have signed the top.
        store.issuer_of(top).is_some()
    };
    if !anchored {
        return Err(ValidationError::UnknownRoot {
            top_subject: top.tbs.subject.common_name.clone(),
        }
        .into());
    }

    deadline.charge(COST_HOSTNAME_CHECK)?;
    if options.check_hostname && !leaf.matches_hostname(hostname) {
        return Err(ValidationError::HostnameMismatch {
            hostname: hostname.to_string(),
        }
        .into());
    }

    deadline.charge(COST_REVOCATION_CHECK)?;
    if options.check_revocation && crl.is_revoked(leaf.tbs.serial) {
        return Err(ValidationError::Revoked {
            serial: leaf.tbs.serial,
        }
        .into());
    }

    Ok(())
}

/// Memoized verdicts, keyed by [`validation_key`].
type ValidationMemo = RwLock<HashMap<[u8; 32], Result<(), ValidationError>>>;

/// The process-wide chain-validation memo.
fn validation_memo() -> &'static ValidationMemo {
    static MEMO: OnceLock<ValidationMemo> = OnceLock::new();
    MEMO.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Collapses every input [`validate_chain`] reads into one collision-
/// resistant key. Each dimension is either hashed in full (certificate
/// fingerprints cover `tbs` *and* signature bytes; the hostname is length-
/// prefixed) or reduced to the only bit validation can observe (the CRL
/// enters solely through "is the leaf's serial revoked").
fn validation_key(
    chain: &[Certificate],
    store: &RootStore,
    hostname: &str,
    now: SimTime,
    crl: &RevocationList,
    options: &ValidationOptions,
) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&store.content_id().to_le_bytes());
    h.update(&(chain.len() as u64).to_le_bytes());
    for cert in chain {
        h.update(&cert.fingerprint_sha256());
    }
    h.update(&(hostname.len() as u64).to_le_bytes());
    h.update(hostname.as_bytes());
    h.update(&now.0.to_le_bytes());
    let leaf_revoked = chain
        .first()
        .is_some_and(|leaf| crl.is_revoked(leaf.tbs.serial));
    h.update(&[
        options.check_hostname as u8,
        options.check_expiry as u8,
        options.check_revocation as u8,
        leaf_revoked as u8,
    ]);
    h.finalize()
}

/// Memoized [`validate_chain`]: identical semantics, but repeated
/// validations of the same (chain, root store, hostname, time, options,
/// leaf-revocation state) skip the signature walk entirely.
///
/// This is the hot path of the study — every simulated handshake and every
/// PKI classification validates a chain, and the same server chains recur
/// across thousands of apps. With caching disabled (see
/// [`crate::cache::set_caching_enabled`]) the call degrades to a plain
/// [`validate_chain`].
pub fn validate_chain_cached(
    chain: &[Certificate],
    store: &RootStore,
    hostname: &str,
    now: SimTime,
    crl: &RevocationList,
    options: &ValidationOptions,
) -> Result<(), ValidationError> {
    validate_chain_cached_within(
        chain,
        store,
        hostname,
        now,
        crl,
        options,
        &Deadline::unlimited(),
    )
    .expect("unlimited deadline cannot expire")
}

/// [`validate_chain_cached`] under a work-budget deadline.
///
/// Memo hits cost only [`COST_MEMO_PROBE`]; misses pay the probe plus the
/// full [`validate_chain_within`] walk. A verdict that timed out is
/// **never memoized** — the memo holds only complete verdicts, so a
/// request with a tight deadline can never poison the cache for requests
/// with room to finish.
#[allow(clippy::too_many_arguments)]
pub fn validate_chain_cached_within(
    chain: &[Certificate],
    store: &RootStore,
    hostname: &str,
    now: SimTime,
    crl: &RevocationList,
    options: &ValidationOptions,
    deadline: &Deadline,
) -> Result<Result<(), ValidationError>, DeadlineExceeded> {
    if !cache::caching_enabled() {
        return validate_chain_within(chain, store, hostname, now, crl, options, deadline);
    }
    deadline.charge(COST_MEMO_PROBE)?;
    let key = validation_key(chain, store, hostname, now, crl, options);
    if let Some(verdict) = validation_memo().read().expect("memo poisoned").get(&key) {
        cache::CHAIN_VALIDATION.hit();
        return Ok(verdict.clone());
    }
    cache::CHAIN_VALIDATION.miss();
    let verdict = validate_chain_within(chain, store, hostname, now, crl, options, deadline)?;
    validation_memo()
        .write()
        .expect("memo poisoned")
        .insert(key, verdict.clone());
    Ok(verdict)
}

/// Probes the validation memo without computing anything: `Some(verdict)`
/// iff caching is enabled and this exact validation has already completed.
///
/// This is the brownout path of `pinning-serve`: a degraded service
/// answers from the memo alone and sheds what it has never validated. The
/// probe deliberately does **not** touch the global hit/miss counters —
/// degraded serving is accounted by the service's own counters, not the
/// study's cache statistics.
pub fn cached_chain_verdict(
    chain: &[Certificate],
    store: &RootStore,
    hostname: &str,
    now: SimTime,
    crl: &RevocationList,
    options: &ValidationOptions,
) -> Option<Result<(), ValidationError>> {
    if !cache::caching_enabled() {
        return None;
    }
    let key = validation_key(chain, store, hostname, now, crl, options);
    validation_memo()
        .read()
        .expect("memo poisoned")
        .get(&key)
        .cloned()
}

/// Empties the chain-validation memo (benchmarks use this so cached runs
/// start cold and measure real, reproducible hit patterns).
pub fn clear_validation_cache() {
    validation_memo().write().expect("memo poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::CertificateAuthority;
    use crate::name::DistinguishedName;
    use crate::time::{Validity, YEAR};
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;

    struct Fixture {
        store: RootStore,
        chain: Vec<Certificate>,
    }

    fn fixture() -> Fixture {
        let mut rng = SplitMix64::new(0x7a11);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Sim Root", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let mut inter = root.issue_intermediate(
            DistinguishedName::new("Sim Inter", "Sim", "US"),
            &mut rng,
            Validity::starting(SimTime(0), 10 * YEAR),
            Some(1),
        );
        let key = KeyPair::generate(&mut rng);
        let leaf = inter.issue_leaf(
            &["pay.shop.com".to_string(), "*.api.shop.com".to_string()],
            "Shop",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        let mut store = RootStore::new("test");
        store.add(root.cert.clone());
        Fixture {
            store,
            chain: vec![leaf, inter.cert.clone(), root.cert.clone()],
        }
    }

    fn ok(
        f: &Fixture,
        chain: &[Certificate],
        host: &str,
        now: SimTime,
    ) -> Result<(), ValidationError> {
        validate_chain(
            chain,
            &f.store,
            host,
            now,
            &RevocationList::empty(),
            &ValidationOptions::default(),
        )
    }

    #[test]
    fn valid_chain_with_root_included() {
        let f = fixture();
        ok(&f, &f.chain, "pay.shop.com", SimTime(100)).unwrap();
    }

    #[test]
    fn cyclic_chain_rejected_before_crypto() {
        let f = fixture();
        // leaf → inter → inter → root: the repeated certificate (a loop in
        // disguise) must be caught by screening, not by signature walking.
        let chain = vec![
            f.chain[0].clone(),
            f.chain[1].clone(),
            f.chain[1].clone(),
            f.chain[2].clone(),
        ];
        assert_eq!(
            ok(&f, &chain, "pay.shop.com", SimTime(100)),
            Err(ValidationError::Malformed(
                crate::limits::ChainDefect::RepeatedCertificate { position: 2 }
            ))
        );
    }

    #[test]
    fn overlong_chain_rejected_before_crypto() {
        let f = fixture();
        let budget = crate::limits::Budget::STANDARD;
        let mut chain = Vec::new();
        for i in 0..budget.max_chain_len + 1 {
            let mut c = f.chain[0].clone();
            c.tbs.serial = c.tbs.serial.wrapping_add(i as u64);
            c.invalidate_derived();
            chain.push(c);
        }
        assert_eq!(
            ok(&f, &chain, "pay.shop.com", SimTime(100)),
            Err(ValidationError::Malformed(
                crate::limits::ChainDefect::TooLong { len: chain.len() }
            ))
        );
    }

    #[test]
    fn valid_chain_without_root() {
        let f = fixture();
        ok(&f, &f.chain[..2], "pay.shop.com", SimTime(100)).unwrap();
    }

    #[test]
    fn wildcard_san_accepted() {
        let f = fixture();
        ok(&f, &f.chain, "v1.api.shop.com", SimTime(100)).unwrap();
    }

    #[test]
    fn empty_chain_rejected() {
        let f = fixture();
        assert_eq!(
            ok(&f, &[], "pay.shop.com", SimTime(1)),
            Err(ValidationError::EmptyChain)
        );
    }

    #[test]
    fn expired_leaf_rejected() {
        let f = fixture();
        let late = SimTime(2 * YEAR);
        assert!(matches!(
            ok(&f, &f.chain, "pay.shop.com", late),
            Err(ValidationError::Expired { .. })
        ));
    }

    #[test]
    fn expiry_check_can_be_disabled() {
        let f = fixture();
        let opts = ValidationOptions {
            check_expiry: false,
            ..Default::default()
        };
        validate_chain(
            &f.chain,
            &f.store,
            "pay.shop.com",
            SimTime(2 * YEAR),
            &RevocationList::empty(),
            &opts,
        )
        .unwrap();
    }

    #[test]
    fn hostname_mismatch_rejected() {
        let f = fixture();
        assert_eq!(
            ok(&f, &f.chain, "evil.com", SimTime(100)),
            Err(ValidationError::HostnameMismatch {
                hostname: "evil.com".into()
            })
        );
    }

    #[test]
    fn unknown_root_rejected() {
        let f = fixture();
        let empty_store = RootStore::new("empty");
        let err = validate_chain(
            &f.chain,
            &empty_store,
            "pay.shop.com",
            SimTime(100),
            &RevocationList::empty(),
            &ValidationOptions::default(),
        );
        assert!(matches!(err, Err(ValidationError::UnknownRoot { .. })));
    }

    #[test]
    fn tampered_leaf_signature_rejected() {
        let f = fixture();
        let mut chain = f.chain.clone();
        chain[0].tbs.san.push("extra.evil.com".to_string());
        assert!(matches!(
            ok(&f, &chain, "pay.shop.com", SimTime(100)),
            Err(ValidationError::BadSignature { .. })
        ));
    }

    #[test]
    fn broken_linkage_rejected() {
        let f = fixture();
        let chain = vec![f.chain[0].clone(), f.chain[2].clone()]; // skip intermediate
        assert!(matches!(
            ok(&f, &chain, "pay.shop.com", SimTime(100)),
            Err(ValidationError::BrokenLinkage { .. })
        ));
    }

    #[test]
    fn non_ca_issuer_rejected() {
        let f = fixture();
        let mut rng = SplitMix64::new(0xbad);
        // Build a "chain" where a leaf pretends to issue another leaf.
        let mut root2 = CertificateAuthority::new_root(
            DistinguishedName::new("R2", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let k1 = KeyPair::generate(&mut rng);
        let fake_issuer = root2.issue_leaf(
            &["issuer.com".to_string()],
            "I",
            &k1,
            Validity::starting(SimTime(0), YEAR),
        );
        let mut child = f.chain[0].clone();
        child.tbs.issuer = fake_issuer.tbs.subject.clone();
        let chain = vec![child, fake_issuer];
        assert!(matches!(
            ok(&f, &chain, "pay.shop.com", SimTime(100)),
            Err(ValidationError::NotACa { .. })
        ));
    }

    #[test]
    fn path_len_enforced() {
        let mut rng = SplitMix64::new(0x9d);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("R", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        // Root allows at most 0 CAs below it.
        let mut constrained = root.issue_intermediate(
            DistinguishedName::new("I0", "Sim", "US"),
            &mut rng,
            Validity::starting(SimTime(0), 10 * YEAR),
            None,
        );
        // Give the *intermediate* a path_len of 0, then hang another CA off it.
        let mut deep = constrained.issue_intermediate(
            DistinguishedName::new("I1", "Sim", "US"),
            &mut rng,
            Validity::starting(SimTime(0), 10 * YEAR),
            None,
        );
        let mut i0_cert = constrained.cert.clone();
        i0_cert.tbs.path_len = Some(0);
        // Re-sign I0 with the new constraint so the signature stays valid.
        i0_cert.signature = root.keypair().sign(&i0_cert.tbs.to_bytes());
        // I1 chains under the *unconstrained* I0 cert, so re-issue it under
        // the constrained one.
        let mut i1_cert = deep.cert.clone();
        i1_cert.tbs.issuer = i0_cert.tbs.subject.clone();
        i1_cert.signature = constrained.keypair().sign(&i1_cert.tbs.to_bytes());

        let key = KeyPair::generate(&mut rng);
        let leaf = deep.issue_leaf(
            &["d.com".to_string()],
            "D",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        let mut leaf = leaf;
        leaf.tbs.issuer = i1_cert.tbs.subject.clone();
        leaf.signature = deep.keypair().sign(&leaf.tbs.to_bytes());

        let mut store = RootStore::new("t");
        store.add(root.cert.clone());
        let chain = vec![leaf, i1_cert, i0_cert, root.cert.clone()];
        let err = validate_chain(
            &chain,
            &store,
            "d.com",
            SimTime(100),
            &RevocationList::empty(),
            &ValidationOptions::default(),
        );
        assert!(
            matches!(err, Err(ValidationError::PathLenExceeded { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn revoked_leaf_rejected() {
        let f = fixture();
        let mut crl = RevocationList::empty();
        crl.revoke(f.chain[0].tbs.serial);
        let err = validate_chain(
            &f.chain,
            &f.store,
            "pay.shop.com",
            SimTime(100),
            &crl,
            &ValidationOptions::default(),
        );
        assert_eq!(
            err,
            Err(ValidationError::Revoked {
                serial: f.chain[0].tbs.serial
            })
        );
    }

    #[test]
    fn cached_validation_matches_uncached_across_scenarios() {
        let f = fixture();
        clear_validation_cache();
        let scenarios: Vec<(&[Certificate], &str, SimTime)> = vec![
            (&f.chain, "pay.shop.com", SimTime(100)),
            (&f.chain[..2], "pay.shop.com", SimTime(100)),
            (&f.chain, "v1.api.shop.com", SimTime(100)),
            (&f.chain, "evil.com", SimTime(100)),
            (&f.chain, "pay.shop.com", SimTime(2 * YEAR)),
            (&[], "pay.shop.com", SimTime(1)),
        ];
        for (chain, host, now) in &scenarios {
            let plain = ok(&f, chain, host, *now);
            // First cached call computes, second must serve the memo —
            // both byte-identical to the plain validator.
            for _ in 0..2 {
                let cached = validate_chain_cached(
                    chain,
                    &f.store,
                    host,
                    *now,
                    &RevocationList::empty(),
                    &ValidationOptions::default(),
                );
                assert_eq!(cached, plain, "{host} at {now:?}");
            }
        }
    }

    #[test]
    fn validation_memo_distinguishes_mutated_stores() {
        // The MITM scenario from `forged_chain_from_untrusted_ca_rejected`,
        // through the memo: installing a CA changes the store's content id,
        // so the cached rejection cannot leak into the post-install world.
        let f = fixture();
        let mut rng = SplitMix64::new(0xa78);
        let mut mitm = CertificateAuthority::new_root(
            DistinguishedName::new("mitmproxy", "mitmproxy", "US"),
            &mut rng,
            SimTime(0),
        );
        let key = KeyPair::generate(&mut rng);
        let forged = mitm.issue_leaf(
            &["pay.shop.com".to_string()],
            "Shop",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        let chain = vec![forged, mitm.cert.clone()];
        let check = |store: &RootStore| {
            validate_chain_cached(
                &chain,
                store,
                "pay.shop.com",
                SimTime(100),
                &RevocationList::empty(),
                &ValidationOptions::default(),
            )
        };
        let mut store = f.store.clone();
        assert!(matches!(
            check(&store),
            Err(ValidationError::UnknownRoot { .. })
        ));
        store.add(mitm.cert.clone());
        check(&store).unwrap();
        // CRL state is part of the key too: revoking the leaf must flip the
        // verdict even though chain/store/host/time are unchanged.
        let mut crl = RevocationList::empty();
        crl.revoke(chain[0].tbs.serial);
        let revoked = validate_chain_cached(
            &chain,
            &store,
            "pay.shop.com",
            SimTime(100),
            &crl,
            &ValidationOptions::default(),
        );
        assert!(matches!(revoked, Err(ValidationError::Revoked { .. })));
    }

    #[test]
    fn deadline_expiring_mid_walk_yields_timeout_not_partial_verdict() {
        let f = fixture();
        // Budget covers setup + the first signature verify but not the
        // second: the walk must abandon mid-chain with a structured
        // timeout, never a (partial) verdict.
        let budget = COST_CHAIN_SETUP
            + COST_PER_CERT_OVERHEAD * f.chain.len() as u64
            + COST_SIGNATURE_VERIFY;
        let deadline = Deadline::with_budget(budget + COST_SIGNATURE_VERIFY - 1);
        let out = validate_chain_within(
            &f.chain,
            &f.store,
            "pay.shop.com",
            SimTime(100),
            &RevocationList::empty(),
            &ValidationOptions::default(),
            &deadline,
        );
        assert_eq!(out, Err(DeadlineExceeded));
        // Spent saturates at the budget: the request "used up" its whole
        // deadline, which is what the serve layer accounts as latency.
        assert!(deadline.is_expired());
    }

    #[test]
    fn generous_deadline_matches_offline_verdict_and_charges_work() {
        let f = fixture();
        let deadline = Deadline::with_budget(10_000);
        let out = validate_chain_within(
            &f.chain,
            &f.store,
            "pay.shop.com",
            SimTime(100),
            &RevocationList::empty(),
            &ValidationOptions::default(),
            &deadline,
        )
        .expect("generous deadline");
        assert_eq!(
            out,
            validate_chain(
                &f.chain,
                &f.store,
                "pay.shop.com",
                SimTime(100),
                &RevocationList::empty(),
                &ValidationOptions::default(),
            )
        );
        // 3-cert chain: setup + overhead, 2 walk verifies + 1 self-signed
        // anchor verify, anchor lookup, hostname, revocation.
        let expected = COST_CHAIN_SETUP
            + 3 * COST_PER_CERT_OVERHEAD
            + 3 * COST_SIGNATURE_VERIFY
            + COST_ANCHOR_LOOKUP
            + COST_HOSTNAME_CHECK
            + COST_REVOCATION_CHECK;
        assert_eq!(deadline.spent(), expected);
    }

    #[test]
    fn timed_out_validation_is_never_memoized() {
        let f = fixture();
        // Unique hostname avoids cross-test memo interference (the memo is
        // process-global and tests share one process).
        let host = "v9.api.shop.com";
        let chain = &f.chain;
        clear_validation_cache();
        let crl = RevocationList::empty();
        let opts = ValidationOptions::default();
        let tight = Deadline::with_budget(COST_MEMO_PROBE + COST_CHAIN_SETUP);
        let out =
            validate_chain_cached_within(chain, &f.store, host, SimTime(100), &crl, &opts, &tight);
        assert_eq!(out, Err(DeadlineExceeded));
        // The timeout must not have poisoned the memo: no cached verdict.
        assert_eq!(
            cached_chain_verdict(chain, &f.store, host, SimTime(100), &crl, &opts),
            None
        );
        // A request with room to finish computes and memoizes the verdict.
        let roomy = Deadline::with_budget(10_000);
        let out =
            validate_chain_cached_within(chain, &f.store, host, SimTime(100), &crl, &opts, &roomy)
                .expect("roomy deadline");
        assert_eq!(out, Ok(()));
        assert_eq!(
            cached_chain_verdict(chain, &f.store, host, SimTime(100), &crl, &opts),
            Some(Ok(()))
        );
    }

    #[test]
    fn forged_chain_from_untrusted_ca_rejected() {
        // The MITM scenario: attacker CA not in the store forges the chain.
        let f = fixture();
        let mut rng = SplitMix64::new(0xa77);
        let mut mitm = CertificateAuthority::new_root(
            DistinguishedName::new("mitmproxy", "mitmproxy", "US"),
            &mut rng,
            SimTime(0),
        );
        let key = KeyPair::generate(&mut rng);
        let forged = mitm.issue_leaf(
            &["pay.shop.com".to_string()],
            "Shop",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        let chain = vec![forged, mitm.cert.clone()];
        assert!(matches!(
            ok(&f, &chain, "pay.shop.com", SimTime(100)),
            Err(ValidationError::UnknownRoot { .. })
        ));
        // ... but once the MITM CA is installed (test-device setup), it validates.
        let mut store2 = f.store.clone();
        store2.add(mitm.cert.clone());
        validate_chain(
            &chain,
            &store2,
            "pay.shop.com",
            SimTime(100),
            &RevocationList::empty(),
            &ValidationOptions::default(),
        )
        .unwrap();
    }
}
