//! Process-wide caching telemetry and the runtime caching kill-switch.
//!
//! The performance layer computes every derived certificate artifact (DER
//! bytes, fingerprints, SPKI digests, pin strings, chain validations, Merkle
//! proof batches) exactly once per distinct input. Two properties make that
//! trustworthy rather than magic:
//!
//! * **Observability** — every cache keeps a [`CacheCounter`] of hits and
//!   misses. The study surfaces the counters in its run-health table, so a
//!   reported speedup can be traced to concrete avoided recomputation.
//! * **Falsifiability** — a global kill-switch ([`set_caching_enabled`])
//!   turns every cache into a pass-through. Benchmarks and CI run the same
//!   workload both ways in one process and assert the outputs are
//!   byte-identical; the speedup claim is measured, not assumed.
//!
//! Counters are monotone process-wide atomics. Callers that want per-run
//! numbers snapshot before and after (see [`CacheCounter::snapshot`] and
//! [`CacheStat::delta_since`]).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Global switch: when `false`, every derived-value cache recomputes from
/// scratch on each call (counters are left untouched in that mode).
static CACHING_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables all derived-value caches; returns the previous state.
///
/// Results must be identical either way — the switch exists so benchmarks
/// and CI can A/B the cached and uncached paths inside one process and fail
/// loudly if they ever diverge.
pub fn set_caching_enabled(enabled: bool) -> bool {
    CACHING_ENABLED.swap(enabled, Ordering::Relaxed)
}

/// Whether derived-value caching is currently enabled.
pub fn caching_enabled() -> bool {
    CACHING_ENABLED.load(Ordering::Relaxed)
}

/// RAII guard that disables caching for a scope and restores the previous
/// state on drop. Scopes using the guard must not overlap across threads
/// (the switch is global); tests serialize around it.
#[derive(Debug)]
pub struct CachingDisabledGuard {
    prev: bool,
}

/// Disables caching until the returned guard is dropped.
pub fn caching_disabled_scope() -> CachingDisabledGuard {
    CachingDisabledGuard {
        prev: set_caching_enabled(false),
    }
}

impl Drop for CachingDisabledGuard {
    fn drop(&mut self) {
        set_caching_enabled(self.prev);
    }
}

/// Hit/miss counters for one named cache. Declared as `static`s by each
/// caching site; cheap enough to bump on every access.
#[derive(Debug)]
pub struct CacheCounter {
    name: &'static str,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CacheCounter {
    /// Creates a counter (usable in `static` position).
    pub const fn new(name: &'static str) -> Self {
        CacheCounter {
            name,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cache's stable display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records a cache hit.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cache miss (the value was computed and stored).
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Current cumulative numbers.
    pub fn snapshot(&self) -> CacheStat {
        CacheStat {
            name: self.name.to_string(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time reading of one cache's counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStat {
    /// Cache name (e.g. `"cert-der"`).
    pub name: String,
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that computed and stored a fresh value.
    pub misses: u64,
}

impl CacheStat {
    /// Total queries served.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]` (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// The activity between an earlier snapshot `base` of the same counter
    /// and this one — what a single study run contributed.
    pub fn delta_since(&self, base: &CacheStat) -> CacheStat {
        debug_assert_eq!(self.name, base.name);
        CacheStat {
            name: self.name.clone(),
            hits: self.hits.saturating_sub(base.hits),
            misses: self.misses.saturating_sub(base.misses),
        }
    }
}

/// Cached DER encodings ([`crate::cert::Certificate::der_bytes`]).
pub static CERT_DER: CacheCounter = CacheCounter::new("cert-der");
/// Cached certificate fingerprints.
pub static CERT_FINGERPRINT: CacheCounter = CacheCounter::new("cert-fingerprint");
/// Cached SPKI SHA-256 digests.
pub static CERT_SPKI_SHA256: CacheCounter = CacheCounter::new("cert-spki-sha256");
/// Cached SPKI SHA-1 digests.
pub static CERT_SPKI_SHA1: CacheCounter = CacheCounter::new("cert-spki-sha1");
/// Cached `sha256/<base64>` pin strings.
pub static CERT_PIN_STRING: CacheCounter = CacheCounter::new("cert-pin-string");
/// Memoized chain-validation verdicts ([`crate::validate::validate_chain_cached`]).
pub static CHAIN_VALIDATION: CacheCounter = CacheCounter::new("chain-validation");

/// Snapshots of every cache owned by this crate, in stable order.
pub fn snapshot_all() -> Vec<CacheStat> {
    [
        &CERT_DER,
        &CERT_FINGERPRINT,
        &CERT_SPKI_SHA256,
        &CERT_SPKI_SHA1,
        &CERT_PIN_STRING,
        &CHAIN_VALIDATION,
    ]
    .iter()
    .map(|c| c.snapshot())
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_delta() {
        static C: CacheCounter = CacheCounter::new("test-counter");
        let base = C.snapshot();
        C.hit();
        C.hit();
        C.miss();
        let now = C.snapshot();
        let d = now.delta_since(&base);
        assert_eq!((d.hits, d.misses), (2, 1));
        assert_eq!(d.total(), 3);
        assert!((d.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kill_switch_guard_restores() {
        let before = caching_enabled();
        {
            let _g = caching_disabled_scope();
            assert!(!caching_enabled());
        }
        assert_eq!(caching_enabled(), before);
    }

    #[test]
    fn unused_counter_rate_is_zero() {
        static C: CacheCounter = CacheCounter::new("idle");
        assert_eq!(C.snapshot().hit_rate(), 0.0);
        assert_eq!(C.name(), "idle");
    }
}
