//! Root stores.
//!
//! A root store is a named collection of trusted self-signed CA certificates.
//! The paper leans on three facts about real root stores (§2.1, §5.3.1):
//! Android ships the AOSP store (possibly OEM-extended), iOS ships Apple's,
//! and researchers validate against Mozilla's. The `pinning-pki`
//! [`crate::universe`] module builds all of them over one CA universe with
//! realistic overlaps.

use crate::cert::Certificate;
use crate::name::DistinguishedName;
use pinning_crypto::SplitMix64;
use std::collections::HashMap;

/// A named set of trusted root certificates.
#[derive(Debug, Clone)]
pub struct RootStore {
    name: String,
    by_subject: HashMap<DistinguishedName, Certificate>,
    /// Content-derived identity: hash of the name, folded (order-
    /// independently) with the fingerprint of every trusted root. Two
    /// stores compare equal here iff they would trust the same anchors, so
    /// the value is a sound memoization key for validation results — even
    /// for stores mutated after construction (e.g. a test device that
    /// installs a MITM CA).
    content_id: u64,
}

impl RootStore {
    /// Creates an empty store.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let content_id = SplitMix64::new(0x5105_e11d).derive(&name).next_u64();
        RootStore {
            name,
            by_subject: HashMap::new(),
            content_id,
        }
    }

    /// The store's name (e.g. `"AOSP"`, `"iOS"`, `"Mozilla"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The store's content-derived identity (see the field docs). Changes
    /// whenever a root is added; identical for stores with the same name
    /// and the same set of roots.
    pub fn content_id(&self) -> u64 {
        self.content_id
    }

    /// Adds a root certificate. Returns `false` (and keeps the existing
    /// entry) if a root with the same subject is already present.
    pub fn add(&mut self, cert: Certificate) -> bool {
        if !cert.tbs.is_ca || !cert.is_self_signed() {
            // Root stores only hold self-signed CA certs; refuse others.
            return false;
        }
        match self.by_subject.entry(cert.tbs.subject.clone()) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(e) => {
                let fp = cert.fingerprint_sha256();
                e.insert(cert);
                self.content_id ^= u64::from_le_bytes(fp[..8].try_into().expect("8 bytes"));
                true
            }
        }
    }

    /// Removes a root by subject name (a distrust event, Symantec-style).
    /// Returns the removed certificate, if one was present.
    ///
    /// The content id folds fingerprints with XOR, so removing a root
    /// folds the same fingerprint back out and the id returns to the value
    /// it had before the root was added — validation memo keys derived
    /// from it stay sound across distrust-and-restore cycles.
    pub fn remove(&mut self, subject: &DistinguishedName) -> Option<Certificate> {
        let cert = self.by_subject.remove(subject)?;
        let fp = cert.fingerprint_sha256();
        self.content_id ^= u64::from_le_bytes(fp[..8].try_into().expect("8 bytes"));
        Some(cert)
    }

    /// Looks up a trusted root by subject name.
    pub fn get(&self, subject: &DistinguishedName) -> Option<&Certificate> {
        self.by_subject.get(subject)
    }

    /// Whether a certificate with this exact subject *and* SPKI is trusted.
    pub fn contains(&self, cert: &Certificate) -> bool {
        self.by_subject
            .get(&cert.tbs.subject)
            .is_some_and(|c| c.tbs.public_key.spki == cert.tbs.public_key.spki)
    }

    /// Finds the trusted root that issued `cert` (by issuer name + verifying
    /// the signature), if any.
    pub fn issuer_of(&self, cert: &Certificate) -> Option<&Certificate> {
        let root = self.by_subject.get(&cert.tbs.issuer)?;
        root.tbs
            .public_key
            .verify(&cert.tbs.to_bytes(), &cert.signature)
            .then_some(root)
    }

    /// Number of roots.
    pub fn len(&self) -> usize {
        self.by_subject.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.by_subject.is_empty()
    }

    /// Iterates over the roots (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &Certificate> {
        self.by_subject.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::CertificateAuthority;
    use crate::time::{SimTime, Validity, YEAR};
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;

    fn root_ca(tag: u64) -> CertificateAuthority {
        CertificateAuthority::new_root(
            DistinguishedName::new(format!("Root {tag}"), "Sim", "US"),
            &mut SplitMix64::new(tag),
            SimTime(0),
        )
    }

    #[test]
    fn add_and_lookup() {
        let ca = root_ca(1);
        let mut store = RootStore::new("test");
        assert!(store.add(ca.cert.clone()));
        assert!(store.contains(&ca.cert));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn rejects_duplicates_and_non_roots() {
        let mut ca = root_ca(2);
        let mut store = RootStore::new("test");
        assert!(store.add(ca.cert.clone()));
        assert!(!store.add(ca.cert.clone())); // duplicate subject

        let mut rng = SplitMix64::new(3);
        let key = KeyPair::generate(&mut rng);
        let leaf = ca.issue_leaf(
            &["x.com".to_string()],
            "X",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        assert!(!store.add(leaf)); // not a self-signed CA
    }

    #[test]
    fn issuer_of_verifies_signature() {
        let mut ca = root_ca(4);
        let other = root_ca(5);
        let mut store = RootStore::new("test");
        store.add(ca.cert.clone());
        store.add(other.cert.clone());

        let mut rng = SplitMix64::new(6);
        let key = KeyPair::generate(&mut rng);
        let leaf = ca.issue_leaf(
            &["y.com".to_string()],
            "Y",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        let issuer = store.issuer_of(&leaf).unwrap();
        assert_eq!(issuer.tbs.subject, *ca.name());

        // A leaf *claiming* issuance by `other` but not signed by it fails.
        let mut forged = leaf.clone();
        forged.tbs.issuer = other.name().clone();
        assert!(store.issuer_of(&forged).is_none());
    }

    #[test]
    fn content_id_tracks_name_and_roots() {
        let ca = root_ca(8);
        let other = root_ca(9);
        let mut a = RootStore::new("test");
        let mut b = RootStore::new("test");
        assert_eq!(a.content_id(), b.content_id(), "same name, both empty");
        assert_ne!(
            a.content_id(),
            RootStore::new("other").content_id(),
            "name is part of the identity"
        );
        // Same roots in any order → same id; diverging contents → different.
        a.add(ca.cert.clone());
        a.add(other.cert.clone());
        b.add(other.cert.clone());
        assert_ne!(a.content_id(), b.content_id());
        b.add(ca.cert.clone());
        assert_eq!(a.content_id(), b.content_id());
        // A rejected add must not perturb the id.
        let before = a.content_id();
        assert!(!a.add(ca.cert.clone()));
        assert_eq!(a.content_id(), before);
    }

    #[test]
    fn remove_restores_content_id() {
        let ca = root_ca(10);
        let other = root_ca(11);
        let mut store = RootStore::new("test");
        store.add(other.cert.clone());
        let before = store.content_id();
        store.add(ca.cert.clone());
        assert_ne!(store.content_id(), before);
        let removed = store.remove(&ca.cert.tbs.subject).expect("present");
        assert_eq!(removed.fingerprint_sha256(), ca.cert.fingerprint_sha256());
        assert_eq!(store.content_id(), before, "XOR removal restores the id");
        assert!(!store.contains(&ca.cert));
        assert!(store.remove(&ca.cert.tbs.subject).is_none());
    }

    #[test]
    fn same_subject_different_key_not_contained() {
        let a = root_ca(7);
        // Same subject name, different key material.
        let b = CertificateAuthority::new_root(
            DistinguishedName::new("Root 7", "Sim", "US"),
            &mut SplitMix64::new(999),
            SimTime(0),
        );
        let mut store = RootStore::new("test");
        store.add(a.cert.clone());
        assert!(!store.contains(&b.cert));
    }
}
