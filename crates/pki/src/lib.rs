//! Simulated X.509 public-key infrastructure.
//!
//! Everything the paper's methodology touches about certificates is modeled
//! here, with real structure and real hashes (only the public-key math is
//! simulated, see `pinning-crypto`):
//!
//! * [`cert`] — certificates: serial, subject/issuer names, validity window,
//!   SubjectPublicKeyInfo, SANs, basic constraints.
//! * [`encode`] — a deterministic DER-like binary encoding plus PEM framing
//!   (`-----BEGIN CERTIFICATE-----`), which is what the paper's static
//!   scanner greps app packages for.
//! * [`authority`] — certificate authorities that issue roots, intermediates,
//!   and leaves; chains of arbitrary depth.
//! * [`chain`] — leaf-first certificate chains as sent in TLS `Certificate`
//!   messages.
//! * [`validate`] — full chain validation: signatures, expiry, basic
//!   constraints, path length, hostname matching with wildcard rules,
//!   revocation. The paper checks that pinning apps do *not* subvert these
//!   checks (§5.3.4), so they must all exist to be (not) subverted.
//! * [`store`] — root stores: AOSP, iOS, Mozilla, and OEM-extended variants
//!   built over a shared CA universe ([`universe`]), reproducing the
//!   "default PKI vs custom PKI" distinction of Table 6.
//! * [`pin`] — SPKI pins (`sha256/<b64>`, `sha1/<b64>`), raw-certificate
//!   pins, pin sets, and chain matching — the heart of the whole study.
//! * [`hpkp`] — RFC 7469 web pinning, implemented so §2.1's app-pinning
//!   vs HPKP contrast (TOFU weakness, no in-band pin change) is executable.
//! * [`limits`] — hostile-input budgets ([`limits::Budget`]) enforced by
//!   every decoder in the workspace, plus run-time chain screening
//!   ([`limits::screen_chain`]) for pathological served chains.
//! * [`time`] — virtual time and validity windows.
//! * [`cache`] — hit/miss telemetry and the runtime kill-switch for the
//!   derived-value caches (DER bytes, fingerprints, pins, validation memo)
//!   that make the paper-scale study compute each artifact exactly once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod authority;
pub mod cache;
pub mod cert;
pub mod chain;
pub mod encode;
pub mod error;
pub mod hpkp;
pub mod limits;
pub mod name;
pub mod pin;
pub mod store;
pub mod time;
pub mod universe;
pub mod validate;

pub use authority::CertificateAuthority;
pub use cache::{caching_enabled, set_caching_enabled, CacheCounter, CacheStat};
pub use cert::{Certificate, TbsCertificate};
pub use chain::CertificateChain;
pub use error::ValidationError;
pub use limits::{screen_chain, Budget, ChainDefect, Limit};
pub use name::{match_hostname, DistinguishedName};
pub use pin::{CertPin, Pin, PinAlgorithm, PinSet, SpkiPin};
pub use store::RootStore;
pub use time::{SimTime, Validity, DAY, HOUR, YEAR};
pub use universe::PkiUniverse;
pub use validate::{validate_chain, validate_chain_cached, RevocationList, ValidationOptions};
