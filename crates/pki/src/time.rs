//! Virtual time.
//!
//! The study runs entirely on a virtual clock (DESIGN.md §6): dynamic
//! analysis "waits 30 seconds" by advancing a counter, and certificate
//! expiry is evaluated against the same counter. [`SimTime`] is seconds
//! since the simulation epoch; the world generator places "now" a few
//! simulated years after the epoch so that certificates can have history.

use core::fmt;
use core::ops::{Add, Sub};

/// One hour in seconds.
pub const HOUR: u64 = 3_600;
/// One day in seconds.
pub const DAY: u64 = 86_400;
/// One (365-day) year in seconds.
pub const YEAR: u64 = 365 * DAY;

/// A point in virtual time (seconds since the simulation epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const EPOCH: SimTime = SimTime(0);

    /// Builds a time `years`/`days`/`secs` after the epoch.
    pub fn at(years: u64, days: u64, secs: u64) -> Self {
        SimTime(years * YEAR + days * DAY + secs)
    }

    /// Seconds since the epoch.
    pub fn secs(self) -> u64 {
        self.0
    }

    /// Saturating difference in seconds.
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, secs: u64) -> SimTime {
        SimTime(self.0.saturating_add(secs))
    }
}

impl Sub<u64> for SimTime {
    type Output = SimTime;
    fn sub(self, secs: u64) -> SimTime {
        SimTime(self.0.saturating_sub(secs))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let years = self.0 / YEAR;
        let days = (self.0 % YEAR) / DAY;
        let secs = self.0 % DAY;
        write!(f, "Y{years}+{days}d{secs}s")
    }
}

/// A certificate validity window `[not_before, not_after]` (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Validity {
    /// First instant at which the certificate is valid.
    pub not_before: SimTime,
    /// Last instant at which the certificate is valid.
    pub not_after: SimTime,
}

impl Validity {
    /// A window starting at `from` and lasting `duration_secs`.
    pub fn starting(from: SimTime, duration_secs: u64) -> Self {
        Validity {
            not_before: from,
            not_after: from + duration_secs,
        }
    }

    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: SimTime) -> bool {
        self.not_before <= now && now <= self.not_after
    }

    /// Window length in seconds.
    pub fn duration_secs(&self) -> u64 {
        self.not_after.since(self.not_before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_composes_units() {
        assert_eq!(SimTime::at(1, 1, 1).secs(), YEAR + DAY + 1);
    }

    #[test]
    fn add_sub_roundtrip() {
        let t = SimTime(1000);
        assert_eq!((t + 50) - 50, t);
    }

    #[test]
    fn sub_saturates() {
        assert_eq!(SimTime(10) - 100, SimTime(0));
    }

    #[test]
    fn validity_contains_bounds() {
        let v = Validity::starting(SimTime(100), 50);
        assert!(v.contains(SimTime(100)));
        assert!(v.contains(SimTime(150)));
        assert!(!v.contains(SimTime(99)));
        assert!(!v.contains(SimTime(151)));
    }

    #[test]
    fn duration() {
        let v = Validity::starting(SimTime(5), 95);
        assert_eq!(v.duration_secs(), 95);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::at(2, 3, 4).to_string(), "Y2+3d4s");
    }
}
