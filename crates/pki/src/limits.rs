//! Hostile-input budgets shared by every decoder in the workspace.
//!
//! The paper's pipeline had to survive whatever 5,079 real apps shipped:
//! broken network-security-configs, garbage certificate assets, and servers
//! presenting pathological chains. Every decoder here (DER/PEM, NSC XML,
//! simcap captures, journals) therefore runs under an explicit [`Budget`]:
//! a malformed or adversarial input is rejected with a typed error naming
//! the [`Limit`] it tripped, never a panic, a silent truncation, or an
//! unbounded loop.
//!
//! Chains served at *run time* are screened with [`screen_chain`] before a
//! measurement is attempted; the study pipeline converts a defect into
//! `MeasurementError::MalformedInput` — the measurement is reported as lost,
//! mirroring the Unobserved rule (§5.6): hostile input never fabricates or
//! suppresses a pinning verdict.

use crate::cert::Certificate;

/// Resource budget enforced by decoders and by chain screening.
///
/// The standard budget ([`Budget::STANDARD`]) is sized an order of
/// magnitude above anything an honestly-generated world produces, so
/// tripping a limit is evidence of hostile or corrupt input, not of an
/// undersized constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum total input size a decoder accepts, in bytes.
    pub max_input_bytes: usize,
    /// Maximum nesting / recursion depth (TLV nesting, XML element depth).
    pub max_depth: usize,
    /// Maximum certificates in one presented chain.
    pub max_chain_len: usize,
    /// Maximum SAN / name-constraint entries per certificate.
    pub max_names: usize,
    /// Maximum wildcard labels across one certificate name.
    pub max_wildcard_labels: usize,
    /// Maximum primitive decode operations per parse (belt-and-braces on
    /// top of the structural bounds; every operation consumes input, so
    /// work is already O(input), but the counter makes the contract
    /// checkable by the fuzzer).
    pub max_work: u64,
}

impl Budget {
    /// The workspace-wide default budget.
    pub const STANDARD: Budget = Budget {
        max_input_bytes: 16 * 1024 * 1024,
        max_depth: 64,
        max_chain_len: 16,
        max_names: 64,
        max_wildcard_labels: 4,
        max_work: 4_000_000,
    };

    /// A deliberately tight budget for tests and fuzzing: small enough that
    /// budget-tripping inputs are easy to construct, large enough that every
    /// honestly-encoded fixture still decodes.
    pub const fn strict() -> Budget {
        Budget {
            max_input_bytes: 64 * 1024,
            max_depth: 8,
            max_chain_len: 8,
            max_names: 16,
            max_wildcard_labels: 2,
            max_work: 100_000,
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::STANDARD
    }
}

/// Which [`Budget`] limit an input tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Limit {
    /// Input larger than `max_input_bytes`.
    InputBytes,
    /// Nesting deeper than `max_depth`.
    Depth,
    /// Chain longer than `max_chain_len`.
    ChainLen,
    /// More names than `max_names`.
    Names,
    /// More wildcard labels than `max_wildcard_labels`.
    WildcardLabels,
    /// More decode operations than `max_work`.
    Work,
}

impl Limit {
    /// Stable lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Limit::InputBytes => "input-bytes",
            Limit::Depth => "depth",
            Limit::ChainLen => "chain-len",
            Limit::Names => "names",
            Limit::WildcardLabels => "wildcard-labels",
            Limit::Work => "work",
        }
    }
}

impl core::fmt::Display for Limit {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// A structural or budget defect found while screening a presented chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChainDefect {
    /// The chain exceeds `max_chain_len` certificates.
    TooLong {
        /// Presented chain length.
        len: usize,
    },
    /// The same certificate appears twice (covers cycles and self-issued
    /// loops — an honest chain never repeats a certificate).
    RepeatedCertificate {
        /// Index of the second occurrence (leaf = 0).
        position: usize,
    },
    /// A certificate carries more names than `max_names`.
    TooManyNames {
        /// Index of the offending certificate.
        position: usize,
        /// Number of names it carries.
        count: usize,
    },
    /// A certificate name stacks more wildcard labels than
    /// `max_wildcard_labels`.
    WildcardAbuse {
        /// Index of the offending certificate.
        position: usize,
    },
}

impl ChainDefect {
    /// Whether the defect is a budget trip (as opposed to a structural
    /// malformation such as a repeated certificate).
    pub fn is_budget_trip(self) -> bool {
        !matches!(self, ChainDefect::RepeatedCertificate { .. })
    }
}

impl core::fmt::Display for ChainDefect {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChainDefect::TooLong { len } => write!(f, "chain of {len} certificates exceeds budget"),
            ChainDefect::RepeatedCertificate { position } => {
                write!(f, "certificate repeated at chain position {position}")
            }
            ChainDefect::TooManyNames { position, count } => {
                write!(f, "certificate {position} carries {count} names")
            }
            ChainDefect::WildcardAbuse { position } => {
                write!(f, "certificate {position} stacks wildcard labels")
            }
        }
    }
}

/// Counts wildcard labels (`*`) in a dotted name.
pub fn wildcard_labels(name: &str) -> usize {
    name.split('.').filter(|l| *l == "*").count()
}

/// Screens one certificate's names against `budget`.
pub fn screen_cert_names(cert: &Certificate, budget: &Budget) -> Result<(), Limit> {
    if cert.tbs.san.len() > budget.max_names {
        return Err(Limit::Names);
    }
    for name in &cert.tbs.san {
        if wildcard_labels(name) > budget.max_wildcard_labels {
            return Err(Limit::WildcardLabels);
        }
    }
    if wildcard_labels(&cert.tbs.subject.common_name) > budget.max_wildcard_labels {
        return Err(Limit::WildcardLabels);
    }
    Ok(())
}

/// Screens a presented chain (leaf first) against `budget`: length, name
/// counts, wildcard stacking, and certificate repetition (cycles /
/// self-issued loops).
///
/// This is the run-time counterpart of the decode-side budgets: servers in
/// the simulation hand over already-parsed certificates, so the instrumented
/// device screens the *structure* before attempting validation, exactly
/// where a real TLS stack would cap chain depth.
pub fn screen_chain(chain: &[Certificate], budget: &Budget) -> Result<(), ChainDefect> {
    if chain.len() > budget.max_chain_len {
        return Err(ChainDefect::TooLong { len: chain.len() });
    }
    let mut seen: Vec<[u8; 32]> = Vec::with_capacity(chain.len());
    for (position, cert) in chain.iter().enumerate() {
        match screen_cert_names(cert, budget) {
            Ok(()) => {}
            Err(Limit::Names) => {
                return Err(ChainDefect::TooManyNames {
                    position,
                    count: cert.tbs.san.len(),
                })
            }
            Err(_) => return Err(ChainDefect::WildcardAbuse { position }),
        }
        let fp = cert.fingerprint_sha256();
        if seen.contains(&fp) {
            return Err(ChainDefect::RepeatedCertificate { position });
        }
        seen.push(fp);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::CertificateAuthority;
    use crate::name::DistinguishedName;
    use crate::time::{SimTime, Validity, YEAR};
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;

    fn leaf_with_sans(sans: Vec<String>) -> Certificate {
        let mut rng = SplitMix64::new(0x11);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("R", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let key = KeyPair::generate(&mut rng);
        root.issue_leaf(&sans, "Org", &key, Validity::starting(SimTime(0), YEAR))
    }

    #[test]
    fn honest_chain_passes() {
        let mut rng = SplitMix64::new(0x12);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Root", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let key = KeyPair::generate(&mut rng);
        let leaf = root.issue_leaf(
            &["a.example.com".to_string()],
            "Org",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        let chain = vec![leaf, root.cert.clone()];
        assert_eq!(screen_chain(&chain, &Budget::STANDARD), Ok(()));
    }

    #[test]
    fn repeated_certificate_detected() {
        let c = leaf_with_sans(vec!["a.example.com".into()]);
        let chain = vec![c.clone(), c];
        assert_eq!(
            screen_chain(&chain, &Budget::STANDARD),
            Err(ChainDefect::RepeatedCertificate { position: 1 })
        );
    }

    #[test]
    fn giant_san_list_trips_names_limit() {
        let sans: Vec<String> = (0..Budget::STANDARD.max_names + 1)
            .map(|i| format!("h{i}.example.com"))
            .collect();
        let count = sans.len();
        let c = leaf_with_sans(sans);
        assert_eq!(
            screen_chain(std::slice::from_ref(&c), &Budget::STANDARD),
            Err(ChainDefect::TooManyNames { position: 0, count })
        );
    }

    #[test]
    fn wildcard_stacking_trips_limit() {
        let c = leaf_with_sans(vec!["*.*.*.*.*.*.example.com".into()]);
        assert_eq!(
            screen_chain(std::slice::from_ref(&c), &Budget::STANDARD),
            Err(ChainDefect::WildcardAbuse { position: 0 })
        );
        assert_eq!(wildcard_labels("*.*.example.com"), 2);
    }

    #[test]
    fn deep_chain_trips_length_limit() {
        let c = leaf_with_sans(vec!["a.example.com".into()]);
        let chain: Vec<Certificate> = (0..Budget::STANDARD.max_chain_len + 1)
            .map(|i| {
                let mut x = c.clone();
                x.tbs.serial = x.tbs.serial.wrapping_add(i as u64);
                x.invalidate_derived();
                x
            })
            .collect();
        let len = chain.len();
        assert_eq!(
            screen_chain(&chain, &Budget::STANDARD),
            Err(ChainDefect::TooLong { len })
        );
    }

    #[test]
    fn budget_trip_classification() {
        assert!(ChainDefect::TooLong { len: 99 }.is_budget_trip());
        assert!(!ChainDefect::RepeatedCertificate { position: 1 }.is_budget_trip());
    }
}
