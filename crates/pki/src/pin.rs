//! Certificate pins and pin sets.
//!
//! Per the paper's definition (§2.1): *pinned certificates are custom
//! certificates that must be present in the certificate chain to
//! successfully establish a TLS connection* — any position in the chain
//! (leaf, intermediate, or root), stored either as the entire certificate,
//! a hash of it, or an SPKI hash.

use crate::cert::Certificate;
use pinning_crypto::b64encode;
use pinning_crypto::base64::b64decode;

/// Digest algorithm of an SPKI pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinAlgorithm {
    /// `sha256/...` — 32-byte digest, the modern convention.
    Sha256,
    /// `sha1/...` — 20-byte digest, legacy but still scanned for.
    Sha1,
}

impl PinAlgorithm {
    /// Digest length in bytes.
    pub fn digest_len(self) -> usize {
        match self {
            PinAlgorithm::Sha256 => 32,
            PinAlgorithm::Sha1 => 20,
        }
    }

    /// The string prefix used in pin notation.
    pub fn prefix(self) -> &'static str {
        match self {
            PinAlgorithm::Sha256 => "sha256",
            PinAlgorithm::Sha1 => "sha1",
        }
    }
}

/// An SPKI pin: a digest of a certificate's SubjectPublicKeyInfo.
///
/// Because it commits only to the *key*, an SPKI pin survives certificate
/// renewal as long as the key is reused (paper §5.3.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SpkiPin {
    /// Digest algorithm.
    pub alg: PinAlgorithm,
    /// Digest bytes (length per [`PinAlgorithm::digest_len`]).
    pub digest: Vec<u8>,
}

impl SpkiPin {
    /// Pins the SPKI of `cert` with SHA-256.
    pub fn sha256_of(cert: &Certificate) -> Self {
        SpkiPin {
            alg: PinAlgorithm::Sha256,
            digest: cert.spki_sha256().to_vec(),
        }
    }

    /// Pins the SPKI of `cert` with SHA-1.
    pub fn sha1_of(cert: &Certificate) -> Self {
        SpkiPin {
            alg: PinAlgorithm::Sha1,
            digest: cert.spki_sha1().to_vec(),
        }
    }

    /// The conventional string form, e.g. `sha256/AAAA...=`.
    pub fn to_pin_string(&self) -> String {
        format!("{}/{}", self.alg.prefix(), b64encode(&self.digest))
    }

    /// Parses `sha256/<b64>` or `sha1/<b64>` notation.
    pub fn parse(s: &str) -> Option<Self> {
        let (prefix, body) = s.split_once('/')?;
        let alg = match prefix {
            "sha256" => PinAlgorithm::Sha256,
            "sha1" => PinAlgorithm::Sha1,
            _ => return None,
        };
        let digest = b64decode(body).ok()?;
        (digest.len() == alg.digest_len()).then_some(SpkiPin { alg, digest })
    }

    /// Whether `cert`'s SPKI digest matches this pin.
    pub fn matches(&self, cert: &Certificate) -> bool {
        match self.alg {
            PinAlgorithm::Sha256 => self.digest[..] == cert.spki_sha256()[..],
            PinAlgorithm::Sha1 => self.digest[..] == cert.spki_sha1()[..],
        }
    }
}

/// A raw-certificate pin: commits to the *entire* certificate (by SHA-256
/// fingerprint of its DER bytes). Breaks on every renewal, even with key
/// reuse — unless the implementation actually compares public keys, which
/// is modeled by [`CertPin::compare_key_only`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CertPin {
    /// SHA-256 fingerprint of the pinned certificate's DER encoding.
    pub fingerprint: [u8; 32],
    /// SPKI SHA-256 of the pinned certificate (kept so implementations that
    /// "pin the cert" but compare only the public key can be modeled).
    pub spki_sha256: [u8; 32],
    /// When true, matching uses only the public key — the developer shipped
    /// the whole certificate but the library compares `PublicKey` objects
    /// (common with iOS `SecTrustCopyKey`-style code).
    pub compare_key_only: bool,
}

impl CertPin {
    /// Pins the whole `cert`, comparing full fingerprints.
    pub fn exact(cert: &Certificate) -> Self {
        CertPin {
            fingerprint: cert.fingerprint_sha256(),
            spki_sha256: cert.spki_sha256(),
            compare_key_only: false,
        }
    }

    /// Pins the whole `cert`, but the implementation compares public keys.
    pub fn key_only(cert: &Certificate) -> Self {
        CertPin {
            fingerprint: cert.fingerprint_sha256(),
            spki_sha256: cert.spki_sha256(),
            compare_key_only: true,
        }
    }

    /// Whether `cert` satisfies the pin.
    pub fn matches(&self, cert: &Certificate) -> bool {
        if self.compare_key_only {
            self.spki_sha256 == cert.spki_sha256()
        } else {
            self.fingerprint == cert.fingerprint_sha256()
        }
    }
}

/// Any pin form found in apps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pin {
    /// SPKI hash pin.
    Spki(SpkiPin),
    /// Whole-certificate pin.
    Cert(CertPin),
}

impl Pin {
    /// Whether `cert` satisfies the pin.
    pub fn matches(&self, cert: &Certificate) -> bool {
        match self {
            Pin::Spki(p) => p.matches(cert),
            Pin::Cert(p) => p.matches(cert),
        }
    }
}

/// A set of pins attached to one destination pattern.
///
/// Semantics follow OkHttp/NSC: the connection is accepted iff **any** pin
/// in the set matches **any** certificate in the presented chain.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PinSet {
    /// The pins.
    pub pins: Vec<Pin>,
}

impl PinSet {
    /// An empty pin set (matches nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from pins.
    pub fn from_pins(pins: Vec<Pin>) -> Self {
        PinSet { pins }
    }

    /// Adds a pin.
    pub fn push(&mut self, pin: Pin) {
        self.pins.push(pin);
    }

    /// Whether the chain satisfies the pin set (any-pin ∈ any-cert).
    pub fn matches_chain(&self, chain: &[Certificate]) -> bool {
        chain
            .iter()
            .any(|cert| self.pins.iter().any(|pin| pin.matches(cert)))
    }

    /// True when the set holds no pins.
    pub fn is_empty(&self) -> bool {
        self.pins.is_empty()
    }

    /// Number of pins.
    pub fn len(&self) -> usize {
        self.pins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::CertificateAuthority;
    use crate::name::DistinguishedName;
    use crate::time::{SimTime, Validity, YEAR};
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;

    struct Fixture {
        root: Certificate,
        inter: Certificate,
        leaf: Certificate,
        renewed_same_key: Certificate,
        renewed_new_key: Certificate,
    }

    fn fixture() -> Fixture {
        let mut rng = SplitMix64::new(0x122);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Root", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let mut inter = root.issue_intermediate(
            DistinguishedName::new("Inter", "Sim", "US"),
            &mut rng,
            Validity::starting(SimTime(0), 10 * YEAR),
            None,
        );
        let key = KeyPair::generate(&mut rng);
        let leaf = inter.issue_leaf(
            &["a.com".to_string()],
            "A",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        let renewed_same_key = inter.issue_leaf(
            &["a.com".to_string()],
            "A",
            &key,
            Validity::starting(SimTime(YEAR), YEAR),
        );
        let new_key = KeyPair::generate(&mut rng);
        let renewed_new_key = inter.issue_leaf(
            &["a.com".to_string()],
            "A",
            &new_key,
            Validity::starting(SimTime(YEAR), YEAR),
        );
        Fixture {
            root: root.cert.clone(),
            inter: inter.cert.clone(),
            leaf,
            renewed_same_key,
            renewed_new_key,
        }
    }

    #[test]
    fn spki_pin_string_roundtrip() {
        let f = fixture();
        for pin in [SpkiPin::sha256_of(&f.leaf), SpkiPin::sha1_of(&f.leaf)] {
            let s = pin.to_pin_string();
            assert_eq!(SpkiPin::parse(&s).unwrap(), pin);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(SpkiPin::parse("md5/AAAA").is_none());
        assert!(SpkiPin::parse("sha256").is_none());
        assert!(SpkiPin::parse("sha256/!!!").is_none());
        // Right syntax, wrong digest length (sha1 body under sha256 prefix).
        let f = fixture();
        let sha1_b64 = b64encode(&f.leaf.spki_sha1());
        assert!(SpkiPin::parse(&format!("sha256/{sha1_b64}")).is_none());
    }

    #[test]
    fn spki_pin_survives_key_reusing_renewal() {
        let f = fixture();
        let pin = SpkiPin::sha256_of(&f.leaf);
        assert!(pin.matches(&f.renewed_same_key));
        assert!(!pin.matches(&f.renewed_new_key));
    }

    #[test]
    fn exact_cert_pin_breaks_on_renewal() {
        let f = fixture();
        let pin = CertPin::exact(&f.leaf);
        assert!(pin.matches(&f.leaf));
        assert!(!pin.matches(&f.renewed_same_key)); // new serial ⇒ new fingerprint
    }

    #[test]
    fn key_only_cert_pin_survives_renewal() {
        let f = fixture();
        let pin = CertPin::key_only(&f.leaf);
        assert!(pin.matches(&f.renewed_same_key));
        assert!(!pin.matches(&f.renewed_new_key));
    }

    #[test]
    fn pinset_matches_any_position() {
        let f = fixture();
        let chain = [f.leaf.clone(), f.inter.clone(), f.root.clone()];
        // Pin the root only — a CA pin (the common case per §5.3.2).
        let set = PinSet::from_pins(vec![Pin::Spki(SpkiPin::sha256_of(&f.root))]);
        assert!(set.matches_chain(&chain));
        // Pin the intermediate only.
        let set = PinSet::from_pins(vec![Pin::Spki(SpkiPin::sha256_of(&f.inter))]);
        assert!(set.matches_chain(&chain));
        // Pin something unrelated.
        let mut rng = SplitMix64::new(0x9999);
        let other_root = CertificateAuthority::new_root(
            DistinguishedName::new("Other", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let set = PinSet::from_pins(vec![Pin::Spki(SpkiPin::sha256_of(&other_root.cert))]);
        assert!(!set.matches_chain(&chain));
    }

    #[test]
    fn empty_pinset_matches_nothing() {
        let f = fixture();
        assert!(!PinSet::new().matches_chain(&[f.leaf]));
    }

    #[test]
    fn backup_pins_accepted() {
        // OWASP guidance: ship a backup pin. Either should satisfy.
        let f = fixture();
        let chain = [f.renewed_new_key.clone(), f.inter.clone()];
        let set = PinSet::from_pins(vec![
            Pin::Spki(SpkiPin::sha256_of(&f.leaf)),            // old key
            Pin::Spki(SpkiPin::sha256_of(&f.renewed_new_key)), // backup = new key
        ]);
        assert!(set.matches_chain(&chain));
    }
}
