//! Chain-validation and decoding errors.

use crate::limits::{ChainDefect, Limit};
use crate::time::SimTime;

/// Why a certificate chain failed validation.
///
/// The dynamic pipeline distinguishes *pinning* failures from *other* TLS
/// failures; these variants are what "other reasons" (paper §4.2.2) look
/// like in the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The chain contained no certificates.
    EmptyChain,
    /// A certificate was past `not_after` at validation time.
    Expired {
        /// Subject CN of the expired certificate.
        subject: String,
        /// When it expired.
        not_after: SimTime,
        /// When validation happened.
        now: SimTime,
    },
    /// A certificate was not yet within `not_before`.
    NotYetValid {
        /// Subject CN of the not-yet-valid certificate.
        subject: String,
    },
    /// A signature in the chain did not verify.
    BadSignature {
        /// Subject CN of the certificate whose signature failed.
        subject: String,
    },
    /// Adjacent chain certificates do not name each other (issuer of `child`
    /// is not the subject of `parent`).
    BrokenLinkage {
        /// Subject CN of the child certificate.
        child: String,
        /// Subject CN of the would-be parent.
        parent: String,
    },
    /// The chain does not terminate at (or under) any trusted root.
    UnknownRoot {
        /// Subject CN of the topmost certificate presented.
        top_subject: String,
    },
    /// An issuing certificate lacks the CA basic constraint.
    NotACa {
        /// Subject CN of the offending certificate.
        subject: String,
    },
    /// A CA's path-length constraint was exceeded.
    PathLenExceeded {
        /// Subject CN of the constrained CA.
        subject: String,
    },
    /// No SAN/CN in the leaf matched the requested hostname.
    HostnameMismatch {
        /// Hostname requested by the client.
        hostname: String,
    },
    /// The leaf certificate's serial appears on the revocation list.
    Revoked {
        /// Serial number of the revoked certificate.
        serial: u64,
    },
    /// The presented chain is structurally pathological or exceeds the
    /// validation [`crate::limits::Budget`] — it is rejected before any
    /// cryptographic work is attempted.
    Malformed(ChainDefect),
}

impl core::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ValidationError::EmptyChain => write!(f, "empty certificate chain"),
            ValidationError::Expired {
                subject,
                not_after,
                now,
            } => {
                write!(
                    f,
                    "certificate {subject:?} expired at {not_after} (now {now})"
                )
            }
            ValidationError::NotYetValid { subject } => {
                write!(f, "certificate {subject:?} not yet valid")
            }
            ValidationError::BadSignature { subject } => {
                write!(f, "bad signature on certificate {subject:?}")
            }
            ValidationError::BrokenLinkage { child, parent } => {
                write!(
                    f,
                    "chain linkage broken: {parent:?} did not issue {child:?}"
                )
            }
            ValidationError::UnknownRoot { top_subject } => {
                write!(
                    f,
                    "chain does not terminate at a trusted root (top: {top_subject:?})"
                )
            }
            ValidationError::NotACa { subject } => {
                write!(f, "certificate {subject:?} used as issuer but is not a CA")
            }
            ValidationError::PathLenExceeded { subject } => {
                write!(f, "path length constraint of {subject:?} exceeded")
            }
            ValidationError::HostnameMismatch { hostname } => {
                write!(f, "no certificate name matched hostname {hostname:?}")
            }
            ValidationError::Revoked { serial } => {
                write!(f, "certificate serial {serial} is revoked")
            }
            ValidationError::Malformed(defect) => {
                write!(f, "pathological chain rejected: {defect}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Errors while decoding the DER-like / PEM encodings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before a complete structure was read.
    Truncated,
    /// A tag byte did not match the expected structure.
    UnexpectedTag {
        /// Tag that was expected.
        expected: u8,
        /// Tag that was found.
        found: u8,
    },
    /// A length field exceeded the remaining input.
    BadLength,
    /// A UTF-8 string field held invalid UTF-8.
    BadUtf8,
    /// PEM framing was malformed (missing/unmatched delimiters).
    BadPem,
    /// The base64 body of a PEM block failed to decode.
    BadPemBase64,
    /// A fixed-size field had the wrong length.
    BadFieldSize,
    /// The input format's magic / version marker was wrong.
    BadMagic,
    /// The input tripped a [`crate::limits::Budget`] limit.
    LimitExceeded(Limit),
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::UnexpectedTag { expected, found } => {
                write!(
                    f,
                    "unexpected tag: expected {expected:#04x}, found {found:#04x}"
                )
            }
            DecodeError::BadLength => write!(f, "length field exceeds input"),
            DecodeError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            DecodeError::BadPem => write!(f, "malformed PEM framing"),
            DecodeError::BadPemBase64 => write!(f, "invalid base64 in PEM body"),
            DecodeError::BadFieldSize => write!(f, "fixed-size field has wrong length"),
            DecodeError::BadMagic => write!(f, "bad magic / version marker"),
            DecodeError::LimitExceeded(limit) => {
                write!(f, "decode budget exceeded: {limit}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}
