//! Certificates.

use crate::cache;
use crate::encode::{pem_encode, tag, Reader, Writer};
use crate::error::DecodeError;
use crate::name::DistinguishedName;
use crate::time::Validity;
use pinning_crypto::sig::{PublicKey, Signature};
use pinning_crypto::{b64encode, sha256};
use std::sync::{Arc, OnceLock};

/// The to-be-signed body of a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TbsCertificate {
    /// Serial number, unique per issuer in the simulation.
    pub serial: u64,
    /// Subject name.
    pub subject: DistinguishedName,
    /// Issuer name.
    pub issuer: DistinguishedName,
    /// Validity window.
    pub validity: Validity,
    /// DNS subject alternative names (may contain wildcards). Empty for CAs.
    pub san: Vec<String>,
    /// Subject public key.
    pub public_key: PublicKey,
    /// Basic constraints: certificate may sign others.
    pub is_ca: bool,
    /// Optional path-length constraint (only meaningful when `is_ca`).
    pub path_len: Option<u64>,
}

impl TbsCertificate {
    /// Deterministic encoding of the TBS body (the bytes that get signed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.nested(tag::TBS, |w| {
            w.u64(self.serial);
            encode_name(w, &self.subject);
            encode_name(w, &self.issuer);
            w.u64(self.validity.not_before.0);
            w.u64(self.validity.not_after.0);
            w.list(&self.san, |w, s| w.string(s));
            w.bytes(&self.public_key.spki);
            w.bytes(&self.public_key.verifier);
            w.boolean(self.is_ca);
            w.opt_u64(self.path_len);
        });
        w.into_bytes()
    }
}

fn encode_name(w: &mut Writer, name: &DistinguishedName) {
    w.nested(tag::NAME, |w| {
        w.string(&name.common_name);
        w.string(&name.organization);
        w.string(&name.country);
    });
}

fn decode_name(r: &mut Reader<'_>) -> Result<DistinguishedName, DecodeError> {
    let mut inner = r.nested(tag::NAME)?;
    Ok(DistinguishedName {
        common_name: inner.string()?,
        organization: inner.string()?,
        country: inner.string()?,
    })
}

/// Lazily-computed artifacts derived from a certificate's content.
///
/// Kept behind an `Arc` on the owning [`Certificate`] so clones share one
/// cell: warming any copy of a CA certificate warms every chain that embeds
/// it. The cell never stores anything the content does not fully determine,
/// so sharing cannot change results — only skip recomputation.
#[derive(Debug, Default)]
struct DerivedCache {
    der: OnceLock<Arc<[u8]>>,
    fingerprint: OnceLock<[u8; 32]>,
    spki_sha256: OnceLock<[u8; 32]>,
    spki_sha1: OnceLock<[u8; 20]>,
    pin_string: OnceLock<Arc<str>>,
    /// Debug-only mutation guard: a cheap content probe captured at the
    /// first derived read through this cell. Every later cached read
    /// recomputes the probe and asserts it unchanged, so a `tbs` or
    /// `signature` mutation that skipped [`Certificate::invalidate_derived`]
    /// trips loudly instead of silently serving stale derived values.
    #[cfg(debug_assertions)]
    probe: OnceLock<u64>,
}

/// FNV-1a accumulator for the debug mutation probe: orders of magnitude
/// cheaper than re-encoding + hashing the TBS, yet sensitive to a change in
/// any content byte.
#[cfg(debug_assertions)]
struct Fnv(u64);

#[cfg(debug_assertions)]
impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn eat_u64(&mut self, v: u64) {
        self.eat(&v.to_le_bytes());
    }
    fn eat_str(&mut self, s: &str) {
        self.eat_u64(s.len() as u64);
        self.eat(s.as_bytes());
    }
}

/// A signed certificate.
///
/// The public fields remain directly accessible. Code that mutates `tbs` or
/// `signature` *in place* after reading a derived value (fingerprint, DER,
/// pin string) must call [`Certificate::invalidate_derived`] afterwards —
/// the derived-value cache cannot observe field writes.
pub struct Certificate {
    /// Signed body.
    pub tbs: TbsCertificate,
    /// Issuer's signature over [`TbsCertificate::to_bytes`].
    pub signature: Signature,
    cache: Arc<DerivedCache>,
}

impl Clone for Certificate {
    fn clone(&self) -> Self {
        Certificate {
            tbs: self.tbs.clone(),
            signature: self.signature.clone(),
            // Clones share the derived-value cell; see `DerivedCache`.
            cache: Arc::clone(&self.cache),
        }
    }
}

impl PartialEq for Certificate {
    fn eq(&self, other: &Self) -> bool {
        self.tbs == other.tbs && self.signature == other.signature
    }
}

impl Eq for Certificate {}

impl std::fmt::Debug for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Certificate")
            .field("tbs", &self.tbs)
            .field("signature", &self.signature)
            .finish()
    }
}

impl Certificate {
    /// Builds a certificate from its signed body and signature.
    pub fn new(tbs: TbsCertificate, signature: Signature) -> Self {
        Certificate {
            tbs,
            signature,
            cache: Arc::new(DerivedCache::default()),
        }
    }

    /// Drops every cached derived value. Call after mutating `tbs` or
    /// `signature` in place; clones made *before* the mutation keep their
    /// (still content-correct) cache.
    pub fn invalidate_derived(&mut self) {
        self.cache = Arc::new(DerivedCache::default());
    }

    /// Whether subject == issuer (candidate root).
    pub fn is_self_signed(&self) -> bool {
        self.tbs.subject == self.tbs.issuer
    }

    /// Debug-only content probe over every field that feeds a derived
    /// value: serial, names, validity, SANs, key material, CA bits and the
    /// signature.
    #[cfg(debug_assertions)]
    fn content_probe(&self) -> u64 {
        let mut h = Fnv::new();
        h.eat_u64(self.tbs.serial);
        for name in [&self.tbs.subject, &self.tbs.issuer] {
            h.eat_str(&name.common_name);
            h.eat_str(&name.organization);
            h.eat_str(&name.country);
        }
        h.eat_u64(self.tbs.validity.not_before.0);
        h.eat_u64(self.tbs.validity.not_after.0);
        h.eat_u64(self.tbs.san.len() as u64);
        for san in &self.tbs.san {
            h.eat_str(san);
        }
        h.eat(&self.tbs.public_key.spki);
        h.eat(&self.tbs.public_key.verifier);
        h.eat_u64(self.tbs.is_ca as u64);
        h.eat_u64(self.tbs.path_len.map_or(u64::MAX, |p| p));
        h.eat(&self.signature.0);
        h.0
    }

    /// Debug-only guard run on every cached derived read: trips when the
    /// certificate's content no longer matches what the shared cache was
    /// filled for (i.e. a mutate-after-clone that skipped
    /// [`Certificate::invalidate_derived`]).
    #[cfg(debug_assertions)]
    fn debug_assert_cache_fresh(&self) {
        let probe = self.content_probe();
        let stored = *self.cache.probe.get_or_init(|| probe);
        debug_assert_eq!(
            stored, probe,
            "derived cache read after un-invalidated mutation: call \
             Certificate::invalidate_derived() after mutating tbs/signature in place"
        );
    }

    #[cfg(not(debug_assertions))]
    #[inline(always)]
    fn debug_assert_cache_fresh(&self) {}

    fn encode_der(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.nested(tag::CERTIFICATE, |w| {
            w.bytes(&self.tbs.to_bytes());
            w.nested(tag::SIGNATURE, |w| w.bytes(&self.signature.0));
        });
        w.into_bytes()
    }

    /// The certificate's DER-like encoding as shared bytes, computed once
    /// per distinct certificate. The zero-copy form of [`Certificate::to_der`].
    pub fn der_bytes(&self) -> Arc<[u8]> {
        if !cache::caching_enabled() {
            return self.encode_der().into();
        }
        self.debug_assert_cache_fresh();
        if let Some(der) = self.cache.der.get() {
            cache::CERT_DER.hit();
            return Arc::clone(der);
        }
        cache::CERT_DER.miss();
        Arc::clone(self.cache.der.get_or_init(|| self.encode_der().into()))
    }

    /// DER-like encoding of the whole certificate.
    pub fn to_der(&self) -> Vec<u8> {
        self.der_bytes().to_vec()
    }

    /// Parses a certificate from its DER-like encoding under
    /// [`crate::limits::Budget::STANDARD`].
    pub fn from_der(der: &[u8]) -> Result<Self, DecodeError> {
        Self::from_der_with_budget(der, &crate::limits::Budget::STANDARD)
    }

    /// Parses a certificate under an explicit [`crate::limits::Budget`]:
    /// the TLV reader enforces input-size / depth / work limits and the SAN
    /// list is capped at `max_names` entries with at most
    /// `max_wildcard_labels` wildcard labels each.
    pub fn from_der_with_budget(
        der: &[u8],
        budget: &crate::limits::Budget,
    ) -> Result<Self, DecodeError> {
        let mut outer = Reader::with_budget(der, *budget);
        let mut cert = outer.nested(tag::CERTIFICATE)?;
        let tbs_bytes = cert.bytes()?;
        let mut sig_reader = cert.nested(tag::SIGNATURE)?;
        let sig: [u8; 32] = sig_reader.bytes_fixed()?;

        let mut tbs_outer = Reader::with_budget(&tbs_bytes, *budget);
        let mut t = tbs_outer.nested(tag::TBS)?;
        let serial = t.u64()?;
        let subject = decode_name(&mut t)?;
        let issuer = decode_name(&mut t)?;
        let not_before = crate::time::SimTime(t.u64()?);
        let not_after = crate::time::SimTime(t.u64()?);
        let san = t.list(|r| r.string())?;
        if san.len() > budget.max_names {
            return Err(DecodeError::LimitExceeded(crate::limits::Limit::Names));
        }
        if san
            .iter()
            .any(|n| crate::limits::wildcard_labels(n) > budget.max_wildcard_labels)
        {
            return Err(DecodeError::LimitExceeded(
                crate::limits::Limit::WildcardLabels,
            ));
        }
        let spki: [u8; 32] = t.bytes_fixed()?;
        let verifier: [u8; 32] = t.bytes_fixed()?;
        let is_ca = t.boolean()?;
        let path_len = t.opt_u64()?;

        Ok(Certificate::new(
            TbsCertificate {
                serial,
                subject,
                issuer,
                validity: Validity {
                    not_before,
                    not_after,
                },
                san,
                public_key: PublicKey { spki, verifier },
                is_ca,
                path_len,
            },
            Signature(sig),
        ))
    }

    /// PEM encoding (what the static scanner finds in app assets).
    pub fn to_pem(&self) -> String {
        pem_encode(&self.to_der())
    }

    /// SHA-256 fingerprint of the DER encoding, computed once per distinct
    /// certificate.
    pub fn fingerprint_sha256(&self) -> [u8; 32] {
        if !cache::caching_enabled() {
            return sha256(&self.encode_der());
        }
        self.debug_assert_cache_fresh();
        if let Some(fp) = self.cache.fingerprint.get() {
            cache::CERT_FINGERPRINT.hit();
            return *fp;
        }
        cache::CERT_FINGERPRINT.miss();
        *self
            .cache
            .fingerprint
            .get_or_init(|| sha256(&self.der_bytes()))
    }

    /// SHA-256 of the SubjectPublicKeyInfo (what `sha256/...` pins commit to).
    pub fn spki_sha256(&self) -> [u8; 32] {
        if !cache::caching_enabled() {
            return self.tbs.public_key.spki_sha256();
        }
        self.debug_assert_cache_fresh();
        if let Some(d) = self.cache.spki_sha256.get() {
            cache::CERT_SPKI_SHA256.hit();
            return *d;
        }
        cache::CERT_SPKI_SHA256.miss();
        *self
            .cache
            .spki_sha256
            .get_or_init(|| self.tbs.public_key.spki_sha256())
    }

    /// SHA-1 of the SubjectPublicKeyInfo (legacy `sha1/...` pins).
    pub fn spki_sha1(&self) -> [u8; 20] {
        if !cache::caching_enabled() {
            return self.tbs.public_key.spki_sha1();
        }
        self.debug_assert_cache_fresh();
        if let Some(d) = self.cache.spki_sha1.get() {
            cache::CERT_SPKI_SHA1.hit();
            return *d;
        }
        cache::CERT_SPKI_SHA1.miss();
        *self
            .cache
            .spki_sha1
            .get_or_init(|| self.tbs.public_key.spki_sha1())
    }

    /// The conventional `sha256/<base64>` pin string for this certificate.
    pub fn spki_pin_string(&self) -> String {
        if !cache::caching_enabled() {
            return format!("sha256/{}", b64encode(&self.tbs.public_key.spki_sha256()));
        }
        self.debug_assert_cache_fresh();
        if let Some(pin) = self.cache.pin_string.get() {
            cache::CERT_PIN_STRING.hit();
            return pin.to_string();
        }
        cache::CERT_PIN_STRING.miss();
        self.cache
            .pin_string
            .get_or_init(|| format!("sha256/{}", b64encode(&self.spki_sha256())).into())
            .to_string()
    }

    /// Whether the certificate's names cover `hostname` (checks SANs, then
    /// falls back to the CN as legacy stacks do).
    pub fn matches_hostname(&self, hostname: &str) -> bool {
        if self
            .tbs
            .san
            .iter()
            .any(|p| crate::name::match_hostname(p, hostname))
        {
            return true;
        }
        self.tbs.san.is_empty()
            && crate::name::match_hostname(&self.tbs.subject.common_name, hostname)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;

    fn sample_cert(seed: u64) -> Certificate {
        let key = KeyPair::generate(&mut SplitMix64::new(seed));
        let tbs = TbsCertificate {
            serial: seed,
            subject: DistinguishedName::new("api.example.com", "Example Corp", "US"),
            issuer: DistinguishedName::new("SimTrust CA 1", "SimTrust", "US"),
            validity: Validity::starting(SimTime(100), 1_000_000),
            san: vec!["api.example.com".into(), "*.cdn.example.com".into()],
            public_key: key.public.clone(),
            is_ca: false,
            path_len: None,
        };
        let sig = key.sign(&tbs.to_bytes()); // self-signed for test purposes
        Certificate::new(tbs, sig)
    }

    #[test]
    fn der_roundtrip() {
        let cert = sample_cert(1);
        let der = cert.to_der();
        let parsed = Certificate::from_der(&der).unwrap();
        assert_eq!(parsed, cert);
    }

    #[test]
    fn pem_roundtrip() {
        let cert = sample_cert(2);
        let pem = cert.to_pem();
        let ders = crate::encode::pem_decode_all(&pem).unwrap();
        assert_eq!(ders.len(), 1);
        assert_eq!(Certificate::from_der(&ders[0]).unwrap(), cert);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample_cert(3).to_der(), sample_cert(3).to_der());
    }

    #[test]
    fn fingerprint_changes_with_serial() {
        let mut a = sample_cert(4);
        let fp1 = a.fingerprint_sha256();
        a.tbs.serial += 1;
        a.invalidate_derived();
        assert_ne!(fp1, a.fingerprint_sha256());
    }

    #[test]
    fn derived_values_survive_cloning_and_match_fresh_copies() {
        let a = sample_cert(40);
        // Warm every cache through one copy…
        let fp = a.fingerprint_sha256();
        let der = a.to_der();
        let pin = a.spki_pin_string();
        // …then check a clone (shared cache) and an independently built
        // twin (cold cache) agree on all of them.
        let clone = a.clone();
        let twin = sample_cert(40);
        for c in [&clone, &twin] {
            assert_eq!(c.fingerprint_sha256(), fp);
            assert_eq!(c.to_der(), der);
            assert_eq!(c.spki_pin_string(), pin);
            assert_eq!(c.spki_sha256(), a.spki_sha256());
            assert_eq!(c.spki_sha1(), a.spki_sha1());
        }
        assert_eq!(&*a.der_bytes(), der.as_slice());
    }

    #[test]
    fn invalidation_detaches_from_shared_cache() {
        let a = sample_cert(41);
        let fp = a.fingerprint_sha256();
        let mut b = a.clone();
        b.tbs.serial ^= 0xFFFF;
        b.invalidate_derived();
        assert_ne!(b.fingerprint_sha256(), fp);
        // The original is untouched by the clone's mutation.
        assert_eq!(a.fingerprint_sha256(), fp);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "derived cache read after un-invalidated mutation")]
    fn guard_trips_on_mutate_after_clone_without_invalidate() {
        let a = sample_cert(42);
        let _ = a.fingerprint_sha256(); // fills the shared cache + probe
        let mut b = a.clone();
        b.tbs.serial ^= 0xDEAD; // mutation without invalidate_derived()
        let _ = b.fingerprint_sha256(); // stale cached read → guard trips
    }

    #[test]
    fn guard_stays_quiet_when_invalidated() {
        let a = sample_cert(43);
        let fp = a.fingerprint_sha256();
        let mut b = a.clone();
        b.tbs.serial ^= 0xDEAD;
        b.invalidate_derived();
        assert_ne!(b.fingerprint_sha256(), fp);
        assert_eq!(a.fingerprint_sha256(), fp);
    }

    #[test]
    fn spki_pin_string_shape() {
        let pin = sample_cert(5).spki_pin_string();
        assert!(pin.starts_with("sha256/"));
        assert_eq!(pin.len(), "sha256/".len() + 44);
    }

    #[test]
    fn hostname_via_san() {
        let cert = sample_cert(6);
        assert!(cert.matches_hostname("api.example.com"));
        assert!(cert.matches_hostname("static.cdn.example.com"));
        assert!(!cert.matches_hostname("other.example.com"));
    }

    #[test]
    fn hostname_cn_fallback_only_without_san() {
        let mut cert = sample_cert(7);
        cert.tbs.san.clear();
        assert!(cert.matches_hostname("api.example.com")); // CN fallback
        cert.tbs.san = vec!["other.example.com".into()];
        assert!(!cert.matches_hostname("api.example.com")); // SAN present → no CN fallback
    }

    #[test]
    fn truncated_der_rejected() {
        let der = sample_cert(8).to_der();
        assert!(Certificate::from_der(&der[..der.len() - 3]).is_err());
    }

    #[test]
    fn giant_san_list_rejected_at_decode() {
        let mut cert = sample_cert(10);
        cert.tbs.san = (0..crate::limits::Budget::STANDARD.max_names + 1)
            .map(|i| format!("h{i}.example.com"))
            .collect();
        cert.invalidate_derived();
        let der = cert.to_der();
        assert_eq!(
            Certificate::from_der(&der),
            Err(DecodeError::LimitExceeded(crate::limits::Limit::Names))
        );
    }

    #[test]
    fn wildcard_stacking_rejected_at_decode() {
        let mut cert = sample_cert(11);
        cert.tbs.san = vec!["*.*.*.*.*.*.example.com".to_string()];
        cert.invalidate_derived();
        let der = cert.to_der();
        assert_eq!(
            Certificate::from_der(&der),
            Err(DecodeError::LimitExceeded(
                crate::limits::Limit::WildcardLabels
            ))
        );
    }

    #[test]
    fn self_signed_detection() {
        let mut cert = sample_cert(9);
        assert!(!cert.is_self_signed());
        cert.tbs.issuer = cert.tbs.subject.clone();
        assert!(cert.is_self_signed());
    }
}
