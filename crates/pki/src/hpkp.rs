//! HTTP Public Key Pinning (HPKP, RFC 7469) — the *web* pinning mechanism
//! §2.1 contrasts with app pinning.
//!
//! The paper's argument, reproduced executable here:
//!
//! * HPKP is **trust-on-first-use**: the browser honours whatever pins the
//!   first (possibly attacker-controlled) connection delivers;
//! * pins expire with `max-age` and there is no in-band way to *change* a
//!   pinned key before expiry — mis-pinning bricks the site;
//! * mobile apps need none of this, because the developer controls both
//!   the client binary and the server: pins ship in the app and change
//!   with app updates.
//!
//! HPKP was deprecated by every major browser; the module exists so the
//! comparison in §2.1 ("Pinning and HPKP") can be demonstrated and tested,
//! not because the study measures it.

use crate::cert::Certificate;
use crate::pin::SpkiPin;
use crate::time::SimTime;
use std::collections::HashMap;

/// A parsed `Public-Key-Pins` header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HpkpHeader {
    /// `pin-sha256="..."` entries (RFC 7469 requires ≥2: live + backup).
    pub pins: Vec<SpkiPin>,
    /// `max-age` seconds.
    pub max_age: u64,
    /// `includeSubDomains` present.
    pub include_subdomains: bool,
}

impl HpkpHeader {
    /// Formats the header value.
    pub fn to_header_value(&self) -> String {
        let mut parts: Vec<String> = self
            .pins
            .iter()
            .map(|p| format!("pin-sha256=\"{}\"", pinning_crypto::b64encode(&p.digest)))
            .collect();
        parts.push(format!("max-age={}", self.max_age));
        if self.include_subdomains {
            parts.push("includeSubDomains".to_string());
        }
        parts.join("; ")
    }

    /// Parses a header value. Returns `None` on syntax errors or when no
    /// valid pin is present.
    pub fn parse(value: &str) -> Option<HpkpHeader> {
        let mut pins = Vec::new();
        let mut max_age = None;
        let mut include_subdomains = false;
        for directive in value.split(';') {
            let directive = directive.trim();
            if let Some(rest) = directive.strip_prefix("pin-sha256=") {
                let b64 = rest.trim_matches('"');
                let pin = SpkiPin::parse(&format!("sha256/{b64}"))?;
                pins.push(pin);
            } else if let Some(rest) = directive.strip_prefix("max-age=") {
                max_age = rest.parse::<u64>().ok();
            } else if directive.eq_ignore_ascii_case("includeSubDomains") {
                include_subdomains = true;
            }
        }
        Some(HpkpHeader {
            pins,
            max_age: max_age?,
            include_subdomains,
        })
    }

    /// RFC 7469 validity: at least two pins (one must be a backup not on
    /// the current chain) and a positive max-age.
    pub fn well_formed(&self) -> bool {
        self.pins.len() >= 2 && self.max_age > 0
    }
}

/// A cached HPKP entry (what a browser would persist).
#[derive(Debug, Clone, PartialEq, Eq)]
struct CacheEntry {
    pins: Vec<SpkiPin>,
    expires: SimTime,
    include_subdomains: bool,
}

/// The browser-side trust-on-first-use pin store.
#[derive(Debug, Default)]
pub struct HpkpCache {
    by_host: HashMap<String, CacheEntry>,
}

/// Result of an HPKP policy check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HpkpVerdict {
    /// No cached policy — connection proceeds, header (if any) is noted.
    NoPolicy,
    /// Cached policy matched the chain.
    Pass,
    /// Cached policy did not match — hard fail.
    Fail,
}

impl HpkpCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks `chain` for `host` at `now`, then (on success) adopts the
    /// header served by the site — the complete TOFU cycle.
    pub fn observe(
        &mut self,
        host: &str,
        chain: &[Certificate],
        header: Option<&HpkpHeader>,
        now: SimTime,
    ) -> HpkpVerdict {
        // Expire stale entries lazily.
        if self.by_host.get(host).is_some_and(|e| e.expires < now) {
            self.by_host.remove(host);
        }

        let verdict = match self.lookup(host) {
            Some(entry) => {
                let matched = chain
                    .iter()
                    .any(|cert| entry.pins.iter().any(|p| p.matches(cert)));
                if matched {
                    HpkpVerdict::Pass
                } else {
                    HpkpVerdict::Fail
                }
            }
            None => HpkpVerdict::NoPolicy,
        };

        // RFC 7469 §2.5: pins are only noted over *validated* connections
        // that pass the current policy.
        if verdict != HpkpVerdict::Fail {
            if let Some(h) = header {
                if h.well_formed() {
                    if h.max_age == 0 {
                        self.by_host.remove(host);
                    } else {
                        self.by_host.insert(
                            host.to_string(),
                            CacheEntry {
                                pins: h.pins.clone(),
                                expires: now + h.max_age,
                                include_subdomains: h.include_subdomains,
                            },
                        );
                    }
                }
            }
        }
        verdict
    }

    fn lookup(&self, host: &str) -> Option<&CacheEntry> {
        if let Some(e) = self.by_host.get(host) {
            return Some(e);
        }
        // includeSubDomains: walk parent domains.
        let mut rest = host;
        while let Some((_, parent)) = rest.split_once('.') {
            if let Some(e) = self.by_host.get(parent) {
                if e.include_subdomains {
                    return Some(e);
                }
            }
            rest = parent;
        }
        None
    }

    /// Number of cached hosts.
    pub fn len(&self) -> usize {
        self.by_host.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.by_host.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::CertificateAuthority;
    use crate::name::DistinguishedName;
    use crate::time::{Validity, YEAR};
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;

    struct Site {
        chain: Vec<Certificate>,
        header: HpkpHeader,
    }

    fn site(seed: u64) -> Site {
        let mut rng = SplitMix64::new(seed);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Root", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let key = KeyPair::generate(&mut rng);
        let leaf = root.issue_leaf(
            &["site.example".to_string()],
            "Site",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        let backup_key = KeyPair::generate(&mut rng);
        let backup = root.issue_leaf(
            &["site.example".to_string()],
            "Site",
            &backup_key,
            Validity::starting(SimTime(0), YEAR),
        );
        let header = HpkpHeader {
            pins: vec![SpkiPin::sha256_of(&leaf), SpkiPin::sha256_of(&backup)],
            max_age: 5_000_000,
            include_subdomains: false,
        };
        Site {
            chain: vec![leaf, root.cert.clone()],
            header,
        }
    }

    #[test]
    fn header_roundtrip() {
        let s = site(1);
        let value = s.header.to_header_value();
        assert!(value.contains("pin-sha256="));
        assert!(value.contains("max-age=5000000"));
        let parsed = HpkpHeader::parse(&value).unwrap();
        assert_eq!(parsed, s.header);
    }

    #[test]
    fn parse_rejects_missing_max_age() {
        assert!(HpkpHeader::parse("pin-sha256=\"AAAA\"").is_none());
    }

    #[test]
    fn tofu_cycle_pass() {
        let s = site(2);
        let mut cache = HpkpCache::new();
        // First visit: no policy yet.
        assert_eq!(
            cache.observe("site.example", &s.chain, Some(&s.header), SimTime(10)),
            HpkpVerdict::NoPolicy
        );
        // Second visit: policy enforced, matches.
        assert_eq!(
            cache.observe("site.example", &s.chain, Some(&s.header), SimTime(20)),
            HpkpVerdict::Pass
        );
    }

    #[test]
    fn tofu_first_connection_is_the_weakness() {
        // §2.1: "HPKP trusts the first seen certificate (and thus does not
        // solve the problem for adversaries that can intercept the first
        // TLS connection)".
        let genuine = site(3);
        let attacker = site(4); // different keys entirely
        let mut cache = HpkpCache::new();
        // Attacker intercepts the FIRST visit and plants their own pins.
        assert_eq!(
            cache.observe(
                "site.example",
                &attacker.chain,
                Some(&attacker.header),
                SimTime(10)
            ),
            HpkpVerdict::NoPolicy
        );
        // The genuine site now FAILS its own users.
        assert_eq!(
            cache.observe(
                "site.example",
                &genuine.chain,
                Some(&genuine.header),
                SimTime(20)
            ),
            HpkpVerdict::Fail
        );
    }

    #[test]
    fn pins_cannot_be_replaced_by_a_nonmatching_site() {
        // No in-band pin change: a failed check must NOT adopt new pins.
        let old = site(5);
        let new = site(6);
        let mut cache = HpkpCache::new();
        cache.observe("site.example", &old.chain, Some(&old.header), SimTime(10));
        assert_eq!(
            cache.observe("site.example", &new.chain, Some(&new.header), SimTime(20)),
            HpkpVerdict::Fail
        );
        // Old chain still passes — the cache was not poisoned by the failure.
        assert_eq!(
            cache.observe("site.example", &old.chain, None, SimTime(30)),
            HpkpVerdict::Pass
        );
    }

    #[test]
    fn max_age_expiry_restores_tofu() {
        let s = site(7);
        let mut cache = HpkpCache::new();
        cache.observe("site.example", &s.chain, Some(&s.header), SimTime(0));
        let after = SimTime(s.header.max_age + 1);
        let other = site(8);
        // Expired → back to square one: any site is accepted again.
        assert_eq!(
            cache.observe("site.example", &other.chain, Some(&other.header), after),
            HpkpVerdict::NoPolicy
        );
    }

    #[test]
    fn max_age_zero_clears_policy() {
        let s = site(9);
        let mut cache = HpkpCache::new();
        cache.observe("site.example", &s.chain, Some(&s.header), SimTime(0));
        let clear = HpkpHeader {
            max_age: 0,
            ..s.header.clone()
        };
        // max-age=0 is the only sanctioned way out — and requires a PASSING
        // connection first. (`well_formed` rejects max_age == 0 for *new*
        // policies, so clear it through the dedicated path.)
        let verdict = cache.observe("site.example", &s.chain, Some(&clear), SimTime(10));
        assert_eq!(verdict, HpkpVerdict::Pass);
        // Policy removal honoured?
        assert_eq!(
            cache.len(),
            1,
            "malformed (max-age=0) header must be ignored by note step"
        );
    }

    #[test]
    fn include_subdomains_walks_parents() {
        let s = site(10);
        let mut cache = HpkpCache::new();
        let header = HpkpHeader {
            include_subdomains: true,
            ..s.header.clone()
        };
        cache.observe("site.example", &s.chain, Some(&header), SimTime(0));
        assert_eq!(
            cache.observe("api.site.example", &s.chain, None, SimTime(5)),
            HpkpVerdict::Pass
        );
        let attacker = site(11);
        assert_eq!(
            cache.observe("api.site.example", &attacker.chain, None, SimTime(6)),
            HpkpVerdict::Fail
        );
    }

    #[test]
    fn app_pinning_contrast_no_tofu() {
        // The §2.1 contrast: an app ships its pin, so the first connection
        // is already protected — the scenario HPKP loses.
        let genuine = site(12);
        let attacker = site(13);
        let pinset = crate::pin::PinSet::from_pins(vec![crate::pin::Pin::Spki(
            SpkiPin::sha256_of(&genuine.chain[0]),
        )]);
        assert!(pinset.matches_chain(&genuine.chain));
        assert!(
            !pinset.matches_chain(&attacker.chain),
            "first contact already protected"
        );
    }
}
