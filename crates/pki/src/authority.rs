//! Certificate authorities: root creation and certificate issuance.

use crate::cert::{Certificate, TbsCertificate};
use crate::name::DistinguishedName;
use crate::time::{SimTime, Validity, YEAR};
use pinning_crypto::sig::KeyPair;
use pinning_crypto::SplitMix64;

/// A certificate authority: a keypair plus its own (root or intermediate)
/// certificate, able to issue further certificates.
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    key: KeyPair,
    /// The CA's own certificate.
    pub cert: Certificate,
    next_serial: u64,
}

impl CertificateAuthority {
    /// Creates a new self-signed root CA.
    ///
    /// Root certificates conventionally have long validity; the default here
    /// is 25 simulated years starting at `from`.
    pub fn new_root(name: DistinguishedName, rng: &mut SplitMix64, from: SimTime) -> Self {
        Self::new_root_with_validity(name, rng, Validity::starting(from, 25 * YEAR))
    }

    /// Creates a self-signed root with an explicit validity window.
    pub fn new_root_with_validity(
        name: DistinguishedName,
        rng: &mut SplitMix64,
        validity: Validity,
    ) -> Self {
        let key = KeyPair::generate(rng);
        let tbs = TbsCertificate {
            serial: rng.next_u64(),
            subject: name.clone(),
            issuer: name,
            validity,
            san: Vec::new(),
            public_key: key.public.clone(),
            is_ca: true,
            path_len: None,
        };
        let signature = key.sign(&tbs.to_bytes());
        let cert = Certificate::new(tbs, signature);
        let next_serial = rng.next_u64() | 1;
        CertificateAuthority {
            key,
            cert,
            next_serial,
        }
    }

    /// Issues an intermediate CA certificate (and returns the new authority).
    pub fn issue_intermediate(
        &mut self,
        name: DistinguishedName,
        rng: &mut SplitMix64,
        validity: Validity,
        path_len: Option<u64>,
    ) -> CertificateAuthority {
        let key = KeyPair::generate(rng);
        let tbs = TbsCertificate {
            serial: self.take_serial(),
            subject: name,
            issuer: self.cert.tbs.subject.clone(),
            validity,
            san: Vec::new(),
            public_key: key.public.clone(),
            is_ca: true,
            path_len,
        };
        let signature = self.key.sign(&tbs.to_bytes());
        let cert = Certificate::new(tbs, signature);
        let next_serial = rng.next_u64() | 1;
        CertificateAuthority {
            key,
            cert,
            next_serial,
        }
    }

    /// Issues a leaf (end-entity) certificate for `hostnames`.
    ///
    /// The first hostname becomes the CN; all of them become SANs. `key` may
    /// be reused across issuances to model key reuse across certificate
    /// renewals (paper §5.3.3).
    pub fn issue_leaf(
        &mut self,
        hostnames: &[String],
        organization: &str,
        key: &KeyPair,
        validity: Validity,
    ) -> Certificate {
        let serial = self.take_serial();
        self.issue_leaf_with_serial(hostnames, organization, key, validity, serial)
    }

    /// Issues a leaf with a caller-supplied serial, leaving the CA's own
    /// serial counter untouched. Streamed world generation uses this: each
    /// shard derives leaf serials from per-hostname RNG streams, so the
    /// certificate a host gets is independent of how many hosts other
    /// shards issued first.
    pub fn issue_leaf_with_serial(
        &self,
        hostnames: &[String],
        organization: &str,
        key: &KeyPair,
        validity: Validity,
        serial: u64,
    ) -> Certificate {
        assert!(!hostnames.is_empty(), "leaf needs at least one hostname");
        let tbs = TbsCertificate {
            serial,
            subject: DistinguishedName::new(hostnames[0].clone(), organization, "US"),
            issuer: self.cert.tbs.subject.clone(),
            validity,
            san: hostnames.to_vec(),
            public_key: key.public.clone(),
            is_ca: false,
            path_len: None,
        };
        let signature = self.key.sign(&tbs.to_bytes());
        Certificate::new(tbs, signature)
    }

    /// Issues a self-signed *leaf* (no chain, no PKI) — the "self-signed
    /// certificate, rather than a chain" case the paper found twice (§5.3.1).
    pub fn self_signed_leaf(
        hostnames: &[String],
        organization: &str,
        rng: &mut SplitMix64,
        validity: Validity,
    ) -> Certificate {
        assert!(!hostnames.is_empty());
        let key = KeyPair::generate(rng);
        let tbs = TbsCertificate {
            serial: rng.next_u64(),
            subject: DistinguishedName::new(hostnames[0].clone(), organization, "US"),
            issuer: DistinguishedName::new(hostnames[0].clone(), organization, "US"),
            validity,
            san: hostnames.to_vec(),
            public_key: key.public.clone(),
            is_ca: false,
            path_len: None,
        };
        let signature = key.sign(&tbs.to_bytes());
        Certificate::new(tbs, signature)
    }

    /// The CA's subject name.
    pub fn name(&self) -> &DistinguishedName {
        &self.cert.tbs.subject
    }

    /// The CA's signing key (exposed for the MITM proxy, which forges leaf
    /// certificates on the fly exactly like mitmproxy does).
    pub fn keypair(&self) -> &KeyPair {
        &self.key
    }

    fn take_serial(&mut self) -> u64 {
        let s = self.next_serial;
        self.next_serial = self.next_serial.wrapping_add(1);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SplitMix64 {
        SplitMix64::new(0xCA)
    }

    #[test]
    fn root_is_self_signed_ca() {
        let root = CertificateAuthority::new_root(
            DistinguishedName::new("Root CA", "Sim", "US"),
            &mut rng(),
            SimTime(0),
        );
        assert!(root.cert.is_self_signed());
        assert!(root.cert.tbs.is_ca);
        // Root signature verifies under its own key.
        assert!(root
            .cert
            .tbs
            .public_key
            .verify(&root.cert.tbs.to_bytes(), &root.cert.signature));
    }

    #[test]
    fn leaf_signed_by_root() {
        let mut r = rng();
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Root CA", "Sim", "US"),
            &mut r,
            SimTime(0),
        );
        let leaf_key = KeyPair::generate(&mut r);
        let leaf = root.issue_leaf(
            &["www.example.com".to_string()],
            "Example",
            &leaf_key,
            Validity::starting(SimTime(10), 1000),
        );
        assert!(!leaf.tbs.is_ca);
        assert_eq!(leaf.tbs.issuer, *root.name());
        assert!(root
            .cert
            .tbs
            .public_key
            .verify(&leaf.tbs.to_bytes(), &leaf.signature));
    }

    #[test]
    fn intermediate_chain() {
        let mut r = rng();
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Root CA", "Sim", "US"),
            &mut r,
            SimTime(0),
        );
        let mut inter = root.issue_intermediate(
            DistinguishedName::new("Intermediate CA", "Sim", "US"),
            &mut r,
            Validity::starting(SimTime(0), 10 * YEAR),
            Some(0),
        );
        assert!(inter.cert.tbs.is_ca);
        assert_eq!(inter.cert.tbs.path_len, Some(0));

        let leaf_key = KeyPair::generate(&mut r);
        let leaf = inter.issue_leaf(
            &["a.b.com".to_string()],
            "B",
            &leaf_key,
            Validity::starting(SimTime(0), 100),
        );
        assert!(inter
            .cert
            .tbs
            .public_key
            .verify(&leaf.tbs.to_bytes(), &leaf.signature));
        // Root key did NOT sign the leaf.
        assert!(!root
            .cert
            .tbs
            .public_key
            .verify(&leaf.tbs.to_bytes(), &leaf.signature));
    }

    #[test]
    fn serials_are_unique_per_issuer() {
        let mut r = rng();
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Root CA", "Sim", "US"),
            &mut r,
            SimTime(0),
        );
        let k = KeyPair::generate(&mut r);
        let v = Validity::starting(SimTime(0), 100);
        let a = root.issue_leaf(&["a.com".to_string()], "A", &k, v);
        let b = root.issue_leaf(&["b.com".to_string()], "B", &k, v);
        assert_ne!(a.tbs.serial, b.tbs.serial);
    }

    #[test]
    fn key_reuse_across_renewals_keeps_spki() {
        let mut r = rng();
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Root CA", "Sim", "US"),
            &mut r,
            SimTime(0),
        );
        let k = KeyPair::generate(&mut r);
        let old = root.issue_leaf(
            &["x.com".to_string()],
            "X",
            &k,
            Validity::starting(SimTime(0), 100),
        );
        let renewed = root.issue_leaf(
            &["x.com".to_string()],
            "X",
            &k,
            Validity::starting(SimTime(100), 100),
        );
        assert_ne!(old.fingerprint_sha256(), renewed.fingerprint_sha256());
        assert_eq!(old.spki_sha256(), renewed.spki_sha256()); // pin survives renewal
    }

    #[test]
    fn self_signed_leaf_has_no_ca_bit() {
        let leaf = CertificateAuthority::self_signed_leaf(
            &["internal.corp".to_string()],
            "Corp",
            &mut rng(),
            Validity::starting(SimTime(0), 27 * YEAR),
        );
        assert!(leaf.is_self_signed());
        assert!(!leaf.tbs.is_ca);
    }
}
