//! Table/figure computations over [`StudyResults`].
//!
//! Every number below is *measured* by the pipeline — nothing here reads
//! the world's planted ground truth except through the same channels the
//! paper had (packages, captures, CT logs, whois).

use crate::study::StudyResults;
use pinning_analysis::categories::{category_table, CategoryRow};
use pinning_analysis::certs::{classify_destination_pki, PkiClass};
use pinning_analysis::consistency::{
    compare, summarize_common, CommonDatasetSummary, ConsistencyClass, PlatformObservation,
};
use pinning_analysis::destinations::{AppDestinationProfile, DestinationEntry};
use pinning_analysis::pii::PiiComparison;
use pinning_analysis::security::WeakCipherRow;
use pinning_analysis::statics::attribution::{attribute, FrameworkCount};
use pinning_app::platform::Platform;
use pinning_crypto::SplitMix64;
use pinning_report::figures::{self, Figure3Row, Figure4Row};
use pinning_report::tables::{self, PriorWorkRow, Table1, Table3Row, Table6Row, Table8Row};
use pinning_store::datasets::DatasetKind;
use std::collections::{BTreeMap, BTreeSet};

/// §5.3.2's pin-level summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PinLevelSummary {
    /// Pinned destinations matched to CA certificates.
    pub ca: usize,
    /// Pinned destinations matched to leaf certificates.
    pub leaf: usize,
    /// Pinning apps with at least one static↔dynamic certificate match.
    pub apps_matched: usize,
    /// Total pinning apps.
    pub pinning_apps: usize,
}

/// The CT-ecosystem coverage summary behind the "CT resolution & log
/// coverage" report section.
#[derive(Debug, Clone)]
pub struct CtCoverageSummary {
    /// Per-(dataset, platform) resolved/total unique pins.
    pub datasets: Vec<tables::CtCoverageRow>,
    /// Per-shard entry counts.
    pub shards: Vec<tables::CtShardRow>,
    /// Resolver cache statistics for the pass that produced `datasets`.
    pub cache: pinning_ctlog::ResolverStats,
    /// Auditor findings, pre-rendered (empty = clean ecosystem).
    pub findings: Vec<String>,
}

/// §5.3.3's SPKI-vs-raw summary for leaf pins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpkiVsRawSummary {
    /// Leaf pins committed via SPKI hash strings.
    pub leaf_via_spki: usize,
    /// Leaf pins shipped as raw certificates.
    pub leaf_via_raw: usize,
    /// Of the raw ones, how many survive a key-reusing renewal (the
    /// "developers likely pinned public keys" finding).
    pub raw_surviving_renewal: usize,
}

impl StudyResults {
    // ---------------------------------------------------------------
    // Table 1
    // ---------------------------------------------------------------

    /// Computes Table 1's category mixes.
    pub fn table1(&self) -> Table1 {
        let mut columns = Vec::new();
        for platform in Platform::BOTH {
            for kind in DatasetKind::ALL {
                let ds = self.dataset(kind, platform);
                let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
                for &i in &ds.app_indices {
                    *counts
                        .entry(self.world.apps[i].category.label_on(platform))
                        .or_default() += 1;
                }
                let n = ds.app_indices.len().max(1);
                let mut rows: Vec<(String, f64)> = counts
                    .into_iter()
                    .map(|(c, k)| (c.to_string(), 100.0 * k as f64 / n as f64))
                    .collect();
                rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
                columns.push((format!("{platform} / {kind}"), rows));
            }
        }
        Table1 { columns }
    }

    /// Renders Table 1.
    pub fn render_table1(&self) -> String {
        tables::table1(&self.table1())
    }

    // ---------------------------------------------------------------
    // Table 2
    // ---------------------------------------------------------------

    /// This pipeline's NSC-technique rows, to append to the prior-work
    /// table: the same metric prior studies used, on our datasets.
    pub fn table2_rows(&self) -> Vec<PriorWorkRow> {
        DatasetKind::ALL
            .iter()
            .map(|&kind| {
                let recs = self.dataset_records(kind, Platform::Android);
                let n = recs.len();
                let nsc = recs
                    .iter()
                    .filter(|r| r.static_findings.nsc_signal())
                    .count();
                PriorWorkRow {
                    study: format!("This pipeline (NSC, {kind})"),
                    year: 2022,
                    prevalence: format!("{:.2}%", 100.0 * nsc as f64 / n.max(1) as f64),
                    analysis: "Static".into(),
                    dataset_size: n.to_string(),
                    source: format!("{kind} Android dataset"),
                }
            })
            .collect()
    }

    /// Renders Table 2.
    pub fn render_table2(&self) -> String {
        tables::table2(&self.table2_rows())
    }

    // ---------------------------------------------------------------
    // Table 3
    // ---------------------------------------------------------------

    /// Computes the headline prevalence rows.
    pub fn table3(&self) -> Vec<Table3Row> {
        let mut rows = Vec::new();
        for kind in DatasetKind::ALL {
            for platform in Platform::BOTH {
                let recs = self.dataset_records(kind, platform);
                rows.push(Table3Row {
                    dataset: kind,
                    platform,
                    n: recs.len(),
                    dynamic: recs.iter().filter(|r| r.pins()).count(),
                    static_embedded: recs
                        .iter()
                        .filter(|r| r.static_findings.has_pin_material())
                        .count(),
                    nsc: (platform == Platform::Android).then(|| {
                        recs.iter()
                            .filter(|r| r.static_findings.nsc_signal())
                            .count()
                    }),
                });
            }
        }
        rows
    }

    /// Renders Table 3.
    pub fn render_table3(&self) -> String {
        tables::table3(&self.table3())
    }

    // ---------------------------------------------------------------
    // Tables 4 & 5
    // ---------------------------------------------------------------

    /// Category rows for one platform (union of all datasets, §5's
    /// "across all datasets" framing).
    pub fn category_rows(&self, platform: Platform) -> Vec<CategoryRow> {
        let apps: Vec<(pinning_app::category::Category, bool)> = self
            .platform_records(platform)
            .iter()
            .map(|r| (self.world.apps[r.app_index].category, r.pins()))
            .collect();
        category_table(&apps, 10)
    }

    /// Renders Table 4 (Android) or Table 5 (iOS).
    pub fn render_table_categories(&self, platform: Platform) -> String {
        tables::table_categories(platform, &self.category_rows(platform))
    }

    // ---------------------------------------------------------------
    // Table 6
    // ---------------------------------------------------------------

    /// Classifies the PKI of every pinned destination per platform.
    ///
    /// A small fraction of chain fetches fail (the paper's "Data
    /// Unavailable" column); failure is simulated deterministically per
    /// destination.
    pub fn table6(&self) -> Vec<Table6Row> {
        let stores = [&self.world.universe.aosp_oem, &self.world.universe.ios];
        let mut rows = Vec::new();
        for platform in Platform::BOTH {
            let fetch_rng = SplitMix64::new(self.world.config.seed).derive("chain-fetch");
            let dests: BTreeSet<&str> = self
                .platform_records(platform)
                .iter()
                .flat_map(|r| r.pinned_destinations.iter().map(String::as_str))
                .collect();
            let mut row = Table6Row {
                platform,
                default_pki: 0,
                custom_pki: 0,
                unavailable: 0,
            };
            for dest in dests {
                let mut dest_rng = fetch_rng.derive(dest);
                if dest_rng.chance(0.055) {
                    row.unavailable += 1;
                    continue;
                }
                match classify_destination_pki(
                    &self.world.network,
                    &self.world.universe.mozilla,
                    &stores,
                    dest,
                    self.world.now,
                ) {
                    PkiClass::DefaultPki => row.default_pki += 1,
                    PkiClass::CustomPki => row.custom_pki += 1,
                    PkiClass::DataUnavailable => row.unavailable += 1,
                }
            }
            rows.push(row);
        }
        rows
    }

    /// Renders Table 6.
    pub fn render_table6(&self) -> String {
        tables::table6(&self.table6())
    }

    // ---------------------------------------------------------------
    // Table 7
    // ---------------------------------------------------------------

    /// Framework attribution per platform.
    pub fn table7(&self) -> (Vec<FrameworkCount>, Vec<FrameworkCount>) {
        let rows: Vec<(&pinning_analysis::statics::StaticFindings, Platform)> = self
            .records
            .values()
            .map(|r| (&r.static_findings, r.id.platform))
            .collect();
        let mut reports = attribute(&rows);
        (
            reports
                .remove(&Platform::Android)
                .unwrap_or_default()
                .frameworks,
            reports
                .remove(&Platform::Ios)
                .unwrap_or_default()
                .frameworks,
        )
    }

    /// Renders Table 7.
    pub fn render_table7(&self) -> String {
        let (android, ios) = self.table7();
        tables::table7(&android, &ios, 5)
    }

    // ---------------------------------------------------------------
    // Table 8
    // ---------------------------------------------------------------

    /// Weak-cipher rows per dataset × platform.
    pub fn table8(&self) -> Vec<Table8Row> {
        let mut rows = Vec::new();
        for kind in DatasetKind::ALL {
            for platform in Platform::BOTH {
                let recs = self.dataset_records(kind, platform);
                let total_apps = recs.len();
                let overall = recs.iter().filter(|r| r.weak_overall).count();
                let pinners: Vec<_> = recs.iter().filter(|r| r.pins()).collect();
                let pinning_weak = pinners.iter().filter(|r| r.weak_pinned).count();
                let pct = |n: usize, d: usize| {
                    if d == 0 {
                        0.0
                    } else {
                        100.0 * n as f64 / d as f64
                    }
                };
                rows.push(Table8Row {
                    dataset: kind,
                    platform,
                    row: WeakCipherRow {
                        overall_pct: pct(overall, total_apps),
                        pinning_pct: pct(pinning_weak, pinners.len()),
                        total_apps,
                        pinning_apps: pinners.len(),
                    },
                });
            }
        }
        rows
    }

    /// Renders Table 8.
    pub fn render_table8(&self) -> String {
        tables::table8(&self.table8())
    }

    // ---------------------------------------------------------------
    // Table 9
    // ---------------------------------------------------------------

    /// PII comparison per platform from the decrypted request bodies.
    pub fn table9(&self) -> Vec<(Platform, PiiComparison)> {
        Platform::BOTH
            .into_iter()
            .map(|platform| {
                let mut cmp = PiiComparison::default();
                for r in self.platform_records(platform) {
                    for body in &r.pinned_bodies {
                        cmp.add_body(&self.identity, body, true);
                    }
                    for body in &r.unpinned_bodies {
                        cmp.add_body(&self.identity, body, false);
                    }
                }
                (platform, cmp)
            })
            .collect()
    }

    /// Renders Table 9.
    pub fn render_table9(&self) -> String {
        tables::table9(&self.table9())
    }

    // ---------------------------------------------------------------
    // Figures 2–4 (Common dataset)
    // ---------------------------------------------------------------

    /// Paired (android, ios) observations for every Common-dataset product.
    pub fn common_observations(&self) -> Vec<(PlatformObservation, PlatformObservation, String)> {
        let ca = self.dataset(DatasetKind::Common, Platform::Android);
        let ci = self.dataset(DatasetKind::Common, Platform::Ios);
        ca.app_indices
            .iter()
            .zip(&ci.app_indices)
            .map(|(&a, &i)| {
                let obs = |idx: usize| {
                    let r = &self.records[&idx];
                    PlatformObservation::new(
                        r.pinned_destinations.iter().cloned(),
                        r.used_destinations.iter().cloned(),
                    )
                };
                (obs(a), obs(i), self.world.apps[a].name.clone())
            })
            .collect()
    }

    /// Figure 2's aggregate.
    pub fn figure2_summary(&self) -> CommonDatasetSummary {
        let obs: Vec<_> = self
            .common_observations()
            .into_iter()
            .map(|(a, i, _)| (a, i))
            .collect();
        summarize_common(&obs)
    }

    /// Renders Figure 2.
    pub fn render_figure2(&self) -> String {
        figures::figure2(&self.figure2_summary())
    }

    /// Figure 3's rows: inconsistent both-platform pinners.
    pub fn figure3_rows(&self) -> Vec<Figure3Row> {
        self.common_observations()
            .into_iter()
            .filter(|(a, i, _)| !a.pinned.is_empty() && !i.pinned.is_empty())
            .filter_map(|(a, i, name)| {
                let rep = compare(&a, &i);
                (rep.class == ConsistencyClass::Inconsistent).then_some(Figure3Row {
                    app: name,
                    jaccard: rep.jaccard_pinned,
                    android_unpinned_on_ios: rep.android_pinned_unpinned_on_ios,
                    ios_unpinned_on_android: rep.ios_pinned_unpinned_on_android,
                })
            })
            .collect()
    }

    /// Renders Figure 3.
    pub fn render_figure3(&self) -> String {
        figures::figure3(&self.figure3_rows())
    }

    /// Figure 4's rows: exclusive-platform pinners with contradictions.
    pub fn figure4_rows(&self) -> (Vec<Figure4Row>, Vec<Figure4Row>) {
        let mut android_only = Vec::new();
        let mut ios_only = Vec::new();
        for (a, i, name) in self.common_observations() {
            match (!a.pinned.is_empty(), !i.pinned.is_empty()) {
                (true, false) => {
                    let rep = compare(&a, &i);
                    if rep.android_pinned_unpinned_on_ios > 0.0 {
                        android_only.push(Figure4Row {
                            app: name,
                            pct_unpinned_on_other: rep.android_pinned_unpinned_on_ios,
                        });
                    }
                }
                (false, true) => {
                    let rep = compare(&a, &i);
                    if rep.ios_pinned_unpinned_on_android > 0.0 {
                        ios_only.push(Figure4Row {
                            app: name,
                            pct_unpinned_on_other: rep.ios_pinned_unpinned_on_android,
                        });
                    }
                }
                _ => {}
            }
        }
        (android_only, ios_only)
    }

    /// Renders Figure 4.
    pub fn render_figure4(&self) -> String {
        let (a, i) = self.figure4_rows();
        figures::figure4(&a, &i)
    }

    // ---------------------------------------------------------------
    // Figure 5
    // ---------------------------------------------------------------

    /// Destination profiles for pinning apps of one platform
    /// (Popular + Random datasets, as in the figure).
    pub fn figure5_profiles(&self, platform: Platform) -> Vec<AppDestinationProfile> {
        let mut seen = BTreeSet::new();
        let mut profiles = Vec::new();
        for kind in [DatasetKind::Popular, DatasetKind::Random] {
            for r in self.dataset_records(kind, platform) {
                if !r.pins() || !seen.insert(r.app_index) {
                    continue;
                }
                let app = &self.world.apps[r.app_index];
                let pinned: BTreeSet<&str> =
                    r.pinned_destinations.iter().map(String::as_str).collect();
                let entries = r
                    .used_destinations
                    .iter()
                    .map(|d| DestinationEntry {
                        domain: d.clone(),
                        pinned: pinned.contains(d.as_str()),
                        party: self.world.whois.attribute(&app.developer_org, d),
                    })
                    .collect();
                profiles.push(AppDestinationProfile {
                    app_name: app.name.clone(),
                    entries,
                });
            }
        }
        profiles
    }

    /// Renders Figure 5 for one platform.
    pub fn render_figure5(&self, platform: Platform) -> String {
        figures::figure5(platform.name(), &self.figure5_profiles(platform))
    }

    // ---------------------------------------------------------------
    // §4.3 / §5.3 extras
    // ---------------------------------------------------------------

    /// Circumvention rate per platform: unique destinations
    /// (succeeded, attempted).
    pub fn circumvention_rate(&self, platform: Platform) -> (usize, usize) {
        let mut attempted = BTreeSet::new();
        let mut succeeded = BTreeSet::new();
        for r in self.platform_records(platform) {
            if let Some(c) = &r.circumvention {
                attempted.extend(c.attempted.iter().cloned());
                succeeded.extend(c.succeeded.iter().cloned());
            }
        }
        (succeeded.len(), attempted.len())
    }

    /// §5.3.2: root-vs-leaf pin classification via static↔dynamic matching.
    ///
    /// Counted over *unique certificates* (the paper's 80/110 CA vs leaf is
    /// a certificate count): one SDK root pinned by fifty apps is one CA
    /// certificate.
    pub fn pin_level(&self) -> PinLevelSummary {
        let mut s = PinLevelSummary::default();
        let resolver = pinning_ctlog::PinResolver::new(&self.world.ctlog);
        let mut seen: BTreeMap<[u8; 32], bool> = BTreeMap::new();
        for r in self.records.values() {
            if !r.pins() {
                continue;
            }
            s.pinning_apps += 1;
            let mut matched = false;
            let static_cns = pinning_analysis::certs::static_pin_cns(&r.static_findings, &resolver);
            for dest in &r.pinned_destinations {
                let Some(server) = self.world.network.resolve(dest) else {
                    continue;
                };
                let level = pinning_analysis::certs::pin_level_with_cns(&static_cns, &server.chain);
                let Some(is_ca) = level else { continue };
                matched = true;
                // Identify the matched certificate for dedup: the first
                // chain cert whose CN appears statically — re-derive it the
                // same way pin_level_for_destination does, via position.
                let cert = if is_ca {
                    server.chain.certs().iter().find(|c| c.tbs.is_ca)
                } else {
                    server.chain.leaf()
                };
                if let Some(cert) = cert {
                    seen.entry(cert.fingerprint_sha256()).or_insert(is_ca);
                }
            }
            if matched {
                s.apps_matched += 1;
            }
        }
        for is_ca in seen.values() {
            if *is_ca {
                s.ca += 1;
            } else {
                s.leaf += 1;
            }
        }
        s
    }

    /// §5.3.3: of leaf pins, SPKI vs raw storage, and renewal survival.
    pub fn spki_vs_raw(&self) -> SpkiVsRawSummary {
        let mut s = SpkiVsRawSummary::default();
        let resolver = pinning_ctlog::PinResolver::new(&self.world.ctlog);
        for r in self.records.values() {
            let static_cns = pinning_analysis::certs::static_pin_cns(&r.static_findings, &resolver);
            for dest in &r.pinned_destinations {
                let Some(server) = self.world.network.resolve(dest) else {
                    continue;
                };
                let Some(leaf) = server.chain.leaf() else {
                    continue;
                };
                // Only destinations whose *leaf* is the pinned certificate.
                match pinning_analysis::certs::pin_level_with_cns(&static_cns, &server.chain) {
                    Some(false) => {}
                    _ => continue,
                }
                let leaf_spki = leaf.spki_sha256();
                let via_spki = r
                    .static_findings
                    .pin_strings
                    .iter()
                    .any(|p| p.value.parsed.as_ref().is_some_and(|pin| pin.matches(leaf)));
                if via_spki {
                    s.leaf_via_spki += 1;
                    continue;
                }
                let via_raw = r
                    .static_findings
                    .embedded_certs
                    .iter()
                    .any(|c| c.value.spki_sha256() == leaf_spki);
                if via_raw {
                    s.leaf_via_raw += 1;
                    // Renewal probe: same key, new serial — does the app's
                    // enforcement still accept it?
                    let mut renewed = leaf.clone();
                    renewed.tbs.serial = renewed.tbs.serial.wrapping_add(1);
                    renewed.invalidate_derived(); // clones share the derived cache
                    let app = &self.world.apps[r.app_index];
                    if let Some((_, rule)) = app.pin_rule_for(dest) {
                        if rule.pins.matches_chain(&[renewed]) {
                            s.raw_surviving_renewal += 1;
                        }
                    }
                }
            }
        }
        s
    }

    /// §4.1.3: CT-log resolution of statically-found pins.
    pub fn ct_resolution(&self) -> (usize, usize) {
        let findings: Vec<&pinning_analysis::statics::StaticFindings> =
            self.records.values().map(|r| &r.static_findings).collect();
        let resolver = pinning_ctlog::PinResolver::new(&self.world.ctlog);
        pinning_analysis::certs::ct_resolution_rate(&findings, &resolver)
    }

    /// The full CT-ecosystem picture: per-dataset pin resolution through a
    /// single shared [`pinning_ctlog::PinResolver`] (so the cache hit rate
    /// reflects pin reuse across datasets), per-shard entry counts, and an
    /// auditor pass (STH consistency + mis-issuance against the network's
    /// served leaves).
    pub fn ct_coverage(&self) -> CtCoverageSummary {
        let resolver = pinning_ctlog::PinResolver::new(&self.world.ctlog);
        let mut datasets = Vec::new();
        for platform in Platform::BOTH {
            for kind in DatasetKind::ALL {
                let recs = self.dataset_records(kind, platform);
                let findings: Vec<&pinning_analysis::statics::StaticFindings> =
                    recs.iter().map(|r| &r.static_findings).collect();
                let (resolved, total) =
                    pinning_analysis::certs::ct_resolution_rate(&findings, &resolver);
                datasets.push(tables::CtCoverageRow {
                    dataset: kind,
                    platform,
                    resolved,
                    total,
                });
            }
        }
        let shards = self
            .world
            .ctlog
            .shards()
            .iter()
            .map(|s| tables::CtShardRow {
                shard: s.name.clone(),
                operator: s.operator.clone(),
                entries: s.log.len(),
            })
            .collect();
        // Auditor pass: tail every shard (signature + consistency +
        // inclusion), then cross-check logged leaves against the keys the
        // network actually serves.
        let mut monitor = pinning_ctlog::Monitor::new();
        monitor.observe_set(&self.world.ctlog, self.world.now);
        let truth: BTreeMap<String, [u8; 32]> = self
            .world
            .network
            .servers()
            .iter()
            .filter_map(|s| s.chain.leaf().map(|l| (s, l.spki_sha256())))
            .flat_map(|(s, spki)| s.hostnames.iter().map(move |h| (h.clone(), spki)))
            .collect();
        monitor.audit_misissuance(&self.world.ctlog, &truth);
        CtCoverageSummary {
            datasets,
            shards,
            cache: resolver.stats(),
            findings: monitor.findings().iter().map(|f| f.to_string()).collect(),
        }
    }

    /// Renders the CT resolution & log coverage section.
    pub fn render_ct(&self) -> String {
        let s = self.ct_coverage();
        tables::table_ct(&s.datasets, &s.shards, s.cache.hit_rate(), &s.findings)
    }

    /// Renders the degraded-apps summary: how many measurements were lost
    /// to test-bed faults, by error class (§5.6 "Partial Observation" made
    /// explicit instead of silent).
    pub fn render_degraded(&self) -> String {
        let summary = self.degraded_summary();
        let degraded: usize = summary.values().sum();
        let mut out = String::from("Degraded measurements (test-bed faults)\n");
        if degraded == 0 {
            out.push_str("  none — every app measured cleanly\n");
            return out;
        }
        for (err, n) in &summary {
            out.push_str(&format!("  {:<16} {n:>4}\n", err.label()));
        }
        out.push_str(&format!(
            "  {:<16} {degraded:>4} of {} apps unobserved\n",
            "total",
            self.records.len()
        ));
        out
    }

    /// Per-decode-layer histogram of structured [`MalformedInput`]
    /// rejections: one row per [`InputLayer`], counting apps the layer
    /// rejected and how many of those rejections were parse-budget trips.
    ///
    /// [`MalformedInput`]: pinning_netsim::MeasurementError::MalformedInput
    /// [`InputLayer`]: pinning_netsim::InputLayer
    pub fn resilience_summary(&self) -> Vec<tables::ResilienceRow> {
        use pinning_netsim::{InputLayer, MalformedKind};
        let mut rows: Vec<tables::ResilienceRow> = InputLayer::ALL
            .iter()
            .map(|l| tables::ResilienceRow {
                layer: l.label(),
                rejected: 0,
                budget_trips: 0,
            })
            .collect();
        for (_, e) in self.degraded_apps() {
            let Some((layer, reason)) = e.malformed_parts() else {
                continue;
            };
            for (row, l) in rows.iter_mut().zip(InputLayer::ALL) {
                if l == layer {
                    row.rejected += 1;
                    if reason == MalformedKind::LimitExceeded {
                        row.budget_trips += 1;
                    }
                }
            }
        }
        rows
    }

    /// Renders the "Malformed-input resilience" table: per-layer rejection
    /// counts for the adversarial cohort, budget-trip counts, and the
    /// zero-crash attestation.
    pub fn render_resilience(&self) -> String {
        tables::table_resilience(
            &self.resilience_summary(),
            self.world.hostile_apps.len(),
            self.health.panics_recovered,
        )
    }

    /// Renders the "Run health" table: supervision and journal telemetry
    /// for this run (panics recovered, breaker trips, truncations, resumed
    /// vs fresh apps).
    ///
    /// Deliberately *not* part of [`StudyResults::render_all`]: run health
    /// describes how this particular process survived, so a killed-and-
    /// resumed run legitimately differs from an uninterrupted one here
    /// while every deterministic report byte stays identical.
    pub fn render_run_health(&self) -> String {
        tables::table_run_health(&tables::RunHealthReport {
            panics_recovered: self.health.panics_recovered,
            breaker_trips: self.health.breaker_trips,
            watchdog_breaches: self.health.watchdog_breaches,
            journal_truncations: self.health.journal_truncations,
            quarantined_bytes: self.health.quarantined_bytes,
            quarantined_records: self.health.quarantined_records,
            journal_repairs: self.health.journal_repairs,
            checkpoints_recovered: self.health.checkpoints_recovered,
            resumed_apps: self.health.resumed_apps,
            fresh_apps: self.health.fresh_apps,
            replayed_prior_epoch: self.health.replayed_prior_epoch,
            reanalyzed_dirty: self.health.reanalyzed_dirty,
            // Live delta against the study-start baseline, so cache work
            // done while rendering tables (classification, batched CT
            // proofs) is included.
            cache_rows: crate::study::cache_snapshot()
                .iter()
                .zip(&self.health.cache_base)
                .map(|(now, base)| now.delta_since(base))
                .map(|c| tables::CacheRow {
                    name: c.name,
                    hits: c.hits,
                    misses: c.misses,
                })
                .collect(),
            // The legacy engine does not time itself; the streaming engine
            // fills these in via its own health rendering.
            peak_rss_kib: None,
            apps_per_sec: None,
        })
    }

    /// A one-paragraph abstract with the headline numbers, mirroring the
    /// paper's "To summarize our key results" list (§1).
    pub fn summary(&self) -> String {
        let rows = self.table3();
        let cell = |kind: DatasetKind, platform: Platform| -> (f64, f64) {
            let r = rows
                .iter()
                .find(|r| r.dataset == kind && r.platform == platform)
                .expect("all rows present");
            let pct = |n: usize| {
                if r.n == 0 {
                    0.0
                } else {
                    100.0 * n as f64 / r.n as f64
                }
            };
            (pct(r.dynamic), pct(r.static_embedded))
        };
        let (pop_a_dyn, pop_a_static) = cell(DatasetKind::Popular, Platform::Android);
        let (pop_i_dyn, pop_i_static) = cell(DatasetKind::Popular, Platform::Ios);
        let (rand_a_dyn, _) = cell(DatasetKind::Random, Platform::Android);
        let (rand_i_dyn, _) = cell(DatasetKind::Random, Platform::Ios);
        let fig2 = self.figure2_summary();
        let pl = self.pin_level();
        let t9 = self.table9();
        let ios_adid_significant = t9
            .iter()
            .find(|(p, _)| *p == Platform::Ios)
            .and_then(|(_, cmp)| cmp.tables.get(&pinning_app::pii::PiiType::AdvertisingId))
            .is_some_and(|c| c.significant());
        format!(
            "Summary: {pop_i_dyn:.1}% of popular iOS apps and {pop_a_dyn:.1}% of popular \
             Android apps pin at run time (static analysis flags up to {pop_a_static:.1}% / \
             {pop_i_static:.1}% as potential pinning); random apps pin far less \
             ({rand_a_dyn:.1}% / {rand_i_dyn:.1}%). Of {} apps pinning on both platforms, \
             {} pin consistently ({} with identical pinned sets). {} of {} matched pinned \
             certificates are CAs. iOS advertising-ID prevalence in pinned traffic is{} \
             statistically significant.",
            fig2.pin_both,
            fig2.both_consistent,
            fig2.both_identical,
            pl.ca,
            pl.ca + pl.leaf,
            if ios_adid_significant { "" } else { " not" },
        )
    }

    /// Renders the complete report: every table and figure plus the §4.3 /
    /// §5.3 extras.
    pub fn render_all(&self) -> String {
        let mut out = String::new();
        out.push_str(&figures::figure1_ascii());
        out.push('\n');
        for section in [
            self.render_table1(),
            self.render_table2(),
            self.render_table3(),
            self.render_table_categories(Platform::Android),
            self.render_table_categories(Platform::Ios),
            self.render_table6(),
            self.render_table7(),
            self.render_table8(),
            self.render_table9(),
            self.render_figure2(),
            self.render_figure3(),
            self.render_figure4(),
            self.render_figure5(Platform::Android),
            self.render_figure5(Platform::Ios),
        ] {
            out.push_str(&section);
            out.push('\n');
        }
        let (sa, aa) = self.circumvention_rate(Platform::Android);
        let (si, ai) = self.circumvention_rate(Platform::Ios);
        out.push_str(&tables::share_bar("circumvented (Android)", sa, aa, 20));
        out.push('\n');
        out.push_str(&tables::share_bar("circumvented (iOS)", si, ai, 20));
        out.push('\n');
        let pl = self.pin_level();
        out.push_str(&format!(
            "pin level: {} CA vs {} leaf (matched apps: {}/{})\n",
            pl.ca, pl.leaf, pl.apps_matched, pl.pinning_apps
        ));
        let sr = self.spki_vs_raw();
        out.push_str(&format!(
            "leaf pins: {} via SPKI, {} raw ({} raw survive key-reusing renewal)\n",
            sr.leaf_via_spki, sr.leaf_via_raw, sr.raw_surviving_renewal
        ));
        let (resolved, total) = self.ct_resolution();
        out.push_str(&tables::share_bar(
            "pins resolved via CT",
            resolved,
            total,
            20,
        ));
        out.push('\n');
        out.push_str(&self.render_ct());
        out.push_str(&format!(
            "dataset collisions: Common∩Popular = {:?}, unique apps = {} (Android) + {} (iOS) = {}\n",
            self.collisions.common_popular,
            self.collisions.unique_android,
            self.collisions.unique_ios,
            self.collisions.total_unique,
        ));
        out.push('\n');
        out.push_str(&self.render_degraded());
        out.push('\n');
        out.push_str(&self.render_resilience());
        out.push('\n');
        out.push_str(&self.summary());
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{Study, StudyConfig};

    fn results() -> StudyResults {
        Study::new(StudyConfig::tiny(0x7AB1)).run()
    }

    #[test]
    fn table3_counts_are_bounded_and_ordered() {
        let r = results();
        for row in r.table3() {
            assert!(row.dynamic <= row.n);
            assert!(row.static_embedded <= row.n);
            // Static embedded ⊇ is not guaranteed per-app, but in aggregate
            // static potential must not be *smaller* than dynamic truth
            // minus the obfuscated tail; sanity-bound it loosely.
            if let Some(nsc) = row.nsc {
                assert!(nsc <= row.n);
            }
        }
    }

    #[test]
    fn static_exceeds_dynamic_in_aggregate() {
        // Table 3's headline shape: static "potential pinning" ≫ dynamic.
        let r = results();
        let rows = r.table3();
        let dynamic: usize = rows.iter().map(|x| x.dynamic).sum();
        let embedded: usize = rows.iter().map(|x| x.static_embedded).sum();
        assert!(
            embedded > dynamic,
            "embedded {embedded} vs dynamic {dynamic}"
        );
    }

    #[test]
    fn table6_majority_default_pki() {
        let r = results();
        for row in r.table6() {
            if row.default_pki + row.custom_pki + row.unavailable > 3 {
                assert!(row.default_pki > row.custom_pki, "{row:?}");
            }
        }
    }

    #[test]
    fn table9_has_adid_rows() {
        let r = results();
        let t9 = r.table9();
        let (_, cmp) = t9.iter().find(|(p, _)| *p == Platform::Android).unwrap();
        assert!(
            cmp.pinned_bodies + cmp.unpinned_bodies > 0,
            "bodies must be captured"
        );
    }

    #[test]
    fn figure2_totals_match_common_pinners() {
        let r = results();
        let s = r.figure2_summary();
        let obs = r.common_observations();
        let manual = obs
            .iter()
            .filter(|(a, i, _)| !a.pinned.is_empty() || !i.pinned.is_empty())
            .count();
        assert_eq!(s.total_pinners(), manual);
    }

    #[test]
    fn render_all_contains_every_section() {
        let r = results();
        let report = r.render_all();
        for needle in [
            "Table 1",
            "Table 2",
            "Table 3",
            "Table 4",
            "Table 5",
            "Table 6",
            "Table 7",
            "Table 8",
            "Table 9",
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "circumvented",
            "pin level",
            "pins resolved via CT",
            "CT resolution & log coverage",
            "Log shards",
            "resolver cache hit rate",
            "Degraded measurements",
            "Malformed-input resilience",
            "zero-crash attestation",
        ] {
            assert!(report.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn ct_coverage_is_partial_cached_and_audited_clean() {
        // Tiny worlds can carry a single parsable pin, for which "partial"
        // coverage is undefined — use a scale with a real pin population.
        let mut config = StudyConfig::tiny(0x7AB1);
        config.world.store_size = 300;
        config.world.n_cross_products = 60;
        config.world.common_size = 40;
        config.world.popular_size = 80;
        config.world.random_size = 80;
        let r = Study::new(config).run();
        let s = r.ct_coverage();
        // Coverage must stay partial in aggregate: some pins resolve, some
        // don't (the paper resolved ~50%).
        let resolved: usize = s.datasets.iter().map(|d| d.resolved).sum();
        let total: usize = s.datasets.iter().map(|d| d.total).sum();
        assert!(total > 0);
        assert!(resolved > 0, "no pin resolved through CT");
        assert!(resolved < total, "CT coverage must not be complete");
        // Every shard topology slot is reported; entries land in shards.
        assert_eq!(s.shards.len(), r.world.ctlog.shards().len());
        assert!(s.shards.iter().any(|sh| sh.entries > 0));
        // Pins repeat across datasets, so the shared resolver must hit,
        // and misses stay bounded by one per unique pin in the whole study.
        assert!(s.cache.hits > 0, "{:?}", s.cache);
        let (_, unique_overall) = r.ct_resolution();
        assert_eq!(s.cache.misses as usize, unique_overall, "{:?}", s.cache);
        // An honestly-generated world has a clean CT ecosystem.
        assert!(s.findings.is_empty(), "{:?}", s.findings);
    }

    #[test]
    fn circumvention_attempts_cover_pinned_destinations() {
        let r = results();
        for platform in Platform::BOTH {
            let (succeeded, attempted) = r.circumvention_rate(platform);
            assert!(succeeded <= attempted);
            let pinned: std::collections::BTreeSet<&String> = r
                .platform_records(platform)
                .iter()
                .flat_map(|rec| rec.pinned_destinations.iter())
                .collect();
            assert_eq!(attempted, pinned.len());
        }
    }
}
