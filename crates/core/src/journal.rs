//! Write-ahead result journal: crash-safe persistence for study runs.
//!
//! The paper's campaigns ran for days on physical devices; losing the
//! process meant losing every finished app. The journal fixes that for the
//! reproduction: the supervisor appends one record per *completed* app
//! (measured or degraded), and [`Study::resume`](crate::study::Study::resume)
//! replays the journal to skip finished work.
//!
//! ## Format
//!
//! ```text
//! header:  "PINJRNL1" (8 bytes) ‖ config fingerprint (32 bytes, SHA-256)
//! record:  [payload len: u32 LE] [SHA-256(payload): 32 bytes] [payload]
//! ```
//!
//! Records are appended in commit order (which varies with scheduling) and
//! are keyed by app index, so replay order never matters. The payload is
//! the TLV encoding (same [`pinning_pki::encode`] machinery as simcap v2)
//! of a [`JournalEntry`] carrying only *dynamic observables* — app ids and
//! static findings are recomputed deterministically from the regenerated
//! world, keeping journals small and resume byte-identical.
//!
//! ## Corruption tolerance
//!
//! A process killed mid-append leaves a torn tail; a bad disk can flip
//! bits anywhere. [`ResultJournal::open`] therefore runs the shared
//! scrubber ([`pinning_resilience::recovery::scrub_frames`]): every
//! record checksum is verified, damaged spans are quarantined, and the
//! reader *resyncs* past mid-journal damage instead of abandoning the
//! remainder — sound because records are keyed by app index and replay
//! order never matters. Everything discarded is accounted in
//! [`Replay::stats`]; damage to the header itself is unrecoverable and
//! surfaces as a [`JournalError`].
//!
//! ## Durable media
//!
//! The journal writes through the [`Media`] storage contract. The
//! default [`VecMedia`] is the perfect in-memory buffer — byte-identical
//! to the pre-`Media` journal — while
//! [`FaultMedia`](pinning_resilience::FaultMedia) injects torn writes,
//! lying flushes, bit rot, and ENOSPC for the chaos suite. Each append
//! is followed by a flush barrier, so on honest media every committed
//! record is durable the moment [`try_append`](ResultJournal::try_append)
//! returns.

use pinning_netsim::faults::{InputLayer, MalformedKind, MeasurementError};
use pinning_pki::encode::{Reader, Writer};
use pinning_pki::error::DecodeError;
use pinning_resilience::media::{Media, MediaError, VecMedia};
use pinning_resilience::recovery::{append_frame, scrub_frames, ScrubStats, FRAME_OVERHEAD};

/// Magic bytes opening every journal (format version 1).
pub const JOURNAL_MAGIC: &[u8; 8] = b"PINJRNL1";

/// Header length: magic plus the 32-byte config fingerprint.
const HEADER_LEN: usize = 8 + 32;

/// Per-record frame overhead: length word plus checksum.
const FRAME_LEN: usize = FRAME_OVERHEAD;

/// A journal whose header is damaged, or whose medium refused a write.
///
/// Record-level damage is *not* an error — [`ResultJournal::open`]
/// quarantines around it instead — but without an intact header there is
/// no fingerprint to validate a resume against, so the journal is
/// unusable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalError {
    /// Shorter than a header: nothing was ever committed.
    TooShort,
    /// The magic bytes don't match any known journal version.
    BadMagic,
    /// The journal was written under a different study configuration, so
    /// resuming from it would splice incompatible measurements.
    FingerprintMismatch,
    /// The backing medium refused a write (e.g. out of space).
    Media(MediaError),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::TooShort => write!(f, "journal shorter than its header"),
            JournalError::BadMagic => write!(f, "journal magic bytes unrecognized"),
            JournalError::FingerprintMismatch => {
                write!(f, "journal belongs to a different study configuration")
            }
            JournalError::Media(e) => write!(f, "journal medium failed: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<MediaError> for JournalError {
    fn from(e: MediaError) -> JournalError {
        JournalError::Media(e)
    }
}

/// Dynamic observables for one successfully measured app — exactly the
/// fields of [`crate::record::AppRecord`] that cannot be recomputed from
/// the world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasuredApp {
    /// Destinations detected as pinned.
    pub pinned_destinations: Vec<String>,
    /// Destinations used in the baseline run.
    pub used_destinations: Vec<String>,
    /// ≥1 connection advertised a weak cipher.
    pub weak_overall: bool,
    /// ≥1 pinned connection advertised a weak cipher.
    pub weak_pinned: bool,
    /// Plaintext recovered from circumvented pinned connections.
    pub pinned_bodies: Vec<String>,
    /// Plaintext recovered from ordinary MITM'd flows.
    pub unpinned_bodies: Vec<String>,
    /// Circumvention attempt: (attempted, succeeded) destinations.
    pub circumvention: Option<(Vec<String>, Vec<String>)>,
    /// Baseline handshake count.
    pub n_handshakes_baseline: u64,
    /// Whether the iOS settle re-run was applied.
    pub settled_rerun: bool,
    /// Circuit-breaker trips across this app's endpoints.
    pub breaker_trips: u32,
}

/// How one app's measurement concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppOutcome {
    /// The dynamic pipeline completed.
    Measured(Box<MeasuredApp>),
    /// Every retry degraded; the app is recorded with this error.
    Failed(MeasurementError),
}

/// One committed journal record: the outcome for one app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Index into the world's app list.
    pub app_index: u64,
    /// The measurement outcome.
    pub outcome: AppOutcome,
}

/// The recoverable content of a journal, as scrubbed by
/// [`ResultJournal::open`].
#[derive(Debug, Clone)]
pub struct Replay {
    /// Config fingerprint the journal was created under.
    pub fingerprint: [u8; 32],
    /// Entries recovered, in commit order.
    pub entries: Vec<JournalEntry>,
    /// Quarantine and repair accounting from the scrub pass (all zero =
    /// the journal read back exactly as written).
    pub stats: ScrubStats,
}

impl Replay {
    /// Whether the journal lost bytes to damage (including repaired
    /// damage — a resynced or deduplicated journal is degraded, not
    /// pristine).
    pub fn truncated(&self) -> bool {
        !self.stats.is_clean()
    }
}

/// An append-only, checksummed result journal over a [`Media`].
///
/// The default medium is [`VecMedia`]: the byte buffer that would sit on
/// disk, with callers owning persistence (the examples write it to a
/// file between kill and resume). The chaos suite substitutes
/// [`FaultMedia`](pinning_resilience::FaultMedia) to prove recovery
/// under hostile storage.
#[derive(Debug, Clone)]
pub struct ResultJournal<M: Media = VecMedia> {
    media: M,
}

impl ResultJournal<VecMedia> {
    /// A fresh in-memory journal bound to `fingerprint` (see
    /// [`crate::study::StudyConfig::fingerprint`]).
    pub fn create(fingerprint: [u8; 32]) -> Self {
        ResultJournal::create_on(VecMedia::new(), fingerprint)
            .expect("VecMedia never refuses a write")
    }

    /// Appends one committed app outcome (infallible on perfect media).
    pub fn append(&mut self, entry: &JournalEntry) {
        self.try_append(entry)
            .expect("VecMedia never refuses a write")
    }

    /// The journal's current on-disk image.
    pub fn as_bytes(&self) -> &[u8] {
        self.media.bytes()
    }

    /// Consumes the journal, returning its on-disk image.
    pub fn into_bytes(self) -> Vec<u8> {
        self.media.into_bytes()
    }

    /// Number of committed records (by re-walking the frames; the journal
    /// is always self-describing).
    pub fn len(&self) -> usize {
        Self::open(self.as_bytes())
            .map(|r| r.entries.len())
            .unwrap_or(0)
    }

    /// Whether no record has been committed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Scrubs a journal image, recovering every intact record.
    ///
    /// Never panics on hostile input: torn tails, flipped bits, wild
    /// length fields, and duplicated segments are quarantined (and, where
    /// possible, resynced past) by the shared
    /// [`scrub_frames`] reader, with the damage accounted in
    /// [`Replay::stats`]. Only a damaged *header* is an error.
    pub fn open(bytes: &[u8]) -> Result<Replay, JournalError> {
        if bytes.len() < HEADER_LEN {
            return Err(JournalError::TooShort);
        }
        if &bytes[..8] != JOURNAL_MAGIC {
            return Err(JournalError::BadMagic);
        }
        let mut fingerprint = [0u8; 32];
        fingerprint.copy_from_slice(&bytes[8..HEADER_LEN]);

        let recovered = scrub_frames(bytes, HEADER_LEN);
        let mut stats = recovered.stats;
        let mut entries = Vec::with_capacity(recovered.frames.len());
        for payload in recovered.frames {
            match decode_entry(payload) {
                Ok(entry) => entries.push(entry),
                // Checksum-valid but undecodable: version skew rather
                // than bit rot. Quarantine the record and keep going —
                // records are independent.
                Err(_) => {
                    stats.quarantined_bytes += (FRAME_LEN + payload.len()) as u64;
                    stats.quarantined_records += 1;
                }
            }
        }
        Ok(Replay {
            fingerprint,
            entries,
            stats,
        })
    }
}

impl<M: Media> ResultJournal<M> {
    /// A fresh journal written through `media`, bound to `fingerprint`.
    ///
    /// Resets the medium, writes the header, and flushes it — on honest
    /// media the header is durable when this returns.
    pub fn create_on(mut media: M, fingerprint: [u8; 32]) -> Result<Self, MediaError> {
        media.reset();
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(JOURNAL_MAGIC);
        header.extend_from_slice(&fingerprint);
        media.append(&header)?;
        media.flush()?;
        Ok(ResultJournal { media })
    }

    /// Appends one committed app outcome through the medium, with a
    /// flush barrier so the record is durable on return (honest media).
    pub fn try_append(&mut self, entry: &JournalEntry) -> Result<(), MediaError> {
        let payload = encode_entry(entry);
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        append_frame(&mut frame, &payload);
        self.media.append(&frame)?;
        self.media.flush()
    }

    /// Borrow of the backing medium.
    pub fn media(&self) -> &M {
        &self.media
    }

    /// Mutable borrow of the backing medium (e.g. to crash it).
    pub fn media_mut(&mut self) -> &mut M {
        &mut self.media
    }

    /// Consumes the journal, returning the backing medium.
    pub fn into_media(self) -> M {
        self.media
    }
}

/// Sentinel label for the structured `MalformedInput` error, which journals
/// as the sentinel plus `(layer, reason)` indices rather than a bare label.
const MALFORMED_SENTINEL: &str = "malformed-input";

fn encode_outcome_error(w: &mut Writer, error: MeasurementError) {
    match error.malformed_parts() {
        Some((layer, reason)) => {
            w.string(MALFORMED_SENTINEL);
            let layer_ix = InputLayer::ALL.iter().position(|l| *l == layer);
            let reason_ix = MalformedKind::ALL.iter().position(|k| *k == reason);
            // Both enums enumerate every variant in ALL, so the positions
            // always exist; encode defensively anyway.
            w.u64(layer_ix.unwrap_or(0) as u64);
            w.u64(reason_ix.unwrap_or(0) as u64);
        }
        None => w.string(error.label()),
    }
}

fn decode_outcome_error(r: &mut Reader<'_>) -> Result<MeasurementError, DecodeError> {
    let label = r.string()?;
    if label == MALFORMED_SENTINEL {
        let layer = InputLayer::ALL
            .get(r.u64()? as usize)
            .copied()
            .ok_or(DecodeError::BadFieldSize)?;
        let reason = MalformedKind::ALL
            .get(r.u64()? as usize)
            .copied()
            .ok_or(DecodeError::BadFieldSize)?;
        return Ok(MeasurementError::MalformedInput { layer, reason });
    }
    MeasurementError::ALL
        .into_iter()
        .find(|e| e.label() == label)
        .ok_or(DecodeError::BadFieldSize)
}

fn encode_entry(entry: &JournalEntry) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(entry.app_index);
    match &entry.outcome {
        AppOutcome::Failed(error) => {
            w.u64(0);
            encode_outcome_error(&mut w, *error);
        }
        AppOutcome::Measured(m) => {
            w.u64(1);
            w.list(&m.pinned_destinations, |w, s| w.string(s));
            w.list(&m.used_destinations, |w, s| w.string(s));
            w.boolean(m.weak_overall);
            w.boolean(m.weak_pinned);
            w.list(&m.pinned_bodies, |w, s| w.string(s));
            w.list(&m.unpinned_bodies, |w, s| w.string(s));
            match &m.circumvention {
                Some((attempted, succeeded)) => {
                    w.boolean(true);
                    w.list(attempted, |w, s| w.string(s));
                    w.list(succeeded, |w, s| w.string(s));
                }
                None => w.boolean(false),
            }
            w.u64(m.n_handshakes_baseline);
            w.boolean(m.settled_rerun);
            w.u64(m.breaker_trips as u64);
        }
    }
    w.into_bytes()
}

fn decode_entry(payload: &[u8]) -> Result<JournalEntry, DecodeError> {
    let mut r = Reader::new(payload);
    let app_index = r.u64()?;
    let outcome = match r.u64()? {
        0 => AppOutcome::Failed(decode_outcome_error(&mut r)?),
        1 => {
            let pinned_destinations = r.list(|r| r.string())?;
            let used_destinations = r.list(|r| r.string())?;
            let weak_overall = r.boolean()?;
            let weak_pinned = r.boolean()?;
            let pinned_bodies = r.list(|r| r.string())?;
            let unpinned_bodies = r.list(|r| r.string())?;
            let circumvention = if r.boolean()? {
                Some((r.list(|r| r.string())?, r.list(|r| r.string())?))
            } else {
                None
            };
            AppOutcome::Measured(Box::new(MeasuredApp {
                pinned_destinations,
                used_destinations,
                weak_overall,
                weak_pinned,
                pinned_bodies,
                unpinned_bodies,
                circumvention,
                n_handshakes_baseline: r.u64()?,
                settled_rerun: r.boolean()?,
                breaker_trips: r.u64()? as u32,
            }))
        }
        _ => return Err(DecodeError::BadFieldSize),
    };
    if !r.is_empty() {
        return Err(DecodeError::BadLength);
    }
    Ok(JournalEntry { app_index, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<JournalEntry> {
        vec![
            JournalEntry {
                app_index: 3,
                outcome: AppOutcome::Measured(Box::new(MeasuredApp {
                    pinned_destinations: vec!["pins.shop.com".into()],
                    used_destinations: vec!["api.shop.com".into(), "pins.shop.com".into()],
                    weak_overall: true,
                    weak_pinned: false,
                    pinned_bodies: vec!["adid=x".into()],
                    unpinned_bodies: vec![],
                    circumvention: Some((vec!["pins.shop.com".into()], vec![])),
                    n_handshakes_baseline: 7,
                    settled_rerun: true,
                    breaker_trips: 2,
                })),
            },
            JournalEntry {
                app_index: 9,
                outcome: AppOutcome::Failed(MeasurementError::WorkerPanic),
            },
            JournalEntry {
                app_index: 12,
                outcome: AppOutcome::Failed(MeasurementError::MalformedInput {
                    layer: InputLayer::Chain,
                    reason: MalformedKind::LimitExceeded,
                }),
            },
            JournalEntry {
                app_index: 0,
                outcome: AppOutcome::Measured(Box::new(MeasuredApp {
                    pinned_destinations: vec![],
                    used_destinations: vec![],
                    weak_overall: false,
                    weak_pinned: false,
                    pinned_bodies: vec![],
                    unpinned_bodies: vec![],
                    circumvention: None,
                    n_handshakes_baseline: 0,
                    settled_rerun: false,
                    breaker_trips: 0,
                })),
            },
        ]
    }

    fn journal() -> ResultJournal {
        let mut j = ResultJournal::create([0xAB; 32]);
        for e in sample_entries() {
            j.append(&e);
        }
        j
    }

    #[test]
    fn roundtrip_preserves_entries_and_fingerprint() {
        let j = journal();
        let replay = ResultJournal::open(j.as_bytes()).unwrap();
        assert_eq!(replay.fingerprint, [0xAB; 32]);
        assert_eq!(replay.entries, sample_entries());
        assert!(replay.stats.is_clean());
        assert!(!replay.truncated());
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn torn_tail_recovers_the_intact_prefix() {
        let j = journal();
        let full = j.as_bytes();
        // Cut mid-way through the last record.
        let cut = full.len() - 10;
        let replay = ResultJournal::open(&full[..cut]).unwrap();
        assert_eq!(replay.entries.len(), 3);
        assert!(replay.truncated());
        assert!(replay.stats.quarantined_bytes > 0);
        assert_eq!(
            replay.stats.quarantined_records, 0,
            "a torn tail is expected damage"
        );
    }

    #[test]
    fn flipped_bit_quarantines_the_damaged_record_and_resyncs() {
        let j = journal();
        let mut bytes = j.as_bytes().to_vec();
        // Flip a bit inside the second record's payload.
        let first_len = u32::from_le_bytes(bytes[40..44].try_into().unwrap()) as usize + FRAME_LEN;
        let target = 40 + first_len + FRAME_LEN + 2;
        bytes[target] ^= 0x10;
        let replay = ResultJournal::open(&bytes).unwrap();
        let expected: Vec<_> = sample_entries()
            .into_iter()
            .enumerate()
            .filter_map(|(i, e)| (i != 1).then_some(e))
            .collect();
        assert_eq!(
            replay.entries, expected,
            "the scrubber resyncs past the damage"
        );
        assert_eq!(replay.stats.quarantined_records, 1);
        assert_eq!(replay.stats.repairs, 1);
        assert!(replay.truncated());
    }

    #[test]
    fn wild_length_field_does_not_overread() {
        let j = journal();
        let mut bytes = j.as_bytes().to_vec();
        // Claim the first record is enormous.
        bytes[40..44].copy_from_slice(&u32::MAX.to_le_bytes());
        let replay = ResultJournal::open(&bytes).unwrap();
        assert_eq!(
            replay.entries,
            sample_entries()[1..].to_vec(),
            "records beyond the wild length are recovered"
        );
        assert_eq!(replay.stats.quarantined_records, 1);
        assert!(replay.stats.quarantined_bytes > 0);
    }

    #[test]
    fn faultless_fault_media_matches_vec_media_byte_for_byte() {
        use pinning_resilience::media::{FaultMedia, MediaFaultPlan};
        let legacy = journal();
        let mut hostile =
            ResultJournal::create_on(FaultMedia::new(MediaFaultPlan::none(42)), [0xAB; 32])
                .unwrap();
        for e in sample_entries() {
            hostile.try_append(&e).unwrap();
        }
        hostile.media_mut().crash();
        assert_eq!(
            hostile.media_mut().read_back(),
            legacy.as_bytes(),
            "a fault-free FaultMedia journal is byte-identical to VecMedia"
        );
    }

    #[test]
    fn nospace_surfaces_as_structured_media_error() {
        use pinning_resilience::media::{FaultMedia, MediaFaultPlan};
        let mut j =
            ResultJournal::create_on(FaultMedia::new(MediaFaultPlan::tight(3, 120)), [7; 32])
                .unwrap();
        let mut refused = 0;
        for e in sample_entries() {
            if j.try_append(&e) == Err(MediaError::NoSpace) {
                refused += 1;
            }
        }
        assert!(refused > 0, "120 bytes cannot hold the sample journal");
        // Whatever was committed before ENOSPC still scrubs cleanly.
        let replay = ResultJournal::open(&j.media_mut().read_back()).unwrap();
        assert!(replay.entries.len() < sample_entries().len());
    }

    #[test]
    fn damaged_header_is_an_error() {
        match ResultJournal::open(b"short") {
            Err(JournalError::TooShort) => {}
            other => panic!("expected TooShort, got {other:?}"),
        }
        let mut bytes = journal().into_bytes();
        bytes[0] ^= 0xFF;
        match ResultJournal::open(&bytes) {
            Err(JournalError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn empty_journal_is_valid() {
        let j = ResultJournal::create([1; 32]);
        assert!(j.is_empty());
        let replay = ResultJournal::open(j.as_bytes()).unwrap();
        assert!(replay.entries.is_empty());
        assert!(!replay.truncated());
    }
}
