//! Study orchestrator: generate the world, draw the datasets, run the
//! full static + dynamic + circumvention pipeline, and compute every
//! table and figure of the paper from the measurements.
//!
//! ```
//! use pinning_core::{Study, StudyConfig};
//!
//! let results = Study::new(StudyConfig::tiny(7)).run();
//! assert_eq!(results.datasets.len(), 6);
//! let report = results.render_table3();
//! assert!(report.contains("Dynamic"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod accum;
pub mod journal;
pub mod record;
pub mod stream;
pub mod study;
pub mod tables;

pub use accum::StreamAccum;
pub use journal::{AppOutcome, JournalEntry, JournalError, MeasuredApp, Replay, ResultJournal};
pub use record::AppRecord;
pub use stream::{StreamConfig, StreamEngine, StreamHealth, StreamOutcome, StreamResults};
pub use study::{RunHealth, Study, StudyConfig, StudyOutcome, StudyResults, SupervisorConfig};
