//! Mergeable sharded accumulators for the streaming engine.
//!
//! The monolithic study materializes a `BTreeMap<usize, AppRecord>` and
//! every table scans it. At streaming scale the records cannot stay
//! resident, so each worker folds its shards into a [`StreamAccum`]
//! partial and the engine merges partials at the end. [`StreamAccum::merge`]
//! is associative and commutative — every field is a sum (or an
//! entrywise-summing map union) — so the fold result is independent of
//! shard size, worker count, and completion order. The rendered report is
//! a pure function of the merged accumulator, which is what the
//! byte-identity gates in `benches/stream.rs` check.

use crate::record::AppRecord;
use pinning_analysis::pii::{detect_pii, PiiComparison};
use pinning_app::pii::DeviceIdentity;
use pinning_app::platform::Platform;
use pinning_pki::encode::{Reader, Writer};
use pinning_pki::error::DecodeError;
use pinning_report::text::{Align, TextTable};
use pinning_store::datasets::DatasetKind;
use std::collections::BTreeMap;

/// Per-(dataset, platform) tallies behind the streamed prevalence table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DatasetTally {
    /// Apps drawn into this dataset.
    pub apps: u64,
    /// Apps detected pinning dynamically.
    pub pinned: u64,
    /// Apps with embedded-certificate static signal.
    pub static_embedded: u64,
    /// Apps with an NSC configuration signal (Android only).
    pub nsc: u64,
    /// Apps whose dynamic measurement degraded.
    pub degraded: u64,
}

impl DatasetTally {
    fn merge(&mut self, o: &DatasetTally) {
        self.apps += o.apps;
        self.pinned += o.pinned;
        self.static_embedded += o.static_embedded;
        self.nsc += o.nsc;
        self.degraded += o.degraded;
    }
}

/// Per-platform tallies over *every* measured app (dataset member or not).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlatformTally {
    /// Apps measured.
    pub apps: u64,
    /// Apps detected pinning dynamically.
    pub pinned: u64,
    /// Baseline TLS handshakes observed.
    pub handshakes: u64,
    /// iOS settle re-runs applied.
    pub settled_reruns: u64,
    /// Apps with ≥1 weak-cipher offer overall.
    pub weak_overall: u64,
    /// Apps with ≥1 weak-cipher offer on a pinned connection.
    pub weak_pinned: u64,
    /// Apps where circumvention was attempted.
    pub circ_attempted: u64,
    /// Apps where ≥1 pinned destination was successfully opened.
    pub circ_succeeded: u64,
    /// Apps whose dynamic measurement degraded.
    pub degraded: u64,
    /// Circuit-breaker trips summed over apps.
    pub breaker_trips: u64,
}

impl PlatformTally {
    fn merge(&mut self, o: &PlatformTally) {
        self.apps += o.apps;
        self.pinned += o.pinned;
        self.handshakes += o.handshakes;
        self.settled_reruns += o.settled_reruns;
        self.weak_overall += o.weak_overall;
        self.weak_pinned += o.weak_pinned;
        self.circ_attempted += o.circ_attempted;
        self.circ_succeeded += o.circ_succeeded;
        self.degraded += o.degraded;
        self.breaker_trips += o.breaker_trips;
    }
}

/// Per-category pinning tallies (streamed Tables 4/5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CategoryTally {
    /// Apps in the category.
    pub apps: u64,
    /// Of those, apps detected pinning.
    pub pinned: u64,
}

/// One worker's (or one run's) mergeable measurement summary.
#[derive(Debug, Clone, Default)]
pub struct StreamAccum {
    /// Shards folded into this accumulator.
    pub shards: u64,
    /// Apps folded in (all platforms).
    pub apps: u64,
    /// `[platform][dataset-kind]` prevalence tallies.
    pub dataset: [[DatasetTally; 3]; 2],
    /// Per-platform totals.
    pub platform: [PlatformTally; 2],
    /// Per-platform, per-category-label tallies.
    pub categories: [BTreeMap<String, CategoryTally>; 2],
    /// Degradation histogram keyed by error label.
    pub errors: BTreeMap<String, u64>,
    /// Per-platform PII contingency tables (streamed Table 9).
    pub pii: [PiiComparison; 2],
}

/// Index of a platform in the accumulator's fixed arrays.
fn pidx(platform: Platform) -> usize {
    match platform {
        Platform::Android => 0,
        Platform::Ios => 1,
    }
}

/// Index of a dataset kind in the accumulator's fixed arrays.
fn kidx(kind: DatasetKind) -> usize {
    DatasetKind::ALL
        .iter()
        .position(|k| *k == kind)
        .expect("kind in ALL")
}

impl StreamAccum {
    /// Folds one measured app into the accumulator.
    ///
    /// `datasets` is the app's streamed-dataset membership;
    /// `identity` is the test device whose PII values the decrypted
    /// bodies are scanned for. Bodies are scanned with the *uncached*
    /// detector: streamed bodies are unique, so the process-global memo
    /// would grow without bound and never hit.
    pub fn add_app(
        &mut self,
        datasets: &[DatasetKind],
        category_label: &str,
        record: &AppRecord,
        identity: &DeviceIdentity,
    ) {
        let platform = record.id.platform;
        let pi = pidx(platform);
        self.apps += 1;

        let pins = record.pins();
        let degraded = record.degraded();
        let nsc = platform == Platform::Android && record.static_findings.nsc_signal();
        let embedded = record.static_findings.has_pin_material();

        let p = &mut self.platform[pi];
        p.apps += 1;
        p.pinned += pins as u64;
        p.handshakes += record.n_handshakes_baseline as u64;
        p.settled_reruns += record.settled_rerun as u64;
        p.weak_overall += record.weak_overall as u64;
        p.weak_pinned += record.weak_pinned as u64;
        p.degraded += degraded as u64;
        p.breaker_trips += record.breaker_trips as u64;
        if let Some(c) = &record.circumvention {
            p.circ_attempted += (!c.attempted.is_empty()) as u64;
            p.circ_succeeded += (!c.succeeded.is_empty()) as u64;
        }

        for &kind in datasets {
            let t = &mut self.dataset[pi][kidx(kind)];
            t.apps += 1;
            t.pinned += pins as u64;
            t.static_embedded += embedded as u64;
            t.nsc += nsc as u64;
            t.degraded += degraded as u64;
        }

        let cat = self.categories[pi]
            .entry(category_label.to_string())
            .or_default();
        cat.apps += 1;
        cat.pinned += pins as u64;

        if let Some(error) = record.error {
            *self.errors.entry(error.label().to_string()).or_default() += 1;
        }

        for body in &record.pinned_bodies {
            self.pii[pi].add_detected(&detect_pii(identity, body), true);
        }
        for body in &record.unpinned_bodies {
            self.pii[pi].add_detected(&detect_pii(identity, body), false);
        }
    }

    /// Folds another accumulator into this one. Associative and
    /// commutative: every field is a sum or an entrywise-summing union.
    pub fn merge(&mut self, other: &StreamAccum) {
        self.shards += other.shards;
        self.apps += other.apps;
        for pi in 0..2 {
            for ki in 0..3 {
                self.dataset[pi][ki].merge(&other.dataset[pi][ki]);
            }
            self.platform[pi].merge(&other.platform[pi]);
            for (label, o) in &other.categories[pi] {
                let t = self.categories[pi].entry(label.clone()).or_default();
                t.apps += o.apps;
                t.pinned += o.pinned;
            }
            self.pii[pi].merge(&other.pii[pi]);
        }
        for (label, n) in &other.errors {
            *self.errors.entry(label.clone()).or_default() += n;
        }
    }

    /// TLV encoding for the stream journal (same `pinning_pki::encode`
    /// machinery as the per-app journal).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.shards);
        w.u64(self.apps);
        for pi in 0..2 {
            for ki in 0..3 {
                let t = &self.dataset[pi][ki];
                for v in [t.apps, t.pinned, t.static_embedded, t.nsc, t.degraded] {
                    w.u64(v);
                }
            }
            let p = &self.platform[pi];
            for v in [
                p.apps,
                p.pinned,
                p.handshakes,
                p.settled_reruns,
                p.weak_overall,
                p.weak_pinned,
                p.circ_attempted,
                p.circ_succeeded,
                p.degraded,
                p.breaker_trips,
            ] {
                w.u64(v);
            }
            let cats: Vec<(&String, &CategoryTally)> = self.categories[pi].iter().collect();
            w.list(&cats, |w, (label, t)| {
                w.string(label);
                w.u64(t.apps);
                w.u64(t.pinned);
            });
            let cmp = &self.pii[pi];
            w.u64(cmp.pinned_bodies);
            w.u64(cmp.unpinned_bodies);
            let tables: Vec<_> = cmp.tables.iter().collect();
            w.list(&tables, |w, (ty, t)| {
                w.string(&format!("{ty:?}"));
                w.u64(t.pinned_with);
                w.u64(t.pinned_without);
                w.u64(t.unpinned_with);
                w.u64(t.unpinned_without);
            });
        }
        let errors: Vec<(&String, &u64)> = self.errors.iter().collect();
        w.list(&errors, |w, (label, n)| {
            w.string(label);
            w.u64(**n);
        });
        w.into_bytes()
    }

    /// Decodes an accumulator written by [`StreamAccum::encode`].
    pub fn decode(payload: &[u8]) -> Result<StreamAccum, DecodeError> {
        use pinning_app::pii::PiiType;
        let mut r = Reader::new(payload);
        let mut acc = StreamAccum {
            shards: r.u64()?,
            apps: r.u64()?,
            ..Default::default()
        };
        for pi in 0..2 {
            for ki in 0..3 {
                let t = &mut acc.dataset[pi][ki];
                t.apps = r.u64()?;
                t.pinned = r.u64()?;
                t.static_embedded = r.u64()?;
                t.nsc = r.u64()?;
                t.degraded = r.u64()?;
            }
            let p = &mut acc.platform[pi];
            p.apps = r.u64()?;
            p.pinned = r.u64()?;
            p.handshakes = r.u64()?;
            p.settled_reruns = r.u64()?;
            p.weak_overall = r.u64()?;
            p.weak_pinned = r.u64()?;
            p.circ_attempted = r.u64()?;
            p.circ_succeeded = r.u64()?;
            p.degraded = r.u64()?;
            p.breaker_trips = r.u64()?;
            let cats = r.list(|r| {
                let label = r.string()?;
                let apps = r.u64()?;
                let pinned = r.u64()?;
                Ok((label, CategoryTally { apps, pinned }))
            })?;
            acc.categories[pi] = cats.into_iter().collect();
            acc.pii[pi].pinned_bodies = r.u64()?;
            acc.pii[pi].unpinned_bodies = r.u64()?;
            let tables = r.list(|r| {
                let name = r.string()?;
                let ty = PiiType::ALL
                    .into_iter()
                    .find(|t| format!("{t:?}") == name)
                    .ok_or(DecodeError::BadFieldSize)?;
                let t = pinning_analysis::pii::Contingency {
                    pinned_with: r.u64()?,
                    pinned_without: r.u64()?,
                    unpinned_with: r.u64()?,
                    unpinned_without: r.u64()?,
                };
                Ok((ty, t))
            })?;
            acc.pii[pi].tables = tables.into_iter().collect();
        }
        let errors = r.list(|r| {
            let label = r.string()?;
            let n = r.u64()?;
            Ok((label, n))
        })?;
        acc.errors = errors.into_iter().collect();
        if !r.is_empty() {
            return Err(DecodeError::BadLength);
        }
        Ok(acc)
    }

    /// Renders the deterministic streamed report: a pure function of the
    /// merged accumulator, byte-identical across thread counts and shard
    /// sizes. Volatile telemetry (timings, RSS) is rendered separately by
    /// the engine's health report.
    pub fn render(&self) -> String {
        // `shards` is deliberately absent: it varies with the schedule
        // (shard size), and the report must not.
        let mut out = String::from("=== Streamed study report ===\n");
        out.push_str(&format!("apps measured: {}\n\n", self.apps));

        let mut t = TextTable::new(
            "Stream prevalence by dataset (Bernoulli-membership family)",
            &["Dataset", "Platform", "n", "Dynamic", "Embedded", "NSC"],
        )
        .aligns(&[
            Align::Left,
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
        for kind in DatasetKind::ALL {
            for platform in Platform::BOTH {
                let d = &self.dataset[pidx(platform)][kidx(kind)];
                t.row(&[
                    kind.to_string(),
                    platform.to_string(),
                    d.apps.to_string(),
                    pct_of(d.pinned, d.apps),
                    pct_of(d.static_embedded, d.apps),
                    if platform == Platform::Android {
                        pct_of(d.nsc, d.apps)
                    } else {
                        "-".into()
                    },
                ]);
            }
        }
        out.push_str(&t.render());

        let mut t = TextTable::new(
            "Stream totals per platform (every generated app)",
            &[
                "Platform",
                "Apps",
                "Pinning",
                "Handshakes",
                "Weak",
                "Weak+pin",
                "Circ ok",
                "Degraded",
            ],
        )
        .aligns(&[
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ]);
        for platform in Platform::BOTH {
            let p = &self.platform[pidx(platform)];
            t.row(&[
                platform.to_string(),
                p.apps.to_string(),
                pct_of(p.pinned, p.apps),
                p.handshakes.to_string(),
                p.weak_overall.to_string(),
                p.weak_pinned.to_string(),
                format!("{}/{}", p.circ_succeeded, p.circ_attempted),
                p.degraded.to_string(),
            ]);
        }
        out.push_str(&t.render());

        for platform in Platform::BOTH {
            let mut rows: Vec<(&String, &CategoryTally)> = self.categories[pidx(platform)]
                .iter()
                .filter(|(_, t)| t.pinned > 0)
                .collect();
            rows.sort_by(|a, b| b.1.pinned.cmp(&a.1.pinned).then(a.0.cmp(b.0)));
            let mut t = TextTable::new(
                format!("Top pinning categories, {platform} (streamed)"),
                &["Category", "Pinning %", "Apps"],
            )
            .aligns(&[Align::Left, Align::Right, Align::Right]);
            for (label, c) in rows.iter().take(10) {
                t.row(&[
                    label.to_string(),
                    pct_of(c.pinned, c.apps),
                    c.pinned.to_string(),
                ]);
            }
            out.push_str(&t.render());
        }

        for platform in Platform::BOTH {
            let cmp = &self.pii[pidx(platform)];
            let mut t = TextTable::new(
                format!(
                    "PII exposure, {platform} (streamed Table 9; pinned n={}, unpinned n={})",
                    cmp.pinned_bodies, cmp.unpinned_bodies
                ),
                &["PII", "Pinned %", "Unpinned %", "chi2", "p<0.05"],
            )
            .aligns(&[
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Left,
            ]);
            for (ty, c) in &cmp.tables {
                t.row(&[
                    format!("{ty:?}"),
                    format!("{:.2}", c.pinned_pct()),
                    format!("{:.2}", c.unpinned_pct()),
                    format!("{:.3}", c.chi_square()),
                    if c.significant() { "yes" } else { "no" }.to_string(),
                ]);
            }
            out.push_str(&t.render());
        }

        if !self.errors.is_empty() {
            let mut t = TextTable::new("Degradation histogram", &["Error", "Apps"])
                .aligns(&[Align::Left, Align::Right]);
            for (label, n) in &self.errors {
                t.row(&[label.to_string(), n.to_string()]);
            }
            out.push_str(&t.render());
        }
        out
    }
}

fn pct_of(num: u64, den: u64) -> String {
    if den == 0 {
        "0.00% (0)".to_string()
    } else {
        format!("{:.2}% ({num})", 100.0 * num as f64 / den as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_crypto::SplitMix64;

    /// Builds a pseudo-random accumulator from a seed — the generator for
    /// the property tests below.
    fn arb_accum(seed: u64) -> StreamAccum {
        let mut rng = SplitMix64::new(seed);
        let mut acc = StreamAccum {
            shards: rng.next_below(5),
            apps: rng.next_below(100),
            ..Default::default()
        };
        for pi in 0..2 {
            for ki in 0..3 {
                acc.dataset[pi][ki] = DatasetTally {
                    apps: rng.next_below(50),
                    pinned: rng.next_below(20),
                    static_embedded: rng.next_below(20),
                    nsc: rng.next_below(10),
                    degraded: rng.next_below(5),
                };
            }
            acc.platform[pi] = PlatformTally {
                apps: rng.next_below(100),
                pinned: rng.next_below(40),
                handshakes: rng.next_below(1000),
                settled_reruns: rng.next_below(10),
                weak_overall: rng.next_below(10),
                weak_pinned: rng.next_below(5),
                circ_attempted: rng.next_below(20),
                circ_succeeded: rng.next_below(20),
                degraded: rng.next_below(5),
                breaker_trips: rng.next_below(5),
            };
            for label in ["Games", "Finance", "Social", "Tools"] {
                if rng.chance(0.7) {
                    acc.categories[pi].insert(
                        label.to_string(),
                        CategoryTally {
                            apps: rng.next_below(30),
                            pinned: rng.next_below(10),
                        },
                    );
                }
            }
            acc.pii[pi].pinned_bodies = rng.next_below(40);
            acc.pii[pi].unpinned_bodies = rng.next_below(40);
            for ty in pinning_app::pii::PiiType::ALL {
                if rng.chance(0.6) {
                    acc.pii[pi].tables.insert(
                        ty,
                        pinning_analysis::pii::Contingency {
                            pinned_with: rng.next_below(10),
                            pinned_without: rng.next_below(10),
                            unpinned_with: rng.next_below(10),
                            unpinned_without: rng.next_below(10),
                        },
                    );
                }
            }
        }
        for label in ["timeout", "worker-panic", "dns"] {
            if rng.chance(0.5) {
                acc.errors.insert(label.to_string(), rng.next_below(7));
            }
        }
        acc
    }

    fn merged(parts: &[&StreamAccum]) -> StreamAccum {
        let mut out = StreamAccum::default();
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// Accumulators compare by their canonical encoding (render would work
    /// too, but encode covers fields render elides).
    fn eq(a: &StreamAccum, b: &StreamAccum) -> bool {
        a.encode() == b.encode()
    }

    #[test]
    fn prop_merge_commutative() {
        for seed in 0..64u64 {
            let a = arb_accum(seed);
            let b = arb_accum(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
            assert!(
                eq(&merged(&[&a, &b]), &merged(&[&b, &a])),
                "merge not commutative for seed {seed}"
            );
        }
    }

    #[test]
    fn prop_merge_associative() {
        for seed in 0..64u64 {
            let a = arb_accum(seed);
            let b = arb_accum(seed ^ 0xABCD);
            let c = arb_accum(seed ^ 0x1234_5678);
            let mut ab = merged(&[&a, &b]);
            ab.merge(&c);
            let mut bc = merged(&[&b, &c]);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            assert!(eq(&ab, &a_bc), "merge not associative for seed {seed}");
            bc = merged(&[&b, &c]);
            let mut bc_a = bc.clone();
            bc_a.merge(&a);
            assert!(eq(&ab, &bc_a), "assoc+comm composition broke for {seed}");
        }
    }

    #[test]
    fn prop_merge_identity() {
        for seed in 0..16u64 {
            let a = arb_accum(seed);
            let mut with_zero = a.clone();
            with_zero.merge(&StreamAccum::default());
            assert!(eq(&a, &with_zero), "default must be a merge identity");
        }
    }

    #[test]
    fn prop_encode_decode_roundtrip() {
        for seed in 0..64u64 {
            let a = arb_accum(seed);
            let decoded = StreamAccum::decode(&a.encode()).expect("roundtrip decodes");
            assert!(eq(&a, &decoded), "roundtrip changed accumulator {seed}");
            assert_eq!(a.render(), decoded.render());
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut bytes = arb_accum(1).encode();
        bytes.extend_from_slice(&[0, 1, 2, 3]);
        assert!(StreamAccum::decode(&bytes).is_err());
    }

    #[test]
    fn render_mentions_every_section() {
        let s = arb_accum(3).render();
        assert!(s.contains("Stream prevalence"));
        assert!(s.contains("Stream totals"));
        assert!(s.contains("Top pinning categories"));
        assert!(s.contains("PII exposure"));
    }
}
