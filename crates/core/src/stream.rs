//! Streaming million-app study engine.
//!
//! The monolithic [`crate::Study`] materializes the whole world before
//! measuring it, which caps the study size at available memory. This
//! engine inverts the pipeline into a producer/consumer stream:
//!
//! * the producer is [`pinning_store::shard::StreamWorld`] — shards of
//!   apps are generated on demand, each a pure function of
//!   `(config, shard_size, shard index)`;
//! * each worker measures a shard into a mergeable
//!   [`StreamAccum`] partial, journals the shard's accumulator, and
//!   **drops the shard** before touching the next one;
//! * a token gate bounds how many materialized shards exist at once, so
//!   peak memory is `O(max_inflight_shards × shard_size)` — flat in the
//!   total app count;
//! * workers pull from per-worker deques and steal from the most loaded
//!   peer when their own runs dry (the cargo `JobQueue` shape), so a slow
//!   shard never idles the rest of the pool.
//!
//! Because [`StreamAccum::merge`] is associative and commutative, the
//! rendered report is byte-identical at any thread count and any shard
//! size — that invariant is gated by tests here and by
//! `benches/stream.rs`. The shard journal gives kill-and-resume at shard
//! granularity with the same longest-intact-prefix recovery contract as
//! the per-app journal.

use crate::accum::StreamAccum;
use crate::journal::JournalError;
use crate::record::AppRecord;
use pinning_analysis::circumvent::circumvent_app;
use pinning_analysis::dynamics::pipeline::{try_analyze_app, DynamicEnv};
use pinning_analysis::statics::analyze_package;
use pinning_app::platform::Platform;
use pinning_crypto::Sha256;
use pinning_netsim::faults::MeasurementError;
use pinning_pki::encode::{Reader, Writer};
use pinning_pki::validate::clear_validation_cache;
use pinning_report::tables::{table_run_health, RunHealthReport};
use pinning_resilience::media::{Media, MediaError, VecMedia};
use pinning_resilience::recovery::{append_frame, scrub_frames, ScrubStats};
use pinning_store::config::WorldConfig;
use pinning_store::shard::StreamWorld;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Streaming run parameters.
///
/// Only [`StreamConfig::world`] participates in the journal fingerprint:
/// shard size, thread count, in-flight bound, and the kill hook are
/// *scheduling* knobs, and a journal written under one schedule must
/// resume cleanly under another (that is the whole point of the
/// determinism contract).
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// World recipe (the only fingerprinted field).
    pub world: WorldConfig,
    /// Products per generated shard (apps ≈ 2× this, one per platform
    /// plus single-platform tails).
    pub shard_size: usize,
    /// Worker threads.
    pub threads: usize,
    /// Maximum shards materialized at once — the memory ceiling.
    pub max_inflight_shards: usize,
    /// Test hook: simulate the process dying after N shard commits.
    pub kill_after_shards: Option<usize>,
}

impl StreamConfig {
    /// A streaming config over the given world with sane scheduling
    /// defaults (single worker, two shards in flight).
    pub fn new(world: WorldConfig, shard_size: usize) -> StreamConfig {
        StreamConfig {
            world,
            shard_size,
            threads: 1,
            max_inflight_shards: 2,
            kill_after_shards: None,
        }
    }

    /// Journal compatibility fingerprint. Scheduling knobs are excluded
    /// on purpose: resuming a journal at a different thread count or
    /// shard size must work and must not change the report.
    pub fn fingerprint(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"stream-v1|");
        h.update(format!("{:?}", self.world).as_bytes());
        h.finalize()
    }
}

/// Magic prefix of the shard journal (version 1).
pub const STREAM_JOURNAL_MAGIC: &[u8; 8] = b"STRMJRN1";
const HEADER_LEN: usize = 40;
const FRAME_LEN: usize = pinning_resilience::recovery::FRAME_OVERHEAD;

/// Append-only shard journal over a [`Media`]: one frame per completed
/// shard, carrying that shard's encoded accumulator. Same physical
/// layout as the per-app [`crate::ResultJournal`] —
/// `[len u32 LE][sha256(payload)][payload]` frames after a
/// magic+fingerprint header — read back through the same shared
/// scrubbing recovery. The default [`VecMedia`] is byte-identical to the
/// pre-`Media` journal.
#[derive(Debug, Clone)]
pub struct StreamJournal<M: Media = VecMedia> {
    media: M,
    frames: usize,
}

impl StreamJournal<VecMedia> {
    /// Starts an empty in-memory journal bound to a config fingerprint.
    pub fn create(fingerprint: [u8; 32]) -> StreamJournal {
        StreamJournal::create_on(VecMedia::new(), fingerprint)
            .expect("VecMedia never refuses a write")
    }

    /// Appends one completed shard's accumulator (infallible on perfect
    /// media).
    pub fn append_shard(&mut self, shard_index: u64, accum: &StreamAccum) {
        self.try_append_shard(shard_index, accum)
            .expect("VecMedia never refuses a write")
    }

    /// The on-disk byte image.
    pub fn as_bytes(&self) -> &[u8] {
        self.media.bytes()
    }

    /// Consumes the journal into its byte image.
    pub fn into_bytes(self) -> Vec<u8> {
        self.media.into_bytes()
    }

    /// Scrubs a journal image, recovering every intact shard frame.
    ///
    /// Torn tails, flipped bits, wild lengths, and duplicated segments
    /// are quarantined by the shared [`scrub_frames`] reader — which
    /// resyncs past mid-journal damage, so a broken earlier frame no
    /// longer forfeits every later shard — with the damage accounted in
    /// [`StreamReplay::stats`].
    pub fn open(bytes: &[u8]) -> Result<StreamReplay, JournalError> {
        if bytes.len() < HEADER_LEN {
            return Err(JournalError::TooShort);
        }
        if &bytes[..8] != STREAM_JOURNAL_MAGIC {
            return Err(JournalError::BadMagic);
        }
        let mut fingerprint = [0u8; 32];
        fingerprint.copy_from_slice(&bytes[8..HEADER_LEN]);

        let recovered = scrub_frames(bytes, HEADER_LEN);
        let mut stats = recovered.stats;
        let mut shards: BTreeMap<u64, StreamAccum> = BTreeMap::new();
        for payload in recovered.frames {
            let mut r = Reader::new(payload);
            let parsed = (|| {
                let index = r.u64().ok()?;
                let accum = StreamAccum::decode(&r.bytes().ok()?).ok()?;
                r.is_empty().then_some((index, accum))
            })();
            match parsed {
                // Shard frames are idempotent: if damage elsewhere caused
                // a re-commit, the accumulators are identical by
                // construction, so last-wins insertion is safe.
                Some((index, accum)) => {
                    shards.insert(index, accum);
                }
                // Checksum-valid but undecodable: version skew.
                // Quarantine the frame; shards are independent.
                None => {
                    stats.quarantined_bytes += (FRAME_LEN + payload.len()) as u64;
                    stats.quarantined_records += 1;
                }
            }
        }
        Ok(StreamReplay {
            fingerprint,
            shards,
            stats,
        })
    }
}

impl<M: Media> StreamJournal<M> {
    /// Starts an empty journal written through `media`: resets the
    /// medium, writes the header, and flushes it.
    pub fn create_on(mut media: M, fingerprint: [u8; 32]) -> Result<StreamJournal<M>, MediaError> {
        media.reset();
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(STREAM_JOURNAL_MAGIC);
        header.extend_from_slice(&fingerprint);
        media.append(&header)?;
        media.flush()?;
        Ok(StreamJournal { media, frames: 0 })
    }

    /// Appends one completed shard's accumulator through the medium,
    /// with a flush barrier so the commit is durable on return (honest
    /// media).
    pub fn try_append_shard(
        &mut self,
        shard_index: u64,
        accum: &StreamAccum,
    ) -> Result<(), MediaError> {
        let mut w = Writer::new();
        w.u64(shard_index);
        w.bytes(&accum.encode());
        let payload = w.into_bytes();
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
        append_frame(&mut frame, &payload);
        self.media.append(&frame)?;
        self.media.flush()?;
        self.frames += 1;
        Ok(())
    }

    /// Shard frames committed so far.
    pub fn len(&self) -> usize {
        self.frames
    }

    /// True when no shard has been committed.
    pub fn is_empty(&self) -> bool {
        self.frames == 0
    }

    /// Borrow of the backing medium.
    pub fn media(&self) -> &M {
        &self.media
    }

    /// Mutable borrow of the backing medium (e.g. to crash it).
    pub fn media_mut(&mut self) -> &mut M {
        &mut self.media
    }

    /// Consumes the journal, returning the backing medium.
    pub fn into_media(self) -> M {
        self.media
    }
}

/// Recovered contents of a scrubbed shard journal.
#[derive(Debug, Clone)]
pub struct StreamReplay {
    /// Fingerprint of the config the journal was written under.
    pub fingerprint: [u8; 32],
    /// Committed shard accumulators, by shard index.
    pub shards: BTreeMap<u64, StreamAccum>,
    /// Quarantine and repair accounting from the scrub pass (all zero =
    /// the journal read back exactly as written).
    pub stats: ScrubStats,
}

/// Volatile run telemetry — everything here may differ between two runs
/// that render byte-identical reports.
#[derive(Debug, Clone, Default)]
pub struct StreamHealth {
    /// Shards in the whole study.
    pub shards_total: usize,
    /// Shards recovered from the journal instead of re-measured.
    pub shards_resumed: usize,
    /// Shards measured by this process.
    pub shards_fresh: usize,
    /// Apps measured by this process (resumed shards excluded).
    pub apps_measured: u64,
    /// Worker panics converted into degraded records.
    pub panics_recovered: u64,
    /// Wall-clock seconds of the measuring phase.
    pub elapsed_secs: f64,
    /// Peak resident-set size (VmHWM), KiB; `None` off Linux.
    pub peak_rss_kib: Option<u64>,
    /// Fresh apps per wall-clock second.
    pub apps_per_sec: Option<f64>,
    /// Journal scrub accounting from the resume that seeded this run
    /// (all zero for a fresh run or a clean journal).
    pub recovery: ScrubStats,
}

/// A finished streaming study.
#[derive(Debug, Clone)]
pub struct StreamResults {
    /// The merged accumulator — sole input of the deterministic report.
    pub accum: StreamAccum,
    /// Volatile telemetry for this particular run.
    pub health: StreamHealth,
}

impl StreamResults {
    /// The deterministic streamed report: a pure function of the merged
    /// accumulator, byte-identical across thread counts and shard sizes.
    pub fn render_report(&self) -> String {
        self.accum.render()
    }

    /// The volatile run-health table (timings, RSS, resume counters,
    /// journal repair accounting).
    pub fn render_health(&self) -> String {
        table_run_health(&RunHealthReport {
            panics_recovered: self.health.panics_recovered.min(u32::MAX as u64) as u32,
            journal_truncations: u32::from(!self.health.recovery.is_clean()),
            quarantined_bytes: self.health.recovery.quarantined_bytes,
            quarantined_records: self.health.recovery.quarantined_records,
            journal_repairs: self.health.recovery.repairs,
            checkpoints_recovered: self.health.recovery.checkpoints_recovered,
            resumed_apps: (self.accum.apps - self.health.apps_measured) as usize,
            fresh_apps: self.health.apps_measured as usize,
            peak_rss_kib: self.health.peak_rss_kib,
            apps_per_sec: self.health.apps_per_sec,
            ..Default::default()
        })
    }
}

/// How a streaming run ended.
#[derive(Debug)]
pub enum StreamOutcome<M: Media = VecMedia> {
    /// Every shard measured and folded.
    Completed(Box<StreamResults>),
    /// The (simulated) kill fired; the journal holds the committed
    /// shards and a resume will finish the rest.
    Interrupted {
        /// Journal with every committed shard frame.
        journal: StreamJournal<M>,
        /// Shards committed before the kill.
        shards_committed: usize,
    },
}

/// Reads the process's peak resident-set size from `/proc/self/status`
/// (the `VmHWM` high-water mark), in KiB. `None` where procfs is absent.
pub fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

/// Token gate bounding in-flight materialized shards — the engine's
/// memory ceiling. `acquire` blocks until a slot frees (or the kill
/// flag trips); `release` wakes one waiter.
struct ShardGate {
    slots: Mutex<usize>,
    freed: Condvar,
}

impl ShardGate {
    fn new(slots: usize) -> ShardGate {
        ShardGate {
            slots: Mutex::new(slots.max(1)),
            freed: Condvar::new(),
        }
    }

    /// Blocks for a slot; returns false if the run was killed meanwhile.
    fn acquire(&self, killed: &AtomicBool) -> bool {
        let mut slots = self.slots.lock().expect("gate lock");
        while *slots == 0 {
            if killed.load(Ordering::Acquire) {
                return false;
            }
            slots = self.freed.wait(slots).expect("gate wait");
        }
        *slots -= 1;
        true
    }

    fn release(&self) {
        *self.slots.lock().expect("gate lock") += 1;
        self.freed.notify_one();
    }

    fn wake_all(&self) {
        self.freed.notify_all();
    }
}

/// The streaming engine.
#[derive(Debug, Clone)]
pub struct StreamEngine {
    config: StreamConfig,
}

impl StreamEngine {
    /// Builds an engine over a config.
    pub fn new(config: StreamConfig) -> StreamEngine {
        StreamEngine { config }
    }

    /// Runs the study from scratch over perfect in-memory media.
    pub fn run(&self) -> StreamOutcome {
        let journal = StreamJournal::create(self.config.fingerprint());
        self.execute(journal, BTreeMap::new(), ScrubStats::default())
            .expect("VecMedia never refuses a write")
    }

    /// Runs the study from scratch, journaling through `media` — the
    /// chaos suite's entry point for end-to-end runs over
    /// [`FaultMedia`](pinning_resilience::FaultMedia).
    ///
    /// A medium that refuses a write (e.g. ENOSPC) surfaces as a
    /// structured [`JournalError::Media`], never a panic or a silently
    /// truncated run.
    pub fn run_on_media<M: Media + Send>(
        &self,
        media: M,
    ) -> Result<StreamOutcome<M>, JournalError> {
        let journal = StreamJournal::create_on(media, self.config.fingerprint())?;
        self.execute(journal, BTreeMap::new(), ScrubStats::default())
    }

    /// Resumes from a journal image: committed shards are folded from
    /// their journaled accumulators, only missing shards are measured.
    pub fn resume(&self, journal_bytes: &[u8]) -> Result<StreamOutcome, JournalError> {
        let replay = self.scrubbed_replay(journal_bytes)?;
        // Rebuild the journal from the recovered shards so the resumed
        // file is clean even when the original was damaged.
        let mut journal = StreamJournal::create(replay.fingerprint);
        for (index, accum) in &replay.shards {
            journal.append_shard(*index, accum);
        }
        self.execute(journal, replay.shards, replay.stats)
    }

    /// Resumes from what `media` reads back after a crash: scrubs the
    /// surviving image, rewrites a clean journal through the *same*
    /// medium, and measures only the missing shards.
    pub fn resume_media<M: Media + Send>(
        &self,
        mut media: M,
    ) -> Result<StreamOutcome<M>, JournalError> {
        let image = media.read_back();
        let replay = self.scrubbed_replay(&image)?;
        let mut journal = StreamJournal::create_on(media, replay.fingerprint)?;
        for (index, accum) in &replay.shards {
            journal.try_append_shard(*index, accum)?;
        }
        self.execute(journal, replay.shards, replay.stats)
    }

    fn scrubbed_replay(&self, journal_bytes: &[u8]) -> Result<StreamReplay, JournalError> {
        let replay = StreamJournal::open(journal_bytes)?;
        if replay.fingerprint != self.config.fingerprint() {
            return Err(JournalError::FingerprintMismatch);
        }
        Ok(replay)
    }

    fn execute<M: Media + Send>(
        &self,
        journal: StreamJournal<M>,
        done: BTreeMap<u64, StreamAccum>,
        recovery: ScrubStats,
    ) -> Result<StreamOutcome<M>, JournalError> {
        let start = Instant::now();
        let world = StreamWorld::new(self.config.world.clone(), self.config.shard_size.max(1));
        let universe = world.universe();
        let n_shards = world.n_shards();
        let pending: Vec<usize> = (0..n_shards)
            .filter(|k| !done.contains_key(&(*k as u64)))
            .collect();
        let shards_resumed = done.len();
        let decrypt_key = self.config.world.ios_encryption_seed;
        let seed = self.config.world.seed;

        let threads = self.config.threads.clamp(1, pending.len().max(1));
        // Round-robin initial distribution over per-worker run queues;
        // idle workers steal from the back of the most loaded peer.
        let runs: Vec<Mutex<VecDeque<usize>>> =
            (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, k) in pending.iter().enumerate() {
            runs[i % threads].lock().expect("run lock").push_back(*k);
        }

        let gate = ShardGate::new(self.config.max_inflight_shards);
        let killed = AtomicBool::new(false);
        let apps_measured = AtomicU64::new(0);
        let panics = AtomicU64::new(0);
        // (journal, fresh shard commits) — append + kill-check are atomic
        // under one lock, so a kill after N commits leaves exactly N new
        // frames, mirroring the per-app journal's contract.
        let committed: Mutex<(StreamJournal<M>, usize)> = Mutex::new((journal, 0));
        let kill_after = self.config.kill_after_shards;
        let partials: Mutex<Vec<StreamAccum>> = Mutex::new(Vec::new());
        // First media refusal (e.g. ENOSPC) — it kills the run and is
        // returned as a structured error instead of a silent truncation.
        let media_failure: Mutex<Option<MediaError>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for me in 0..threads {
                let runs = &runs;
                let gate = &gate;
                let killed = &killed;
                let committed = &committed;
                let partials = &partials;
                let media_failure = &media_failure;
                let apps_measured = &apps_measured;
                let panics = &panics;
                let world = &world;
                scope.spawn(move || {
                    let mut partial = StreamAccum::default();
                    loop {
                        if killed.load(Ordering::Acquire) {
                            break;
                        }
                        // Own queue first (front), then steal from the
                        // most loaded peer (back) — the classic deque
                        // split that keeps stolen work coarse.
                        let next = runs[me].lock().expect("run lock").pop_front().or_else(|| {
                            let victim = (0..threads)
                                .filter(|v| *v != me)
                                .max_by_key(|v| runs[*v].lock().expect("run lock").len())?;
                            runs[victim].lock().expect("run lock").pop_back()
                        });
                        let Some(k) = next else { break };
                        if !gate.acquire(killed) {
                            break;
                        }
                        // Materialize, measure, journal, drop. The shard
                        // and its env die at the end of this block — the
                        // gate token is the only thing bounding how many
                        // of these exist at once.
                        {
                            let shard = world.generate_shard(k);
                            let env = DynamicEnv::new(
                                &shard.network,
                                universe.aosp_oem.clone(),
                                universe.ios.clone(),
                                shard.now,
                                seed,
                            );
                            let identity = env.identity.clone();
                            let mut acc = StreamAccum {
                                shards: 1,
                                ..Default::default()
                            };
                            for sa in &shard.apps {
                                let record = catch_unwind(AssertUnwindSafe(|| {
                                    measure_one(&env, sa.product_index, &sa.app, decrypt_key)
                                }))
                                .unwrap_or_else(|_| {
                                    panics.fetch_add(1, Ordering::Relaxed);
                                    AppRecord::failed(
                                        sa.product_index,
                                        sa.app.id.clone(),
                                        Default::default(),
                                        MeasurementError::WorkerPanic,
                                    )
                                });
                                acc.add_app(
                                    &sa.datasets,
                                    sa.app.category.label_on(sa.app.id.platform),
                                    &record,
                                    &identity,
                                );
                            }
                            apps_measured.fetch_add(shard.apps.len() as u64, Ordering::Relaxed);
                            let mut slot = committed.lock().expect("journal lock");
                            if killed.load(Ordering::Acquire) {
                                break; // the process "died" mid-measure
                            }
                            if let Err(e) = slot.0.try_append_shard(k as u64, &acc) {
                                media_failure
                                    .lock()
                                    .expect("media failure lock")
                                    .get_or_insert(e);
                                killed.store(true, Ordering::Release);
                                gate.wake_all();
                                break;
                            }
                            slot.1 += 1;
                            if kill_after == Some(slot.1) {
                                killed.store(true, Ordering::Release);
                                gate.wake_all();
                            }
                            drop(slot);
                            partial.merge(&acc);
                        }
                        // The chain-validation memo is process-global and
                        // would grow with every unique streamed chain;
                        // clearing per shard keeps memory flat. Values are
                        // deterministic, so a clear racing another worker
                        // costs recomputation, never correctness.
                        clear_validation_cache();
                        gate.release();
                    }
                    partials.lock().expect("partials lock").push(partial);
                });
            }
        });

        let (journal, fresh) = committed.into_inner().expect("journal lock");
        if let Some(e) = media_failure.into_inner().expect("media failure lock") {
            return Err(JournalError::Media(e));
        }
        if killed.into_inner() {
            return Ok(StreamOutcome::Interrupted {
                shards_committed: journal.len(),
                journal,
            });
        }

        // Fold: journaled (resumed) shard accumulators + this process's
        // worker partials. merge() is associative + commutative, so the
        // fold order cannot affect the rendered bytes.
        let mut accum = StreamAccum::default();
        for acc in done.values() {
            accum.merge(acc);
        }
        for partial in partials.into_inner().expect("partials lock").iter() {
            accum.merge(partial);
        }

        let elapsed = start.elapsed().as_secs_f64();
        let apps = apps_measured.into_inner();
        Ok(StreamOutcome::Completed(Box::new(StreamResults {
            accum,
            health: StreamHealth {
                shards_total: n_shards,
                shards_resumed,
                shards_fresh: fresh,
                apps_measured: apps,
                panics_recovered: panics.into_inner(),
                elapsed_secs: elapsed,
                peak_rss_kib: peak_rss_kib(),
                apps_per_sec: (elapsed > 0.0).then(|| apps as f64 / elapsed),
                recovery,
            },
        })))
    }
}

/// Measures one streamed app to a record.
///
/// Statics go through the *uncached* analyzer on purpose: every streamed
/// package is unique, so the process-global memo would never hit and
/// would grow without bound — the opposite of the flat-memory goal.
fn measure_one(
    env: &DynamicEnv<'_>,
    product_index: usize,
    app: &pinning_app::app::MobileApp,
    decrypt_key: u64,
) -> AppRecord {
    let static_findings = analyze_package(
        &app.package,
        (app.id.platform == Platform::Ios).then_some(decrypt_key),
    );
    match try_analyze_app(env, app) {
        Ok(dynamic) => {
            let pinned = dynamic.pinned_destinations();
            let circ = (!pinned.is_empty()).then(|| circumvent_app(env, app, &pinned));
            AppRecord::assemble(
                product_index,
                app.id.clone(),
                static_findings,
                &dynamic,
                circ.as_ref(),
            )
        }
        Err(error) => AppRecord::failed(product_index, app.id.clone(), static_findings, error),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(shard_size: usize, threads: usize) -> StreamConfig {
        StreamConfig {
            world: WorldConfig::tiny(11),
            shard_size,
            threads,
            max_inflight_shards: 2,
            kill_after_shards: None,
        }
    }

    fn completed(outcome: StreamOutcome) -> StreamResults {
        match outcome {
            StreamOutcome::Completed(results) => *results,
            StreamOutcome::Interrupted { .. } => panic!("run was interrupted"),
        }
    }

    #[test]
    fn report_is_identical_across_threads_and_shard_sizes() {
        // The tentpole invariant: every (shard size × thread count)
        // schedule renders the same bytes.
        let baseline = completed(StreamEngine::new(config(7, 1)).run()).render_report();
        assert!(baseline.contains("Streamed study report"));
        for (shard_size, threads) in [(7, 4), (13, 1), (13, 3), (64, 2)] {
            let got =
                completed(StreamEngine::new(config(shard_size, threads)).run()).render_report();
            if got != baseline {
                for (a, b) in baseline.lines().zip(got.lines()) {
                    if a != b {
                        eprintln!("baseline: {a}\n     got: {b}");
                    }
                }
            }
            assert_eq!(
                got, baseline,
                "report diverged at shard_size={shard_size} threads={threads}"
            );
        }
    }

    #[test]
    fn kill_and_resume_matches_uninterrupted_run() {
        let clean = completed(StreamEngine::new(config(7, 2)).run());

        let mut cfg = config(7, 2);
        cfg.kill_after_shards = Some(1);
        let StreamOutcome::Interrupted {
            journal,
            shards_committed,
        } = StreamEngine::new(cfg).run()
        else {
            panic!("kill hook did not fire");
        };
        assert_eq!(shards_committed, 1);

        // Resume under a *different* schedule — more threads, and the
        // journal fingerprint must not care.
        let resumed = completed(
            StreamEngine::new(config(7, 3))
                .resume(journal.as_bytes())
                .expect("journal resumes"),
        );
        assert!(resumed.health.shards_resumed >= 1);
        assert_eq!(resumed.render_report(), clean.render_report());
    }

    #[test]
    fn resume_rejects_foreign_fingerprint() {
        let journal =
            StreamJournal::create(StreamConfig::new(WorldConfig::tiny(1), 8).fingerprint());
        let other = StreamEngine::new(StreamConfig::new(WorldConfig::tiny(2), 8));
        assert!(matches!(
            other.resume(journal.as_bytes()),
            Err(JournalError::FingerprintMismatch)
        ));
    }

    #[test]
    fn torn_journal_tail_is_quarantined() {
        let mut cfg = config(7, 1);
        cfg.kill_after_shards = Some(2);
        let StreamOutcome::Interrupted { journal, .. } = StreamEngine::new(cfg).run() else {
            panic!("kill hook did not fire");
        };
        let bytes = journal.into_bytes();

        // Truncate mid-frame: the first shard survives, the tail is
        // quarantined rather than corrupting the replay.
        let torn = &bytes[..bytes.len() - 7];
        let replay = StreamJournal::open(torn).expect("header intact");
        assert_eq!(replay.shards.len(), 1);
        assert!(replay.stats.quarantined_bytes > 0);

        // Flip a payload byte: same outcome via the frame digest.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        let replay = StreamJournal::open(&flipped).expect("header intact");
        assert_eq!(replay.shards.len(), 1);
        assert!(replay.stats.quarantined_bytes > 0);
    }

    #[test]
    fn faultless_fault_media_run_matches_vec_media_run() {
        use pinning_resilience::media::{FaultMedia, MediaFaultPlan};
        let clean = completed(StreamEngine::new(config(7, 2)).run());
        let outcome = StreamEngine::new(config(7, 2))
            .run_on_media(FaultMedia::new(MediaFaultPlan::none(99)))
            .expect("fault-free media never refuses");
        let StreamOutcome::Completed(results) = outcome else {
            panic!("no kill hook set");
        };
        assert_eq!(results.render_report(), clean.render_report());
    }

    #[test]
    fn nospace_mid_stream_is_a_structured_error() {
        use pinning_resilience::media::{FaultMedia, MediaFaultPlan};
        // Room for the header and roughly one shard frame, then ENOSPC.
        let outcome = StreamEngine::new(config(7, 1))
            .run_on_media(FaultMedia::new(MediaFaultPlan::tight(4, 600)));
        assert!(
            matches!(outcome, Err(JournalError::Media(MediaError::NoSpace))),
            "a full medium must surface as a structured error, got {outcome:?}"
        );
    }

    #[test]
    fn scheduling_knobs_do_not_change_fingerprint() {
        let a = config(7, 1).fingerprint();
        let b = config(512, 8).fingerprint();
        assert_eq!(a, b, "shard size / threads must not fingerprint");
        let mut c = config(7, 1);
        c.world.seed ^= 1;
        assert_ne!(a, c.fingerprint(), "world changes must fingerprint");
    }

    #[test]
    fn health_reports_throughput_and_rss() {
        let results = completed(StreamEngine::new(config(13, 2)).run());
        assert!(results.health.apps_measured > 0);
        assert!(results.health.apps_per_sec.unwrap_or(0.0) > 0.0);
        let health = results.render_health();
        assert!(health.contains("throughput (apps/sec)"));
        assert!(health.contains("peak RSS (KiB)"));
    }
}
