//! The study driver: a supervised, journaled, resumable measurement run.
//!
//! [`Study::run`] still presents the original all-in-one interface, but
//! underneath every run is supervised: apps are pulled from a shared work
//! queue by panic-isolated workers, each completed app is committed to a
//! write-ahead [`ResultJournal`], and [`StudyResults`] is materialized by
//! *replaying* that journal against the regenerated world. Because an
//! uninterrupted run and a [`Study::resume`] from a partial journal
//! materialize through the same replay path, their results are identical
//! byte for byte.

use crate::journal::{AppOutcome, JournalEntry, JournalError, ResultJournal};
use crate::record::AppRecord;
use pinning_analysis::circumvent::circumvent_app;
use pinning_analysis::dynamics::pipeline::{try_analyze_app, DynamicEnv, RetryPolicy};
use pinning_analysis::statics::analyze_package_cached;
use pinning_app::pii::DeviceIdentity;
use pinning_app::platform::Platform;
use pinning_crypto::sha256;
use pinning_netsim::breaker::BreakerConfig;
use pinning_netsim::faults::{FaultConfig, MeasurementError};
use pinning_store::config::WorldConfig;
use pinning_store::datasets::{
    build_datasets, collision_report, CollisionReport, Dataset, DatasetKind,
};
use pinning_store::world::World;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Supervision knobs: watchdog telemetry plus the crash/kill test hooks.
#[derive(Debug, Clone, Default)]
pub struct SupervisorConfig {
    /// Wall-clock watchdog per app, seconds (0 = disabled). Telemetry
    /// only: a breach is counted in [`RunHealth`] — it never aborts the
    /// app or alters results, because wall-clock time must not influence
    /// the deterministic measurement.
    pub watchdog_secs: u64,
    /// Test hook: stop committing after exactly this many *fresh* apps,
    /// simulating the process dying mid-run. The run returns
    /// [`StudyOutcome::Interrupted`] with the journal as written so far.
    pub kill_after_apps: Option<usize>,
    /// Test hook: panic the worker measuring this app index, exercising
    /// the supervisor's panic isolation.
    pub inject_panic_app: Option<usize>,
}

impl SupervisorConfig {
    /// Production defaults: 5-minute watchdog, no injected failures.
    pub fn standard() -> Self {
        SupervisorConfig {
            watchdog_secs: 300,
            kill_after_apps: None,
            inject_panic_app: None,
        }
    }
}

/// Study configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// World-generation knobs.
    pub world: WorldConfig,
    /// Worker threads for the per-app pipeline (1 = sequential).
    pub threads: usize,
    /// Test-bed fault rates (all zero by default).
    pub faults: FaultConfig,
    /// Retry policy for faulted run pairs.
    pub retry: RetryPolicy,
    /// Per-endpoint circuit-breaker tuning (`None` = disabled). Breakers
    /// only feed on injected faults, so a fault-free study is unaffected
    /// either way.
    pub breaker: Option<BreakerConfig>,
    /// Supervision knobs (watchdog + test hooks). Deliberately excluded
    /// from [`StudyConfig::fingerprint`]: killing or panicking a run must
    /// not change what journal its survivors belong to.
    pub supervisor: SupervisorConfig,
}

impl StudyConfig {
    /// Paper-scale study.
    pub fn paper_scale(seed: u64) -> Self {
        let world = WorldConfig::paper_scale(seed);
        // Unique apps never exceed both platforms' dataset draws; more
        // workers than that would just idle.
        let max_useful = 2 * (world.common_size + world.popular_size + world.random_size);
        StudyConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(max_useful.max(1)),
            world,
            faults: FaultConfig::none(),
            retry: RetryPolicy::default(),
            breaker: Some(BreakerConfig::default()),
            supervisor: SupervisorConfig::standard(),
        }
    }

    /// Miniature study for tests/doctests.
    pub fn tiny(seed: u64) -> Self {
        StudyConfig {
            world: WorldConfig::tiny(seed),
            threads: 2,
            faults: FaultConfig::none(),
            retry: RetryPolicy::default(),
            breaker: Some(BreakerConfig::default()),
            supervisor: SupervisorConfig::standard(),
        }
    }

    /// Fingerprint of everything that determines measurement *results*:
    /// world, faults, retry, breaker. Threads and supervision are excluded
    /// — they change scheduling and survival, never observables — so a
    /// journal written by a killed 8-worker run resumes cleanly on 1.
    pub fn fingerprint(&self) -> [u8; 32] {
        let repr = format!(
            "{:?}|{:?}|{:?}|{:?}",
            self.world, self.faults, self.retry, self.breaker
        );
        sha256(repr.as_bytes())
    }

    /// A fresh write-ahead journal bound to this configuration.
    pub fn journal(&self) -> ResultJournal {
        ResultJournal::create(self.fingerprint())
    }
}

/// Run-health telemetry: what the supervision layer absorbed so the study
/// could finish. Rendered by `tables::render_run_health`, deliberately
/// *outside* the deterministic report tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunHealth {
    /// Worker panics converted into degraded records.
    pub panics_recovered: u32,
    /// Circuit-breaker trips summed over all apps.
    pub breaker_trips: u32,
    /// Apps whose wall-clock measurement exceeded the watchdog deadline.
    pub watchdog_breaches: u32,
    /// Journals that lost records to corruption during this run's resume.
    pub journal_truncations: u32,
    /// Bytes quarantined by the journal scrubber (damaged spans, torn
    /// tails, dropped duplicates).
    pub quarantined_bytes: u64,
    /// Whole records destroyed by mid-journal damage.
    pub quarantined_records: u32,
    /// Self-heals: resyncs past damage plus dropped duplicate segments.
    pub journal_repairs: u32,
    /// Checkpoint loads that fell back past a damaged slot.
    pub checkpoints_recovered: u32,
    /// Apps recovered from the journal instead of re-measured.
    pub resumed_apps: usize,
    /// Apps measured by this process.
    pub fresh_apps: usize,
    /// Epoch engine only: apps whose verdict was replayed from the prior
    /// epoch because their fingerprint was clean (0 outside epoch runs).
    pub replayed_prior_epoch: usize,
    /// Epoch engine only: apps re-measured because an epoch event dirtied
    /// their fingerprint (0 outside epoch runs).
    pub reanalyzed_dirty: usize,
    /// Baseline snapshot of every derived-value cache, taken when the
    /// study started executing. `render_run_health` diffs the live
    /// counters against this, so the reported hit/miss rows cover the
    /// whole run *including* render-time work (Table 6 classification,
    /// the CT auditor's batched proofs). Empty when caching was
    /// disabled for the whole run.
    pub cache_base: Vec<pinning_pki::cache::CacheStat>,
}

impl RunHealth {
    /// Folds one journal scrub's quarantine/repair accounting into the
    /// run-health counters.
    pub fn absorb_scrub(&mut self, stats: pinning_resilience::ScrubStats) {
        self.quarantined_bytes += stats.quarantined_bytes;
        self.quarantined_records += stats.quarantined_records;
        self.journal_repairs += stats.repairs;
        self.checkpoints_recovered += stats.checkpoints_recovered;
    }
}

/// Snapshots every derived-value cache the study exercises, in stable
/// order: the pki certificate/validation caches, the CT proof-batch
/// counter, and the analysis classification memo.
pub(crate) fn cache_snapshot() -> Vec<pinning_pki::cache::CacheStat> {
    let mut stats = pinning_pki::cache::snapshot_all();
    stats.push(pinning_ctlog::merkle::PROOF_BATCH.snapshot());
    stats.push(pinning_analysis::certs::PKI_CLASSIFICATION.snapshot());
    stats.push(pinning_analysis::statics::STATIC_SCAN.snapshot());
    stats.push(pinning_analysis::pii::PII_SCAN.snapshot());
    stats
}

/// How a journaled run ended.
#[derive(Debug)]
pub enum StudyOutcome {
    /// Every app committed; the full results.
    Completed(Box<StudyResults>),
    /// The run was killed (via [`SupervisorConfig::kill_after_apps`])
    /// before finishing; the journal holds every committed app and can be
    /// fed to [`Study::resume`].
    Interrupted {
        /// The journal as written up to the kill.
        journal: ResultJournal,
        /// Total committed apps (resumed + fresh).
        apps_committed: usize,
    },
}

/// The study: configuration plus the run methods.
#[derive(Debug)]
pub struct Study {
    config: StudyConfig,
}

impl Study {
    /// Creates a study.
    pub fn new(config: StudyConfig) -> Self {
        Study { config }
    }

    /// Runs everything: world → datasets → per-app static/dynamic/
    /// circumvention → compact records.
    ///
    /// Never panics under fault injection: an app whose measurement keeps
    /// degrading past the retry budget becomes an [`AppRecord::failed`]
    /// record (static findings kept, dynamic observables empty) and shows
    /// up in [`StudyResults::degraded_apps`]. A worker that *panics* is
    /// likewise contained: the app degrades with
    /// [`MeasurementError::WorkerPanic`] and the study completes.
    ///
    /// Panics if the configuration requests a kill
    /// ([`SupervisorConfig::kill_after_apps`]) — interruptible runs must
    /// use [`Study::run_with_journal`] to keep the journal.
    pub fn run(self) -> StudyResults {
        let journal = self.config.journal();
        match self.run_with_journal(journal) {
            Ok(StudyOutcome::Completed(results)) => *results,
            Ok(StudyOutcome::Interrupted { .. }) => {
                panic!("kill_after_apps set; use run_with_journal to keep the journal")
            }
            Err(e) => unreachable!("fresh journal always matches its own config: {e}"),
        }
    }

    /// Runs the study against an existing journal, committing each app as
    /// it completes and skipping apps the journal already holds.
    ///
    /// Errors if the journal's fingerprint belongs to a different
    /// configuration. Returns [`StudyOutcome::Interrupted`] only when
    /// [`SupervisorConfig::kill_after_apps`] fires.
    pub fn run_with_journal(self, journal: ResultJournal) -> Result<StudyOutcome, JournalError> {
        self.execute(journal, RunHealth::default())
    }

    /// Resumes a study from a journal image (e.g. read back from disk
    /// after a crash): recovers the intact prefix, re-measures only the
    /// missing apps, and materializes results identical to an
    /// uninterrupted run of the same configuration.
    ///
    /// Damaged trailing records are quarantined (their apps are simply
    /// re-measured) and counted in [`RunHealth`]; a damaged *header* or a
    /// fingerprint from a different configuration is an error.
    pub fn resume(self, journal_bytes: &[u8]) -> Result<StudyOutcome, JournalError> {
        let replay = ResultJournal::open(journal_bytes)?;
        if replay.fingerprint != self.config.fingerprint() {
            return Err(JournalError::FingerprintMismatch);
        }
        let mut health = RunHealth::default();
        if replay.truncated() {
            health.journal_truncations = 1;
            health.absorb_scrub(replay.stats);
        }
        // Rebuild a clean journal from the recovered records: encoding is
        // deterministic, so this both self-heals the damage and keeps
        // append working.
        let mut journal = self.config.journal();
        for entry in &replay.entries {
            journal.append(entry);
        }
        self.execute(journal, health)
    }

    /// Runs the study against a *pre-built* world instead of regenerating
    /// one from the configuration — the epoch engine's entry point, where
    /// the world has been evolved past what `World::generate` would
    /// produce. `fingerprint` identifies the (world, epoch) the journal
    /// belongs to; the journal may already hold entries (replayed clean
    /// apps, or a resumed partial epoch), which are kept verbatim.
    pub fn run_on_world(
        self,
        world: World,
        journal: ResultJournal,
        fingerprint: [u8; 32],
    ) -> Result<StudyOutcome, JournalError> {
        self.execute_on(world, journal, RunHealth::default(), fingerprint)
    }

    /// [`Study::resume`] for a pre-built world: recovers the journal's
    /// intact prefix and re-measures only the missing apps.
    pub fn resume_on_world(
        self,
        world: World,
        journal_bytes: &[u8],
        fingerprint: [u8; 32],
    ) -> Result<StudyOutcome, JournalError> {
        let replay = ResultJournal::open(journal_bytes)?;
        if replay.fingerprint != fingerprint {
            return Err(JournalError::FingerprintMismatch);
        }
        let mut health = RunHealth::default();
        if replay.truncated() {
            health.journal_truncations = 1;
            health.absorb_scrub(replay.stats);
        }
        let mut journal = ResultJournal::create(fingerprint);
        for entry in &replay.entries {
            journal.append(entry);
        }
        self.execute_on(world, journal, health, fingerprint)
    }

    fn execute(
        self,
        journal: ResultJournal,
        health: RunHealth,
    ) -> Result<StudyOutcome, JournalError> {
        let fingerprint = self.config.fingerprint();
        let world = World::generate(self.config.world.clone());
        self.execute_on(world, journal, health, fingerprint)
    }

    fn execute_on(
        self,
        world: World,
        journal: ResultJournal,
        mut health: RunHealth,
        fingerprint: [u8; 32],
    ) -> Result<StudyOutcome, JournalError> {
        health.cache_base = cache_snapshot();
        let replay = ResultJournal::open(journal.as_bytes())?;
        if replay.fingerprint != fingerprint {
            return Err(JournalError::FingerprintMismatch);
        }
        let done: BTreeSet<usize> = replay
            .entries
            .iter()
            .map(|e| e.app_index as usize)
            .collect();
        health.resumed_apps = done.len();

        let datasets = build_datasets(&world);
        let collisions = collision_report(&datasets);

        // Unique apps across all datasets; only the not-yet-committed ones
        // go on the work queue. The adversarial cohort lives
        // outside the store listings (so dataset sampling is untouched) but
        // is measured alongside them: every hostile app must surface as a
        // structured `MalformedInput` failure, never a crash.
        let unique: BTreeSet<usize> = datasets
            .iter()
            .flat_map(|d| d.app_indices.iter().copied())
            .chain(world.hostile_apps.iter().copied())
            .collect();
        let pending: Vec<usize> = unique
            .iter()
            .copied()
            .filter(|i| !done.contains(i))
            .collect();

        let mut env = DynamicEnv::new(
            &world.network,
            world.universe.aosp_oem.clone(),
            world.universe.ios.clone(),
            world.now,
            self.config.world.seed,
        )
        .with_faults(self.config.faults)
        .with_retry(self.config.retry);
        if let Some(b) = self.config.breaker {
            env = env.with_breaker(b);
        }
        let env = env;
        let identity = env.identity.clone();
        let decrypt_key = self.config.world.ios_encryption_seed;

        // One app, measured to a journal-ready outcome. Static findings
        // are *not* measured here — they are recomputed deterministically
        // at materialization, so the journal stays small.
        let measure = |app_index: usize| -> AppOutcome {
            let app = &world.apps[app_index];
            if self.config.supervisor.inject_panic_app == Some(app_index) {
                panic!("injected worker panic (supervisor test hook)");
            }
            match try_analyze_app(&env, app) {
                Ok(dynamic) => {
                    let pinned = dynamic.pinned_destinations();
                    let circ = (!pinned.is_empty()).then(|| circumvent_app(&env, app, &pinned));
                    // Assemble once to reuse the record's extraction logic,
                    // then keep only the journalable observables.
                    let record = AppRecord::assemble(
                        app_index,
                        app.id.clone(),
                        Default::default(),
                        &dynamic,
                        circ.as_ref(),
                    );
                    AppOutcome::Measured(Box::new(record.to_measured()))
                }
                Err(error) => AppOutcome::Failed(error),
            }
        };

        // The supervisor: a shared work queue drained by panic-isolated
        // workers, committing one journal record per completed app under a
        // single lock (append + kill-check are atomic, so a kill after N
        // commits leaves exactly N records).
        let killed = AtomicBool::new(false);
        let watchdog_breaches = AtomicU32::new(0);
        let queue: Mutex<VecDeque<usize>> = Mutex::new(pending.iter().copied().collect());
        // (journal, fresh commits this process)
        let committed: Mutex<(ResultJournal, usize)> = Mutex::new((journal, 0));
        let kill_after = self.config.supervisor.kill_after_apps;
        let watchdog = Duration::from_secs(self.config.supervisor.watchdog_secs);
        let threads = self.config.threads.max(1).min(pending.len().max(1));

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    if killed.load(Ordering::Acquire) {
                        return;
                    }
                    let Some(app_index) = queue.lock().expect("queue lock").pop_front() else {
                        return;
                    };
                    let started = Instant::now();
                    // Panic isolation: a crashing pipeline degrades this
                    // one app instead of poisoning the whole run.
                    let outcome = match catch_unwind(AssertUnwindSafe(|| measure(app_index))) {
                        Ok(outcome) => outcome,
                        Err(_) => AppOutcome::Failed(MeasurementError::WorkerPanic),
                    };
                    if !watchdog.is_zero() && started.elapsed() > watchdog {
                        watchdog_breaches.fetch_add(1, Ordering::Relaxed);
                    }
                    let mut slot = committed.lock().expect("journal lock");
                    if killed.load(Ordering::Acquire) {
                        return; // the process "died" while we measured
                    }
                    slot.0.append(&JournalEntry {
                        app_index: app_index as u64,
                        outcome,
                    });
                    slot.1 += 1;
                    if kill_after == Some(slot.1) {
                        killed.store(true, Ordering::Release);
                        return;
                    }
                });
            }
        });

        health.watchdog_breaches = watchdog_breaches.into_inner();
        let (journal, fresh) = committed.into_inner().expect("journal lock");
        health.fresh_apps = fresh;
        if killed.into_inner() {
            return Ok(StudyOutcome::Interrupted {
                apps_committed: journal.len(),
                journal,
            });
        }

        // Materialize results by replaying the finished journal: records
        // come from committed observables plus world-derived statics, so an
        // uninterrupted run and a resume produce identical results.
        let replay = ResultJournal::open(journal.as_bytes())
            .expect("journal written by this process is intact");
        let mut records: BTreeMap<usize, AppRecord> = BTreeMap::new();
        for entry in &replay.entries {
            let app_index = entry.app_index as usize;
            let app = &world.apps[app_index];
            let static_findings = analyze_package_cached(
                &app.package,
                (app.id.platform == Platform::Ios).then_some(decrypt_key),
            );
            let record = match &entry.outcome {
                AppOutcome::Measured(m) => {
                    health.breaker_trips += m.breaker_trips;
                    AppRecord::from_measured(app_index, app.id.clone(), static_findings, m)
                }
                AppOutcome::Failed(error) => {
                    if *error == MeasurementError::WorkerPanic {
                        health.panics_recovered += 1;
                    }
                    AppRecord::failed(app_index, app.id.clone(), static_findings, *error)
                }
            };
            records.insert(app_index, record);
        }

        Ok(StudyOutcome::Completed(Box::new(StudyResults {
            world,
            datasets,
            collisions,
            records,
            identity,
            health,
        })))
    }
}

/// All study outputs.
#[derive(Debug)]
pub struct StudyResults {
    /// The generated world (ground truth + infrastructure).
    pub world: World,
    /// The six datasets.
    pub datasets: Vec<Dataset>,
    /// §3's collision accounting.
    pub collisions: CollisionReport,
    /// Per-app measurement records, keyed by app index.
    pub records: BTreeMap<usize, AppRecord>,
    /// The test-device identity used for PII detection.
    pub identity: DeviceIdentity,
    /// Supervision telemetry for this run (not part of the deterministic
    /// report tables: a resumed run legitimately differs here).
    pub health: RunHealth,
}

impl StudyResults {
    /// The dataset of a given kind/platform.
    pub fn dataset(&self, kind: DatasetKind, platform: Platform) -> &Dataset {
        self.datasets
            .iter()
            .find(|d| d.kind == kind && d.platform == platform)
            .expect("all six datasets exist")
    }

    /// Records of one dataset, in dataset order.
    pub fn dataset_records(&self, kind: DatasetKind, platform: Platform) -> Vec<&AppRecord> {
        self.dataset(kind, platform)
            .app_indices
            .iter()
            .map(|i| &self.records[i])
            .collect()
    }

    /// Unique records for a platform across all datasets.
    pub fn platform_records(&self, platform: Platform) -> Vec<&AppRecord> {
        self.records
            .values()
            .filter(|r| r.id.platform == platform)
            .collect()
    }

    /// Number of pinning apps in one dataset.
    pub fn pinning_count(&self, kind: DatasetKind, platform: Platform) -> usize {
        self.dataset_records(kind, platform)
            .iter()
            .filter(|r| r.pins())
            .count()
    }

    /// Apps whose dynamic measurement degraded, with the responsible
    /// error, in app-index order.
    pub fn degraded_apps(&self) -> Vec<(&AppRecord, MeasurementError)> {
        self.records
            .values()
            .filter_map(|r| r.error.map(|e| (r, e)))
            .collect()
    }

    /// Error-class histogram over degraded apps (the summary table's
    /// input). Empty when every measurement completed.
    pub fn degraded_summary(&self) -> BTreeMap<MeasurementError, usize> {
        let mut counts = BTreeMap::new();
        for (_, e) in self.degraded_apps() {
            *counts.entry(e).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> StudyResults {
        Study::new(StudyConfig::tiny(0x57D7)).run()
    }

    fn completed(outcome: StudyOutcome) -> StudyResults {
        match outcome {
            StudyOutcome::Completed(r) => *r,
            StudyOutcome::Interrupted { apps_committed, .. } => {
                panic!("expected completion, interrupted after {apps_committed}")
            }
        }
    }

    #[test]
    fn run_produces_all_datasets_and_records() {
        let r = results();
        assert_eq!(r.datasets.len(), 6);
        for d in &r.datasets {
            for idx in &d.app_indices {
                assert!(r.records.contains_key(idx), "missing record for app {idx}");
            }
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let mut cfg_seq = StudyConfig::tiny(0xAA);
        cfg_seq.threads = 1;
        let mut cfg_par = StudyConfig::tiny(0xAA);
        cfg_par.threads = 4;
        let a = Study::new(cfg_seq).run();
        let b = Study::new(cfg_par).run();
        assert_eq!(a.records.len(), b.records.len());
        for (idx, ra) in &a.records {
            let rb = &b.records[idx];
            assert_eq!(ra.pinned_destinations, rb.pinned_destinations, "app {idx}");
            assert_eq!(ra.weak_overall, rb.weak_overall);
            assert_eq!(ra.n_handshakes_baseline, rb.n_handshakes_baseline);
        }
    }

    #[test]
    fn pinning_detected_in_some_dataset() {
        let r = results();
        let total: usize = DatasetKind::ALL
            .iter()
            .flat_map(|k| Platform::BOTH.map(|p| r.pinning_count(*k, p)))
            .sum();
        assert!(
            total > 0,
            "a study that finds no pinning reproduces nothing"
        );
    }

    #[test]
    fn detection_is_sound_wrt_ground_truth() {
        let r = results();
        for record in r.records.values() {
            let app = &r.world.apps[record.app_index];
            let truth: BTreeSet<&str> = app.runtime_pinned_domains().into_iter().collect();
            for d in &record.pinned_destinations {
                assert!(truth.contains(d.as_str()), "{}: false positive {d}", app.id);
            }
        }
    }

    #[test]
    fn faulted_study_degrades_gracefully_and_stays_sound() {
        let mut cfg = StudyConfig::tiny(0xFA);
        cfg.faults = FaultConfig::chaos();
        let r = Study::new(cfg).run();
        // Degraded records keep static findings but no dynamic observables.
        for (rec, err) in r.degraded_apps() {
            assert!(rec.pinned_destinations.is_empty());
            assert!(rec.used_destinations.is_empty());
            assert_eq!(rec.error, Some(err));
        }
        assert_eq!(
            r.degraded_summary().values().sum::<usize>(),
            r.degraded_apps().len()
        );
        // Faults must never create pinning false positives.
        for record in r.records.values() {
            let app = &r.world.apps[record.app_index];
            let truth: BTreeSet<&str> = app.runtime_pinned_domains().into_iter().collect();
            for d in &record.pinned_destinations {
                assert!(truth.contains(d.as_str()), "{}: false positive {d}", app.id);
            }
        }
    }

    #[test]
    fn adversarial_cohort_degrades_to_structured_errors() {
        let mut cfg = StudyConfig::tiny(0xAD7);
        cfg.world.adversarial_apps = 8;
        let r = Study::new(cfg).run();
        assert_eq!(r.world.hostile_apps.len(), 8);
        // Every hostile app is measured and classified as malformed input —
        // never a fabricated verdict, never a crash.
        for &i in &r.world.hostile_apps {
            let rec = r.records.get(&i).expect("hostile app measured");
            match rec.error {
                Some(MeasurementError::MalformedInput { .. }) => {}
                other => panic!("hostile app {i} not classified MalformedInput: {other:?}"),
            }
            assert!(rec.pinned_destinations.is_empty());
        }
        let rows = r.resilience_summary();
        let rejected: usize = rows.iter().map(|x| x.rejected).sum();
        let trips: usize = rows.iter().map(|x| x.budget_trips).sum();
        assert_eq!(rejected, 8);
        assert!(
            trips >= 3,
            "deep chains / giant SANs / stacked wildcards must trip budgets, got {trips}"
        );
        assert!(
            rows.iter().filter(|x| x.rejected > 0).count() >= 3,
            "rejections should span multiple layers: {rows:?}"
        );
        assert_eq!(r.health.panics_recovered, 0);
        // The hostile cohort never leaks into the sampled datasets.
        for d in &r.datasets {
            for i in &d.app_indices {
                assert!(!r.world.hostile_apps.contains(i));
            }
        }
        // Deterministic: a rerun renders byte-identically.
        let mut cfg2 = StudyConfig::tiny(0xAD7);
        cfg2.world.adversarial_apps = 8;
        let r2 = Study::new(cfg2).run();
        assert_eq!(r.render_all(), r2.render_all());
    }

    #[test]
    fn clean_study_reports_no_degradation() {
        let r = results();
        assert!(r.degraded_apps().is_empty());
        assert!(r.degraded_summary().is_empty());
        assert_eq!(r.health.panics_recovered, 0);
        assert_eq!(r.health.breaker_trips, 0);
        assert_eq!(r.health.resumed_apps, 0);
        assert_eq!(r.health.fresh_apps, r.records.len());
    }

    #[test]
    fn ios_records_have_static_findings_despite_encryption() {
        let r = results();
        let ios_with_findings = r
            .platform_records(Platform::Ios)
            .iter()
            .filter(|rec| rec.static_findings.has_pin_material())
            .count();
        assert!(
            ios_with_findings > 0,
            "decryption-by-key must unlock iOS scanning"
        );
        assert!(r
            .platform_records(Platform::Ios)
            .iter()
            .all(|rec| !rec.static_findings.scan_blocked_encrypted));
    }

    #[test]
    fn kill_leaves_exactly_n_committed_records() {
        let mut cfg = StudyConfig::tiny(0x4B);
        cfg.supervisor.kill_after_apps = Some(5);
        let journal = cfg.journal();
        match Study::new(cfg).run_with_journal(journal).unwrap() {
            StudyOutcome::Interrupted {
                journal,
                apps_committed,
            } => {
                assert_eq!(apps_committed, 5);
                assert_eq!(journal.len(), 5);
            }
            StudyOutcome::Completed(_) => panic!("kill_after_apps must interrupt"),
        }
    }

    #[test]
    fn resume_completes_a_killed_run() {
        let mut cfg = StudyConfig::tiny(0x4C);
        cfg.supervisor.kill_after_apps = Some(4);
        let journal = cfg.journal();
        let StudyOutcome::Interrupted { journal, .. } =
            Study::new(cfg.clone()).run_with_journal(journal).unwrap()
        else {
            panic!("expected interruption")
        };

        cfg.supervisor.kill_after_apps = None;
        let resumed = completed(Study::new(cfg.clone()).resume(journal.as_bytes()).unwrap());
        let uninterrupted = Study::new(cfg).run();
        assert_eq!(resumed.records.len(), uninterrupted.records.len());
        assert_eq!(resumed.health.resumed_apps, 4);
        assert_eq!(
            resumed.health.resumed_apps + resumed.health.fresh_apps,
            resumed.records.len()
        );
    }

    #[test]
    fn resume_rejects_a_foreign_journal() {
        let journal = StudyConfig::tiny(1).journal();
        let err = Study::new(StudyConfig::tiny(2))
            .resume(journal.as_bytes())
            .unwrap_err();
        assert_eq!(err, JournalError::FingerprintMismatch);
    }

    #[test]
    fn threads_do_not_change_the_fingerprint_but_seeds_do() {
        let mut a = StudyConfig::tiny(7);
        let mut b = StudyConfig::tiny(7);
        b.threads = 64;
        b.supervisor.kill_after_apps = Some(1);
        assert_eq!(a.fingerprint(), b.fingerprint());
        a.world.seed = 8;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn injected_panic_degrades_exactly_that_app() {
        let probe = StudyConfig::tiny(0x9A);
        let victim = *Study::new(probe.clone())
            .run()
            .records
            .keys()
            .next()
            .expect("tiny world has apps");

        let mut cfg = probe;
        cfg.supervisor.inject_panic_app = Some(victim);
        let r = Study::new(cfg).run();
        assert_eq!(
            r.records[&victim].error,
            Some(MeasurementError::WorkerPanic)
        );
        assert_eq!(r.health.panics_recovered, 1);
        let other_degraded = r
            .degraded_apps()
            .iter()
            .filter(|(rec, _)| rec.app_index != victim)
            .count();
        assert_eq!(other_degraded, 0, "panic must degrade exactly one app");
    }
}
