//! The study driver.

use crate::record::AppRecord;
use pinning_analysis::circumvent::circumvent_app;
use pinning_analysis::dynamics::pipeline::{try_analyze_app, DynamicEnv, RetryPolicy};
use pinning_analysis::statics::analyze_package;
use pinning_app::pii::DeviceIdentity;
use pinning_app::platform::Platform;
use pinning_netsim::faults::{FaultConfig, MeasurementError};
use pinning_store::config::WorldConfig;
use pinning_store::datasets::{
    build_datasets, collision_report, CollisionReport, Dataset, DatasetKind,
};
use pinning_store::world::World;
use std::collections::{BTreeMap, BTreeSet};

/// Study configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// World-generation knobs.
    pub world: WorldConfig,
    /// Worker threads for the per-app pipeline (1 = sequential).
    pub threads: usize,
    /// Test-bed fault rates (all zero by default).
    pub faults: FaultConfig,
    /// Retry policy for faulted run pairs.
    pub retry: RetryPolicy,
}

impl StudyConfig {
    /// Paper-scale study.
    pub fn paper_scale(seed: u64) -> Self {
        StudyConfig {
            world: WorldConfig::paper_scale(seed),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            faults: FaultConfig::none(),
            retry: RetryPolicy::default(),
        }
    }

    /// Miniature study for tests/doctests.
    pub fn tiny(seed: u64) -> Self {
        StudyConfig {
            world: WorldConfig::tiny(seed),
            threads: 2,
            faults: FaultConfig::none(),
            retry: RetryPolicy::default(),
        }
    }
}

/// The study: configuration plus the run method.
#[derive(Debug)]
pub struct Study {
    config: StudyConfig,
}

impl Study {
    /// Creates a study.
    pub fn new(config: StudyConfig) -> Self {
        Study { config }
    }

    /// Runs everything: world → datasets → per-app static/dynamic/
    /// circumvention → compact records.
    ///
    /// Never panics under fault injection: an app whose measurement keeps
    /// degrading past the retry budget becomes an [`AppRecord::failed`]
    /// record (static findings kept, dynamic observables empty) and shows
    /// up in [`StudyResults::degraded_apps`].
    pub fn run(self) -> StudyResults {
        let world = World::generate(self.config.world.clone());
        let datasets = build_datasets(&world);
        let collisions = collision_report(&datasets);

        // Unique apps across all datasets.
        let unique: BTreeSet<usize> = datasets
            .iter()
            .flat_map(|d| d.app_indices.iter().copied())
            .collect();
        let unique: Vec<usize> = unique.into_iter().collect();

        let env = DynamicEnv::new(
            &world.network,
            world.universe.aosp_oem.clone(),
            world.universe.ios.clone(),
            world.now,
            self.config.world.seed,
        )
        .with_faults(self.config.faults)
        .with_retry(self.config.retry);
        let identity = env.identity.clone();
        let decrypt_key = self.config.world.ios_encryption_seed;

        let process = |&app_index: &usize| -> (usize, AppRecord) {
            let app = &world.apps[app_index];
            let static_findings = analyze_package(
                &app.package,
                (app.id.platform == Platform::Ios).then_some(decrypt_key),
            );
            let record = match try_analyze_app(&env, app) {
                Ok(dynamic) => {
                    let pinned = dynamic.pinned_destinations();
                    let circ = (!pinned.is_empty()).then(|| circumvent_app(&env, app, &pinned));
                    AppRecord::assemble(
                        app_index,
                        app.id.clone(),
                        static_findings,
                        &dynamic,
                        circ.as_ref(),
                    )
                }
                Err(error) => AppRecord::failed(app_index, app.id.clone(), static_findings, error),
            };
            (app_index, record)
        };

        let records: BTreeMap<usize, AppRecord> = if self.config.threads <= 1 {
            unique.iter().map(process).collect()
        } else {
            let threads = self.config.threads.min(unique.len().max(1));
            let chunk = unique.len().div_ceil(threads);
            let mut collected: Vec<(usize, AppRecord)> = Vec::with_capacity(unique.len());
            let process = &process;
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for part in unique.chunks(chunk.max(1)) {
                    handles.push(scope.spawn(move || part.iter().map(process).collect::<Vec<_>>()));
                }
                for h in handles {
                    collected.extend(h.join().expect("pipeline worker panicked"));
                }
            });
            collected.into_iter().collect()
        };

        StudyResults {
            world,
            datasets,
            collisions,
            records,
            identity,
        }
    }
}

/// All study outputs.
#[derive(Debug)]
pub struct StudyResults {
    /// The generated world (ground truth + infrastructure).
    pub world: World,
    /// The six datasets.
    pub datasets: Vec<Dataset>,
    /// §3's collision accounting.
    pub collisions: CollisionReport,
    /// Per-app measurement records, keyed by app index.
    pub records: BTreeMap<usize, AppRecord>,
    /// The test-device identity used for PII detection.
    pub identity: DeviceIdentity,
}

impl StudyResults {
    /// The dataset of a given kind/platform.
    pub fn dataset(&self, kind: DatasetKind, platform: Platform) -> &Dataset {
        self.datasets
            .iter()
            .find(|d| d.kind == kind && d.platform == platform)
            .expect("all six datasets exist")
    }

    /// Records of one dataset, in dataset order.
    pub fn dataset_records(&self, kind: DatasetKind, platform: Platform) -> Vec<&AppRecord> {
        self.dataset(kind, platform)
            .app_indices
            .iter()
            .map(|i| &self.records[i])
            .collect()
    }

    /// Unique records for a platform across all datasets.
    pub fn platform_records(&self, platform: Platform) -> Vec<&AppRecord> {
        self.records
            .values()
            .filter(|r| r.id.platform == platform)
            .collect()
    }

    /// Number of pinning apps in one dataset.
    pub fn pinning_count(&self, kind: DatasetKind, platform: Platform) -> usize {
        self.dataset_records(kind, platform)
            .iter()
            .filter(|r| r.pins())
            .count()
    }

    /// Apps whose dynamic measurement degraded, with the responsible
    /// error, in app-index order.
    pub fn degraded_apps(&self) -> Vec<(&AppRecord, MeasurementError)> {
        self.records
            .values()
            .filter_map(|r| r.error.map(|e| (r, e)))
            .collect()
    }

    /// Error-class histogram over degraded apps (the summary table's
    /// input). Empty when every measurement completed.
    pub fn degraded_summary(&self) -> BTreeMap<MeasurementError, usize> {
        let mut counts = BTreeMap::new();
        for (_, e) in self.degraded_apps() {
            *counts.entry(e).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> StudyResults {
        Study::new(StudyConfig::tiny(0x57D7)).run()
    }

    #[test]
    fn run_produces_all_datasets_and_records() {
        let r = results();
        assert_eq!(r.datasets.len(), 6);
        for d in &r.datasets {
            for idx in &d.app_indices {
                assert!(r.records.contains_key(idx), "missing record for app {idx}");
            }
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let mut cfg_seq = StudyConfig::tiny(0xAA);
        cfg_seq.threads = 1;
        let mut cfg_par = StudyConfig::tiny(0xAA);
        cfg_par.threads = 4;
        let a = Study::new(cfg_seq).run();
        let b = Study::new(cfg_par).run();
        assert_eq!(a.records.len(), b.records.len());
        for (idx, ra) in &a.records {
            let rb = &b.records[idx];
            assert_eq!(ra.pinned_destinations, rb.pinned_destinations, "app {idx}");
            assert_eq!(ra.weak_overall, rb.weak_overall);
            assert_eq!(ra.n_handshakes_baseline, rb.n_handshakes_baseline);
        }
    }

    #[test]
    fn pinning_detected_in_some_dataset() {
        let r = results();
        let total: usize = DatasetKind::ALL
            .iter()
            .flat_map(|k| Platform::BOTH.map(|p| r.pinning_count(*k, p)))
            .sum();
        assert!(
            total > 0,
            "a study that finds no pinning reproduces nothing"
        );
    }

    #[test]
    fn detection_is_sound_wrt_ground_truth() {
        let r = results();
        for record in r.records.values() {
            let app = &r.world.apps[record.app_index];
            let truth: BTreeSet<&str> = app.runtime_pinned_domains().into_iter().collect();
            for d in &record.pinned_destinations {
                assert!(truth.contains(d.as_str()), "{}: false positive {d}", app.id);
            }
        }
    }

    #[test]
    fn faulted_study_degrades_gracefully_and_stays_sound() {
        let mut cfg = StudyConfig::tiny(0xFA);
        cfg.faults = FaultConfig::chaos();
        let r = Study::new(cfg).run();
        // Degraded records keep static findings but no dynamic observables.
        for (rec, err) in r.degraded_apps() {
            assert!(rec.pinned_destinations.is_empty());
            assert!(rec.used_destinations.is_empty());
            assert_eq!(rec.error, Some(err));
        }
        assert_eq!(
            r.degraded_summary().values().sum::<usize>(),
            r.degraded_apps().len()
        );
        // Faults must never create pinning false positives.
        for record in r.records.values() {
            let app = &r.world.apps[record.app_index];
            let truth: BTreeSet<&str> = app.runtime_pinned_domains().into_iter().collect();
            for d in &record.pinned_destinations {
                assert!(truth.contains(d.as_str()), "{}: false positive {d}", app.id);
            }
        }
    }

    #[test]
    fn clean_study_reports_no_degradation() {
        let r = results();
        assert!(r.degraded_apps().is_empty());
        assert!(r.degraded_summary().is_empty());
    }

    #[test]
    fn ios_records_have_static_findings_despite_encryption() {
        let r = results();
        let ios_with_findings = r
            .platform_records(Platform::Ios)
            .iter()
            .filter(|rec| rec.static_findings.has_pin_material())
            .count();
        assert!(
            ios_with_findings > 0,
            "decryption-by-key must unlock iOS scanning"
        );
        assert!(r
            .platform_records(Platform::Ios)
            .iter()
            .all(|rec| !rec.static_findings.scan_blocked_encrypted));
    }
}
