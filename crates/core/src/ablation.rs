//! Ablations of the paper's design choices (DESIGN.md §5).
//!
//! Each ablation contrasts the paper's technique with a strawman on the
//! same world, quantifying why the methodology is built the way it is.

use pinning_analysis::dynamics::classify::{classify_connection, ConnStatus};
use pinning_analysis::dynamics::detect::{detect_pinned_destinations, Exclusions};
use pinning_analysis::dynamics::pipeline::{
    analyze_app, associated_domains_from_package, DynamicEnv,
};
use pinning_analysis::statics::analyze_package;
use pinning_app::platform::Platform;
use pinning_netsim::flow::Capture;
use pinning_store::world::World;
use std::collections::BTreeSet;

/// Accuracy counts against planted ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Accuracy {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Accuracy {
    /// Precision in [0, 1] (1.0 when nothing was reported).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall in [0, 1] (1.0 when nothing was there to find).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }
}

/// The strawman detector: flag any destination whose MITM-run connections
/// show a fatal alert or client reset — no baseline comparison. This is
/// what §4.2.2 warns against ("these signals may also appear ... for
/// reasons other than pinning").
pub fn naive_alert_detector(mitm: &Capture) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (dest, flows) in mitm.by_destination() {
        let suspicious = flows.iter().any(|f| {
            !f.transcript.plaintext_alerts().is_empty()
                || f.transcript.client_rst()
                || classify_connection(&f.transcript) == ConnStatus::Failed
        });
        if suspicious {
            out.insert(dest.to_string());
        }
    }
    out
}

/// Ablation 1: naive alert counting vs the paper's differential rule,
/// destination-level accuracy over every app in the world.
pub fn naive_vs_differential(world: &World) -> (Accuracy, Accuracy) {
    let env = env_for(world);
    let mut diff = Accuracy::default();
    let mut naive = Accuracy::default();
    for app in &world.apps {
        let truth: BTreeSet<&str> = app.runtime_pinned_domains().into_iter().collect();
        let result = analyze_app(&env, app);
        // Restrict scoring to destinations observed *used* in the baseline:
        // neither detector can say anything about unobserved destinations.
        let observable: BTreeSet<&str> = result
            .verdicts
            .iter()
            .filter(|v| v.used_baseline)
            .map(|v| v.destination.as_str())
            .collect();

        let detected: BTreeSet<&str> = result.pinned_destinations().into_iter().collect();
        score(&mut diff, &truth, &detected, &observable);

        let naive_detected_owned = naive_alert_detector(&result.mitm);
        let naive_detected: BTreeSet<&str> =
            naive_detected_owned.iter().map(String::as_str).collect();
        score(&mut naive, &truth, &naive_detected, &observable);
    }
    (diff, naive)
}

fn score(
    acc: &mut Accuracy,
    truth: &BTreeSet<&str>,
    detected: &BTreeSet<&str>,
    observable: &BTreeSet<&str>,
) {
    for d in observable {
        match (truth.contains(d), detected.contains(d)) {
            (true, true) => acc.tp += 1,
            (false, true) => acc.fp += 1,
            (true, false) => acc.fn_ += 1,
            (false, false) => {}
        }
    }
    // Detections outside the observable set are still false positives.
    for d in detected {
        if !observable.contains(d) && !truth.contains(d) {
            acc.fp += 1;
        }
    }
}

/// Ablation 2: the TLS 1.3 used-connection heuristic vs a cheating oracle
/// that reads inner record types. Returns (agreements, disagreements).
pub fn tls13_heuristic_vs_oracle(world: &World) -> (usize, usize) {
    let env = env_for(world);
    let mut agree = 0;
    let mut disagree = 0;
    for app in world.apps.iter().take(world.apps.len().min(200)) {
        let result = analyze_app(&env, app);
        for capture in [&result.baseline, &result.mitm] {
            for flow in &capture.flows {
                let t = &flow.transcript;
                if !matches!(t.negotiated, Some((pinning_tls::TlsVersion::V1_3, _))) {
                    continue;
                }
                let heuristic = classify_connection(t) == ConnStatus::Used;
                // Oracle: any client record whose true inner type is
                // application data.
                let oracle = t.records().any(|r| {
                    r.direction == pinning_tls::record::Direction::ClientToServer
                        && r.encrypted
                        && r.inner_type == pinning_tls::ContentType::ApplicationData
                });
                if heuristic == oracle {
                    agree += 1;
                } else {
                    disagree += 1;
                }
            }
        }
    }
    (agree, disagree)
}

/// Ablation 3: iOS associated-domain exclusion on/off. Returns false
/// positives (without exclusion, with exclusion) against ground truth.
pub fn associated_domain_exclusion(world: &World) -> (usize, usize) {
    let env = env_for(world);
    let mut fp_without = 0;
    let mut fp_with = 0;
    for app in world.apps.iter().filter(|a| a.id.platform == Platform::Ios) {
        let truth: BTreeSet<&str> = app.runtime_pinned_domains().into_iter().collect();
        let device = env.device(Platform::Ios);
        let mut base_cfg = pinning_netsim::device::RunConfig::baseline();
        base_cfg.run_tag = "abl-base".to_string();
        let baseline = device.run_app(app, &base_cfg);
        let mut mitm_cfg = pinning_netsim::device::RunConfig::mitm(&env.proxy);
        mitm_cfg.run_tag = "abl-mitm".to_string();
        let mitm = device.run_app(app, &mitm_cfg);

        let with = detect_pinned_destinations(
            &baseline,
            &mitm,
            &Exclusions::ios(associated_domains_from_package(app)),
        );
        let without = detect_pinned_destinations(&baseline, &mitm, &Exclusions::none());
        fp_with += with
            .iter()
            .filter(|v| v.pinned && !truth.contains(v.destination.as_str()))
            .count();
        fp_without += without
            .iter()
            .filter(|v| v.pinned && !truth.contains(v.destination.as_str()))
            .count();
    }
    (fp_without, fp_with)
}

/// Ablation 4: static-technique breadth. Returns, per platform, the number
/// of apps flagged by (NSC only, full static, dynamic).
pub fn static_breadth(world: &World) -> Vec<(Platform, usize, usize, usize)> {
    let env = env_for(world);
    let mut out = Vec::new();
    for platform in Platform::BOTH {
        let mut nsc_only = 0;
        let mut full = 0;
        let mut dynamic = 0;
        for app in world.apps.iter().filter(|a| a.id.platform == platform) {
            let findings = analyze_package(
                &app.package,
                (platform == Platform::Ios).then_some(world.config.ios_encryption_seed),
            );
            if findings.nsc_signal() {
                nsc_only += 1;
            }
            if findings.has_pin_material() {
                full += 1;
            }
            if analyze_app(&env, app).pins() {
                dynamic += 1;
            }
        }
        out.push((platform, nsc_only, full, dynamic));
    }
    out
}

/// §2.2 related-work comparison: Stone et al.'s (ACSAC'17) dynamic
/// technique "only finds apps that pin intermediate or root certificates
/// in the certificate chain. In contrast, our dynamic and static analysis
/// techniques cover all pinned certificates."
///
/// Returns, over all runtime-pinned destinations in the world,
/// `(ca_pinned, leaf_pinned)` — the first being the upper bound of what a
/// Stone-style detector can see, the second what it structurally misses.
pub fn stone_etal_coverage(world: &World) -> (usize, usize) {
    use pinning_app::pinning::PinTarget;
    let mut ca = 0;
    let mut leaf = 0;
    let mut seen = BTreeSet::new();
    for app in &world.apps {
        for domain in app.runtime_pinned_domains() {
            if !seen.insert((app.id.platform, domain.to_string())) {
                continue;
            }
            if let Some((_, rule)) = app.pin_rule_for(domain) {
                match rule.target {
                    PinTarget::Leaf => leaf += 1,
                    PinTarget::Intermediate | PinTarget::Root => ca += 1,
                }
            }
        }
    }
    (ca, leaf)
}

fn env_for(world: &World) -> DynamicEnv<'_> {
    DynamicEnv::new(
        &world.network,
        world.universe.aosp_oem.clone(),
        world.universe.ios.clone(),
        world.now,
        world.config.seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_store::config::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::tiny(0xAB1A))
    }

    #[test]
    fn differential_beats_naive_on_precision() {
        let w = world();
        let (diff, naive) = naive_vs_differential(&w);
        assert_eq!(diff.fp, 0, "differential must not hallucinate: {diff:?}");
        assert!(
            naive.fp > 0,
            "the strawman should be fooled by redundant/flaky connections: {naive:?}"
        );
        assert!(diff.precision() > naive.precision());
    }

    #[test]
    fn tls13_heuristic_mostly_agrees_with_oracle() {
        let w = world();
        let (agree, disagree) = tls13_heuristic_vs_oracle(&w);
        assert!(agree > 0);
        let rate = agree as f64 / (agree + disagree).max(1) as f64;
        assert!(rate > 0.95, "agreement {rate}");
    }

    #[test]
    fn exclusion_removes_ios_false_positives() {
        let w = world();
        let (without, with) = associated_domain_exclusion(&w);
        assert_eq!(with, 0, "with exclusions there must be no false positives");
        assert!(
            without >= with,
            "exclusion can only help: without={without}, with={with}"
        );
    }

    #[test]
    fn stone_style_detection_misses_leaf_pins() {
        let w = world();
        let (ca, leaf) = stone_etal_coverage(&w);
        assert!(ca + leaf > 0);
        // The whole point of the comparison: a non-trivial share of pinned
        // destinations pin the leaf and are invisible to the older
        // technique, while CA pins dominate (§5.3.2's ~73/27 split).
        assert!(ca > leaf, "CA pins should dominate: {ca} vs {leaf}");
    }

    #[test]
    fn full_static_finds_more_than_nsc() {
        let w = world();
        for (platform, nsc, full, _dynamic) in static_breadth(&w) {
            assert!(full >= nsc, "{platform}: full {full} < nsc {nsc}");
        }
    }
}
