//! Compact per-app measurement records.
//!
//! The raw dynamic pipeline keeps full packet transcripts; at paper scale
//! that is gigabytes. [`AppRecord`] keeps exactly the observables the
//! tables and figures consume, so a full study fits comfortably in memory.

use crate::journal::MeasuredApp;
use pinning_analysis::circumvent::CircumventionResult;
use pinning_analysis::dynamics::pipeline::AppDynamicResult;
use pinning_analysis::security::{any_weak_offer, any_weak_pinned_offer};
use pinning_analysis::statics::StaticFindings;
use pinning_app::platform::AppId;
use pinning_netsim::faults::MeasurementError;
use std::collections::BTreeSet;

/// Summary of §4.3 circumvention for one app.
#[derive(Debug, Clone, Default)]
pub struct CircumventionSummary {
    /// Pinned destinations attempted.
    pub attempted: Vec<String>,
    /// Destinations successfully opened.
    pub succeeded: Vec<String>,
}

/// Everything the study keeps per app.
#[derive(Debug, Clone)]
pub struct AppRecord {
    /// Index into the world's app list.
    pub app_index: usize,
    /// App identity.
    pub id: AppId,
    /// §4.1 static findings (paths kept for Table 7 attribution).
    pub static_findings: StaticFindings,
    /// Destinations detected as pinned (§4.2).
    pub pinned_destinations: Vec<String>,
    /// Destinations used at least once in the baseline run (OS noise
    /// excluded).
    pub used_destinations: Vec<String>,
    /// ≥1 connection advertised a weak cipher (Table 8 "Overall").
    pub weak_overall: bool,
    /// ≥1 *pinned* connection advertised a weak cipher (Table 8 "Pinning").
    pub weak_pinned: bool,
    /// Decrypted request bodies from circumvented pinned connections.
    pub pinned_bodies: Vec<String>,
    /// Decrypted request bodies from ordinary MITM'd (unpinned) flows.
    pub unpinned_bodies: Vec<String>,
    /// §4.3 circumvention summary (None when the app does not pin).
    pub circumvention: Option<CircumventionSummary>,
    /// TLS handshakes observed in the baseline capture (§4.2.1).
    pub n_handshakes_baseline: usize,
    /// Whether the iOS settle re-run was applied (§4.5).
    pub settled_rerun: bool,
    /// Circuit-breaker trips across this app's endpoints (0 when breakers
    /// are disabled or no endpoint faulted persistently).
    pub breaker_trips: u32,
    /// Why the dynamic measurement degraded, if it did. Degraded apps
    /// keep their static findings but contribute nothing to the dynamic
    /// tables — they are *unobserved*, not "not pinning".
    pub error: Option<MeasurementError>,
}

impl AppRecord {
    /// Builds the compact record, discarding the transcripts.
    pub fn assemble(
        app_index: usize,
        id: AppId,
        static_findings: StaticFindings,
        dynamic: &AppDynamicResult,
        circumvention: Option<&CircumventionResult>,
    ) -> Self {
        let pinned_destinations: Vec<String> = dynamic
            .pinned_destinations()
            .into_iter()
            .map(str::to_string)
            .collect();
        let pinned_set: BTreeSet<&str> = pinned_destinations.iter().map(String::as_str).collect();
        let used_destinations: Vec<String> = dynamic
            .used_destinations()
            .into_iter()
            .map(str::to_string)
            .collect();

        // Unpinned plaintext comes from the ordinary MITM capture.
        let unpinned_bodies: Vec<String> = dynamic
            .mitm
            .flows
            .iter()
            .filter(|f| {
                f.transcript
                    .sni
                    .as_deref()
                    .is_some_and(|s| !pinned_set.contains(s))
            })
            .filter_map(|f| f.decrypted_request.clone())
            .collect();

        // Pinned plaintext requires circumvention.
        let mut pinned_bodies = Vec::new();
        let circumvention_summary = circumvention.map(|c| {
            let mut s = CircumventionSummary::default();
            for d in &c.destinations {
                s.attempted.push(d.destination.clone());
                if d.succeeded {
                    s.succeeded.push(d.destination.clone());
                    pinned_bodies.extend(d.plaintexts.iter().cloned());
                }
            }
            s
        });

        AppRecord {
            app_index,
            id,
            weak_overall: any_weak_offer(&dynamic.baseline),
            weak_pinned: any_weak_pinned_offer(dynamic),
            n_handshakes_baseline: dynamic.baseline.n_handshakes(),
            settled_rerun: dynamic.settled_rerun,
            breaker_trips: dynamic.breaker_trips,
            static_findings,
            pinned_destinations,
            used_destinations,
            pinned_bodies,
            unpinned_bodies,
            circumvention: circumvention_summary,
            error: None,
        }
    }

    /// A record for an app whose dynamic measurement could not be
    /// completed (every retry faulted). Static findings are kept — the
    /// package was still analyzed — but all dynamic observables are empty.
    pub fn failed(
        app_index: usize,
        id: AppId,
        static_findings: StaticFindings,
        error: MeasurementError,
    ) -> Self {
        AppRecord {
            app_index,
            id,
            static_findings,
            pinned_destinations: Vec::new(),
            used_destinations: Vec::new(),
            weak_overall: false,
            weak_pinned: false,
            pinned_bodies: Vec::new(),
            unpinned_bodies: Vec::new(),
            circumvention: None,
            n_handshakes_baseline: 0,
            settled_rerun: false,
            breaker_trips: 0,
            error: Some(error),
        }
    }

    /// The journal image of this record's dynamic observables. Everything
    /// else ([`AppRecord::id`], [`AppRecord::static_findings`]) is
    /// recomputed from the regenerated world on replay.
    pub fn to_measured(&self) -> MeasuredApp {
        MeasuredApp {
            pinned_destinations: self.pinned_destinations.clone(),
            used_destinations: self.used_destinations.clone(),
            weak_overall: self.weak_overall,
            weak_pinned: self.weak_pinned,
            pinned_bodies: self.pinned_bodies.clone(),
            unpinned_bodies: self.unpinned_bodies.clone(),
            circumvention: self
                .circumvention
                .as_ref()
                .map(|c| (c.attempted.clone(), c.succeeded.clone())),
            n_handshakes_baseline: self.n_handshakes_baseline as u64,
            settled_rerun: self.settled_rerun,
            breaker_trips: self.breaker_trips,
        }
    }

    /// Rebuilds a record from a journaled [`MeasuredApp`] plus the
    /// world-derived fields. Inverse of [`AppRecord::to_measured`].
    pub fn from_measured(
        app_index: usize,
        id: AppId,
        static_findings: StaticFindings,
        m: &MeasuredApp,
    ) -> Self {
        AppRecord {
            app_index,
            id,
            static_findings,
            pinned_destinations: m.pinned_destinations.clone(),
            used_destinations: m.used_destinations.clone(),
            weak_overall: m.weak_overall,
            weak_pinned: m.weak_pinned,
            pinned_bodies: m.pinned_bodies.clone(),
            unpinned_bodies: m.unpinned_bodies.clone(),
            circumvention: m.circumvention.as_ref().map(|(attempted, succeeded)| {
                CircumventionSummary {
                    attempted: attempted.clone(),
                    succeeded: succeeded.clone(),
                }
            }),
            n_handshakes_baseline: m.n_handshakes_baseline as usize,
            settled_rerun: m.settled_rerun,
            breaker_trips: m.breaker_trips,
            error: None,
        }
    }

    /// §5's pinning-app definition.
    pub fn pins(&self) -> bool {
        !self.pinned_destinations.is_empty()
    }

    /// Whether the dynamic measurement degraded.
    pub fn degraded(&self) -> bool {
        self.error.is_some()
    }
}
