//! Pinning by category (§5, Tables 4–5).

use pinning_app::category::Category;
use std::collections::BTreeMap;

/// One table row: a category's pinning prevalence.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryRow {
    /// The category.
    pub category: Category,
    /// Rank of the category by population in the dataset (1 = biggest).
    pub population_rank: usize,
    /// Pinning apps in the category.
    pub pinning_apps: usize,
    /// Total apps in the category.
    pub total_apps: usize,
    /// Normalized prevalence, percent.
    pub pinning_pct: f64,
}

/// Computes the category table: input is `(category, pins)` per app across
/// all of a platform's datasets (deduplicated upstream). Output rows are
/// sorted by descending prevalence, ties by category name, and truncated
/// to `top_n`.
pub fn category_table(apps: &[(Category, bool)], top_n: usize) -> Vec<CategoryRow> {
    let mut totals: BTreeMap<Category, (usize, usize)> = BTreeMap::new();
    for (cat, pins) in apps {
        let e = totals.entry(*cat).or_default();
        e.1 += 1;
        if *pins {
            e.0 += 1;
        }
    }
    // Population ranks.
    let mut by_pop: Vec<(Category, usize)> =
        totals.iter().map(|(c, (_, total))| (*c, *total)).collect();
    by_pop.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let rank_of: BTreeMap<Category, usize> = by_pop
        .iter()
        .enumerate()
        .map(|(i, (c, _))| (*c, i + 1))
        .collect();

    let mut rows: Vec<CategoryRow> = totals
        .into_iter()
        .filter(|(_, (pinning, _))| *pinning > 0)
        .map(|(category, (pinning, total))| CategoryRow {
            category,
            population_rank: rank_of[&category],
            pinning_apps: pinning,
            total_apps: total,
            pinning_pct: 100.0 * pinning as f64 / total as f64,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.pinning_pct
            .partial_cmp(&a.pinning_pct)
            .expect("percentages are finite")
            .then(a.category.cmp(&b.category))
    });
    rows.truncate(top_n);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_and_ordering() {
        let apps = vec![
            (Category::Finance, true),
            (Category::Finance, true),
            (Category::Finance, false),
            (Category::Games, true),
            (Category::Games, false),
            (Category::Games, false),
            (Category::Games, false),
            (Category::Education, false),
        ];
        let rows = category_table(&apps, 10);
        assert_eq!(rows[0].category, Category::Finance);
        assert!((rows[0].pinning_pct - 66.6667).abs() < 0.01);
        assert_eq!(rows[0].pinning_apps, 2);
        assert_eq!(rows[1].category, Category::Games);
        assert!((rows[1].pinning_pct - 25.0).abs() < 1e-9);
        // Education never pins → excluded.
        assert_eq!(rows.len(), 2);
        // Games is the biggest category → population rank 1.
        assert_eq!(rows[1].population_rank, 1);
        assert_eq!(rows[0].population_rank, 2);
    }

    #[test]
    fn truncation() {
        let apps = vec![
            (Category::Finance, true),
            (Category::Games, true),
            (Category::Social, true),
        ];
        assert_eq!(category_table(&apps, 2).len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(category_table(&[], 10).is_empty());
    }
}
