//! Pinned vs unpinned destinations, first- vs third-party (§5.2, Figure 5).

use crate::dynamics::pipeline::AppDynamicResult;
use pinning_app::app::MobileApp;
use pinning_store::whois::{Party, WhoisRegistry};

/// One destination row in an app's Figure-5 bar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DestinationEntry {
    /// Hostname.
    pub domain: String,
    /// Detected as pinned.
    pub pinned: bool,
    /// First or third party relative to the app developer.
    pub party: Party,
}

/// Figure-5 data for one app.
#[derive(Debug, Clone, PartialEq)]
pub struct AppDestinationProfile {
    /// App display name.
    pub app_name: String,
    /// Entries for every used destination.
    pub entries: Vec<DestinationEntry>,
}

impl AppDestinationProfile {
    /// Percentage of destinations pinned.
    pub fn pct_pinned(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        100.0 * self.entries.iter().filter(|e| e.pinned).count() as f64 / self.entries.len() as f64
    }

    /// Counts split four ways:
    /// (first-pinned, first-unpinned, third-pinned, third-unpinned).
    pub fn quad_counts(&self) -> (usize, usize, usize, usize) {
        let mut q = (0, 0, 0, 0);
        for e in &self.entries {
            match (e.party, e.pinned) {
                (Party::First, true) => q.0 += 1,
                (Party::First, false) => q.1 += 1,
                (Party::Third, true) => q.2 += 1,
                (Party::Third, false) => q.3 += 1,
            }
        }
        q
    }

    /// Whether the app pins every first-party destination it contacts.
    pub fn pins_all_first_party(&self) -> bool {
        let fp: Vec<_> = self
            .entries
            .iter()
            .filter(|e| e.party == Party::First)
            .collect();
        !fp.is_empty() && fp.iter().all(|e| e.pinned)
    }

    /// Whether the app pins *every* destination it contacts (the 5 Android
    /// / 4 iOS apps of §5.2).
    pub fn pins_everything(&self) -> bool {
        !self.entries.is_empty() && self.entries.iter().all(|e| e.pinned)
    }
}

/// Builds the profile for one app from its dynamic result.
pub fn profile_app(
    app: &MobileApp,
    result: &AppDynamicResult,
    whois: &WhoisRegistry,
) -> AppDestinationProfile {
    let pinned: std::collections::BTreeSet<&str> =
        result.pinned_destinations().into_iter().collect();
    let entries = result
        .used_destinations()
        .into_iter()
        .map(|d| DestinationEntry {
            domain: d.to_string(),
            pinned: pinned.contains(d),
            party: whois.attribute(&app.developer_org, d),
        })
        .collect();
    AppDestinationProfile {
        app_name: app.name.clone(),
        entries,
    }
}

/// §5 summary claim: the majority of *pinned* destinations are third-party.
pub fn third_party_share_of_pinned(profiles: &[AppDestinationProfile]) -> f64 {
    let mut pinned = 0usize;
    let mut third = 0usize;
    for p in profiles {
        for e in &p.entries {
            if e.pinned {
                pinned += 1;
                if e.party == Party::Third {
                    third += 1;
                }
            }
        }
    }
    if pinned == 0 {
        0.0
    } else {
        third as f64 / pinned as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(domain: &str, pinned: bool, party: Party) -> DestinationEntry {
        DestinationEntry {
            domain: domain.into(),
            pinned,
            party,
        }
    }

    #[test]
    fn quad_counts_and_pcts() {
        let p = AppDestinationProfile {
            app_name: "A".into(),
            entries: vec![
                entry("api.a.com", true, Party::First),
                entry("www.a.com", false, Party::First),
                entry("t.ads.com", true, Party::Third),
                entry("g.cdn.com", false, Party::Third),
            ],
        };
        assert_eq!(p.quad_counts(), (1, 1, 1, 1));
        assert!((p.pct_pinned() - 50.0).abs() < 1e-9);
        assert!(!p.pins_all_first_party());
        assert!(!p.pins_everything());
    }

    #[test]
    fn pins_everything_detection() {
        let p = AppDestinationProfile {
            app_name: "B".into(),
            entries: vec![
                entry("api.b.com", true, Party::First),
                entry("t.ads.com", true, Party::Third),
            ],
        };
        assert!(p.pins_everything());
        assert!(p.pins_all_first_party());
    }

    #[test]
    fn third_party_share() {
        let profiles = vec![AppDestinationProfile {
            app_name: "A".into(),
            entries: vec![
                entry("api.a.com", true, Party::First),
                entry("x.sdk.com", true, Party::Third),
                entry("y.sdk.com", true, Party::Third),
            ],
        }];
        assert!((third_party_share_of_pinned(&profiles) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(third_party_share_of_pinned(&[]), 0.0);
    }

    #[test]
    fn empty_profile_is_zero_pct() {
        let p = AppDestinationProfile {
            app_name: "E".into(),
            entries: vec![],
        };
        assert_eq!(p.pct_pinned(), 0.0);
        assert!(!p.pins_everything());
        assert!(!p.pins_all_first_party());
    }
}
