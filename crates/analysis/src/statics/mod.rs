//! Static analysis (§4.1): scan app packages for evidence of pinning.

pub mod attribution;
pub mod extract;
pub mod nsc;
pub mod scanner;

use pinning_app::package::AppPackage;
use pinning_pki::Certificate;

/// Where a static finding was located.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Located<T> {
    /// Package-relative path of the file.
    pub path: String,
    /// The finding.
    pub value: T,
}

/// A pin-like hash string found in code/strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoundPin {
    /// Raw matched text, e.g. `sha256/AAAA...=`.
    pub raw: String,
    /// Parsed pin if the body base64-decodes to a digest of the right
    /// length (hex-encoded bodies are kept raw).
    pub parsed: Option<pinning_pki::pin::SpkiPin>,
}

/// Everything static analysis extracted from one app.
#[derive(Debug, Clone, Default)]
pub struct StaticFindings {
    /// Certificates recovered from asset files or PEM blobs.
    pub embedded_certs: Vec<Located<Certificate>>,
    /// Pin-like strings from string pools.
    pub pin_strings: Vec<Located<FoundPin>>,
    /// The app ships an NSC file at all.
    pub has_nsc: bool,
    /// The NSC declares pins (prior work's metric — effective or not).
    pub nsc_declares_pins: bool,
    /// The NSC pins *effectively* (no `overridePins` neutering).
    pub nsc_pins_effectively: bool,
    /// iOS: the package was still encrypted and could not be scanned
    /// (decryption unavailable — §4.1.2's jailbreak requirement).
    pub scan_blocked_encrypted: bool,
}

impl StaticFindings {
    /// Table 3's "Embedded Certificates" static signal: any certificate or
    /// pin-hash material found in the package.
    pub fn has_pin_material(&self) -> bool {
        !self.embedded_certs.is_empty() || !self.pin_strings.is_empty()
    }

    /// Table 3's "Configuration Files" static signal (the prior-work
    /// technique): NSC present and declaring pins.
    pub fn nsc_signal(&self) -> bool {
        self.nsc_declares_pins
    }
}

/// Runs the full static pipeline on a package.
///
/// For encrypted iOS packages a `decryption_key` (the Flexdecrypt /
/// Frida-iOS-Dump stand-in, available only with a jailbroken device) is
/// required; without it the scan sees ciphertext and reports
/// [`StaticFindings::scan_blocked_encrypted`].
pub fn analyze_package(package: &AppPackage, decryption_key: Option<u64>) -> StaticFindings {
    let decrypted;
    let view = if package.encrypted {
        match decryption_key {
            Some(key) => {
                decrypted = package.clone().decrypt(key);
                &decrypted
            }
            None => {
                return StaticFindings {
                    scan_blocked_encrypted: true,
                    ..Default::default()
                }
            }
        }
    } else {
        package
    };

    let mut findings = StaticFindings::default();
    extract::scan_files(view, &mut findings);
    nsc::scan_nsc(view, &mut findings);
    findings
}
