//! Static analysis (§4.1): scan app packages for evidence of pinning.

pub mod attribution;
pub mod extract;
pub mod nsc;
pub mod scanner;

use pinning_app::package::AppPackage;
use pinning_crypto::Sha256;
use pinning_pki::cache::{self, CacheCounter};
use pinning_pki::Certificate;
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// Where a static finding was located.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Located<T> {
    /// Package-relative path of the file.
    pub path: String,
    /// The finding.
    pub value: T,
}

/// A pin-like hash string found in code/strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoundPin {
    /// Raw matched text, e.g. `sha256/AAAA...=`.
    pub raw: String,
    /// Parsed pin if the body base64-decodes to a digest of the right
    /// length (hex-encoded bodies are kept raw).
    pub parsed: Option<pinning_pki::pin::SpkiPin>,
}

/// Everything static analysis extracted from one app.
#[derive(Debug, Clone, Default)]
pub struct StaticFindings {
    /// Certificates recovered from asset files or PEM blobs.
    pub embedded_certs: Vec<Located<Certificate>>,
    /// Pin-like strings from string pools.
    pub pin_strings: Vec<Located<FoundPin>>,
    /// The app ships an NSC file at all.
    pub has_nsc: bool,
    /// The NSC declares pins (prior work's metric — effective or not).
    pub nsc_declares_pins: bool,
    /// The NSC pins *effectively* (no `overridePins` neutering).
    pub nsc_pins_effectively: bool,
    /// iOS: the package was still encrypted and could not be scanned
    /// (decryption unavailable — §4.1.2's jailbreak requirement).
    pub scan_blocked_encrypted: bool,
}

impl StaticFindings {
    /// Table 3's "Embedded Certificates" static signal: any certificate or
    /// pin-hash material found in the package.
    pub fn has_pin_material(&self) -> bool {
        !self.embedded_certs.is_empty() || !self.pin_strings.is_empty()
    }

    /// Table 3's "Configuration Files" static signal (the prior-work
    /// technique): NSC present and declaring pins.
    pub fn nsc_signal(&self) -> bool {
        self.nsc_declares_pins
    }
}

/// Runs the full static pipeline on a package.
///
/// For encrypted iOS packages a `decryption_key` (the Flexdecrypt /
/// Frida-iOS-Dump stand-in, available only with a jailbroken device) is
/// required; without it the scan sees ciphertext and reports
/// [`StaticFindings::scan_blocked_encrypted`].
pub fn analyze_package(package: &AppPackage, decryption_key: Option<u64>) -> StaticFindings {
    let decrypted;
    let view = if package.encrypted {
        match decryption_key {
            Some(key) => {
                decrypted = package.clone().decrypt(key);
                &decrypted
            }
            None => {
                return StaticFindings {
                    scan_blocked_encrypted: true,
                    ..Default::default()
                }
            }
        }
    } else {
        package
    };

    let mut findings = StaticFindings::default();
    extract::scan_files(view, &mut findings);
    nsc::scan_nsc(view, &mut findings);
    findings
}

/// Hit/miss telemetry for the memoized static scan.
pub static STATIC_SCAN: CacheCounter = CacheCounter::new("static-scan");

fn scan_memo() -> &'static RwLock<HashMap<[u8; 32], StaticFindings>> {
    static MEMO: OnceLock<RwLock<HashMap<[u8; 32], StaticFindings>>> = OnceLock::new();
    MEMO.get_or_init(|| RwLock::new(HashMap::new()))
}

fn scan_key(package: &AppPackage, decryption_key: Option<u64>) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&package.content_hash());
    // The key only matters for encrypted packages, but folding it in
    // unconditionally keeps the key derivation state-free.
    match decryption_key {
        Some(k) => {
            h.update(&[1]);
            h.update(&k.to_le_bytes());
        }
        None => h.update(&[0]),
    }
    h.finalize()
}

/// Memoized [`analyze_package`]: keyed by the package's content hash and
/// the decryption key, so identical inputs scan once per process.
///
/// The incremental re-study engine leans on this across epochs — apps whose
/// packages did not change replay the scan from the memo instead of
/// re-walking every file. Respects the global cache kill switch.
pub fn analyze_package_cached(package: &AppPackage, decryption_key: Option<u64>) -> StaticFindings {
    if !cache::caching_enabled() {
        return analyze_package(package, decryption_key);
    }
    let key = scan_key(package, decryption_key);
    if let Some(found) = scan_memo().read().expect("memo lock").get(&key) {
        STATIC_SCAN.hit();
        return found.clone();
    }
    STATIC_SCAN.miss();
    let findings = analyze_package(package, decryption_key);
    scan_memo()
        .write()
        .expect("memo lock")
        .insert(key, findings.clone());
    findings
}

/// Drops every memoized static scan (tests and cache-ablation benches).
pub fn clear_static_scan_cache() {
    scan_memo().write().expect("memo lock").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_app::package::AppFile;
    use pinning_app::platform::Platform;

    #[test]
    fn cached_scan_matches_uncached_and_counts_hits() {
        let pkg = AppPackage::new(
            Platform::Android,
            vec![
                AppFile::text("AndroidManifest.xml", "<manifest/>"),
                AppFile::text(
                    "res/xml/network_security_config.xml",
                    "<network-security-config/>",
                ),
            ],
        );
        let cold = analyze_package(&pkg, None);
        let base = STATIC_SCAN.snapshot();
        let first = analyze_package_cached(&pkg, None);
        let second = analyze_package_cached(&pkg, None);
        assert_eq!(format!("{cold:?}"), format!("{first:?}"));
        assert_eq!(format!("{first:?}"), format!("{second:?}"));
        let delta = STATIC_SCAN.snapshot().delta_since(&base);
        assert!(delta.hits >= 1, "second scan must hit the memo");

        // Distinct decryption keys key distinct entries.
        assert_ne!(scan_key(&pkg, None), scan_key(&pkg, Some(7)));
        assert_ne!(scan_key(&pkg, Some(7)), scan_key(&pkg, Some(8)));
    }
}
