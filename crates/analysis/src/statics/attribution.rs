//! Third-party attribution of pinning code (§4.1.4, Table 7).
//!
//! Each certificate/pin finding carries the path it was found at. Paths
//! that recur across ≥ 5 apps are reviewed against the SDK registry (the
//! "publicly available knowledge" of §4.1.4): a path under
//! `assets/com/braintreepayments/...` attributes to Braintree, a path under
//! `Frameworks/Stripe.framework/` to Stripe. Generic paths (`config.json`)
//! are excluded, as in the paper.

use super::StaticFindings;
use pinning_app::platform::Platform;
use pinning_app::sdk;
use std::collections::{BTreeMap, HashSet};

/// Minimum number of distinct apps sharing a path before it is reviewed.
pub const REVIEW_THRESHOLD: usize = 5;

/// One attributed framework with its app count (a Table 7 row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameworkCount {
    /// Framework (SDK) name.
    pub framework: String,
    /// Number of apps in which its certificate/pin paths appear.
    pub apps: usize,
}

/// Attribution output per platform.
#[derive(Debug, Clone, Default)]
pub struct AttributionReport {
    /// Frameworks sorted by descending app count.
    pub frameworks: Vec<FrameworkCount>,
    /// Paths that recurred but could not be attributed.
    pub unattributed_paths: Vec<(String, usize)>,
}

fn is_generic_path(path: &str) -> bool {
    let name = path.rsplit('/').next().unwrap_or(path);
    matches!(name, "config.json" | "settings.json") || name.starts_with("bundled_ca_")
}

/// Infers the SDK owning `path` on `platform`, if any.
pub fn attribute_path(path: &str, platform: Platform) -> Option<&'static str> {
    for spec in sdk::registry() {
        let needle = spec.path_on(platform);
        if path.contains(needle) {
            return Some(spec.name);
        }
    }
    None
}

/// Builds the Table 7 attribution for a set of per-app findings.
///
/// `findings` pairs each app with its static findings; only certificate
/// and pin *paths* are consulted.
pub fn attribute(
    findings: &[(&StaticFindings, Platform)],
) -> BTreeMap<Platform, AttributionReport> {
    let mut out: BTreeMap<Platform, AttributionReport> = BTreeMap::new();
    for platform in [Platform::Android, Platform::Ios] {
        // path → set of app indices it appears in.
        let mut apps_per_path: BTreeMap<&str, HashSet<usize>> = BTreeMap::new();
        for (idx, (f, p)) in findings.iter().enumerate() {
            if *p != platform {
                continue;
            }
            for loc in &f.embedded_certs {
                apps_per_path
                    .entry(loc.path.as_str())
                    .or_default()
                    .insert(idx);
            }
            for loc in &f.pin_strings {
                apps_per_path
                    .entry(loc.path.as_str())
                    .or_default()
                    .insert(idx);
            }
        }

        // Review recurring, non-generic paths.
        let mut per_framework: BTreeMap<&'static str, HashSet<usize>> = BTreeMap::new();
        let mut unattributed: Vec<(String, usize)> = Vec::new();
        for (path, apps) in &apps_per_path {
            if apps.len() < REVIEW_THRESHOLD || is_generic_path(path) {
                continue;
            }
            match attribute_path(path, platform) {
                Some(name) => {
                    per_framework
                        .entry(name)
                        .or_default()
                        .extend(apps.iter().copied());
                }
                None => unattributed.push((path.to_string(), apps.len())),
            }
        }

        let mut frameworks: Vec<FrameworkCount> = per_framework
            .into_iter()
            .map(|(framework, apps)| FrameworkCount {
                framework: framework.to_string(),
                apps: apps.len(),
            })
            .collect();
        frameworks.sort_by(|a, b| b.apps.cmp(&a.apps).then(a.framework.cmp(&b.framework)));
        out.insert(
            platform,
            AttributionReport {
                frameworks,
                unattributed_paths: unattributed,
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statics::{FoundPin, Located};
    use pinning_app::platform::Platform;

    fn findings_with_path(path: &str) -> StaticFindings {
        StaticFindings {
            pin_strings: vec![Located {
                path: path.to_string(),
                value: FoundPin {
                    raw: "sha256/x".into(),
                    parsed: None,
                },
            }],
            ..Default::default()
        }
    }

    #[test]
    fn path_attribution_by_registry() {
        assert_eq!(
            attribute_path("assets/com/braintreepayments/api/ca.pem", Platform::Android),
            Some("Braintree")
        );
        assert_eq!(
            attribute_path(
                "Payload/App.app/Frameworks/Stripe.framework/ca.pem",
                Platform::Ios
            ),
            Some("Stripe")
        );
        assert_eq!(
            attribute_path("assets/random/thing.pem", Platform::Android),
            None
        );
    }

    #[test]
    fn threshold_applies() {
        let base = findings_with_path("assets/com/mparticle/pin.txt");
        let few: Vec<_> = (0..REVIEW_THRESHOLD - 1)
            .map(|_| (&base, Platform::Android))
            .collect();
        let report = attribute(&few);
        assert!(report[&Platform::Android].frameworks.is_empty());

        let many: Vec<_> = (0..REVIEW_THRESHOLD)
            .map(|_| (&base, Platform::Android))
            .collect();
        let report = attribute(&many);
        assert_eq!(
            report[&Platform::Android].frameworks[0].framework,
            "MParticle"
        );
        assert_eq!(
            report[&Platform::Android].frameworks[0].apps,
            REVIEW_THRESHOLD
        );
    }

    #[test]
    fn generic_paths_excluded() {
        let base = findings_with_path("assets/config.json");
        let many: Vec<_> = (0..10).map(|_| (&base, Platform::Android)).collect();
        let report = attribute(&many);
        assert!(report[&Platform::Android].frameworks.is_empty());
        assert!(report[&Platform::Android].unattributed_paths.is_empty());
    }

    #[test]
    fn unknown_recurring_path_reported() {
        let base = findings_with_path("assets/mystery/sdk/pin.bin");
        let many: Vec<_> = (0..6).map(|_| (&base, Platform::Android)).collect();
        let report = attribute(&many);
        assert_eq!(report[&Platform::Android].unattributed_paths.len(), 1);
    }

    #[test]
    fn platforms_separated() {
        let android = findings_with_path("assets/com/mparticle/pin.txt");
        let ios = findings_with_path("Payload/App.app/Frameworks/Amplitude.framework/pin");
        let mut rows: Vec<(&StaticFindings, Platform)> = Vec::new();
        for _ in 0..6 {
            rows.push((&android, Platform::Android));
            rows.push((&ios, Platform::Ios));
        }
        let report = attribute(&rows);
        assert_eq!(
            report[&Platform::Android].frameworks[0].framework,
            "MParticle"
        );
        assert_eq!(report[&Platform::Ios].frameworks[0].framework, "Amplitude");
    }
}
