//! The pin-hash scanner: a hand-rolled matcher for the paper's regex
//! `sha(1|256)/[a-zA-Z0-9+/=]{28,64}` (§4.1.2).
//!
//! The length band `{28,64}` deliberately covers base64 SHA-1 (28 chars),
//! base64 SHA-256 (44), hex SHA-1 (40) and hex SHA-256 (64) digests. We
//! implement the match directly instead of pulling in a regex engine —
//! the pattern is fixed and the scanner runs over every string in every
//! package, so it is also the hottest loop in static analysis.

use pinning_pki::pin::{PinAlgorithm, SpkiPin};

/// One scanner match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinMatch {
    /// The full matched text, including the `shaN/` prefix.
    pub raw: String,
    /// Algorithm from the prefix.
    pub alg: PinAlgorithm,
    /// The digest body (base64 or hex, as matched).
    pub body: String,
}

impl PinMatch {
    /// Attempts to parse the match into a well-formed [`SpkiPin`]
    /// (base64 body of exactly the digest length).
    pub fn parse(&self) -> Option<SpkiPin> {
        SpkiPin::parse(&self.raw)
    }
}

fn is_b64_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'+' || c == b'/' || c == b'='
}

/// Scans `text` for every occurrence of the pin pattern.
pub fn scan_pins(text: &str) -> Vec<PinMatch> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        // Find the next 's' that could start "sha".
        let Some(off) = bytes[i..].iter().position(|&b| b == b's') else {
            break;
        };
        let start = i + off;
        i = start + 1;
        let rest = &bytes[start..];
        let (alg, prefix_len) = if rest.starts_with(b"sha256/") {
            (PinAlgorithm::Sha256, 7)
        } else if rest.starts_with(b"sha1/") {
            (PinAlgorithm::Sha1, 5)
        } else {
            continue;
        };
        let body_start = start + prefix_len;
        let mut end = body_start;
        while end < bytes.len() && end - body_start < 64 && is_b64_char(bytes[end]) {
            end += 1;
        }
        let body_len = end - body_start;
        if body_len < 28 {
            continue;
        }
        out.push(PinMatch {
            raw: text[start..end].to_string(),
            alg,
            body: text[body_start..end].to_string(),
        });
        i = end;
    }
    out
}

/// Scans `text` for hex-encoded digests of exactly SHA-1 (40) or SHA-256
/// (64) length, as some implementations store pins hex-encoded without a
/// `shaN/` prefix. Conservative: requires word boundaries.
pub fn scan_bare_hex_digests(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if !bytes[i].is_ascii_hexdigit() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
            i += 1;
        }
        let len = i - start;
        let bounded = (start == 0 || !bytes[start - 1].is_ascii_alphanumeric())
            && (i == bytes.len() || !bytes[i].is_ascii_alphanumeric());
        if bounded && (len == 40 || len == 64) {
            out.push(text[start..i].to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_crypto::{b64encode, sha256};

    #[test]
    fn matches_sha256_base64_pin() {
        let digest = sha256(b"spki");
        let pin = format!("sha256/{}", b64encode(&digest));
        let text = format!("config pin = \"{pin}\" end");
        let found = scan_pins(&text);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].raw, pin);
        assert_eq!(found[0].alg, PinAlgorithm::Sha256);
        assert!(found[0].parse().is_some());
    }

    #[test]
    fn matches_sha1_pin() {
        let digest = pinning_crypto::sha1::sha1(b"spki");
        let pin = format!("sha1/{}", b64encode(&digest));
        let found = scan_pins(&pin);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].alg, PinAlgorithm::Sha1);
        assert!(found[0].parse().is_some());
    }

    #[test]
    fn rejects_short_bodies() {
        assert!(scan_pins("sha256/AAAA").is_empty());
        assert!(scan_pins("sha1/short=").is_empty());
    }

    #[test]
    fn rejects_other_prefixes() {
        let body = "A".repeat(44);
        assert!(scan_pins(&format!("md5/{body}")).is_empty());
        assert!(scan_pins(&format!("sha512/{body}")).is_empty());
    }

    #[test]
    fn caps_body_at_64_chars() {
        let body = "B".repeat(100);
        let found = scan_pins(&format!("sha256/{body}"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].body.len(), 64);
    }

    #[test]
    fn finds_multiple_pins_in_one_string() {
        let digest = sha256(b"a");
        let p1 = format!("sha256/{}", b64encode(&digest));
        let p2 = format!("sha1/{}", b64encode(&pinning_crypto::sha1::sha1(b"b")));
        let text = format!("{p1};{p2}");
        let found = scan_pins(&text);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn hex_body_matched_but_not_parsed() {
        // A 64-char hex body matches the raw pattern (as in the paper) but
        // is not a valid base64 SPKI pin.
        let hex = pinning_crypto::hex_encode(&sha256(b"x"));
        let found = scan_pins(&format!("sha256/{hex}"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].body.len(), 64);
        assert!(found[0].parse().is_none());
    }

    #[test]
    fn obfuscated_pin_not_matched() {
        // Reversed base64 without the prefix — the world generator's
        // obfuscation — must not match.
        let digest = sha256(b"spki");
        let b64: String = b64encode(&digest).chars().rev().collect();
        assert!(scan_pins(&b64).is_empty());
    }

    #[test]
    fn bare_hex_scanner() {
        let h40 = "a".repeat(40);
        let h64 = "0123456789abcdef".repeat(4);
        let text = format!("x {h40} y {h64} z deadbeef");
        let found = scan_bare_hex_digests(&text);
        assert_eq!(found.len(), 2);
        // Embedded in a longer word → rejected.
        assert!(scan_bare_hex_digests(&format!("Q{h40}")).is_empty());
    }

    #[test]
    fn scanner_is_fast_enough_for_binaries() {
        // Smoke check on a larger haystack.
        let hay = "x".repeat(100_000) + "sha256/" + &"C".repeat(44);
        let found = scan_pins(&hay);
        assert_eq!(found.len(), 1);
    }
}
