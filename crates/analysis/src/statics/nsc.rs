//! NSC detection (§4.1.1): the prior-work baseline technique.
//!
//! Parses the Android manifest for an `android:networkSecurityConfig`
//! attribute, resolves the referenced XML resource, and parses its
//! `<pin-set>` blocks — distinguishing *declared* pins (what Possemato et
//! al. / Oltrogge et al. counted) from *effective* pins (not neutered by
//! `overridePins`).

use super::StaticFindings;
use pinning_app::nsc::NetworkSecurityConfig;
use pinning_app::package::AppPackage;
use pinning_app::platform::Platform;
use pinning_app::xml;

/// Scans the manifest + NSC resource, populating `findings`.
pub fn scan_nsc(package: &AppPackage, findings: &mut StaticFindings) {
    if package.platform != Platform::Android {
        // iOS's equivalent (NSPinnedDomains) shipped in iOS 14, after the
        // paper's device image — Table 3 has no iOS config-file column.
        return;
    }
    let Some(manifest_file) = package.file("AndroidManifest.xml") else {
        return;
    };
    let Some(manifest_text) = manifest_file.content.as_text() else {
        return;
    };
    let Ok(manifest) = xml::parse(manifest_text) else {
        return;
    };
    let mut apps = Vec::new();
    manifest.descendants("application", &mut apps);
    let Some(reference) = apps
        .iter()
        .find_map(|a| a.get_attr("android:networkSecurityConfig"))
    else {
        return;
    };
    // `@xml/network_security_config` → `res/xml/network_security_config.xml`.
    let Some(name) = reference.strip_prefix("@xml/") else {
        return;
    };
    let path = format!("res/xml/{name}.xml");
    let Some(nsc_file) = package.file(&path) else {
        return;
    };
    let Some(nsc_text) = nsc_file.content.as_text() else {
        return;
    };
    let Ok(nsc) = NetworkSecurityConfig::from_xml(nsc_text) else {
        return;
    };
    findings.has_nsc = true;
    findings.nsc_declares_pins = nsc.declares_pins();
    findings.nsc_pins_effectively = nsc.pins_effectively();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statics::analyze_package;
    use pinning_app::builder::{build_package, BuildSpec};
    use pinning_app::pinning::{DomainPinRule, PinSource, PinStorage, PinTarget};
    use pinning_app::platform::AppId;
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;
    use pinning_pki::authority::CertificateAuthority;
    use pinning_pki::name::DistinguishedName;
    use pinning_pki::pin::PinAlgorithm;
    use pinning_pki::time::{SimTime, Validity, YEAR};

    fn built(with_nsc_rule: bool, misconfig: bool) -> pinning_app::package::AppPackage {
        let mut rng = SplitMix64::new(0x5c);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("R", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let k = KeyPair::generate(&mut rng);
        let cert = root.issue_leaf(
            &["api.x.com".to_string()],
            "X",
            &k,
            Validity::starting(SimTime(0), YEAR),
        );
        let rules = if with_nsc_rule {
            vec![DomainPinRule::spki(
                "api.x.com",
                &cert,
                PinTarget::Leaf,
                PinAlgorithm::Sha256,
                PinStorage::NscPinSet,
                PinSource::FirstParty,
            )]
        } else {
            vec![]
        };
        let id = AppId::new(Platform::Android, "com.x.app");
        let decoys = [cert.clone()];
        let spec = BuildSpec {
            id: &id,
            app_name: "X",
            sdks: &[],
            pin_rules: &rules,
            decoy_certs: if misconfig { &decoys } else { &[] },
            nsc_misconfig_override_pins: misconfig,
            associated_domains: &[],
            ios_encryption_seed: None,
        };
        build_package(&spec, &mut SplitMix64::new(1))
    }

    #[test]
    fn detects_effective_nsc_pins() {
        let f = analyze_package(&built(true, false), None);
        assert!(f.has_nsc);
        assert!(f.nsc_declares_pins);
        assert!(f.nsc_pins_effectively);
        assert!(f.nsc_signal());
    }

    #[test]
    fn no_nsc_no_signal() {
        let f = analyze_package(&built(false, false), None);
        assert!(!f.has_nsc);
        assert!(!f.nsc_signal());
    }

    #[test]
    fn misconfigured_nsc_declares_but_not_effective() {
        let f = analyze_package(&built(false, true), None);
        assert!(f.has_nsc);
        assert!(f.nsc_declares_pins, "prior work would count this app");
        assert!(!f.nsc_pins_effectively, "but the pins are neutered");
    }
}
