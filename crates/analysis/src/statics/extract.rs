//! File-level extraction (§4.1.2): certificate assets, PEM blobs, and
//! string pools of dex/native/Mach-O binaries.

use super::scanner;
use super::{FoundPin, Located, StaticFindings};
use pinning_app::package::{extract_strings, AppPackage, FileContent};
use pinning_pki::encode::pem_decode_all;
use pinning_pki::Certificate;

/// File extensions treated as certificate material (§4.1.2's list).
pub const CERT_EXTENSIONS: [&str; 5] = ["der", "pem", "crt", "cert", "cer"];

/// Minimum printable-string length when dumping binaries (radare2 default).
const MIN_STRING_LEN: usize = 6;

/// Scans every file in a (decrypted) package, populating `findings`.
pub fn scan_files(package: &AppPackage, findings: &mut StaticFindings) {
    for file in &package.files {
        let ext = file.extension();
        let is_cert_ext = ext.as_deref().is_some_and(|e| CERT_EXTENSIONS.contains(&e));

        match &file.content {
            FileContent::Text(text) => {
                if is_cert_ext || text.contains("-----BEGIN CERTIFICATE-----") {
                    collect_pem_certs(&file.path, text, findings);
                }
                collect_pins(&file.path, text, findings);
            }
            FileContent::Binary(bytes) => {
                if is_cert_ext {
                    // Try DER first, then PEM-in-binary.
                    if let Ok(cert) = Certificate::from_der(bytes) {
                        findings.embedded_certs.push(Located {
                            path: file.path.clone(),
                            value: cert,
                        });
                    } else if let Ok(text) = core::str::from_utf8(bytes) {
                        collect_pem_certs(&file.path, text, findings);
                    }
                }
                // Strings pass over every binary (dex pools, .so, Mach-O).
                for s in extract_strings(bytes, MIN_STRING_LEN) {
                    collect_pins(&file.path, &s, findings);
                    if s.contains("-----BEGIN CERTIFICATE-----") {
                        collect_pem_certs(&file.path, &s, findings);
                    }
                }
            }
        }
    }
}

fn collect_pem_certs(path: &str, text: &str, findings: &mut StaticFindings) {
    let Ok(ders) = pem_decode_all(text) else {
        return; // malformed PEM is ignored, as ripgrep+openssl would skip it
    };
    for der in ders {
        if let Ok(cert) = Certificate::from_der(&der) {
            findings.embedded_certs.push(Located {
                path: path.to_string(),
                value: cert,
            });
        }
    }
}

fn collect_pins(path: &str, text: &str, findings: &mut StaticFindings) {
    for m in scanner::scan_pins(text) {
        let parsed = m.parse();
        findings.pin_strings.push(Located {
            path: path.to_string(),
            value: FoundPin { raw: m.raw, parsed },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statics::analyze_package;
    use pinning_app::package::{binary_with_strings, AppFile, AppPackage};
    use pinning_app::platform::Platform;
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;
    use pinning_pki::authority::CertificateAuthority;
    use pinning_pki::name::DistinguishedName;
    use pinning_pki::time::{SimTime, Validity, YEAR};

    fn cert(seed: u64) -> Certificate {
        let mut rng = SplitMix64::new(seed);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("R", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let k = KeyPair::generate(&mut rng);
        root.issue_leaf(
            &["api.x.com".to_string()],
            "X",
            &k,
            Validity::starting(SimTime(0), YEAR),
        )
    }

    #[test]
    fn finds_pem_asset() {
        let c = cert(1);
        let pkg = AppPackage::new(
            Platform::Android,
            vec![AppFile::text("assets/certs/api.pem", c.to_pem())],
        );
        let f = analyze_package(&pkg, None);
        assert_eq!(f.embedded_certs.len(), 1);
        assert_eq!(f.embedded_certs[0].value, c);
        assert!(f.has_pin_material());
    }

    #[test]
    fn finds_der_asset() {
        let c = cert(2);
        let pkg = AppPackage::new(
            Platform::Android,
            vec![AppFile::binary("res/raw/root.der", c.to_der())],
        );
        let f = analyze_package(&pkg, None);
        assert_eq!(f.embedded_certs.len(), 1);
    }

    #[test]
    fn finds_pem_with_unusual_extension_via_delimiter() {
        let c = cert(3);
        let pkg = AppPackage::new(
            Platform::Android,
            vec![AppFile::text(
                "assets/trust.txt",
                format!("junk\n{}\n", c.to_pem()),
            )],
        );
        let f = analyze_package(&pkg, None);
        assert_eq!(
            f.embedded_certs.len(),
            1,
            "delimiter search must catch non-cert extensions"
        );
    }

    #[test]
    fn finds_pin_in_dex_strings() {
        let c = cert(4);
        let pin = c.spki_pin_string();
        let mut rng = SplitMix64::new(9);
        let dex = binary_with_strings(std::slice::from_ref(&pin), &mut rng, 512);
        let pkg = AppPackage::new(Platform::Android, vec![AppFile::binary("classes.dex", dex)]);
        let f = analyze_package(&pkg, None);
        assert_eq!(f.pin_strings.len(), 1);
        assert_eq!(f.pin_strings[0].value.raw, pin);
        assert!(f.pin_strings[0].value.parsed.is_some());
    }

    #[test]
    fn encrypted_ios_package_blocked_without_key() {
        let c = cert(5);
        let pkg = AppPackage::new(
            Platform::Ios,
            vec![AppFile::text("Payload/App.app/pin.pem", c.to_pem())],
        )
        .encrypt(0x5ec);
        let f = analyze_package(&pkg, None);
        assert!(f.scan_blocked_encrypted);
        assert!(!f.has_pin_material());
        // With the key, the scan works.
        let f = analyze_package(&pkg, Some(0x5ec));
        assert!(!f.scan_blocked_encrypted);
        assert_eq!(f.embedded_certs.len(), 1);
    }

    #[test]
    fn no_findings_in_clean_package() {
        let pkg = AppPackage::new(
            Platform::Android,
            vec![AppFile::text("assets/config.json", "{\"a\":1}")],
        );
        let f = analyze_package(&pkg, None);
        assert!(!f.has_pin_material());
    }

    #[test]
    fn malformed_pem_skipped() {
        let pkg = AppPackage::new(
            Platform::Android,
            vec![AppFile::text(
                "assets/broken.pem",
                "-----BEGIN CERTIFICATE-----\nnot base64!!\n-----END CERTIFICATE-----\n",
            )],
        );
        let f = analyze_package(&pkg, None);
        assert!(f.embedded_certs.is_empty());
    }
}
