//! Shared per-app result record.

use crate::circumvent::CircumventionResult;
use crate::dynamics::pipeline::AppDynamicResult;
use crate::statics::StaticFindings;
use pinning_app::platform::AppId;

/// Everything the pipelines produced for one app.
#[derive(Debug, Clone)]
pub struct AppAnalysis {
    /// Index into the world's app list.
    pub app_index: usize,
    /// The app's identity.
    pub id: AppId,
    /// §4.1 static findings.
    pub static_findings: StaticFindings,
    /// §4.2 dynamic result.
    pub dynamic: AppDynamicResult,
    /// §4.3 circumvention result (only for apps with pinned destinations).
    pub circumvention: Option<CircumventionResult>,
}

impl AppAnalysis {
    /// §5's definition: the app pins iff dynamic analysis saw a pinned
    /// connection.
    pub fn pins(&self) -> bool {
        self.dynamic.pins()
    }

    /// Table 3 static "Embedded Certificates" signal.
    pub fn static_embedded_signal(&self) -> bool {
        self.static_findings.has_pin_material()
    }

    /// Table 3 static "Configuration Files" signal (NSC).
    pub fn static_nsc_signal(&self) -> bool {
        self.static_findings.nsc_signal()
    }
}
