//! Certificate analysis (§5.3): PKI class, pin level, SPKI-vs-raw, CT
//! association, and validation-subversion checks.

use crate::dynamics::pipeline::AppDynamicResult;
use crate::statics::StaticFindings;
use pinning_crypto::Sha256;
use pinning_ctlog::PinResolver;
use pinning_netsim::network::Network;
use pinning_pki::cache::{self, CacheCounter};
use pinning_pki::chain::CertificateChain;
use pinning_pki::store::RootStore;
use pinning_pki::time::SimTime;
use pinning_pki::validate::{validate_chain, RevocationList, ValidationOptions};
use std::collections::{BTreeSet, HashMap};
use std::sync::{OnceLock, RwLock};

/// Telemetry for the destination-PKI classification memo.
pub static PKI_CLASSIFICATION: CacheCounter = CacheCounter::new("pki-classification");

/// Table 6's three buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PkiClass {
    /// Chain roots in a public store.
    DefaultPki,
    /// Chain roots in a private CA (or is self-signed).
    CustomPki,
    /// Chain could not be retrieved.
    DataUnavailable,
}

/// Classifies the chain served at `destination`.
///
/// §5.3.1's method: validate with OpenSSL against the Mozilla store, then
/// manually review failures against the union of public stores before
/// confirming them as custom PKIs.
pub fn classify_destination_pki(
    network: &Network,
    mozilla: &RootStore,
    all_public: &[&RootStore],
    destination: &str,
    now: SimTime,
) -> PkiClass {
    let Some(server) = network.resolve(destination) else {
        return PkiClass::DataUnavailable;
    };
    let chain = &server.chain;
    if !cache::caching_enabled() {
        return classify_chain(chain, mozilla, all_public, destination, now);
    }
    // Classification ignores hostnames (`check_hostname: false` below), so
    // the memo key can omit `destination`: many destinations serving the
    // same SDK chain classify once.
    let key = classification_key(chain, mozilla, all_public, now);
    if let Some(class) = classification_memo()
        .read()
        .expect("classification memo poisoned")
        .get(&key)
    {
        PKI_CLASSIFICATION.hit();
        return *class;
    }
    PKI_CLASSIFICATION.miss();
    let class = classify_chain(chain, mozilla, all_public, destination, now);
    classification_memo()
        .write()
        .expect("classification memo poisoned")
        .insert(key, class);
    class
}

fn classify_chain(
    chain: &CertificateChain,
    mozilla: &RootStore,
    all_public: &[&RootStore],
    destination: &str,
    now: SimTime,
) -> PkiClass {
    let opts = ValidationOptions {
        check_hostname: false,
        ..Default::default()
    };
    if validate_chain(
        chain.certs(),
        mozilla,
        destination,
        now,
        &RevocationList::empty(),
        &opts,
    )
    .is_ok()
    {
        return PkiClass::DefaultPki;
    }
    // "Manual review": does the chain anchor in *any* public store?
    for store in all_public {
        if validate_chain(
            chain.certs(),
            store,
            destination,
            now,
            &RevocationList::empty(),
            &opts,
        )
        .is_ok()
        {
            return PkiClass::DefaultPki;
        }
    }
    PkiClass::CustomPki
}

fn classification_memo() -> &'static RwLock<HashMap<[u8; 32], PkiClass>> {
    static MEMO: OnceLock<RwLock<HashMap<[u8; 32], PkiClass>>> = OnceLock::new();
    MEMO.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Digest over everything [`classify_chain`] reads: the chain's certificate
/// fingerprints, the content identity of every consulted store, and the
/// evaluation time.
fn classification_key(
    chain: &CertificateChain,
    mozilla: &RootStore,
    all_public: &[&RootStore],
    now: SimTime,
) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&mozilla.content_id().to_le_bytes());
    h.update(&(all_public.len() as u64).to_le_bytes());
    for store in all_public {
        h.update(&store.content_id().to_le_bytes());
    }
    h.update(&(chain.len() as u64).to_le_bytes());
    for cert in chain.certs() {
        h.update(&cert.fingerprint_sha256());
    }
    h.update(&now.0.to_le_bytes());
    h.finalize()
}

/// Empties the classification memo (bench A/B legs start cold).
pub fn clear_classification_cache() {
    classification_memo()
        .write()
        .expect("classification memo poisoned")
        .clear();
}

/// Whether the destination presents a bare self-signed certificate
/// (§5.3.1 found one per platform, with 27- and 10-year lifetimes).
pub fn is_self_signed_destination(network: &Network, destination: &str) -> bool {
    network
        .resolve(destination)
        .and_then(|s| (s.chain.len() == 1).then(|| s.chain.leaf().map(|l| l.is_self_signed())))
        .flatten()
        .unwrap_or(false)
}

/// §5.3.2's tally: CA-pinned vs leaf-pinned destinations, found by
/// matching statically-found certificates (and CT-resolved pins) against
/// the served chain *by Common Name* — the paper's matching key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PinLevelCounts {
    /// Pins matched to CA certificates (root or intermediate).
    pub ca: usize,
    /// Pins matched to leaf certificates.
    pub leaf: usize,
}

/// The Common Names an app's static material pins: embedded certificates
/// plus CT-resolved pin strings. Computed once per app and reused across
/// every destination the app pins (the set does not depend on the chain).
pub fn static_pin_cns(findings: &StaticFindings, resolver: &PinResolver<'_>) -> BTreeSet<String> {
    findings
        .embedded_certs
        .iter()
        .map(|c| c.value.tbs.subject.common_name.clone())
        .chain(findings.pin_strings.iter().filter_map(|p| {
            let pin = p.value.parsed.as_ref()?;
            resolver
                .resolve(pin.alg, &pin.digest)
                .first()
                .map(|c| c.tbs.subject.common_name.clone())
        }))
        .collect()
}

/// Matches a precomputed CN set (see [`static_pin_cns`]) against one
/// dynamically-pinned destination's chain.
pub fn pin_level_with_cns(
    static_cns: &BTreeSet<String>,
    chain: &CertificateChain,
) -> Option<bool /* is_ca */> {
    for (idx, cert) in chain.certs().iter().enumerate() {
        if static_cns.contains(&cert.tbs.subject.common_name) {
            return Some(cert.tbs.is_ca || idx > 0);
        }
    }
    None
}

/// Matches one app's static material against one dynamically-pinned
/// destination's chain.
pub fn pin_level_for_destination(
    findings: &StaticFindings,
    resolver: &PinResolver<'_>,
    chain: &CertificateChain,
) -> Option<bool /* is_ca */> {
    pin_level_with_cns(&static_pin_cns(findings, resolver), chain)
}

/// §4.1.3 / §5.3: fraction of unique well-formed pins resolvable through
/// the CT log set (the crt.sh association step; the paper resolved ~50%).
/// Goes through the memoizing [`PinResolver`], so repeated pins cost one
/// underlying lookup.
pub fn ct_resolution_rate(
    findings: &[&StaticFindings],
    resolver: &PinResolver<'_>,
) -> (usize, usize) {
    let mut unique: BTreeSet<(u8, Vec<u8>)> = BTreeSet::new();
    for f in findings {
        for p in &f.pin_strings {
            if let Some(pin) = &p.value.parsed {
                let tag = match pin.alg {
                    pinning_pki::pin::PinAlgorithm::Sha256 => 0u8,
                    pinning_pki::pin::PinAlgorithm::Sha1 => 1u8,
                };
                unique.insert((tag, pin.digest.clone()));
            }
        }
    }
    let resolved = unique
        .iter()
        .filter(|(tag, digest)| {
            let alg = if *tag == 0 {
                pinning_pki::pin::PinAlgorithm::Sha256
            } else {
                pinning_pki::pin::PinAlgorithm::Sha1
            };
            resolver.resolves(alg, digest)
        })
        .count();
    (resolved, unique.len())
}

/// §5.3.4: verify no pinned destination served an expired-but-accepted
/// certificate (evidence apps did *not* subvert standard validation).
/// Returns the list of violations (expected empty).
pub fn expired_but_pinned(
    network: &Network,
    results: &[(&AppDynamicResult, SimTime)],
) -> Vec<String> {
    let mut violations = Vec::new();
    for (res, now) in results {
        for dest in res.pinned_destinations() {
            let Some(server) = network.resolve(dest) else {
                continue;
            };
            for cert in server.chain.certs() {
                if !cert.tbs.validity.contains(*now) {
                    violations.push(dest.to_string());
                }
            }
        }
    }
    violations.sort();
    violations.dedup();
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_store::config::WorldConfig;
    use pinning_store::world::World;

    fn world() -> World {
        World::generate(WorldConfig::tiny(0xCE27))
    }

    #[test]
    fn default_pki_classification() {
        let w = world();
        // Any SDK backend uses the default PKI.
        let stores = [&w.universe.aosp_oem, &w.universe.ios];
        let class = classify_destination_pki(
            &w.network,
            &w.universe.mozilla,
            &stores,
            "api.twitter.com",
            w.now,
        );
        assert_eq!(class, PkiClass::DefaultPki);
    }

    #[test]
    fn custom_pki_classification() {
        let w = world();
        // Find a custom-PKI destination planted by the generator, if any.
        let custom = w
            .apps
            .iter()
            .flat_map(|a| &a.pin_rules)
            .find(|r| r.custom_pki);
        if let Some(rule) = custom {
            let stores = [&w.universe.aosp_oem, &w.universe.ios];
            let class = classify_destination_pki(
                &w.network,
                &w.universe.mozilla,
                &stores,
                &rule.pattern,
                w.now,
            );
            assert_eq!(class, PkiClass::CustomPki, "{}", rule.pattern);
        }
    }

    #[test]
    fn unresolvable_is_unavailable() {
        let w = world();
        let class = classify_destination_pki(
            &w.network,
            &w.universe.mozilla,
            &[],
            "no-such-host.invalid",
            w.now,
        );
        assert_eq!(class, PkiClass::DataUnavailable);
    }

    #[test]
    fn ct_resolution_partial() {
        let w = world();
        let findings: Vec<_> = w
            .apps
            .iter()
            .map(|a| {
                crate::statics::analyze_package(&a.package, Some(w.config.ios_encryption_seed))
            })
            .collect();
        let refs: Vec<&_> = findings.iter().collect();
        let resolver = PinResolver::new(&w.ctlog);
        let (resolved, total) = ct_resolution_rate(&refs, &resolver);
        assert!(total > 0, "tiny world must contain parsable pins");
        assert!(resolved <= total);
        // CA pins always resolve (CAs are always logged); some leaf pins
        // don't — overall strictly between 0 and 100%.
        assert!(resolved > 0);
    }

    #[test]
    fn no_expired_pinned_certs_in_generated_world() {
        let w = world();
        let env = crate::dynamics::pipeline::DynamicEnv::new(
            &w.network,
            w.universe.aosp_oem.clone(),
            w.universe.ios.clone(),
            w.now,
            1,
        );
        let results: Vec<_> = w
            .apps
            .iter()
            .filter(|a| a.pins_at_runtime())
            .map(|a| crate::dynamics::pipeline::analyze_app(&env, a))
            .collect();
        let pairs: Vec<_> = results.iter().map(|r| (r, w.now)).collect();
        assert!(expired_but_pinned(&w.network, &pairs).is_empty());
    }

    #[test]
    fn self_signed_detection() {
        let w = world();
        let ss = w
            .apps
            .iter()
            .flat_map(|a| &a.behavior.connections)
            .map(|c| c.domain.as_str())
            .find(|d| d.starts_with("legacy."));
        if let Some(d) = ss {
            assert!(is_self_signed_destination(&w.network, d));
        }
        assert!(!is_self_signed_destination(&w.network, "api.twitter.com"));
    }
}
