//! The paper's core contribution: cross-platform static and dynamic
//! certificate-pinning detection, plus the downstream characterization
//! analyses behind every table and figure.
//!
//! Layout mirrors §4 ("Methodology") and §5 ("Results"):
//!
//! | module | paper section |
//! |---|---|
//! | [`statics`] | §4.1 static analysis: config files, embedded certs, pin-hash scanning, third-party attribution |
//! | [`dynamics`] | §4.2 dynamic analysis: differential MITM detection, used/failed heuristics, iOS background-traffic handling, sleep-time calibration |
//! | [`circumvent`] | §4.3 pinning circumvention via instrumentation |
//! | [`pii`] | §4.4/§5.5 PII detection + chi-square significance |
//! | [`certs`] | §5.3 certificate analysis: PKI class, root-vs-leaf pins, SPKI-vs-raw, validation subversion, CT association |
//! | [`consistency`] | §5.1 cross-platform consistency (Figures 2–4) |
//! | [`destinations`] | §5.2 pinned vs unpinned destinations, first/third party (Figure 5) |
//! | [`security`] | §5.4 connection security / weak ciphers (Table 8) |
//! | [`categories`] | §5 pinning-by-category (Tables 4–5) |
//! | [`results`] | shared per-app result records |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod categories;
pub mod certs;
pub mod circumvent;
pub mod consistency;
pub mod destinations;
pub mod dynamics;
pub mod pii;
pub mod results;
pub mod security;
pub mod statics;

pub use results::AppAnalysis;
