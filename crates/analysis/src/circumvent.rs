//! Pinning circumvention (§4.3): Frida-style hooks that disable
//! certificate checks in known TLS stacks, so pinned connections can be
//! intercepted and their contents inspected.
//!
//! Circumvention is not guaranteed: apps using custom TLS implementations
//! resist hooking. The paper succeeded for ≈51.5% of unique pinned
//! destinations on Android and ≈66.2% on iOS.

use crate::dynamics::pipeline::DynamicEnv;
use pinning_app::app::MobileApp;
use pinning_netsim::device::RunConfig;
use std::collections::BTreeMap;

/// Outcome for one pinned destination under instrumentation.
#[derive(Debug, Clone, PartialEq)]
pub struct CircumventedDestination {
    /// Destination hostname.
    pub destination: String,
    /// Whether interception succeeded once hooks were installed.
    pub succeeded: bool,
    /// Decrypted request bodies recovered (empty unless `succeeded`).
    pub plaintexts: Vec<String>,
}

/// Per-app circumvention result.
#[derive(Debug, Clone, Default)]
pub struct CircumventionResult {
    /// One entry per pinned destination attempted.
    pub destinations: Vec<CircumventedDestination>,
}

impl CircumventionResult {
    /// Destinations successfully opened.
    pub fn succeeded(&self) -> usize {
        self.destinations.iter().filter(|d| d.succeeded).count()
    }

    /// Destinations attempted.
    pub fn attempted(&self) -> usize {
        self.destinations.len()
    }
}

/// Runs the instrumented MITM pass against `app` for the given pinned
/// destinations (found earlier by the differential pipeline).
///
/// Under fault injection an aborted instrumented run simply reports every
/// destination as not circumvented — the paper's operators did not retry
/// this best-effort pass.
pub fn circumvent_app(
    env: &DynamicEnv<'_>,
    app: &MobileApp,
    pinned_destinations: &[&str],
) -> CircumventionResult {
    if pinned_destinations.is_empty() {
        return CircumventionResult::default();
    }
    let device = env.device(app.id.platform);
    let mut cfg = RunConfig::mitm(&env.proxy);
    cfg.frida_disable_pinning = true;
    cfg.run_tag = "mitm-frida".to_string();
    cfg.faults = (!env.faults.is_quiet()).then_some(&env.faults);
    let capture = match device.try_run_app(app, &cfg) {
        Ok(capture) => capture,
        Err(_) => {
            // Run lost wholesale: nothing was opened.
            return CircumventionResult {
                destinations: pinned_destinations
                    .iter()
                    .map(|d| CircumventedDestination {
                        destination: d.to_string(),
                        succeeded: false,
                        plaintexts: vec![],
                    })
                    .collect(),
            };
        }
    };

    let mut per_dest: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    for flow in &capture.flows {
        let Some(sni) = flow.transcript.sni.as_deref() else {
            continue;
        };
        if let Some(body) = &flow.decrypted_request {
            per_dest.entry(sni).or_default().push(body.clone());
        } else {
            per_dest.entry(sni).or_default();
        }
    }

    let destinations = pinned_destinations
        .iter()
        .map(|d| {
            let plaintexts = per_dest.get(*d).cloned().unwrap_or_default();
            CircumventedDestination {
                destination: d.to_string(),
                succeeded: !plaintexts.is_empty(),
                plaintexts,
            }
        })
        .collect();
    CircumventionResult { destinations }
}

/// Aggregate circumvention rate over many apps: unique pinned destinations
/// opened / attempted.
pub fn circumvention_rate(results: &[CircumventionResult]) -> f64 {
    let mut attempted = std::collections::BTreeSet::new();
    let mut succeeded = std::collections::BTreeSet::new();
    for r in results {
        for d in &r.destinations {
            attempted.insert(d.destination.clone());
            if d.succeeded {
                succeeded.insert(d.destination.clone());
            }
        }
    }
    if attempted.is_empty() {
        return 0.0;
    }
    succeeded.len() as f64 / attempted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::pipeline::{analyze_app, DynamicEnv};
    use pinning_store::config::WorldConfig;
    use pinning_store::world::World;

    #[test]
    fn circumvention_succeeds_only_for_hookable_stacks() {
        let w = World::generate(WorldConfig::tiny(0xF1DA));
        let env = DynamicEnv::new(
            &w.network,
            w.universe.aosp_oem.clone(),
            w.universe.ios.clone(),
            w.now,
            w.config.seed,
        );
        let mut any_success = false;
        let mut checked = 0;
        for app in &w.apps {
            let dynres = analyze_app(&env, app);
            let pinned = dynres.pinned_destinations();
            if pinned.is_empty() {
                continue;
            }
            let result = circumvent_app(&env, app, &pinned);
            assert_eq!(result.attempted(), pinned.len());
            for d in &result.destinations {
                checked += 1;
                // All libraries touching this destination with a pin rule.
                let libs: Vec<_> = app
                    .behavior
                    .connections
                    .iter()
                    .filter(|c| c.domain == d.destination && c.pin_rule.is_some())
                    .map(|c| c.library)
                    .collect();
                assert!(
                    !libs.is_empty(),
                    "pinned destination has a pinned connection"
                );
                if libs.iter().all(|l| !l.frida_hookable()) {
                    assert!(
                        !d.succeeded,
                        "unhookable stack must resist: {}",
                        d.destination
                    );
                } else if d.succeeded {
                    any_success = true;
                    assert!(!d.plaintexts.is_empty());
                }
            }
        }
        assert!(checked > 0, "tiny world must exercise circumvention");
        assert!(any_success, "some destinations must open");
    }

    #[test]
    fn rate_is_fraction_of_unique_destinations() {
        let results = vec![
            CircumventionResult {
                destinations: vec![
                    CircumventedDestination {
                        destination: "a.com".into(),
                        succeeded: true,
                        plaintexts: vec!["x".into()],
                    },
                    CircumventedDestination {
                        destination: "b.com".into(),
                        succeeded: false,
                        plaintexts: vec![],
                    },
                ],
            },
            CircumventionResult {
                destinations: vec![CircumventedDestination {
                    destination: "a.com".into(),
                    succeeded: true,
                    plaintexts: vec!["y".into()],
                }],
            },
        ];
        assert!((circumvention_rate(&results) - 0.5).abs() < 1e-9);
        assert_eq!(circumvention_rate(&[]), 0.0);
    }
}
