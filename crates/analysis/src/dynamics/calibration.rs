//! Sleep-time calibration (§4.2.1): how long to capture after launch.
//!
//! The paper tried 15/30/60 s windows on a small random app sample and
//! measured average TLS handshake counts of 20.78 / 23.5 / 24.62,
//! concluding 30 s captures the vast majority of connections. This module
//! reruns that sweep on the simulated devices.

use super::pipeline::DynamicEnv;
use pinning_app::app::MobileApp;
use pinning_netsim::device::RunConfig;

/// Result of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SleepSweep {
    /// The windows tested, seconds.
    pub windows: Vec<u32>,
    /// Mean handshake count per window, same order.
    pub mean_handshakes: Vec<f64>,
    /// Number of apps sampled.
    pub sample_size: usize,
}

impl SleepSweep {
    /// Fraction of the longest window's handshakes captured per window.
    pub fn capture_fractions(&self) -> Vec<f64> {
        let max = self.mean_handshakes.last().copied().unwrap_or(0.0);
        if max == 0.0 {
            return vec![0.0; self.mean_handshakes.len()];
        }
        self.mean_handshakes.iter().map(|m| m / max).collect()
    }
}

/// Runs the sweep over `apps` with the given windows (paper: 15/30/60).
pub fn sleep_time_sweep(env: &DynamicEnv<'_>, apps: &[&MobileApp], windows: &[u32]) -> SleepSweep {
    let mut mean_handshakes = Vec::with_capacity(windows.len());
    for &w in windows {
        let mut total = 0usize;
        for app in apps {
            let device = env.device(app.id.platform);
            let mut cfg = RunConfig::baseline();
            cfg.window_secs = w;
            cfg.run_tag = "calibration".to_string();
            let capture = device.run_app(app, &cfg);
            total += capture.n_handshakes();
        }
        mean_handshakes.push(total as f64 / apps.len().max(1) as f64);
    }
    SleepSweep {
        windows: windows.to_vec(),
        mean_handshakes,
        sample_size: apps.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_store::config::WorldConfig;
    use pinning_store::world::World;

    #[test]
    fn longer_windows_capture_more_with_diminishing_returns() {
        let w = World::generate(WorldConfig::tiny(0x515));
        let env = DynamicEnv::new(
            &w.network,
            w.universe.aosp_oem.clone(),
            w.universe.ios.clone(),
            w.now,
            1,
        );
        let apps: Vec<&_> = w.apps.iter().take(12).collect();
        let sweep = sleep_time_sweep(&env, &apps, &[15, 30, 60]);
        assert_eq!(sweep.mean_handshakes.len(), 3);
        // Monotone non-decreasing.
        assert!(sweep.mean_handshakes[0] <= sweep.mean_handshakes[1]);
        assert!(sweep.mean_handshakes[1] <= sweep.mean_handshakes[2]);
        // Diminishing returns: the 15→30 jump exceeds the 30→60 jump, and
        // 30 s already captures ≥90% (the paper's rationale for choosing it).
        let f = sweep.capture_fractions();
        assert!(f[1] >= 0.90, "30s fraction {}", f[1]);
        assert!(f[0] >= 0.70, "15s fraction {}", f[0]);
    }
}
