//! The end-to-end dynamic pipeline for one app: baseline run, MITM run,
//! differential comparison — including the iOS associated-domain handling
//! and the two-minute-settle re-run (§4.5).

use super::detect::{detect_pinned_destinations, DestinationVerdict, Exclusions};
use pinning_app::app::MobileApp;
use pinning_app::pii::DeviceIdentity;
use pinning_app::platform::Platform;
use pinning_app::xml;
use pinning_netsim::device::{Device, RunConfig};
use pinning_netsim::flow::Capture;
use pinning_netsim::network::Network;
use pinning_netsim::proxy::MitmProxy;
use pinning_pki::store::RootStore;
use pinning_pki::time::SimTime;
use pinning_crypto::SplitMix64;

/// Shared environment for dynamic analysis: one network, one proxy, one
/// test device per platform.
pub struct DynamicEnv<'a> {
    /// The simulated internet.
    pub network: &'a Network,
    /// The MITM proxy whose CA is installed on test devices.
    pub proxy: MitmProxy,
    /// Factory root store for Android devices (OEM image).
    pub android_factory: RootStore,
    /// Factory root store for iOS devices.
    pub ios_factory: RootStore,
    /// Test identity.
    pub identity: DeviceIdentity,
    /// Validation time.
    pub now: SimTime,
    /// Seed for run randomness.
    pub seed: u64,
}

impl<'a> DynamicEnv<'a> {
    /// Builds the environment.
    pub fn new(
        network: &'a Network,
        android_factory: RootStore,
        ios_factory: RootStore,
        now: SimTime,
        seed: u64,
    ) -> Self {
        let mut rng = SplitMix64::new(seed).derive("dynenv");
        let proxy = MitmProxy::new(&mut rng, now);
        let identity = DeviceIdentity::generate(&mut rng.derive("identity"));
        DynamicEnv { network, proxy, android_factory, ios_factory, identity, now, seed }
    }

    /// A test device for `platform`, with the proxy CA installed.
    pub fn device(&self, platform: Platform) -> Device<'a> {
        let factory = match platform {
            Platform::Android => self.android_factory.clone(),
            Platform::Ios => self.ios_factory.clone(),
        };
        let mut d = Device::new(
            platform,
            self.network,
            factory,
            self.identity.clone(),
            self.now,
            self.seed,
        );
        d.install_ca(self.proxy.ca_cert());
        d
    }
}

/// Dynamic analysis output for one app.
#[derive(Debug, Clone)]
pub struct AppDynamicResult {
    /// Per-destination verdicts (incl. excluded ones, for auditability).
    pub verdicts: Vec<DestinationVerdict>,
    /// The baseline capture (kept for connection-security analysis).
    pub baseline: Capture,
    /// The MITM capture (kept for PII analysis of intercepted plaintext).
    pub mitm: Capture,
    /// Whether the iOS settle re-run was applied.
    pub settled_rerun: bool,
}

impl AppDynamicResult {
    /// Destinations detected as pinned.
    pub fn pinned_destinations(&self) -> Vec<&str> {
        self.verdicts
            .iter()
            .filter(|v| v.pinned)
            .map(|v| v.destination.as_str())
            .collect()
    }

    /// Destinations used (un-MITM'd) at least once, excluding OS noise.
    pub fn used_destinations(&self) -> Vec<&str> {
        self.verdicts
            .iter()
            .filter(|v| v.used_baseline && v.excluded.is_none_or(|e| !matches!(
                e,
                super::detect::ExcludeReason::AppleBackground
                    | super::detect::ExcludeReason::AssociatedDomain
            )))
            .map(|v| v.destination.as_str())
            .collect()
    }

    /// The app pins iff at least one destination is pinned (§5's definition
    /// of a "pinning app").
    pub fn pins(&self) -> bool {
        self.verdicts.iter().any(|v| v.pinned)
    }
}

/// Extracts the entitlement-declared associated domains from an iOS
/// package (the plist stays plaintext even in encrypted IPAs).
pub fn associated_domains_from_package(app: &MobileApp) -> Vec<String> {
    let Some(file) = app.package.file("Payload/App.app/App.entitlements") else {
        return Vec::new();
    };
    let Some(text) = file.content.as_text() else {
        return Vec::new();
    };
    let Ok(root) = xml::parse(text) else {
        return Vec::new();
    };
    let mut strings = Vec::new();
    root.descendants("string", &mut strings);
    strings
        .iter()
        .filter_map(|s| s.text_content().strip_prefix("applinks:").map(str::to_string))
        .collect()
}

/// Runs the full differential pipeline for one app.
///
/// On iOS, runs once without settling; if pinning is detected, re-runs
/// with a 120 s settle so associated-domain traffic cannot contaminate the
/// result (§4.5's limited re-run applied automatically).
pub fn analyze_app(env: &DynamicEnv<'_>, app: &MobileApp) -> AppDynamicResult {
    let device = env.device(app.id.platform);
    let exclusions = match app.id.platform {
        Platform::Android => Exclusions::none(),
        Platform::Ios => Exclusions::ios(associated_domains_from_package(app)),
    };

    let run = |settle: u32, tag_suffix: &str| -> (Capture, Capture) {
        let mut base_cfg = RunConfig::baseline();
        base_cfg.settle_secs = settle;
        let tag = format!("baseline{tag_suffix}");
        base_cfg.run_tag = &tag;
        let baseline = device.run_app(app, &base_cfg);

        let mut mitm_cfg = RunConfig::mitm(&env.proxy);
        mitm_cfg.settle_secs = settle;
        let tag = format!("mitm{tag_suffix}");
        mitm_cfg.run_tag = &tag;
        let mitm = device.run_app(app, &mitm_cfg);
        (baseline, mitm)
    };

    let (baseline, mitm) = run(0, "");
    let verdicts = detect_pinned_destinations(&baseline, &mitm, &exclusions);
    let found_pinning = verdicts.iter().any(|v| v.pinned);

    if app.id.platform == Platform::Ios && found_pinning {
        // §4.5: re-run with a 2-minute settle; use the re-run's results.
        let (baseline2, mitm2) = run(120, "-settled");
        let verdicts2 = detect_pinned_destinations(&baseline2, &mitm2, &exclusions);
        return AppDynamicResult {
            verdicts: verdicts2,
            baseline: baseline2,
            mitm: mitm2,
            settled_rerun: true,
        };
    }

    AppDynamicResult { verdicts, baseline, mitm, settled_rerun: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_store::config::WorldConfig;
    use pinning_store::world::World;

    fn world() -> World {
        World::generate(WorldConfig::tiny(0xabc))
    }

    fn env(w: &World) -> DynamicEnv<'_> {
        DynamicEnv::new(
            &w.network,
            w.universe.aosp_oem.clone(),
            w.universe.ios.clone(),
            w.now,
            w.config.seed,
        )
    }

    #[test]
    fn pipeline_recovers_planted_pinning() {
        let w = world();
        let env = env(&w);
        let mut truth_pinners = 0;
        let mut detected = 0;
        let mut false_positives = 0;
        for app in &w.apps {
            let truth = app.pins_at_runtime();
            let result = analyze_app(&env, app);
            if truth {
                truth_pinners += 1;
                if result.pins() {
                    detected += 1;
                }
            } else if result.pins() {
                false_positives += 1;
            }
        }
        assert!(truth_pinners > 0, "tiny world must contain pinners");
        // Detection may miss a pinner whose pinned destination was flaky or
        // scheduled past the window (§5.6 "Partial Observation"); with a
        // single-digit pinner count in a tiny world the tolerance must be
        // loose — the paper-scale shape checks live in tests/end_to_end.rs.
        assert!(
            detected * 10 >= truth_pinners * 6,
            "detected {detected}/{truth_pinners}"
        );
        assert_eq!(false_positives, 0, "differential rule must not hallucinate");
    }

    #[test]
    fn pinned_destinations_match_ground_truth() {
        let w = world();
        let env = env(&w);
        let mut any_detected = false;
        for app in w.apps.iter().filter(|a| a.pins_at_runtime()) {
            let result = analyze_app(&env, app);
            let truth: std::collections::BTreeSet<&str> =
                app.runtime_pinned_domains().into_iter().collect();
            let detected: std::collections::BTreeSet<&str> =
                result.pinned_destinations().into_iter().collect();
            // Soundness: every detected destination is genuinely pinned.
            // (Completeness can miss: a pinned connection scheduled past
            // the 30 s window is simply not observed — §5.6 "Partial
            // Observation".)
            for d in &detected {
                assert!(truth.contains(d), "false pinned destination {d} in {}", app.id);
            }
            any_detected |= !detected.is_empty();
        }
        assert!(any_detected, "at least one pinner must be caught in the window");
    }

    #[test]
    fn ios_pinner_triggers_settled_rerun() {
        let w = world();
        let env = env(&w);
        let app = w
            .apps
            .iter()
            .find(|a| a.id.platform == Platform::Ios && a.pins_at_runtime());
        if let Some(app) = app {
            let result = analyze_app(&env, app);
            if result.pins() {
                assert!(result.settled_rerun);
            }
        }
    }

    #[test]
    fn associated_domains_roundtrip_through_entitlements() {
        let w = world();
        for app in w.apps.iter().filter(|a| a.id.platform == Platform::Ios) {
            let extracted = associated_domains_from_package(app);
            assert_eq!(extracted, app.associated_domains, "{}", app.id);
        }
    }
}
