//! The end-to-end dynamic pipeline for one app: baseline run, MITM run,
//! differential comparison — including the iOS associated-domain handling,
//! the two-minute-settle re-run (§4.5), and retry/degradation under
//! injected test-bed faults (§5.6).

use super::detect::{detect_pinned_destinations, DestinationVerdict, ExcludeReason, Exclusions};
use pinning_app::app::MobileApp;
use pinning_app::pii::DeviceIdentity;
use pinning_app::platform::Platform;
use pinning_app::xml;
use pinning_crypto::SplitMix64;
use pinning_netsim::breaker::{BreakerConfig, BreakerSet};
use pinning_netsim::device::{Device, RunConfig};
use pinning_netsim::faults::{FaultConfig, FaultPlan, InputLayer, MalformedKind, MeasurementError};
use pinning_netsim::flow::Capture;
use pinning_netsim::network::Network;
use pinning_netsim::proxy::MitmProxy;
use pinning_pki::store::RootStore;
use pinning_pki::time::SimTime;

/// Bounded retry with deterministic backoff for faulted run pairs
/// (shared with the serve layer; re-exported here for compatibility).
///
/// In this pipeline the jitter RNG handle is derived from the environment
/// seed and the app id, so replays stay bit-identical.
pub use pinning_resilience::RetryPolicy;

/// Shared environment for dynamic analysis: one network, one proxy, one
/// test device per platform.
pub struct DynamicEnv<'a> {
    /// The simulated internet.
    pub network: &'a Network,
    /// The MITM proxy whose CA is installed on test devices.
    pub proxy: MitmProxy,
    /// Factory root store for Android devices (OEM image).
    pub android_factory: RootStore,
    /// Factory root store for iOS devices.
    pub ios_factory: RootStore,
    /// Test identity.
    pub identity: DeviceIdentity,
    /// Validation time.
    pub now: SimTime,
    /// Seed for run randomness.
    pub seed: u64,
    /// Fault schedule applied to every run (quiet by default).
    pub faults: FaultPlan,
    /// Retry policy for faulted run pairs.
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning; `None` (the default) never short-circuits.
    /// When set, each app gets a fresh per-endpoint [`BreakerSet`] spanning
    /// all of its runs, so persistently faulty hosts stop consuming
    /// attempts after a few consecutive injected faults.
    pub breaker: Option<BreakerConfig>,
}

impl<'a> DynamicEnv<'a> {
    /// Builds the environment (no fault injection, default retries).
    pub fn new(
        network: &'a Network,
        android_factory: RootStore,
        ios_factory: RootStore,
        now: SimTime,
        seed: u64,
    ) -> Self {
        let mut rng = SplitMix64::new(seed).derive("dynenv");
        let proxy = MitmProxy::new(&mut rng, now);
        let identity = DeviceIdentity::generate(&mut rng.derive("identity"));
        DynamicEnv {
            network,
            proxy,
            android_factory,
            ios_factory,
            identity,
            now,
            seed,
            faults: FaultPlan::disabled(),
            retry: RetryPolicy::default(),
            breaker: None,
        }
    }

    /// Replaces the fault schedule (seeded from the environment seed).
    pub fn with_faults(mut self, config: FaultConfig) -> Self {
        self.faults = FaultPlan::new(self.seed, config);
        self
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables per-endpoint circuit breakers with the given tuning.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// A test device for `platform`, with the proxy CA installed.
    pub fn device(&self, platform: Platform) -> Device<'a> {
        let factory = match platform {
            Platform::Android => self.android_factory.clone(),
            Platform::Ios => self.ios_factory.clone(),
        };
        let mut d = Device::new(
            platform,
            self.network,
            factory,
            self.identity.clone(),
            self.now,
            self.seed,
        );
        d.install_ca(self.proxy.ca_cert());
        d
    }
}

/// Dynamic analysis output for one app.
#[derive(Debug, Clone)]
pub struct AppDynamicResult {
    /// Per-destination verdicts (incl. excluded ones, for auditability).
    pub verdicts: Vec<DestinationVerdict>,
    /// The baseline capture (kept for connection-security analysis).
    pub baseline: Capture,
    /// The MITM capture (kept for PII analysis of intercepted plaintext).
    pub mitm: Capture,
    /// Whether the iOS settle re-run was applied.
    pub settled_rerun: bool,
    /// Circuit-breaker trips (closed→open) across this app's endpoints;
    /// 0 unless the environment enables breakers and faults persisted.
    pub breaker_trips: u32,
}

impl AppDynamicResult {
    /// Destinations detected as pinned.
    pub fn pinned_destinations(&self) -> Vec<&str> {
        self.verdicts
            .iter()
            .filter(|v| v.pinned)
            .map(|v| v.destination.as_str())
            .collect()
    }

    /// Destinations used (un-MITM'd) at least once, excluding OS noise.
    pub fn used_destinations(&self) -> Vec<&str> {
        self.verdicts
            .iter()
            .filter(|v| {
                v.used_baseline
                    && v.excluded.is_none_or(|e| {
                        !matches!(
                            e,
                            super::detect::ExcludeReason::AppleBackground
                                | super::detect::ExcludeReason::AssociatedDomain
                        )
                    })
            })
            .map(|v| v.destination.as_str())
            .collect()
    }

    /// The app pins iff at least one destination is pinned (§5's definition
    /// of a "pinning app").
    pub fn pins(&self) -> bool {
        self.verdicts.iter().any(|v| v.pinned)
    }
}

/// Extracts the entitlement-declared associated domains from an iOS
/// package (the plist stays plaintext even in encrypted IPAs).
pub fn associated_domains_from_package(app: &MobileApp) -> Vec<String> {
    let Some(file) = app.package.file("Payload/App.app/App.entitlements") else {
        return Vec::new();
    };
    let Some(text) = file.content.as_text() else {
        return Vec::new();
    };
    let Ok(root) = xml::parse(text) else {
        return Vec::new();
    };
    let mut strings = Vec::new();
    root.descendants("string", &mut strings);
    strings
        .iter()
        .filter_map(|s| {
            s.text_content()
                .strip_prefix("applinks:")
                .map(str::to_string)
        })
        .collect()
}

/// Runs one (baseline, MITM) pair with bounded retries on faults.
///
/// Attempt 0 uses the legacy run tags (`baseline…`/`mitm…`) so fault-free
/// environments reproduce historical captures bit-for-bit; retries append
/// an attempt marker, which re-keys the fault schedule — transient faults
/// can clear on retry. A pair still faulted on the last attempt is
/// *accepted*: detection marks the contaminated destinations
/// [`ExcludeReason::Unobserved`]. Run-level aborts (crash, missing proxy
/// CA) that persist through every attempt surface as errors, as does
/// blowing the per-app virtual-time deadline.
fn run_pair_with_retry(
    env: &DynamicEnv<'_>,
    device: &Device<'_>,
    app: &MobileApp,
    breaker: Option<&BreakerSet>,
    settle: u32,
    tag_suffix: &str,
    clock: &mut u64,
) -> Result<(Capture, Capture), MeasurementError> {
    let plan = (!env.faults.is_quiet()).then_some(&env.faults);
    let max_attempts = env.retry.max_attempts.max(1);
    let mut jitter_rng =
        SplitMix64::new(env.seed).derive(&format!("backoff/{}{tag_suffix}", app.id));
    for attempt in 0..max_attempts {
        let last = attempt + 1 == max_attempts;
        *clock += env.retry.backoff_before(attempt, &mut jitter_rng);

        let marker = if attempt == 0 {
            String::new()
        } else {
            format!("#r{attempt}")
        };
        let mut base_cfg = RunConfig::baseline();
        base_cfg.settle_secs = settle;
        base_cfg.run_tag = format!("baseline{tag_suffix}{marker}");
        base_cfg.faults = plan;
        base_cfg.breaker = breaker;
        let mut mitm_cfg = RunConfig::mitm(&env.proxy);
        mitm_cfg.settle_secs = settle;
        mitm_cfg.run_tag = format!("mitm{tag_suffix}{marker}");
        mitm_cfg.faults = plan;
        mitm_cfg.breaker = breaker;

        *clock += 2 * (settle + base_cfg.window_secs) as u64;
        if *clock > env.retry.deadline_secs as u64 {
            return Err(MeasurementError::Deadline);
        }

        let baseline = device.try_run_app(app, &base_cfg);
        let mitm = device.try_run_app(app, &mitm_cfg);
        match (baseline, mitm) {
            (Ok(b), Ok(m)) => {
                if (!b.has_faults() && !m.has_faults()) || last {
                    return Ok((b, m));
                }
                // Faulted pair with retries left: run it again.
            }
            (b, m) => {
                let abort = b.err().or(m.err()).expect("at least one run aborted");
                if last {
                    return Err(abort.as_error());
                }
            }
        }
    }
    unreachable!("the final attempt always returns")
}

/// Whether a capture pair yielded *no* usable observation: faults fired
/// and every destination ended up unobserved. Such an app must be
/// recorded as degraded, not silently scored as "does not pin".
fn fully_unobserved(
    baseline: &Capture,
    mitm: &Capture,
    verdicts: &[DestinationVerdict],
) -> Option<MeasurementError> {
    if !baseline.has_faults() && !mitm.has_faults() {
        return None;
    }
    let all_unobserved = !verdicts.is_empty()
        && verdicts
            .iter()
            .all(|v| v.excluded == Some(ExcludeReason::Unobserved));
    if !all_unobserved {
        return None;
    }
    mitm.dominant_fault()
        .or_else(|| baseline.dominant_fault())
        .map(|k| k.as_error())
}

/// File extensions the screen treats as certificate material (mirrors the
/// static scanner's list).
const CERT_EXTENSIONS: [&str; 5] = ["der", "pem", "crt", "cert", "cer"];

fn classify_xml_error(e: &xml::XmlError) -> MalformedKind {
    match e {
        xml::XmlError::UnexpectedEof => MalformedKind::Truncated,
        xml::XmlError::MismatchedClose { .. } | xml::XmlError::Malformed(_) => {
            MalformedKind::BadStructure
        }
        xml::XmlError::NoRoot => MalformedKind::BadStructure,
        xml::XmlError::LimitExceeded(_) => MalformedKind::LimitExceeded,
    }
}

/// Pre-flight hostile-input screen for one app: every decoder-facing asset
/// in the package must decode, and every chain its planned destinations
/// serve must pass [`pinning_pki::limits::screen_chain`].
///
/// A rejection degrades the app as [`MeasurementError::MalformedInput`] —
/// the measurement is reported as lost, and the pipeline never fabricates
/// a pinning verdict from data it could not safely interpret (the same
/// contract as the Unobserved rule, §5.6). Honestly-generated worlds pass
/// this screen by construction, so it never perturbs clean studies.
fn screen_app_inputs(env: &DynamicEnv<'_>, app: &MobileApp) -> Result<(), MeasurementError> {
    // 1. Package assets. Encrypted iOS packages carry ciphertext assets a
    //    device decrypts transparently at install time; the screen can
    //    only inspect cleartext packages (the hostile cohort ships those).
    if !app.package.encrypted {
        for file in &app.package.files {
            let ext = file.path.rsplit('.').next().unwrap_or("");
            if CERT_EXTENSIONS.contains(&ext) {
                screen_cert_asset(file)?;
            }
            if file.path.ends_with("network_security_config.xml") {
                let text = match &file.content {
                    pinning_app::package::FileContent::Text(t) => t.as_str(),
                    pinning_app::package::FileContent::Binary(_) => {
                        return Err(MeasurementError::MalformedInput {
                            layer: InputLayer::Nsc,
                            reason: MalformedKind::BadEncoding,
                        })
                    }
                };
                pinning_app::nsc::NetworkSecurityConfig::from_xml(text).map_err(|e| {
                    MeasurementError::MalformedInput {
                        layer: InputLayer::Nsc,
                        reason: classify_xml_error(&e),
                    }
                })?;
            }
        }
    }

    // 2. Served chains: screen the structure of what each planned
    //    destination will present, before any run is attempted.
    let budget = pinning_pki::limits::Budget::STANDARD;
    for conn in &app.behavior.connections {
        if let Some(server) = env.network.resolve(&conn.domain) {
            pinning_pki::limits::screen_chain(server.chain.certs(), &budget).map_err(|defect| {
                MeasurementError::MalformedInput {
                    layer: InputLayer::Chain,
                    reason: if defect.is_budget_trip() {
                        MalformedKind::LimitExceeded
                    } else {
                        MalformedKind::BadStructure
                    },
                }
            })?;
        }
    }
    Ok(())
}

fn screen_cert_asset(file: &pinning_app::package::AppFile) -> Result<(), MeasurementError> {
    match &file.content {
        pinning_app::package::FileContent::Text(t) => {
            if !t.contains(pinning_pki::encode::PEM_BEGIN_CERT) {
                return Err(MeasurementError::MalformedInput {
                    layer: InputLayer::Pem,
                    reason: MalformedKind::BadStructure,
                });
            }
            let blobs = pinning_pki::encode::pem_decode_all(t).map_err(|e| {
                MeasurementError::MalformedInput {
                    layer: InputLayer::Pem,
                    reason: MalformedKind::from_decode_error(&e),
                }
            })?;
            for der in &blobs {
                pinning_pki::Certificate::from_der(der).map_err(|e| {
                    MeasurementError::MalformedInput {
                        layer: InputLayer::Der,
                        reason: MalformedKind::from_decode_error(&e),
                    }
                })?;
            }
        }
        pinning_app::package::FileContent::Binary(b) => {
            pinning_pki::Certificate::from_der(b).map_err(|e| {
                MeasurementError::MalformedInput {
                    layer: InputLayer::Der,
                    reason: MalformedKind::from_decode_error(&e),
                }
            })?;
        }
    }
    Ok(())
}

/// Runs the full differential pipeline for one app, surfacing measurement
/// degradation as an error instead of a mis-classification.
///
/// On iOS, runs once without settling; if pinning is detected, re-runs
/// with a 120 s settle so associated-domain traffic cannot contaminate the
/// result (§4.5's limited re-run applied automatically). Faulted pairs are
/// retried per [`DynamicEnv::retry`]; an app whose destinations all stayed
/// unobserved — or whose runs kept aborting — yields the responsible
/// [`MeasurementError`].
pub fn try_analyze_app(
    env: &DynamicEnv<'_>,
    app: &MobileApp,
) -> Result<AppDynamicResult, MeasurementError> {
    screen_app_inputs(env, app)?;
    let device = env.device(app.id.platform);
    let exclusions = match app.id.platform {
        Platform::Android => Exclusions::none(),
        Platform::Ios => Exclusions::ios(associated_domains_from_package(app)),
    };
    let mut clock: u64 = 0;
    // One breaker set per app, spanning all of its runs: state built up
    // during the initial pair carries into retries and the settle re-run.
    let breakers = env.breaker.map(BreakerSet::new);
    let breakers = breakers.as_ref();

    let (baseline, mitm) = run_pair_with_retry(env, &device, app, breakers, 0, "", &mut clock)?;
    let verdicts = detect_pinned_destinations(&baseline, &mitm, &exclusions);
    if let Some(err) = fully_unobserved(&baseline, &mitm, &verdicts) {
        return Err(err);
    }
    let found_pinning = verdicts.iter().any(|v| v.pinned);

    if app.id.platform == Platform::Ios && found_pinning {
        // §4.5: re-run with a 2-minute settle; use the re-run's results.
        let (baseline2, mitm2) =
            run_pair_with_retry(env, &device, app, breakers, 120, "-settled", &mut clock)?;
        let verdicts2 = detect_pinned_destinations(&baseline2, &mitm2, &exclusions);
        if let Some(err) = fully_unobserved(&baseline2, &mitm2, &verdicts2) {
            return Err(err);
        }
        return Ok(AppDynamicResult {
            verdicts: verdicts2,
            baseline: baseline2,
            mitm: mitm2,
            settled_rerun: true,
            breaker_trips: breakers.map(BreakerSet::trips).unwrap_or(0),
        });
    }

    Ok(AppDynamicResult {
        verdicts,
        baseline,
        mitm,
        settled_rerun: false,
        breaker_trips: breakers.map(BreakerSet::trips).unwrap_or(0),
    })
}

/// Infallible wrapper around [`try_analyze_app`] for fault-free
/// environments (the default): without a fault plan no run can abort and
/// the default deadline is never hit.
///
/// Panics if the environment has faults configured and the app degrades —
/// fault-injecting callers must use [`try_analyze_app`].
pub fn analyze_app(env: &DynamicEnv<'_>, app: &MobileApp) -> AppDynamicResult {
    try_analyze_app(env, app)
        .expect("measurement degraded under fault injection; use try_analyze_app")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_store::config::WorldConfig;
    use pinning_store::world::World;

    fn world() -> World {
        World::generate(WorldConfig::tiny(0xabc))
    }

    fn env(w: &World) -> DynamicEnv<'_> {
        DynamicEnv::new(
            &w.network,
            w.universe.aosp_oem.clone(),
            w.universe.ios.clone(),
            w.now,
            w.config.seed,
        )
    }

    #[test]
    fn pipeline_recovers_planted_pinning() {
        let w = world();
        let env = env(&w);
        let mut truth_pinners = 0;
        let mut detected = 0;
        let mut false_positives = 0;
        for app in &w.apps {
            let truth = app.pins_at_runtime();
            let result = analyze_app(&env, app);
            if truth {
                truth_pinners += 1;
                if result.pins() {
                    detected += 1;
                }
            } else if result.pins() {
                false_positives += 1;
            }
        }
        assert!(truth_pinners > 0, "tiny world must contain pinners");
        // Detection may miss a pinner whose pinned destination was flaky or
        // scheduled past the window (§5.6 "Partial Observation"); with a
        // single-digit pinner count in a tiny world the tolerance must be
        // loose — the paper-scale shape checks live in tests/end_to_end.rs.
        assert!(
            detected * 10 >= truth_pinners * 6,
            "detected {detected}/{truth_pinners}"
        );
        assert_eq!(false_positives, 0, "differential rule must not hallucinate");
    }

    #[test]
    fn pinned_destinations_match_ground_truth() {
        let w = world();
        let env = env(&w);
        let mut any_detected = false;
        for app in w.apps.iter().filter(|a| a.pins_at_runtime()) {
            let result = analyze_app(&env, app);
            let truth: std::collections::BTreeSet<&str> =
                app.runtime_pinned_domains().into_iter().collect();
            let detected: std::collections::BTreeSet<&str> =
                result.pinned_destinations().into_iter().collect();
            // Soundness: every detected destination is genuinely pinned.
            // (Completeness can miss: a pinned connection scheduled past
            // the 30 s window is simply not observed — §5.6 "Partial
            // Observation".)
            for d in &detected {
                assert!(
                    truth.contains(d),
                    "false pinned destination {d} in {}",
                    app.id
                );
            }
            any_detected |= !detected.is_empty();
        }
        assert!(
            any_detected,
            "at least one pinner must be caught in the window"
        );
    }

    #[test]
    fn ios_pinner_triggers_settled_rerun() {
        let w = world();
        let env = env(&w);
        let app = w
            .apps
            .iter()
            .find(|a| a.id.platform == Platform::Ios && a.pins_at_runtime());
        if let Some(app) = app {
            let result = analyze_app(&env, app);
            if result.pins() {
                assert!(result.settled_rerun);
            }
        }
    }

    #[test]
    fn associated_domains_roundtrip_through_entitlements() {
        let w = world();
        for app in w.apps.iter().filter(|a| a.id.platform == Platform::Ios) {
            let extracted = associated_domains_from_package(app);
            assert_eq!(extracted, app.associated_domains, "{}", app.id);
        }
    }
}
