//! Differential pinned-destination detection (§4.2.2) and the iOS
//! exclusion rules (§4.5).

use super::classify::{classify_connection, ConnStatus};
use pinning_netsim::flow::Capture;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Destinations excluded from pinning attribution before comparison.
#[derive(Debug, Clone, Default)]
pub struct Exclusions {
    /// Apple-operated background domains (publicly known list).
    pub apple_domains: HashSet<String>,
    /// The app's entitlement-declared associated domains (extracted
    /// statically from the package).
    pub associated_domains: HashSet<String>,
}

impl Exclusions {
    /// No exclusions (Android runs).
    pub fn none() -> Self {
        Self::default()
    }

    /// The iOS exclusion set for one app.
    pub fn ios(associated_domains: impl IntoIterator<Item = String>) -> Self {
        Exclusions {
            apple_domains: pinning_netsim::APPLE_BACKGROUND_DOMAINS
                .iter()
                .map(|s| s.to_string())
                .collect(),
            associated_domains: associated_domains.into_iter().collect(),
        }
    }

    /// Whether `destination` must be excluded.
    pub fn excluded(&self, destination: &str) -> bool {
        self.apple_domains.contains(destination) || self.associated_domains.contains(destination)
    }
}

/// Why a destination was excluded (or kept).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExcludeReason {
    /// Apple background service domain.
    AppleBackground,
    /// Entitlement-declared associated domain.
    AssociatedDomain,
    /// Never used in the baseline run (nothing to compare).
    NeverUsedBaseline,
    /// Some MITM connection was used or inconclusive-without-abort — not
    /// "always failed".
    NotAlwaysFailedUnderMitm,
    /// An injected test-bed fault hit this destination in a way that
    /// contaminates the differential comparison (§5.6 partial
    /// observation): the destination's pinning status cannot be
    /// determined from this capture pair.
    Unobserved,
}

/// Verdict for one destination of one app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DestinationVerdict {
    /// Destination hostname (SNI key).
    pub destination: String,
    /// Pinned per the differential rule.
    pub pinned: bool,
    /// Used at least once without interception.
    pub used_baseline: bool,
    /// Every interception-run connection failed.
    pub all_failed_mitm: bool,
    /// Why the destination was discarded, if it was.
    pub excluded: Option<ExcludeReason>,
}

/// Applies the differential rule to a (baseline, MITM) capture pair:
///
/// > "If a destination has any TLS connection that is used in the
/// > non-MITM setting, but TLS connections that always failed in the MITM
/// > setting, we mark it as pinned."
///
/// Destinations whose captures were contaminated by injected test-bed
/// faults are marked [`ExcludeReason::Unobserved`] rather than classified:
/// a fault-failed MITM connection is indistinguishable from a pin failure
/// on the wire, and counting it would manufacture false positives.
pub fn detect_pinned_destinations(
    baseline: &Capture,
    mitm: &Capture,
    exclusions: &Exclusions,
) -> Vec<DestinationVerdict> {
    let base_groups = baseline.by_destination();
    let mitm_groups = mitm.by_destination();
    let base_faulted = baseline.faulted_domains();
    let mitm_faulted = mitm.faulted_domains();

    // Fault-only domains (e.g. DNS failures leave no flow at all) still
    // get a verdict, so nothing silently disappears from the report.
    let all_destinations: BTreeSet<&str> = base_groups
        .keys()
        .chain(mitm_groups.keys())
        .copied()
        .chain(base_faulted.iter().copied())
        .chain(mitm_faulted.iter().copied())
        .collect();

    let mut verdicts = Vec::new();
    for dest in all_destinations {
        let mut verdict = DestinationVerdict {
            destination: dest.to_string(),
            pinned: false,
            used_baseline: false,
            all_failed_mitm: false,
            excluded: None,
        };

        if exclusions.apple_domains.contains(dest) {
            verdict.excluded = Some(ExcludeReason::AppleBackground);
            verdicts.push(verdict);
            continue;
        }
        if exclusions.associated_domains.contains(dest) {
            verdict.excluded = Some(ExcludeReason::AssociatedDomain);
            verdicts.push(verdict);
            continue;
        }

        let statuses = |groups: &BTreeMap<&str, Vec<&pinning_netsim::flow::FlowRecord>>| {
            groups
                .get(dest)
                .map(|flows| {
                    flows
                        .iter()
                        .map(|f| classify_connection(&f.transcript))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default()
        };
        let base_statuses = statuses(&base_groups);
        let mitm_statuses = statuses(&mitm_groups);

        verdict.used_baseline = base_statuses.contains(&ConnStatus::Used);
        verdict.all_failed_mitm =
            !mitm_statuses.is_empty() && mitm_statuses.iter().all(|s| *s == ConnStatus::Failed);
        let mitm_used = mitm_statuses.contains(&ConnStatus::Used);

        if !verdict.used_baseline {
            // A fault in the baseline run can explain the absence; a clean
            // baseline that never used the destination is genuine.
            verdict.excluded = if base_faulted.contains(dest) {
                Some(ExcludeReason::Unobserved)
            } else {
                Some(ExcludeReason::NeverUsedBaseline)
            };
        } else if verdict.all_failed_mitm {
            // The pinning signature — unless a fault hit the MITM run for
            // this destination, in which case the failures prove nothing.
            if mitm_faulted.contains(dest) {
                verdict.excluded = Some(ExcludeReason::Unobserved);
            } else {
                verdict.pinned = true;
            }
        } else if !mitm_used && mitm_faulted.contains(dest) {
            // Not "always failed" only because faults produced empty or
            // inconclusive MITM observations: withhold judgment. (Any
            // *used* MITM connection still rules out pinning outright.)
            verdict.excluded = Some(ExcludeReason::Unobserved);
        } else {
            verdict.excluded = Some(ExcludeReason::NotAlwaysFailedUnderMitm);
        }
        verdicts.push(verdict);
    }
    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_netsim::flow::{FlowOrigin, FlowRecord};
    use pinning_tls::cipher::CipherSuite;
    use pinning_tls::record::{ContentType, Direction, RecordEvent, TcpEvent};
    use pinning_tls::{ConnectionTranscript, TlsVersion};

    fn used_flow(dest: &str) -> FlowRecord {
        let mut t = ConnectionTranscript {
            sni: Some(dest.into()),
            negotiated: Some((TlsVersion::V1_3, CipherSuite::TLS_AES_128_GCM_SHA256)),
            ..Default::default()
        };
        t.push_tcp(TcpEvent::Established);
        for (inner, len) in [
            (ContentType::Handshake, 40),
            (ContentType::ApplicationData, 600),
            (ContentType::Alert, 24),
        ] {
            t.push_record(RecordEvent::encrypted(
                Direction::ClientToServer,
                TlsVersion::V1_3,
                inner,
                len,
            ));
        }
        FlowRecord {
            dest: dest.into(),
            at_secs: 1,
            origin: FlowOrigin::App,
            transcript: t,
            mitm_attempted: false,
            decrypted_request: None,
        }
    }

    fn failed_flow(dest: &str) -> FlowRecord {
        let mut t = ConnectionTranscript {
            sni: Some(dest.into()),
            negotiated: Some((TlsVersion::V1_3, CipherSuite::TLS_AES_128_GCM_SHA256)),
            ..Default::default()
        };
        t.push_tcp(TcpEvent::Established);
        t.push_record(RecordEvent::encrypted(
            Direction::ClientToServer,
            TlsVersion::V1_3,
            ContentType::Alert,
            24,
        ));
        t.push_tcp(TcpEvent::Fin {
            from: Direction::ClientToServer,
        });
        let mut f = used_flow(dest);
        f.mitm_attempted = true;
        f.transcript = t;
        f
    }

    fn capture(flows: Vec<FlowRecord>) -> Capture {
        Capture {
            flows,
            window_secs: 30,
            faults: vec![],
        }
    }

    fn faulted(mut cap: Capture, dest: &str, kind: pinning_netsim::FaultKind) -> Capture {
        cap.faults.push(pinning_netsim::flow::FaultEvent {
            domain: Some(dest.into()),
            kind,
            at_secs: 1,
        });
        cap
    }

    #[test]
    fn pinned_destination_detected() {
        let baseline = capture(vec![used_flow("pin.com")]);
        let mitm = capture(vec![failed_flow("pin.com")]);
        let v = detect_pinned_destinations(&baseline, &mitm, &Exclusions::none());
        assert_eq!(v.len(), 1);
        assert!(v[0].pinned);
    }

    #[test]
    fn unpinned_destination_not_flagged() {
        let baseline = capture(vec![used_flow("open.com")]);
        let mitm = capture(vec![used_flow("open.com")]);
        let v = detect_pinned_destinations(&baseline, &mitm, &Exclusions::none());
        assert!(!v[0].pinned);
        assert_eq!(v[0].excluded, Some(ExcludeReason::NotAlwaysFailedUnderMitm));
    }

    #[test]
    fn never_used_baseline_excluded() {
        let baseline = capture(vec![failed_flow("flaky.com")]);
        let mitm = capture(vec![failed_flow("flaky.com")]);
        let v = detect_pinned_destinations(&baseline, &mitm, &Exclusions::none());
        assert!(!v[0].pinned);
        assert_eq!(v[0].excluded, Some(ExcludeReason::NeverUsedBaseline));
    }

    #[test]
    fn mixed_mitm_outcomes_not_pinned() {
        // A retry that succeeded under MITM → not "always failed".
        let baseline = capture(vec![used_flow("x.com")]);
        let mitm = capture(vec![failed_flow("x.com"), used_flow("x.com")]);
        let v = detect_pinned_destinations(&baseline, &mitm, &Exclusions::none());
        assert!(!v[0].pinned);
    }

    #[test]
    fn apple_domains_excluded_on_ios() {
        let d = pinning_netsim::APPLE_BACKGROUND_DOMAINS[0];
        let baseline = capture(vec![used_flow(d)]);
        let mitm = capture(vec![failed_flow(d)]);
        let ex = Exclusions::ios(vec![]);
        let v = detect_pinned_destinations(&baseline, &mitm, &ex);
        assert!(
            !v[0].pinned,
            "would be a false positive without the exclusion"
        );
        assert_eq!(v[0].excluded, Some(ExcludeReason::AppleBackground));
    }

    #[test]
    fn associated_domains_excluded() {
        let baseline = capture(vec![used_flow("www.myapp.example")]);
        let mitm = capture(vec![failed_flow("www.myapp.example")]);
        let ex = Exclusions::ios(vec!["www.myapp.example".to_string()]);
        let v = detect_pinned_destinations(&baseline, &mitm, &ex);
        assert_eq!(v[0].excluded, Some(ExcludeReason::AssociatedDomain));
    }

    #[test]
    fn destination_only_in_mitm_run_not_pinned() {
        let baseline = capture(vec![]);
        let mitm = capture(vec![failed_flow("late.com")]);
        let v = detect_pinned_destinations(&baseline, &mitm, &Exclusions::none());
        assert!(!v[0].pinned);
        assert_eq!(v[0].excluded, Some(ExcludeReason::NeverUsedBaseline));
    }

    #[test]
    fn mitm_fault_turns_pinning_signature_into_unobserved() {
        // Wire-identical to a pin failure, but the journal says a fault
        // hit the MITM run: must NOT be counted as pinned.
        let baseline = capture(vec![used_flow("pin.com")]);
        let mitm = faulted(
            capture(vec![failed_flow("pin.com")]),
            "pin.com",
            pinning_netsim::FaultKind::Truncation,
        );
        let v = detect_pinned_destinations(&baseline, &mitm, &Exclusions::none());
        assert!(
            !v[0].pinned,
            "fault-failed MITM flows must not read as pinning"
        );
        assert_eq!(v[0].excluded, Some(ExcludeReason::Unobserved));
    }

    #[test]
    fn baseline_fault_absence_is_unobserved_not_never_used() {
        // DNS fault wiped the baseline flow entirely; the destination is
        // unobserved, not "never used".
        let baseline = faulted(capture(vec![]), "gone.com", pinning_netsim::FaultKind::Dns);
        let mitm = capture(vec![failed_flow("gone.com")]);
        let v = detect_pinned_destinations(&baseline, &mitm, &Exclusions::none());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].excluded, Some(ExcludeReason::Unobserved));
    }

    #[test]
    fn fault_only_destination_still_gets_a_verdict() {
        // Faulted out of both runs: no flows at all, but the destination
        // must still surface as unobserved rather than vanish.
        let baseline = faulted(capture(vec![]), "dark.com", pinning_netsim::FaultKind::Dns);
        let mitm = faulted(capture(vec![]), "dark.com", pinning_netsim::FaultKind::Dns);
        let v = detect_pinned_destinations(&baseline, &mitm, &Exclusions::none());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].destination, "dark.com");
        assert_eq!(v[0].excluded, Some(ExcludeReason::Unobserved));
    }

    #[test]
    fn used_mitm_connection_beats_fault_exclusion() {
        // A destination that demonstrably worked under MITM is not pinned,
        // fault or no fault.
        let baseline = capture(vec![used_flow("open.com")]);
        let mitm = faulted(
            capture(vec![used_flow("open.com")]),
            "open.com",
            pinning_netsim::FaultKind::TcpReset,
        );
        let v = detect_pinned_destinations(&baseline, &mitm, &Exclusions::none());
        assert!(!v[0].pinned);
        assert_eq!(v[0].excluded, Some(ExcludeReason::NotAlwaysFailedUnderMitm));
    }

    #[test]
    fn unrelated_fault_does_not_contaminate_other_destinations() {
        let baseline = capture(vec![used_flow("pin.com")]);
        let mitm = faulted(
            capture(vec![failed_flow("pin.com")]),
            "other.com",
            pinning_netsim::FaultKind::Dns,
        );
        let v = detect_pinned_destinations(&baseline, &mitm, &Exclusions::none());
        let pin = v.iter().find(|x| x.destination == "pin.com").unwrap();
        assert!(
            pin.pinned,
            "faults on other destinations must not suppress detection"
        );
    }
}
