//! Dynamic analysis (§4.2): differential MITM detection of pinning.

pub mod calibration;
pub mod classify;
pub mod detect;
pub mod interaction;
pub mod pipeline;

pub use classify::{classify_connection, ConnStatus};
pub use detect::{detect_pinned_destinations, DestinationVerdict, Exclusions};
pub use pipeline::{AppDynamicResult, DynamicEnv};
